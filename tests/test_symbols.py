"""Symbol-table tests."""

import pytest

from repro.frontend.parser import parse
from repro.frontend.symbols import (
    Scope,
    Symbol,
    SymbolError,
    build_function_scope,
    build_global_scope,
)
from repro.frontend.cast import CType


class TestScope:
    def test_declare_and_lookup(self):
        s = Scope()
        s.declare(Symbol("x", CType("int"), "local"))
        assert s.lookup("x").name == "x"
        assert s.lookup("y") is None

    def test_parent_chain(self):
        parent = Scope()
        parent.declare(Symbol("g", CType("float"), "global"))
        child = parent.child()
        assert child.lookup("g").storage == "global"

    def test_same_type_redeclaration_merged(self):
        s = Scope()
        a = s.declare(Symbol("i", CType("int"), "local"))
        b = s.declare(Symbol("i", CType("int"), "local"))
        assert a is b

    def test_conflicting_type_rejected(self):
        s = Scope()
        s.declare(Symbol("i", CType("int"), "local"))
        with pytest.raises(SymbolError):
            s.declare(Symbol("i", CType("float"), "local"))


class TestFunctionScope:
    def test_params_and_locals(self):
        prog = parse("""
        void f(int n, float *x) {
          int a = 1;
          for (int i = 0; i < n; i++) { float t = x[i]; }
        }
        """)
        scope = build_function_scope(prog.functions[0])
        assert scope.lookup("n").storage == "param"
        assert scope.lookup("x").is_array
        assert scope.lookup("a").storage == "local"
        assert scope.lookup("i") is not None
        assert scope.lookup("t") is not None

    def test_sibling_loop_vars_allowed(self):
        prog = parse("""
        void f(int n) {
          for (int i = 0; i < n; i++) { }
          for (int i = 0; i < n; i++) { }
        }
        """)
        scope = build_function_scope(prog.functions[0])
        assert scope.lookup("i").ctype.base == "int"

    def test_global_scope(self):
        prog = parse("int total; float table[10]; void f() {}")
        gs = build_global_scope(prog)
        assert gs.lookup("total") is not None
        assert gs.lookup("table").is_array
        fs = build_function_scope(prog.functions[0], gs)
        assert fs.lookup("total").storage == "global"

    def test_iteration(self):
        s = Scope()
        s.declare(Symbol("a", CType("int"), "local"))
        s.declare(Symbol("b", CType("int"), "local"))
        assert {sym.name for sym in s} == {"a", "b"}
