"""Collective communication engine (runtime/collectives.py).

Covers the tentpole claims of docs/COLLECTIVES.md:

* schedule selection: the pure cost model orders ring paths
  group-contiguously, builds log-round binomial trees, and ``auto``
  picks the cheaper modeled schedule per transfer;
* determinism: every ``collective`` mode is bit-identical to the
  legacy ``none`` schedule (which itself matches single-GPU) on
  multi-node clusters, and one-GPU/one-node runs degenerate to the
  legacy schedule *exactly* (same modeled time);
* fault injection: a dead link raises the structured
  :class:`NetworkError` mid-schedule under ring and tree alike, and a
  degraded-but-live link only changes timing;
* telemetry: engine counters, per-schedule tracer metrics and the
  ``collective_*`` trace mechanisms all surface.
"""

import numpy as np
import pytest

import repro
from repro.apps import ALL_APPS, EXTRA_APPS
from repro.bench.machines import hypothetical_cluster, hypothetical_node
from repro.bench.multinode import (
    ENTRY as PROBE_ENTRY,
    STENCIL_PROBES_SOURCE,
    probe_args,
)
from repro.explain import main as explain_main, render_collectives
from repro.runtime.collectives import (
    COLLECTIVE_MODES,
    CollectiveEngine,
    node_schedule_costs,
    ring_order,
    select_node_schedule,
    tree_rounds,
)
from repro.trace.events import (
    MECH_COLLECTIVE_PIPELINE,
    MECH_COLLECTIVE_RING,
    MECH_COLLECTIVE_TREE,
)
from repro.vcuda.bus import NetworkError
from repro.vcuda.specs import CLUSTERS, cluster_of

APPS = {**ALL_APPS, **EXTRA_APPS}
SCHEDULES = ("auto", "ring", "tree")

KB = 1024
MB = 1024 * 1024


def grouped_cluster(nodes, gpus_per_node, nodes_per_group):
    return cluster_of(nodes, hypothetical_node(gpus_per_node),
                      nodes_per_group=nodes_per_group)


# ---------------------------------------------------------------------------
# Pure cost model
# ---------------------------------------------------------------------------

class TestCostModel:
    def test_ring_order_is_group_contiguous(self):
        cluster = grouped_cluster(6, 1, 2)  # groups {0,1} {2,3} {4,5}
        path = ring_order(cluster, 2, list(range(6)))
        assert path[0] == 2
        groups = [cluster.group_of(n) for n in path]
        # Source's group first, every group contiguous: the path
        # crosses the root switch once per extra group.
        assert groups == sorted(groups, key=lambda g: (g != groups[0], g))
        crossings = sum(1 for a, b in zip(groups, groups[1:]) if a != b)
        assert crossings == 2

    def test_tree_rounds_double_each_round(self):
        assert tree_rounds(1) == []
        assert tree_rounds(2) == [[(0, 1)]]
        rounds = tree_rounds(8)
        assert len(rounds) == 3
        have = 1
        for rnd in rounds:
            assert len(rnd) == min(have, 8 - have)
            have += len(rnd)
        assert have == 8

    def test_tree_rounds_partial_last_round(self):
        rounds = tree_rounds(5)
        assert [len(r) for r in rounds] == [1, 2, 1]

    def test_costs_scale_with_payload_and_auto_matches_min(self):
        cluster = grouped_cluster(8, 1, 4)
        dsts = list(range(1, 8))
        for nbytes in (4 * KB, 64 * KB, 1 * MB, 16 * MB):
            costs = node_schedule_costs(cluster, 0, dsts, nbytes)
            assert costs["ring"] > 0 and costs["tree"] > 0
            pick = select_node_schedule(cluster, 0, dsts, nbytes)
            assert pick == ("ring" if costs["ring"] < costs["tree"]
                            else "tree")

    def test_tree_wins_small_ring_wins_large_on_wide_cluster(self):
        # 8 nodes: tree = 3 full-payload rounds, ring ~ 2x the payload
        # once the pipeline fills -- so latency-bound small messages go
        # tree and bandwidth-bound large ones go ring.
        cluster = grouped_cluster(8, 1, 4)
        dsts = list(range(1, 8))
        assert select_node_schedule(cluster, 0, dsts, 4 * KB) == "tree"
        assert select_node_schedule(cluster, 0, dsts, 64 * MB) == "ring"

    def test_dead_link_prices_infinite_and_auto_routes_around(self):
        # The ring path 0->1->2->3 crosses the dead 1<->2 link; the
        # binomial tree (0->1, then 0->2 and 1->3) never does.  The
        # dead edge prices infinite, so ``auto`` steers the broadcast
        # onto the schedule that avoids it.
        cluster = hypothetical_cluster(4, 1).degrade_link(1, 2, 0.0)
        costs = node_schedule_costs(cluster, 0, [1, 2, 3], 1 * MB)
        assert costs["ring"] == float("inf")
        assert costs["tree"] < float("inf")
        assert select_node_schedule(cluster, 0, [1, 2, 3], 1 * MB) == "tree"

    def test_empty_and_degenerate_broadcasts_cost_nothing(self):
        cluster = hypothetical_cluster(2, 2)
        assert node_schedule_costs(cluster, 0, [], 1 * MB) \
            == {"ring": 0.0, "tree": 0.0}
        assert node_schedule_costs(cluster, 0, [1], 0) \
            == {"ring": 0.0, "tree": 0.0}


# ---------------------------------------------------------------------------
# Engine validation / degeneracy
# ---------------------------------------------------------------------------

class TestEngineContract:
    def test_invalid_mode_rejected_by_run(self):
        spec = APPS["md"]
        prog = repro.compile(spec.source)
        with pytest.raises(ValueError, match="collective"):
            prog.run(spec.entry, spec.args_for("tiny"), ngpus=1,
                     collective="butterfly")

    def test_engine_rejects_none_and_unknown(self):
        spec = APPS["md"]
        prog = repro.compile(spec.source)
        run = prog.run(spec.entry, spec.args_for("tiny"), ngpus=1)
        for bad in ("none", "butterfly"):
            with pytest.raises(ValueError):
                CollectiveEngine(run.platform, bad)

    def test_modes_tuple_is_the_contract(self):
        assert COLLECTIVE_MODES == ("none", "auto", "ring", "tree")

    @pytest.mark.parametrize("mode", SCHEDULES)
    def test_one_gpu_degenerates_exactly(self, mode):
        spec = APPS["md"]
        prog = repro.compile(spec.source)
        a = spec.args_for("tiny")
        base = prog.run(spec.entry, a, ngpus=1)
        b = spec.args_for("tiny")
        run = prog.run(spec.entry, b, ngpus=1, collective=mode)
        for name, v in a.items():
            if isinstance(v, np.ndarray):
                np.testing.assert_array_equal(b[name], v)
        # Same modeled schedule, not merely same results.
        assert run.elapsed == base.elapsed
        assert run.executor.comm.collective_broadcasts == 0


# ---------------------------------------------------------------------------
# Determinism across schedules
# ---------------------------------------------------------------------------

class TestBitIdentity:
    @pytest.mark.parametrize("app", sorted(APPS))
    @pytest.mark.parametrize("mode", SCHEDULES)
    def test_cluster_results_match_legacy_schedule(self, app, mode):
        spec = APPS[app]
        prog = repro.compile(spec.source)
        cluster = hypothetical_cluster(2, 2)
        a = spec.args_for("tiny")
        prog.run(spec.entry, a, machine=cluster, ngpus=4)
        b = spec.args_for("tiny")
        run = prog.run(spec.entry, b, machine=cluster, ngpus=4,
                       collective=mode)
        for name, v in a.items():
            if isinstance(v, np.ndarray):
                np.testing.assert_array_equal(
                    b[name], v,
                    err_msg=f"{app}/{name} diverged under "
                            f"collective={mode}")

    @pytest.mark.parametrize("mode", SCHEDULES)
    def test_probe_stencil_matches_single_gpu_on_4x2(self, mode):
        prog = repro.compile(STENCIL_PROBES_SOURCE)
        ref = probe_args()
        prog.run(PROBE_ENTRY, ref, ngpus=1)
        args = probe_args()
        run = prog.run(PROBE_ENTRY, args, machine=hypothetical_cluster(4, 2),
                       ngpus=8, collective=mode)
        for name in ("a", "record"):
            np.testing.assert_array_equal(args[name], ref[name])
        assert run.executor.comm.collective_broadcasts > 0

    @pytest.mark.parametrize("mode", SCHEDULES)
    def test_composes_with_overlap_and_coalesce(self, mode):
        prog = repro.compile(STENCIL_PROBES_SOURCE)
        ref = probe_args()
        prog.run(PROBE_ENTRY, ref, ngpus=1)
        args = probe_args()
        prog.run(PROBE_ENTRY, args, machine=hypothetical_cluster(2, 2),
                 ngpus=4, collective=mode, overlap=True, coalesce=True)
        for name in ("a", "record"):
            np.testing.assert_array_equal(args[name], ref[name])


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------

class TestFaultInjection:
    @pytest.mark.parametrize("mode", SCHEDULES)
    def test_dead_link_raises_structured_error_mid_schedule(self, mode):
        cluster = hypothetical_cluster(2, 2).degrade_link(0, 1, 0.0)
        prog = repro.compile(STENCIL_PROBES_SOURCE)
        with pytest.raises(NetworkError) as exc_info:
            prog.run(PROBE_ENTRY, probe_args(), machine=cluster, ngpus=4,
                     collective=mode)
        err = exc_info.value
        assert {err.src_node, err.dst_node} == {0, 1}
        assert err.bandwidth == 0.0

    @pytest.mark.parametrize("mode", ["ring", "tree"])
    def test_dead_interior_link_raises_on_wider_ring(self, mode):
        # The dead link is *interior* to the broadcast structure (not
        # touching the source), so the failure really happens
        # mid-schedule, hops into the relay.
        cluster = hypothetical_cluster(4, 1).degrade_link(2, 3, 0.0)
        spec = EXTRA_APPS["jacobi"]
        prog = repro.compile(spec.source)
        with pytest.raises(NetworkError) as exc_info:
            prog.run(spec.entry, spec.args_for("tiny"), machine=cluster,
                     ngpus=4, collective=mode)
        err = exc_info.value
        assert {err.src_node, err.dst_node} == {2, 3}

    @pytest.mark.parametrize("mode", SCHEDULES)
    def test_degraded_link_is_timing_only(self, mode):
        spec = EXTRA_APPS["jacobi"]
        prog = repro.compile(spec.source)
        healthy = hypothetical_cluster(2, 2)
        crippled = healthy.degrade_link(0, 1, 1e4)
        a = spec.args_for("tiny")
        fast = prog.run(spec.entry, a, machine=healthy, ngpus=4,
                        collective=mode)
        b = spec.args_for("tiny")
        slow = prog.run(spec.entry, b, machine=crippled, ngpus=4,
                        collective=mode)
        for name, v in a.items():
            if isinstance(v, np.ndarray):
                np.testing.assert_array_equal(b[name], v)
        assert slow.elapsed > fast.elapsed


# ---------------------------------------------------------------------------
# Telemetry: counters, metrics, mechanisms
# ---------------------------------------------------------------------------

class TestTelemetry:
    def _traced_run(self, mode, cluster=None):
        prog = repro.compile(STENCIL_PROBES_SOURCE)
        cluster = cluster or hypothetical_cluster(2, 4)
        return prog.run(PROBE_ENTRY, probe_args(), machine=cluster,
                        ngpus=cluster.gpu_count, collective=mode,
                        trace=True)

    @pytest.mark.parametrize("mode", ["ring", "tree"])
    def test_engine_counters_and_metrics(self, mode):
        run = self._traced_run(mode)
        comm = run.executor.comm
        engine = comm.collectives
        assert engine.broadcasts[mode] > 0
        assert engine.broadcasts["tree" if mode == "ring" else "ring"] == 0
        assert engine.exchanges > 0
        assert comm.collective_steps > 0
        assert comm.bytes_collective > 0
        metrics = run.tracer.metrics
        assert metrics.counter_total("collective_steps",
                                     schedule=mode) > 0
        assert metrics.counter_total("collective_bytes",
                                     schedule=mode) > 0
        assert metrics.counter_total("collective_steps",
                                     schedule="pipeline") > 0

    @pytest.mark.parametrize("mode,mech", [
        ("ring", MECH_COLLECTIVE_RING),
        ("tree", MECH_COLLECTIVE_TREE),
    ])
    def test_trace_mechanisms_surface(self, mode, mech):
        run = self._traced_run(mode)
        mechs = {e.mechanism for e in run.tracer.events
                 if getattr(e, "mechanism", None)}
        assert mech in mechs
        assert MECH_COLLECTIVE_PIPELINE in mechs

    def test_legacy_mode_schedules_no_collectives(self):
        run = self._traced_run("none")
        comm = run.executor.comm
        assert comm.collectives is None
        assert comm.collective_broadcasts == 0
        assert comm.bytes_collective == 0
        mechs = {e.mechanism for e in run.tracer.events
                 if getattr(e, "mechanism", None)}
        assert not mechs & {MECH_COLLECTIVE_RING, MECH_COLLECTIVE_TREE,
                            MECH_COLLECTIVE_PIPELINE}

    def test_cross_node_bytes_match_legacy_staged(self):
        # Collectives re-time the NIC traffic but never inflate the
        # modeled cross-node byte total of the staged transport.
        prog = repro.compile(STENCIL_PROBES_SOURCE)
        cluster = hypothetical_cluster(2, 4)
        runs = {}
        for mode in ("none",) + SCHEDULES:
            run = prog.run(PROBE_ENTRY, probe_args(), machine=cluster,
                           ngpus=8, collective=mode)
            runs[mode] = run.platform.bus.cross_node_bytes()
        assert len(set(runs.values())) == 1


# ---------------------------------------------------------------------------
# explain --collectives
# ---------------------------------------------------------------------------

class TestExplainCollectives:
    def test_cluster_report_lists_schedules(self, capsys):
        assert explain_main(["--collectives", "tsubame2"]) == 0
        out = capsys.readouterr().out
        assert "ring" in out and "tree" in out and "auto" in out
        assert "ring path" in out

    def test_single_node_report_degenerates(self, capsys):
        assert explain_main(["--collectives", "desktop"]) == 0
        out = capsys.readouterr().out
        assert "single node" in out

    def test_render_matches_runtime_selection(self):
        cluster = CLUSTERS["tsubame2"]
        text = render_collectives(cluster)
        pick = select_node_schedule(
            cluster, 0, list(range(1, cluster.node_count)), 1 * MB,
            cluster.nic.collective_chunk_bytes)
        assert pick in text
