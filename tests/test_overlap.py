"""Async pipelined communication: streams, coalescing, accounting,
and the bit-identical-results guarantee.

The overlap layer changes *when* transfers happen and how waits are
attributed -- never what data moves.  The regression tests here pin
both halves: scheduling semantics on the vcuda primitives, and
end-to-end equality of application outputs with overlap on vs off.
"""

import time

import numpy as np
import pytest

import repro
from repro.apps import ALL_APPS, EXTRA_APPS
from repro.translator.compiler import (
    CompileOptions,
    clear_compile_cache,
    compile_cache_stats,
    compile_source,
)
from repro.vcuda import (
    CATEGORY_CPU_GPU,
    CATEGORY_GPU_GPU,
    CATEGORY_GPU_GPU_OVERLAPPED,
    CATEGORY_KERNELS,
    Bus,
    KernelWork,
    LaunchConfig,
    Platform,
    Stream,
    SUPERCOMPUTER_NODE,
    DESKTOP_MACHINE,
    VirtualClock,
)

APPS = ALL_APPS | EXTRA_APPS


# ---------------------------------------------------------------------------
# Stream / event semantics
# ---------------------------------------------------------------------------


class TestStreamSemantics:
    def test_enqueue_at_mirrors_external_schedule(self):
        s = Stream(0, VirtualClock())
        assert s.enqueue_at("dma", 2.0, 5.0) == 5.0
        assert s.tail == 5.0
        # An earlier-finishing op does not move the tail backwards.
        s.enqueue_at("dma2", 1.0, 3.0)
        assert s.tail == 5.0
        assert [op[0] for op in s.ops] == ["dma", "dma2"]

    def test_enqueue_at_rejects_negative_duration(self):
        s = Stream(0, VirtualClock())
        with pytest.raises(ValueError):
            s.enqueue_at("bad", 5.0, 4.0)

    def test_cross_stream_event_dependency(self):
        clock = VirtualClock()
        a, b = Stream(0, clock), Stream(1, clock)
        a.enqueue("produce", 3.0)
        ev = a.record_event()
        b.wait_event(ev)
        end = b.enqueue("consume", 1.0)
        assert end == 4.0  # gated on the producer, not on clock.now

    def test_event_query_tracks_clock(self):
        clock = VirtualClock()
        s = Stream(0, clock)
        s.enqueue("op", 2.0)
        ev = s.record_event()
        assert not ev.query(clock)
        clock.advance_to(2.0)
        assert ev.query(clock)


# ---------------------------------------------------------------------------
# Bus: per-category sync, retirement, dependencies, coalescing
# ---------------------------------------------------------------------------


class TestBusAsync:
    def _bus(self):
        return Bus(SUPERCOMPUTER_NODE, VirtualClock())

    def test_sync_category_leaves_other_traffic_in_flight(self):
        bus = self._bus()
        h = bus.h2d(0, 1 << 20)
        p = bus.p2p(1, 2, 64 << 20)  # long peer copy
        assert p.end > h.end
        waited = bus.sync_category(CATEGORY_CPU_GPU)
        assert waited == pytest.approx(h.end)
        assert bus.clock.now == pytest.approx(h.end)
        # The peer copy is still pending; a later category sync takes it.
        assert [t.kind for t in bus.pending] == ["p2p"]
        bus.sync_category(CATEGORY_GPU_GPU)
        assert bus.pending_count() == 0
        assert bus.clock.now == pytest.approx(p.end)

    def test_sync_category_with_no_match_retires_finished(self):
        bus = self._bus()
        t = bus.h2d(0, 1024)
        bus.clock.advance_to(t.end + 1.0)
        assert bus.sync_category(CATEGORY_GPU_GPU) == 0.0
        assert bus.pending_count() == 0
        assert t in bus.completed

    def test_not_before_delays_transfer_start(self):
        bus = self._bus()
        t = bus.p2p(0, 1, 1024, not_before=7.5)
        assert t.start >= 7.5

    def test_category_override_rebuckets_host_legs(self):
        bus = self._bus()
        t = bus.d2h(0, 1024, category=CATEGORY_GPU_GPU)
        assert t.kind == "d2h"
        assert t.category == CATEGORY_GPU_GPU
        bus.sync_category(CATEGORY_GPU_GPU)
        assert bus.clock.elapsed_in(CATEGORY_GPU_GPU) == pytest.approx(t.end)

    def test_coalesce_runs_merges_adjacent_only(self):
        runs = [(0, 100), (100, 50), (200, 10), (210, 5), (400, 1)]
        assert Bus.coalesce_runs(runs) == [(0, 150), (200, 15), (400, 1)]
        # Input order does not matter; byte totals are conserved.
        shuffled = [(200, 10), (0, 100), (400, 1), (100, 50), (210, 5)]
        merged = Bus.coalesce_runs(shuffled)
        assert sum(n for _, n in merged) == sum(n for _, n in runs)
        assert merged == [(0, 150), (200, 15), (400, 1)]


# ---------------------------------------------------------------------------
# Timeline-attributing clock advance
# ---------------------------------------------------------------------------


class TestTimelineAdvance:
    def test_peer_transfer_under_kernel_is_hidden(self):
        p = Platform(DESKTOP_MACHINE, 2)
        p.enable_overlap_accounting()
        dev = p.devices[0]
        rec = dev.record_launch("k", KernelWork(flops=1), LaunchConfig(64), 1.0)
        rec.start = 0.0
        dev.busy_until = 1.0
        t = p.bus.p2p(0, 1, 1024)
        assert t.end < 1.0  # fits fully under the kernel
        p.timeline_advance(1.0)
        assert p.clock.elapsed_in(CATEGORY_KERNELS) == pytest.approx(1.0)
        assert p.clock.elapsed_in(CATEGORY_GPU_GPU) == 0.0
        assert p.clock.elapsed_in(CATEGORY_GPU_GPU_OVERLAPPED) == \
            pytest.approx(t.end - t.start)
        assert p.bus.pending_count() == 0  # retired

    def test_exposed_tail_lands_in_gpu_gpu(self):
        p = Platform(DESKTOP_MACHINE, 2)
        p.enable_overlap_accounting()
        dev = p.devices[0]
        rec = dev.record_launch("k", KernelWork(flops=1), LaunchConfig(64), 1e-5)
        rec.start = 0.0
        dev.busy_until = 1e-5
        t = p.bus.p2p(0, 1, 256 << 20)  # far outlives the kernel
        assert t.end > 1e-5
        p.timeline_advance(t.end)
        assert p.clock.elapsed_in(CATEGORY_KERNELS) == pytest.approx(1e-5)
        exposed = p.clock.elapsed_in(CATEGORY_GPU_GPU)
        hidden = p.clock.elapsed_in(CATEGORY_GPU_GPU_OVERLAPPED)
        assert exposed == pytest.approx(t.end - 1e-5)
        assert hidden == pytest.approx(1e-5 - t.start)
        # The clock never double-counts: buckets tile the advanced span.
        assert p.clock.now == pytest.approx(t.end)
        assert exposed + p.clock.elapsed_in(CATEGORY_KERNELS) == \
            pytest.approx(t.end)

    def test_past_target_only_retires(self):
        p = Platform(DESKTOP_MACHINE, 2)
        t = p.bus.p2p(0, 1, 1024)
        p.clock.advance_to(t.end + 1.0)
        assert p.timeline_advance(t.end) == 0.0
        assert p.bus.pending_count() == 0


# ---------------------------------------------------------------------------
# End-to-end: overlap changes timing only, never results
# ---------------------------------------------------------------------------


PARITY_CASES = [
    ("bfs", "supercomputer", 3),
    ("bfs", "desktop", 2),
    ("stencil", "supercomputer", 3),
    ("stencil", "desktop", 2),
    ("kmeans", "desktop", 2),
    ("md", "desktop", 2),
    ("shift_scale", "supercomputer", 3),
]


def _run_app(app, machine, ngpus, **kw):
    args = app.args_for("test")
    prog = repro.compile(app.source)
    run = prog.run(app.entry, args, machine=machine, ngpus=ngpus, **kw)
    return run, {name: np.array(args[name]) for name in app.outputs}


class TestBitIdenticalResults:
    @pytest.mark.parametrize("app_name,machine,ngpus", PARITY_CASES)
    def test_overlap_and_coalescing_preserve_results(self, app_name, machine,
                                                     ngpus):
        app = APPS[app_name]
        _, base = _run_app(app, machine, ngpus)
        for kw in ({"overlap": True}, {"coalesce": True},
                   {"overlap": True, "coalesce": True}):
            _, outs = _run_app(app, machine, ngpus, **kw)
            for name in base:
                assert np.array_equal(base[name], outs[name]), (name, kw)

    def test_overlap_reduces_exposed_comm_on_stencil(self):
        app = APPS["stencil"]
        off, _ = _run_app(app, "supercomputer", 3)
        on, _ = _run_app(app, "supercomputer", 3, overlap=True)
        assert on.breakdown.gpu_gpu < off.breakdown.gpu_gpu
        assert on.breakdown.gpu_gpu_overlapped > 0.0
        assert off.breakdown.gpu_gpu_overlapped == 0.0
        assert on.elapsed <= off.elapsed * (1 + 1e-9)

    def test_hidden_time_excluded_from_breakdown_total(self):
        app = APPS["stencil"]
        on, _ = _run_app(app, "supercomputer", 3, overlap=True)
        bd = on.breakdown
        assert bd.gpu_gpu_overlapped > 0.0
        assert bd.total == pytest.approx(
            bd.kernels + bd.cpu_gpu + bd.gpu_gpu + bd.other)
        # 'other' may round to a denormal negative after the segment
        # sweep's many tiny advances; it must not go materially negative
        # (that would mean hidden time leaked into the clock).
        assert bd.other >= -1e-12

    def test_interior_boundary_split_records_sublaunches(self):
        app = APPS["stencil"]
        on, _ = _run_app(app, "supercomputer", 3, overlap=True)
        names = {l.kernel_name for d in on.platform.devices
                 for l in d.launches}
        assert any(n.endswith("[int]") for n in names)
        assert any(n.endswith("[bnd]") for n in names)

    def test_sync_mode_untouched_by_default(self):
        # The default path must match the seed behavior exactly: no
        # overlap accounting, no comm streams populated, no split
        # launches.
        app = APPS["stencil"]
        off, _ = _run_app(app, "supercomputer", 3)
        assert off.platform.bus.advancer is None
        assert all(not s.ops for s in off.executor.comm.streams)
        assert not any(l.kernel_name.endswith(("[int]", "[bnd]"))
                       for d in off.platform.devices for l in d.launches)


# ---------------------------------------------------------------------------
# Transfer coalescing
# ---------------------------------------------------------------------------


class TestCoalescing:
    def _run_bfs(self, coalesce):
        app = APPS["bfs"]
        args = app.args_for("test")
        prog = repro.compile(app.source)
        # Small chunks force many adjacent dirty chunks per level.
        run = prog.run(app.entry, args, machine="desktop", ngpus=2,
                       chunk_bytes=1 << 10, coalesce=coalesce)
        return run, {name: np.array(args[name]) for name in app.outputs}

    def test_fewer_transactions_same_bytes(self):
        off, base = self._run_bfs(False)
        on, outs = self._run_bfs(True)
        assert on.executor.comm.transactions < off.executor.comm.transactions
        assert on.executor.comm.transactions_coalesced_away > 0
        assert on.executor.comm.bytes_replica == \
            off.executor.comm.bytes_replica
        for name in base:
            assert np.array_equal(base[name], outs[name]), name
        # Fewer per-DMA latencies -> no slower end to end.
        assert on.elapsed <= off.elapsed * (1 + 1e-9)


# ---------------------------------------------------------------------------
# Compilation cache
# ---------------------------------------------------------------------------


class TestCompileCache:
    def setup_method(self):
        clear_compile_cache()

    def teardown_method(self):
        clear_compile_cache()

    def test_hit_returns_identical_program(self):
        src = APPS["bfs"].source
        a = compile_source(src)
        b = compile_source(src)
        assert a is b
        assert compile_cache_stats["hits"] == 1
        assert compile_cache_stats["misses"] == 1

    def test_options_participate_in_key(self):
        src = APPS["kmeans"].source
        a = compile_source(src)
        b = compile_source(src, CompileOptions(layout_transform=False))
        c = compile_source(src, CompileOptions(layout_transform=False))
        assert a is not b
        assert b is c

    def test_cache_false_bypasses(self):
        src = APPS["md"].source
        a = compile_source(src)
        b = compile_source(src, cache=False)
        assert a is not b
        assert compile_cache_stats["hits"] == 0

    def test_clear_forgets(self):
        src = APPS["md"].source
        a = compile_source(src)
        clear_compile_cache()
        b = compile_source(src)
        assert a is not b

    def test_hit_is_measurably_faster(self):
        src = APPS["bfs"].source
        clear_compile_cache()
        t0 = time.perf_counter()
        compile_source(src)
        miss = time.perf_counter() - t0
        t0 = time.perf_counter()
        compile_source(src)
        hit = time.perf_counter() - t0
        # A hit is a dict lookup; a miss parses + vectorizes.  Even on a
        # noisy machine an order of magnitude separates them; assert a
        # conservative 2x.
        assert hit < miss / 2

    def test_cached_program_runs_are_independent(self):
        # Two runs off one cached program must not share runtime state.
        app = APPS["kmeans"]
        prog = repro.compile(app.source)
        args1 = app.args_for("test")
        args2 = app.args_for("test")
        r1 = prog.run(app.entry, args1, machine="desktop", ngpus=2)
        r2 = prog.run(app.entry, args2, machine="desktop", ngpus=2)
        assert r1.elapsed == pytest.approx(r2.elapsed)
        for name in app.outputs:
            assert np.array_equal(args1[name], args2[name])
