"""Shared helper functions for the test suite."""

from __future__ import annotations

import numpy as np

import repro


def run_source(src, args, ngpus=1, machine="desktop", engine="vector",
               entry=None, options=None, **run_kw):
    """Compile + run, returning (mutated args, ProgramRun)."""
    prog = repro.compile(src, options)
    if entry is None:
        entry = prog.compiled.program.functions[0].name
    args = dict(args)
    run = prog.run(entry, args, machine=machine, ngpus=ngpus, engine=engine,
                   **run_kw)
    return args, run


def compare_engines(src, make_args, ngpus_list=(1, 2), machine="desktop",
                    entry=None, outputs=None, rtol=1e-5, atol=1e-6):
    """Run vectorized vs interpreter engines; assert identical effects.

    ``make_args`` is a zero-argument callable producing a fresh argument
    dict (arrays are mutated in place).  ``outputs`` defaults to every
    array argument.
    """
    results = {}
    for engine in ("vector", "interp"):
        for ngpus in ngpus_list:
            args, _ = run_source(src, make_args(), ngpus=ngpus,
                                 machine=machine, engine=engine, entry=entry)
            results[(engine, ngpus)] = args
    base = results[("vector", ngpus_list[0])]
    names = outputs or [k for k, v in base.items()
                        if isinstance(v, np.ndarray)]
    for key, args in results.items():
        for name in names:
            np.testing.assert_allclose(
                args[name], base[name], rtol=rtol, atol=atol,
                err_msg=f"{name} differs for engine/ngpus={key}")
    return base


