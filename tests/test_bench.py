"""Benchmark-harness tests: the regenerated artifacts carry the paper's
qualitative structure even at the small 'test' workload."""

import pytest

from repro.apps import ALL_APPS
from repro.bench import (
    fig7,
    fig8,
    fig9,
    render_fig7,
    render_fig8,
    render_fig9,
    render_table1,
    render_table2,
    run_version,
    table1,
    table2,
)

SMALL = {"md": ALL_APPS["md"]}


class TestVersionRunner:
    @pytest.mark.parametrize("version,ngpus", [("openmp", 1), ("pgi", 1),
                                               ("cuda", 1), ("proposal", 2)])
    def test_runs_with_check(self, version, ngpus):
        r = run_version(ALL_APPS["md"], version, "desktop", ngpus=ngpus,
                        workload="tiny", check=True)
        assert r.elapsed > 0
        assert r.label in ("OpenMP", "PGI(1)", "CUDA(1)", "Proposal(2)")

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            run_version(ALL_APPS["md"], "magic", "desktop")

    def test_proposal_reports_memory(self):
        r = run_version(ALL_APPS["bfs"], "proposal", "desktop", ngpus=2,
                        workload="tiny")
        assert r.mem_user > 0 and r.mem_system > 0


class TestFig7:
    def test_structure(self):
        rows = fig7("desktop", apps=SMALL, workload="test")
        assert len(rows) == 1
        row = rows[0]
        assert row.relative["OpenMP"] == 1.0
        for label in ("PGI(1)", "CUDA(1)", "Proposal(1)", "Proposal(2)"):
            assert label in row.relative

    def test_supercomputer_has_three_gpus(self):
        rows = fig7("supercomputer", apps=SMALL, workload="test")
        assert "Proposal(3)" in rows[0].relative

    def test_render(self):
        text = render_fig7(fig7("desktop", apps=SMALL, workload="test"))
        assert "md" in text and "Proposal(2)" in text


class TestFig8:
    def test_normalized_to_single_gpu(self):
        rows = fig8("desktop", apps=SMALL, workload="test")
        one = next(r for r in rows if r.ngpus == 1)
        assert one.total == pytest.approx(1.0, rel=1e-6)

    def test_md_has_no_gpu_gpu_bucket(self):
        rows = fig8("desktop", apps=SMALL, workload="test")
        assert all(r.gpu_gpu == 0.0 for r in rows)

    def test_render(self):
        text = render_fig8(fig8("desktop", apps=SMALL, workload="test"))
        assert "KERNELS" in text


class TestFig9:
    def test_normalized(self):
        rows = fig9("desktop", apps=SMALL, workload="test")
        one = next(r for r in rows if r.ngpus == 1)
        assert one.total == pytest.approx(1.0, rel=1e-6)

    def test_user_memory_grows_slowly(self):
        rows = fig9("desktop", apps=SMALL, workload="test")
        two = next(r for r in rows if r.ngpus == 2)
        assert two.user < 1.5  # far from 2.0 = full replication

    def test_render(self):
        text = render_fig9(fig9("desktop", apps=SMALL, workload="test"))
        assert "System" in text


class TestTables:
    def test_table1_lists_both_machines(self):
        rows = table1()
        names = [r.machine for r in rows]
        assert any("Desktop" in n for n in names)
        assert any("TSUBAME" in n or "Supercomputer" in n for n in names)
        text = render_table1(rows)
        assert "Tesla C2075" in text

    def test_table2_matches_paper_columns(self):
        rows = table2(workload="tiny")
        by_app = {r.app: r for r in rows}
        # Column B (parallel loops) and D (localaccess fractions) must
        # match the paper exactly; they are structural.
        for app, row in by_app.items():
            assert row.parallel_loops == row.paper_parallel_loops, app
            assert row.localaccess == row.paper_localaccess, app
        # Column A recomputed from the paper's input shapes must land
        # within 10% of the reported MB.
        for app, row in by_app.items():
            assert row.computed_paper_mb == pytest.approx(
                row.paper_mb, rel=0.10), app

    def test_table2_render(self):
        text = render_table2(table2(workload="tiny"))
        assert "kddcup" in text and "2/5" in text


class TestBenchCli:
    def test_main_prints_all_tables(self, capsys):
        from repro.bench.__main__ import main

        rc = main(["--workload", "tiny", "--machine", "desktop"])
        assert rc == 0
        out = capsys.readouterr().out
        for marker in ("Table I", "Table II", "Fig. 7", "Fig. 8", "Fig. 9"):
            assert marker in out
