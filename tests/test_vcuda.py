"""Virtual CUDA platform tests: clock, memory, device, bus, streams."""

import numpy as np
import pytest

from repro.vcuda import (
    Bus,
    CATEGORY_CPU_GPU,
    CATEGORY_GPU_GPU,
    CATEGORY_KERNELS,
    DESKTOP_MACHINE,
    Device,
    Event,
    KernelWork,
    LaunchConfig,
    OutOfDeviceMemory,
    Platform,
    Profiler,
    PURPOSE_SYSTEM,
    PURPOSE_USER,
    Stream,
    SUPERCOMPUTER_NODE,
    TESLA_C2075,
    VirtualClock,
)
from repro.vcuda.memory import DeviceMemory


class TestClock:
    def test_advance(self):
        c = VirtualClock()
        assert c.advance(1.5) == 1.5
        assert c.now == 1.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_categories_accumulate(self):
        c = VirtualClock()
        c.advance(1.0, "A")
        c.advance(2.0, "A")
        c.advance(0.5, "B")
        assert c.elapsed_in("A") == 3.0
        assert c.elapsed_in("B") == 0.5

    def test_advance_to_past_is_noop(self):
        c = VirtualClock()
        c.advance(5.0)
        c.advance_to(3.0, "X")
        assert c.now == 5.0
        assert c.elapsed_in("X") == 0.0

    def test_advance_to_future(self):
        c = VirtualClock()
        c.advance_to(2.0, "X")
        assert c.now == 2.0 and c.elapsed_in("X") == 2.0

    def test_reset(self):
        c = VirtualClock()
        c.advance(1.0, "A")
        c.reset()
        assert c.now == 0.0 and c.elapsed_in("A") == 0.0


class TestDeviceMemory:
    def make(self, cap=1 << 20):
        return DeviceMemory(0, cap)

    def test_alloc_and_shape(self):
        m = self.make()
        b = m.alloc("x", 100, np.float32)
        assert b.data.shape == (100,)
        assert b.nbytes == 400
        assert m.live_bytes == 400

    def test_fill(self):
        b = self.make().alloc("x", 10, np.int32, fill=7)
        assert (b.data == 7).all()

    def test_capacity_enforced(self):
        m = self.make(cap=100)
        with pytest.raises(OutOfDeviceMemory):
            m.alloc("big", 1000, np.float64)

    def test_free_releases(self):
        m = self.make()
        b = m.alloc("x", 100, np.float32)
        m.free(b)
        assert m.live_bytes == 0
        assert b.freed

    def test_use_after_free_guarded(self):
        m = self.make()
        b = m.alloc("x", 4, np.float32)
        m.free(b)
        with pytest.raises(RuntimeError):
            b.view()

    def test_double_free_guarded(self):
        m = self.make()
        b = m.alloc("x", 4, np.float32)
        m.free(b)
        with pytest.raises(RuntimeError):
            m.free(b)

    def test_purpose_accounting(self):
        m = self.make()
        m.alloc("u", 100, np.float32, purpose=PURPOSE_USER)
        m.alloc("s", 50, np.float32, purpose=PURPOSE_SYSTEM)
        assert m.live_bytes_of(PURPOSE_USER) == 400
        assert m.live_bytes_of(PURPOSE_SYSTEM) == 200

    def test_high_water_survives_free(self):
        m = self.make()
        b = m.alloc("u", 100, np.float32)
        m.free(b)
        assert m.high_water_of(PURPOSE_USER) == 400
        assert m.live_bytes == 0

    def test_unknown_purpose_rejected(self):
        with pytest.raises(ValueError):
            self.make().alloc("x", 4, np.float32, purpose="wat")

    def test_alloc_like_copies(self):
        m = self.make()
        host = np.arange(8, dtype=np.float32)
        b = m.alloc_like("x", host)
        assert (b.data == host).all()

    def test_free_all(self):
        m = self.make()
        m.alloc("a", 10, np.float32)
        m.alloc("b", 10, np.float32)
        m.free_all()
        assert m.live_bytes == 0


class TestDeviceTiming:
    def dev(self):
        return Device(0, TESLA_C2075)

    def test_launch_overhead_floor(self):
        t = self.dev().kernel_time(KernelWork(), LaunchConfig(1))
        assert t >= TESLA_C2075.launch_overhead

    def test_compute_bound_scales_with_flops(self):
        d = self.dev()
        cfg = LaunchConfig.for_tasks(1 << 20)
        t1 = d.kernel_time(KernelWork(flops=1e9), cfg)
        t2 = d.kernel_time(KernelWork(flops=2e9), cfg)
        assert t2 > t1
        assert (t2 - TESLA_C2075.launch_overhead) == pytest.approx(
            2 * (t1 - TESLA_C2075.launch_overhead))

    def test_roofline_max_not_sum(self):
        d = self.dev()
        cfg = LaunchConfig.for_tasks(1 << 20)
        t_c = d.kernel_time(KernelWork(flops=1e9), cfg)
        t_m = d.kernel_time(KernelWork(coalesced_bytes=1e9), cfg)
        t_both = d.kernel_time(
            KernelWork(flops=1e9, coalesced_bytes=1e9), cfg)
        assert t_both == pytest.approx(max(t_c, t_m), rel=1e-9)

    def test_random_slower_than_coalesced(self):
        d = self.dev()
        cfg = LaunchConfig.for_tasks(1 << 20)
        t_r = d.kernel_time(KernelWork(random_bytes=1e8), cfg)
        t_c = d.kernel_time(KernelWork(coalesced_bytes=1e8), cfg)
        assert t_r > t_c

    def test_small_grid_occupancy_penalty(self):
        d = self.dev()
        work = KernelWork(flops=1e8)
        t_small = d.kernel_time(work, LaunchConfig(grid_dim=2))
        t_big = d.kernel_time(work, LaunchConfig(grid_dim=256))
        assert t_small > t_big

    def test_serialization_factor(self):
        d = self.dev()
        cfg = LaunchConfig.for_tasks(1 << 20)
        t1 = d.kernel_time(KernelWork(flops=1e9), cfg)
        t2 = d.kernel_time(KernelWork(flops=1e9, serialization=2.0), cfg)
        assert t2 > t1

    def test_work_scaled(self):
        w = KernelWork(flops=2, coalesced_bytes=3).scaled(10)
        assert w.flops == 20 and w.coalesced_bytes == 30

    def test_work_add(self):
        w = KernelWork(flops=1, serialization=2.0) + KernelWork(flops=2)
        assert w.flops == 3 and w.serialization == 2.0

    def test_launch_config_for_tasks(self):
        cfg = LaunchConfig.for_tasks(1000, block_dim=256)
        assert cfg.grid_dim == 4
        assert LaunchConfig.for_tasks(0).grid_dim == 1


class TestBus:
    def make(self, machine=DESKTOP_MACHINE):
        clock = VirtualClock()
        return Bus(machine, clock), clock

    def test_h2d_duration(self):
        bus, clock = self.make()
        bus.h2d(0, 5_800_000)  # 1ms at 5.8 GB/s + latency
        dt = bus.sync()
        assert dt == pytest.approx(0.001 + bus.spec.latency, rel=1e-6)

    def test_zero_byte_transfer_free(self):
        bus, _ = self.make()
        t = bus.h2d(0, 0)
        assert t.seconds == 0.0

    def test_parallel_links_overlap(self):
        bus, _ = self.make()
        bus.h2d(0, 5_800_000)
        bus.h2d(1, 5_800_000)
        dt = bus.sync()
        # Desktop hub has 20 GB/s uplink: near-full overlap.
        assert dt < 0.0016

    def test_same_link_serializes(self):
        bus, _ = self.make()
        bus.h2d(0, 5_800_000)
        bus.h2d(0, 5_800_000)
        dt = bus.sync()
        assert dt > 0.002

    def test_hub_contention_on_supercomputer(self):
        bus, _ = self.make(SUPERCOMPUTER_NODE)
        # GPUs 0 and 1 share hub 0 (uplink 10 GB/s vs 5.6 per link).
        bus.h2d(0, 5_600_000)
        bus.h2d(1, 5_600_000)
        both = bus.sync()
        bus2, _ = self.make(SUPERCOMPUTER_NODE)
        bus2.h2d(0, 5_600_000)
        one = bus2.sync()
        assert both > one * 1.2

    def test_p2p_cross_hub_slower(self):
        bus, _ = self.make(SUPERCOMPUTER_NODE)
        bus.p2p(0, 1, 10_000_000)  # same hub
        same = bus.sync()
        bus.p2p(0, 2, 10_000_000)  # cross hub
        cross = bus.sync()
        assert cross > same * 1.5

    def test_p2p_same_device_rejected(self):
        bus, _ = self.make()
        with pytest.raises(ValueError):
            bus.p2p(0, 0, 4)

    def test_device_range_checked(self):
        bus, _ = self.make()
        with pytest.raises(ValueError):
            bus.h2d(5, 4)

    def test_categories(self):
        bus, clock = self.make()
        bus.h2d(0, 1000)
        bus.sync()
        assert clock.elapsed_in(CATEGORY_CPU_GPU) > 0
        bus.p2p(0, 1, 1000)
        bus.sync()
        assert clock.elapsed_in(CATEGORY_GPU_GPU) > 0

    def test_mixed_batch_requires_explicit_category(self):
        bus, _ = self.make()
        bus.h2d(0, 1000)
        bus.p2p(0, 1, 1000)
        with pytest.raises(ValueError):
            bus.sync()

    def test_bytes_moved(self):
        bus, _ = self.make()
        bus.h2d(0, 100)
        bus.d2h(0, 50)
        bus.sync()
        assert bus.bytes_moved() == 150
        assert bus.bytes_moved("h2d") == 100

    def test_sync_empty_is_zero(self):
        bus, _ = self.make()
        assert bus.sync() == 0.0


class TestStream:
    def test_in_order_execution(self):
        clock = VirtualClock()
        s = Stream(0, clock)
        s.enqueue("a", 1.0)
        end = s.enqueue("b", 2.0)
        assert end == 3.0

    def test_event_ordering(self):
        clock = VirtualClock()
        s1 = Stream(0, clock)
        s2 = Stream(1, clock)
        s1.enqueue("produce", 2.0)
        ev = s1.record_event()
        s2.wait_event(ev)
        end = s2.enqueue("consume", 1.0)
        assert end == 3.0

    def test_unrecorded_event_rejected(self):
        clock = VirtualClock()
        s = Stream(0, clock)
        with pytest.raises(RuntimeError):
            s.wait_event(Event())

    def test_synchronize_advances_clock(self):
        clock = VirtualClock()
        s = Stream(0, clock)
        s.enqueue("op", 1.5)
        s.synchronize()
        assert clock.now == 1.5

    def test_event_query(self):
        clock = VirtualClock()
        s = Stream(0, clock)
        s.enqueue("op", 1.0)
        ev = s.record_event()
        assert not ev.query(clock)
        s.synchronize()
        assert ev.query(clock)


class TestPlatform:
    def test_kernels_overlap_across_devices(self):
        p = Platform(DESKTOP_MACHINE, 2)
        work = KernelWork(flops=1e9)
        cfg = LaunchConfig.for_tasks(1 << 20)
        t0 = p.launch(0, "k", lambda: None, (), work, cfg)
        p.launch(1, "k", lambda: None, (), work, cfg)
        total = p.sync_devices()
        assert total == pytest.approx(t0, rel=1e-6)

    def test_same_device_serializes(self):
        p = Platform(DESKTOP_MACHINE, 1)
        work = KernelWork(flops=1e9)
        cfg = LaunchConfig.for_tasks(1 << 20)
        t0 = p.launch(0, "k", lambda: None, (), work, cfg)
        p.launch(0, "k", lambda: None, (), work, cfg)
        total = p.sync_devices()
        assert total == pytest.approx(2 * t0, rel=1e-6)

    def test_launch_runs_fn(self):
        p = Platform(DESKTOP_MACHINE, 1)
        hit = []
        p.launch(0, "k", lambda x: hit.append(x), (42,),
                 KernelWork(flops=1), LaunchConfig(1))
        assert hit == [42]

    def test_memcpy_roundtrip(self):
        p = Platform(DESKTOP_MACHINE, 1)
        buf = p.malloc(0, "x", 16, np.float32)
        src = np.arange(16, dtype=np.float32)
        p.memcpy_h2d(buf, src)
        out = np.empty(16, dtype=np.float32)
        p.memcpy_d2h(out, buf)
        assert (out == src).all()
        assert p.elapsed() > 0

    def test_memcpy_p2p_slice(self):
        p = Platform(DESKTOP_MACHINE, 2)
        a = p.malloc(0, "a", 10, np.float32, fill=3)
        b = p.malloc(1, "b", 10, np.float32, fill=0)
        p.memcpy_p2p(b, a, dst_slice=slice(0, 5), src_slice=slice(5, 10))
        p.bus.sync()
        assert (b.data[:5] == 3).all() and (b.data[5:] == 0).all()

    def test_ngpus_validation(self):
        with pytest.raises(ValueError):
            Platform(DESKTOP_MACHINE, 3)
        with pytest.raises(ValueError):
            Platform(DESKTOP_MACHINE, 0)

    def test_memory_usage_sums_devices(self):
        p = Platform(DESKTOP_MACHINE, 2)
        p.malloc(0, "a", 100, np.float32)
        p.malloc(1, "b", 100, np.float32)
        assert p.memory_usage() == 800
        assert p.memory_usage(PURPOSE_USER) == 800

    def test_profiler_regions(self):
        p = Platform(DESKTOP_MACHINE, 1)
        prof = Profiler(p.clock)
        prof.begin_region()
        p.launch(0, "k", lambda: None, (), KernelWork(flops=1e9),
                 LaunchConfig.for_tasks(1 << 20))
        p.sync_devices()
        bd = prof.end_region()
        assert bd.kernels > 0 and bd.cpu_gpu == 0

    def test_breakdown_normalization(self):
        p = Platform(DESKTOP_MACHINE, 1)
        p.launch(0, "k", lambda: None, (), KernelWork(flops=1e9),
                 LaunchConfig.for_tasks(1 << 20))
        p.sync_devices()
        bd = p.profiler.snapshot()
        nb = bd.normalized_to(bd.total)
        assert nb.total == pytest.approx(1.0)
        with pytest.raises(ValueError):
            bd.normalized_to(0.0)
