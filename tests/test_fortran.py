"""Fortran frontend tests: lowering, directives, and end-to-end runs
through the shared compiler/runtime pipeline."""

import numpy as np
import pytest

import repro
from repro.frontend import cast as C
from repro.frontend.fortran import FortranError, parse_fortran
from repro.translator.array_config import Placement, WriteHandling


def run_f(src, args, ngpus=1, engine="vector", entry=None):
    prog = repro.compile_fortran(src)
    if entry is None:
        entry = prog.compiled.program.functions[0].name
    args = dict(args)
    run = prog.run(entry, args, machine="desktop", ngpus=ngpus,
                   engine=engine)
    return args, run, prog


SAXPY_F = """
subroutine saxpy(n, a, x, y)
  integer :: n
  real :: a
  real :: x(n), y(n)
  integer :: i
  !$acc data copyin(x[0:n]) copy(y[0:n])
  !$acc parallel
  !$acc localaccess x[stride(1)] y[stride(1)]
  !$acc loop gang
  do i = 1, n
    y(i) = a * x(i) + y(i)
  end do
  !$acc end parallel
  !$acc end data
end subroutine saxpy
"""


class TestLowering:
    def test_subscripts_become_zero_based(self):
        prog = parse_fortran(SAXPY_F)
        f = prog.function("saxpy")
        subs = [e for e in C.all_exprs(f.body) if isinstance(e, C.Index)]
        # x(i) -> x[i-1]
        for s in subs:
            idx = s.indices[0]
            assert isinstance(idx, C.BinOp) and idx.op == "-"

    def test_do_loop_becomes_canonical_for(self):
        prog = parse_fortran(SAXPY_F)
        loops = [s for s in C.walk(prog.function("saxpy").body)
                 if isinstance(s, C.For)]
        assert len(loops) == 1
        assert loops[0].cond.op == "<="

    def test_declarations(self):
        src = """
        subroutine t(n, x)
          integer :: n
          real :: x(n)
          double precision :: d
          integer :: counter = 0
          real :: scratch(2 * n)
        end subroutine t
        """
        prog = parse_fortran(src)
        f = prog.function("t")
        assert f.params[1].ctype.pointers == 1
        decls = {s.name: s for s in C.walk(f.body) if isinstance(s, C.Decl)}
        assert decls["d"].ctype.base == "double"
        assert decls["counter"].init.value == 0
        assert decls["scratch"].ctype.is_array

    def test_undeclared_dummy_rejected(self):
        src = """
        subroutine t(n)
        end subroutine t
        """
        with pytest.raises(FortranError):
            parse_fortran(src)

    def test_operators(self):
        src = """
        subroutine ops(n, x, y)
          integer :: n
          real :: x(n), y(n)
          integer :: i
          !$acc parallel loop
          do i = 1, n
            if (x(i) .gt. 0.0 .and. x(i) .lt. 10.0) then
              y(i) = x(i) ** 2
            else
              y(i) = abs(x(i)) + mod(i, 3)
            end if
          end do
        end subroutine ops
        """
        x = np.array([2.0, -3.0, 20.0], dtype=np.float32)
        args, _, _ = run_f(src, {"n": 3, "x": x,
                                 "y": np.zeros(3, np.float32)}, ngpus=2)
        # i is 1-based: mod(1,3)=1, mod(2,3)=2, mod(3,3)=0.
        np.testing.assert_allclose(args["y"], [4.0, 3.0 + 2, 20.0 + 0])

    def test_continuation_lines(self):
        src = """
        subroutine t(n, x)
          integer :: n
          real :: x(n)
          integer :: i
          !$acc parallel loop
          do i = 1, n
            x(i) = 1.0 + &
                   2.0
          end do
        end subroutine t
        """
        args, _, _ = run_f(src, {"n": 4, "x": np.zeros(4, np.float32)})
        assert (args["x"] == 3.0).all()

    def test_comments_stripped(self):
        src = """
        ! leading comment
        subroutine t(n, x)   ! trailing
          integer :: n
          real :: x(n)       ! arrays
          integer :: i
          !$acc parallel loop
          do i = 1, n
            x(i) = 5.0       ! set
          end do
        end subroutine t
        """
        args, _, _ = run_f(src, {"n": 2, "x": np.zeros(2, np.float32)})
        assert (args["x"] == 5.0).all()


class TestEndToEnd:
    def test_saxpy_multi_gpu(self):
        n = 1000
        x = np.arange(n, dtype=np.float32)
        y = np.ones(n, dtype=np.float32)
        args, run, prog = run_f(SAXPY_F, {"n": n, "a": 2.0, "x": x, "y": y},
                                ngpus=2)
        np.testing.assert_allclose(args["y"], 2 * np.arange(n) + 1)
        # The re-based window still proves writes local: no miss checks.
        cfg = prog.kernel("saxpy_L0").config.arrays["y"]
        assert cfg.write_handling == WriteHandling.LOCAL_PROVEN
        assert cfg.placement == Placement.DISTRIBUTED

    def test_engines_agree(self):
        n = 257
        base = None
        for engine in ("vector", "interp"):
            x = np.linspace(-3, 3, n).astype(np.float32)
            y = np.ones(n, dtype=np.float32)
            args, _, _ = run_f(SAXPY_F, {"n": n, "a": 1.5, "x": x, "y": y},
                               ngpus=2, engine=engine)
            if base is None:
                base = args["y"].copy()
            else:
                np.testing.assert_allclose(args["y"], base)

    def test_reduction(self):
        src = """
        subroutine total(n, x, result)
          integer :: n
          real :: x(n)
          real :: result(1)
          real :: acc = 0.0
          integer :: i
          !$acc parallel
          !$acc loop gang reduction(+:acc)
          do i = 1, n
            acc = acc + x(i)
          end do
          !$acc end parallel
          result(1) = acc
        end subroutine total
        """
        x = np.arange(100, dtype=np.float32)
        out = np.zeros(1, dtype=np.float32)
        args, _, _ = run_f(src, {"n": 100, "x": x, "result": out}, ngpus=2)
        assert args["result"][0] == pytest.approx(x.sum())

    def test_stencil_with_halo(self):
        src = """
        subroutine smooth(n, a, b)
          integer :: n
          real :: a(n), b(n)
          integer :: i
          !$acc parallel
          !$acc localaccess a[stride(1, 1, 1)] b[stride(1)]
          !$acc loop gang
          do i = 1, n
            if (i > 1 .and. i < n) then
              b(i) = (a(i - 1) + a(i) + a(i + 1)) / 3.0
            else
              b(i) = a(i)
            end if
          end do
          !$acc end parallel
        end subroutine smooth
        """
        n = 64
        a = np.arange(n, dtype=np.float32)
        args, run, _ = run_f(src, {"n": n, "a": a,
                                   "b": np.zeros(n, np.float32)}, ngpus=2)
        expect = a.copy()
        expect[1:-1] = (a[:-2] + a[1:-1] + a[2:]) / np.float32(3.0)
        np.testing.assert_allclose(args["b"], expect, rtol=1e-6)

    def test_host_do_while_and_iterative_kernels(self):
        src = """
        subroutine iterate(n, x, steps)
          integer :: n, steps
          real :: x(n)
          integer :: i
          integer :: s = 0
          !$acc data copy(x[0:n])
          do while (s < steps)
            !$acc parallel loop
            do i = 1, n
              x(i) = x(i) + 1.0
            end do
            s = s + 1
          end do
          !$acc end data
        end subroutine iterate
        """
        x = np.zeros(16, dtype=np.float32)
        args, run, _ = run_f(src, {"n": 16, "x": x, "steps": 5}, ngpus=2)
        assert (args["x"] == 5.0).all()
        assert len(run.loop_stats) == 5

    def test_exit_and_cycle_on_host(self):
        src = """
        subroutine count(n, out)
          integer :: n
          integer :: out(1)
          integer :: i
          integer :: total = 0
          do i = 1, n
            if (mod(i, 2) == 0) then
              cycle
            end if
            if (i > 7) then
              exit
            end if
            total = total + 1
          end do
          out(1) = total
        end subroutine count
        """
        out = np.zeros(1, dtype=np.int32)
        args, _, _ = run_f(src, {"n": 100, "out": out})
        assert args["out"][0] == 4  # 1, 3, 5, 7

    def test_reductiontoarray_from_fortran(self):
        src = """
        subroutine histo(n, nb, bins, w, hist)
          integer :: n, nb
          integer :: bins(n)
          real :: w(n), hist(nb)
          integer :: i
          !$acc parallel loop
          do i = 1, n
            !$acc reductiontoarray(+: hist[0:nb])
            hist(bins(i)) = hist(bins(i)) + w(i)
          end do
        end subroutine histo
        """
        # NOTE: plain 'a = a + v' on an array element is a compound
        # update after lowering?  It is not -- the translator requires
        # the compound form; Fortran has no +=, so the frontend must
        # recognize 'dest(e) = dest(e) + v' under a reductiontoarray
        # directive.  This test pins that behavior.
        bins = np.array([1, 2, 1, 3, 1], dtype=np.int32)  # 1-based bins
        w = np.array([1, 2, 3, 4, 5], dtype=np.float32)
        hist = np.zeros(3, dtype=np.float32)
        args, _, _ = run_f(src, {"n": 5, "nb": 3, "bins": bins, "w": w,
                                 "hist": hist}, ngpus=2)
        np.testing.assert_allclose(args["hist"], [9, 2, 4])


class TestErrors:
    def test_nonunit_step_rejected(self):
        src = """
        subroutine t(n, x)
          integer :: n
          real :: x(n)
          integer :: i
          do i = 1, n, 2
            x(i) = 1.0
          end do
        end subroutine t
        """
        with pytest.raises(FortranError):
            parse_fortran(src)

    def test_unbalanced_end(self):
        src = """
        subroutine t(n)
          integer :: n
          do i = 1, n
        end subroutine t
        """
        with pytest.raises(FortranError):
            parse_fortran(src)

    def test_multidim_array_rejected(self):
        src = """
        subroutine t(n, m)
          integer :: n
          real :: m(n)
          integer :: i
          do i = 1, n
            m(i, 2) = 1.0
          end do
        end subroutine t
        """
        with pytest.raises(FortranError):
            parse_fortran(src)


class TestFortranExpressions:
    def run_expr(self, expr, env):
        decls = "\n          ".join(
            f"real :: {k}" if isinstance(v, float) else f"integer :: {k}"
            for k, v in env.items())
        src = f"""
        subroutine f({', '.join(env)}, out)
          {decls}
          real :: out(1)
          out(1) = {expr}
        end subroutine f
        """
        out = np.zeros(1, dtype=np.float32)
        prog = repro.compile_fortran(src)
        prog.run("f", {**env, "out": out})
        return float(out[0])

    def test_power_operator(self):
        assert self.run_expr("a ** 3", {"a": 2.0}) == pytest.approx(8.0)

    def test_power_right_associative(self):
        assert self.run_expr("a ** 2 ** 3", {"a": 2.0}) == \
            pytest.approx(2.0 ** 8)

    def test_dot_comparisons_and_logicals(self):
        v = self.run_expr(
            "abs(a)", {"a": -4.5})
        assert v == pytest.approx(4.5)

    def test_d_exponent_literal(self):
        assert self.run_expr("1.5d0 * a", {"a": 2.0}) == pytest.approx(3.0)

    def test_e_exponent_literal(self):
        assert self.run_expr("2.5e1 + a", {"a": 0.5}) == pytest.approx(25.5)

    def test_intrinsics(self):
        assert self.run_expr("max(a, 2.0) + min(a, 2.0)", {"a": 5.0}) == \
            pytest.approx(7.0)
        assert self.run_expr("sqrt(a)", {"a": 16.0}) == pytest.approx(4.0)

    def test_integer_mod(self):
        assert self.run_expr("real(mod(k, 3))", {"k": 7}) == \
            pytest.approx(1.0)

    def test_unary_minus_precedence(self):
        assert self.run_expr("-a * 2.0", {"a": 3.0}) == pytest.approx(-6.0)

    def test_division(self):
        assert self.run_expr("a / 4.0", {"a": 10.0}) == pytest.approx(2.5)

    def test_single_line_if(self):
        src = """
        subroutine f(a, out)
          real :: a
          real :: out(1)
          out(1) = 0.0
          if (a > 1.0) out(1) = 9.0
        end subroutine f
        """
        out = np.zeros(1, dtype=np.float32)
        repro.compile_fortran(src).run("f", {"a": 2.0, "out": out})
        assert out[0] == 9.0

    def test_else_if_chain(self):
        src = """
        subroutine f(a, out)
          real :: a
          real :: out(1)
          if (a < 0.0) then
            out(1) = -1.0
          else if (a < 10.0) then
            out(1) = 1.0
          else
            out(1) = 2.0
          end if
        end subroutine f
        """
        prog = repro.compile_fortran(src)
        for val, want in ((-5.0, -1.0), (5.0, 1.0), (50.0, 2.0)):
            out = np.zeros(1, dtype=np.float32)
            prog.run("f", {"a": val, "out": out})
            assert out[0] == want, val

    def test_true_false_literals(self):
        src = """
        subroutine f(out)
          real :: out(1)
          integer :: flag = 0
          if (.true.) then
            flag = 1
          end if
          out(1) = real(flag)
        end subroutine f
        """
        out = np.zeros(1, dtype=np.float32)
        repro.compile_fortran(src).run("f", {"out": out})
        assert out[0] == 1.0
