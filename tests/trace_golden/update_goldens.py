"""Regenerate the recorded golden-trace summaries.

Run after an intentional change to the runtime's decision structure
(new events, different transfer batching, changed loop counts)::

    PYTHONPATH=src python tests/trace_golden/update_goldens.py

Then review the JSON diffs like any other golden update: every changed
count or byte total should be explainable by the change you made.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", ".."))
sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "..", "src"))

from repro.trace.golden import check_invariants, normalize  # noqa: E402

from tests.trace_golden.common import (  # noqa: E402
    CASES,
    CLUSTER_CASES,
    COLLECTIVE_CASES,
    GOLDEN_DIR,
    cluster_golden_path,
    collective_golden_path,
    golden_path,
    traced_cluster_run,
    traced_collective_run,
    traced_run,
)


def _write(path: str, summary: dict) -> None:
    with open(path, "w") as f:
        json.dump(summary, f, indent=1, sort_keys=False)
        f.write("\n")
    print(f"wrote {os.path.relpath(path)}")


def main() -> int:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for app, ngpus, fuse in CASES:
        run = traced_run(app, ngpus, fuse)
        check_invariants(run.tracer)
        _write(golden_path(app, ngpus, fuse), normalize(run.tracer))
    for app, nodes, gpus in CLUSTER_CASES:
        run = traced_cluster_run(app, nodes, gpus)
        check_invariants(run.tracer)
        _write(cluster_golden_path(app, nodes, gpus), normalize(run.tracer))
    for app, nodes, gpus, sched in COLLECTIVE_CASES:
        run = traced_collective_run(app, nodes, gpus, sched)
        check_invariants(run.tracer)
        _write(collective_golden_path(app, nodes, gpus, sched),
               normalize(run.tracer))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
