"""Shared machinery of the golden-trace tests and the update script."""

from __future__ import annotations

import functools
import json
import os

from repro.api import compile as compile_acc
from repro.apps import ALL_APPS, EXTRA_APPS
from repro.bench.machines import hypothetical_cluster, hypothetical_node
from repro.translator.compiler import CompileOptions
from repro.vcuda.specs import MACHINES

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")
GPU_COUNTS = (1, 2, 4)
APPS = dict(ALL_APPS) | dict(EXTRA_APPS)

#: Multi-node golden matrix: node x GPU-per-node topologies for two
#: representative apps (md: replica-heavy; jacobi: halo-heavy).  The
#: 1x2 row pins that a one-node cluster traces exactly like a node.
CLUSTER_TOPOLOGIES = ((1, 2), (2, 2), (2, 4))
CLUSTER_APPS = ("md", "jacobi")
CLUSTER_CASES = [(name, nodes, gpus) for name in CLUSTER_APPS
                 for nodes, gpus in CLUSTER_TOPOLOGIES]

#: Apps with a golden for the *fused* schedule too (the ones whose
#: schedule the fusion pass actually rewrites: merged launches, elided
#: transfer rounds).  Unfusable apps compile to the identical schedule
#: under ``fuse=True`` -- the determinism matrix pins that axis.
FUSED_APPS = ("gradpipe", "phasepipe")

CASES = [(name, g, False) for name in APPS for g in GPU_COUNTS] +         [(name, g, True) for name in FUSED_APPS for g in GPU_COUNTS]


def golden_path(app: str, ngpus: int, fuse: bool = False) -> str:
    suffix = "-fused" if fuse else ""
    return os.path.join(GOLDEN_DIR, f"{app}-{ngpus}gpu{suffix}.json")


def machine_for(ngpus: int):
    spec = MACHINES["desktop"]
    return spec if ngpus <= spec.gpu_count else hypothetical_node(ngpus)


@functools.lru_cache(maxsize=None)
def traced_run(app: str, ngpus: int, fuse: bool = False):
    """One traced tiny-workload run per case, cached per session."""
    spec = APPS[app]
    prog = compile_acc(spec.source, CompileOptions(fuse=True) if fuse
                       else None)
    return prog.run(spec.entry, spec.args_for("tiny"),
                    machine=machine_for(ngpus), ngpus=ngpus, trace=True)


def load_golden(app: str, ngpus: int, fuse: bool = False) -> dict:
    with open(golden_path(app, ngpus, fuse)) as f:
        return json.load(f)


def cluster_golden_path(app: str, nodes: int, gpus_per_node: int) -> str:
    return os.path.join(GOLDEN_DIR, f"{app}-{nodes}x{gpus_per_node}node.json")


@functools.lru_cache(maxsize=None)
def traced_cluster_run(app: str, nodes: int, gpus_per_node: int):
    """One traced tiny-workload cluster run per topology, cached."""
    spec = APPS[app]
    prog = compile_acc(spec.source)
    cluster = hypothetical_cluster(nodes, gpus_per_node)
    return prog.run(spec.entry, spec.args_for("tiny"), machine=cluster,
                    ngpus=cluster.gpu_count, trace=True)


def load_cluster_golden(app: str, nodes: int, gpus_per_node: int) -> dict:
    with open(cluster_golden_path(app, nodes, gpus_per_node)) as f:
        return json.load(f)


#: Collective-schedule golden matrix: the cluster apps on multi-node
#: topologies under the forced ring and tree schedules.  The legacy
#: ``collective="none"`` schedule keeps the CLUSTER_CASES goldens
#: above byte-for-byte -- these are additional files, never edits.
COLLECTIVE_SCHEDULES = ("ring", "tree")
COLLECTIVE_TOPOLOGIES = ((2, 2), (2, 4))
COLLECTIVE_CASES = [(name, nodes, gpus, sched) for name in CLUSTER_APPS
                    for nodes, gpus in COLLECTIVE_TOPOLOGIES
                    for sched in COLLECTIVE_SCHEDULES]


def collective_golden_path(app: str, nodes: int, gpus_per_node: int,
                           schedule: str) -> str:
    return os.path.join(
        GOLDEN_DIR, f"{app}-{nodes}x{gpus_per_node}node-{schedule}.json")


@functools.lru_cache(maxsize=None)
def traced_collective_run(app: str, nodes: int, gpus_per_node: int,
                          schedule: str):
    """One traced tiny-workload collective run per case, cached."""
    spec = APPS[app]
    prog = compile_acc(spec.source)
    cluster = hypothetical_cluster(nodes, gpus_per_node)
    return prog.run(spec.entry, spec.args_for("tiny"), machine=cluster,
                    ngpus=cluster.gpu_count, trace=True,
                    collective=schedule)


def load_collective_golden(app: str, nodes: int, gpus_per_node: int,
                           schedule: str) -> dict:
    with open(collective_golden_path(app, nodes, gpus_per_node,
                                     schedule)) as f:
        return json.load(f)
