"""Shared machinery of the golden-trace tests and the update script."""

from __future__ import annotations

import functools
import json
import os

from repro.api import compile as compile_acc
from repro.apps import ALL_APPS, EXTRA_APPS
from repro.bench.machines import hypothetical_node
from repro.vcuda.specs import MACHINES

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")
GPU_COUNTS = (1, 2, 4)
APPS = dict(ALL_APPS) | dict(EXTRA_APPS)
CASES = [(name, g) for name in APPS for g in GPU_COUNTS]


def golden_path(app: str, ngpus: int) -> str:
    return os.path.join(GOLDEN_DIR, f"{app}-{ngpus}gpu.json")


def machine_for(ngpus: int):
    spec = MACHINES["desktop"]
    return spec if ngpus <= spec.gpu_count else hypothetical_node(ngpus)


@functools.lru_cache(maxsize=None)
def traced_run(app: str, ngpus: int):
    """One traced tiny-workload run per (app, ngpus), cached per session."""
    spec = APPS[app]
    prog = compile_acc(spec.source)
    return prog.run(spec.entry, spec.args_for("tiny"),
                    machine=machine_for(ngpus), ngpus=ngpus, trace=True)


def load_golden(app: str, ngpus: int) -> dict:
    with open(golden_path(app, ngpus)) as f:
        return json.load(f)
