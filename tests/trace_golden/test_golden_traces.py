"""Golden-trace regression tests.

Every example app runs traced on 1/2/4 GPUs; the trace must (a) satisfy
the structural invariants every trace satisfies, (b) normalize to
exactly the recorded golden summary (counts, orderings, byte totals --
no timestamps, so cost-model changes don't churn these), and (c)
reconcile bit-exactly with the profiler's Fig. 8 breakdown.

Goldens live in ``goldens/``; regenerate intentionally with
``python tests/trace_golden/update_goldens.py`` and review the diff.
"""

from __future__ import annotations

import os

import pytest

from repro.trace.export import reconcile
from repro.trace.golden import check_invariants, diff, normalize

from .common import (
    CASES,
    CLUSTER_CASES,
    COLLECTIVE_CASES,
    cluster_golden_path,
    collective_golden_path,
    golden_path,
    load_cluster_golden,
    load_collective_golden,
    load_golden,
    traced_cluster_run,
    traced_collective_run,
    traced_run,
)

CASE_IDS = [f"{app}-{g}gpu" + ("-fused" if fuse else "")
            for app, g, fuse in CASES]
CLUSTER_IDS = [f"{app}-{n}x{g}node" for app, n, g in CLUSTER_CASES]
COLLECTIVE_IDS = [f"{app}-{n}x{g}node-{s}"
                  for app, n, g, s in COLLECTIVE_CASES]


@pytest.mark.parametrize(("app", "ngpus", "fuse"), CASES, ids=CASE_IDS)
def test_trace_invariants(app, ngpus, fuse):
    run = traced_run(app, ngpus, fuse)
    assert run.tracer is not None
    check_invariants(run.tracer)


@pytest.mark.parametrize(("app", "ngpus", "fuse"), CASES, ids=CASE_IDS)
def test_trace_matches_golden(app, ngpus, fuse):
    path = golden_path(app, ngpus, fuse)
    assert os.path.exists(path), (
        f"no golden for {app} ngpus={ngpus} fuse={fuse}; run "
        "tests/trace_golden/update_goldens.py")
    run = traced_run(app, ngpus, fuse)
    summary = normalize(run.tracer)
    problems = diff(summary, load_golden(app, ngpus, fuse))
    assert not problems, "\n".join(problems)


@pytest.mark.parametrize(("app", "ngpus", "fuse"), CASES, ids=CASE_IDS)
def test_trace_reconciles_with_breakdown(app, ngpus, fuse):
    """Fig. 8 accounting identity: traced category seconds equal the
    profiler's reported breakdown exactly (``other`` to float
    tolerance, being a subtraction in the profiler)."""
    run = traced_run(app, ngpus, fuse)
    rows = reconcile(run.tracer, run.breakdown)
    for bucket, row in rows.items():
        tol = 1e-9 if bucket == "other" else 0.0
        assert abs(row["residual"]) <= tol, (
            f"{bucket}: traced {row['traced']!r} != reported "
            f"{row['reported']!r}")


@pytest.mark.parametrize(("app", "ngpus", "fuse"), CASES, ids=CASE_IDS)
def test_trace_byte_totals_match_bus(app, ngpus, fuse):
    """Traced transfer bytes equal what the bus actually moved."""
    run = traced_run(app, ngpus, fuse)
    summary = normalize(run.tracer)
    bus = run.platform.bus
    for kind in ("h2d", "d2h", "p2p"):
        traced = summary["transfer_bytes"].get(kind, 0)
        assert traced == bus.bytes_moved(kind), (
            f"{kind}: traced {traced} != bus {bus.bytes_moved(kind)}")


# -- multi-node topologies ---------------------------------------------------


@pytest.mark.parametrize(("app", "nodes", "gpus"), CLUSTER_CASES,
                         ids=CLUSTER_IDS)
def test_cluster_trace_invariants(app, nodes, gpus):
    run = traced_cluster_run(app, nodes, gpus)
    assert run.tracer is not None
    check_invariants(run.tracer)


@pytest.mark.parametrize(("app", "nodes", "gpus"), CLUSTER_CASES,
                         ids=CLUSTER_IDS)
def test_cluster_trace_matches_golden(app, nodes, gpus):
    path = cluster_golden_path(app, nodes, gpus)
    assert os.path.exists(path), (
        f"no golden for {app} {nodes}x{gpus}node; run "
        "tests/trace_golden/update_goldens.py")
    run = traced_cluster_run(app, nodes, gpus)
    summary = normalize(run.tracer)
    problems = diff(summary, load_cluster_golden(app, nodes, gpus))
    assert not problems, "\n".join(problems)


@pytest.mark.parametrize(("app", "nodes", "gpus"), CLUSTER_CASES,
                         ids=CLUSTER_IDS)
def test_cluster_trace_reconciles_with_breakdown(app, nodes, gpus):
    """The Fig. 8 identity holds per node-extended bucket set: the NET
    lane reconciles exactly like the single-node categories."""
    run = traced_cluster_run(app, nodes, gpus)
    rows = reconcile(run.tracer, run.breakdown)
    for bucket, row in rows.items():
        tol = 1e-9 if bucket == "other" else 0.0
        assert abs(row["residual"]) <= tol, (
            f"{bucket}: traced {row['traced']!r} != reported "
            f"{row['reported']!r}")


@pytest.mark.parametrize(("app", "nodes", "gpus"), CLUSTER_CASES,
                         ids=CLUSTER_IDS)
def test_cluster_trace_byte_totals_match_bus(app, nodes, gpus):
    """Traced bytes equal bus bytes per kind, the NIC lane included."""
    run = traced_cluster_run(app, nodes, gpus)
    summary = normalize(run.tracer)
    bus = run.platform.bus
    for kind in ("h2d", "d2h", "p2p", "net"):
        traced = summary["transfer_bytes"].get(kind, 0)
        assert traced == bus.bytes_moved(kind), (
            f"{kind}: traced {traced} != bus {bus.bytes_moved(kind)}")
    if nodes > 1:
        assert summary["transfer_bytes"].get("net", 0) > 0, (
            "multi-node run never touched the NIC")


# -- collective schedules -----------------------------------------------------


@pytest.mark.parametrize(("app", "nodes", "gpus", "sched"),
                         COLLECTIVE_CASES, ids=COLLECTIVE_IDS)
def test_collective_trace_invariants(app, nodes, gpus, sched):
    run = traced_collective_run(app, nodes, gpus, sched)
    assert run.tracer is not None
    check_invariants(run.tracer)


@pytest.mark.parametrize(("app", "nodes", "gpus", "sched"),
                         COLLECTIVE_CASES, ids=COLLECTIVE_IDS)
def test_collective_trace_matches_golden(app, nodes, gpus, sched):
    path = collective_golden_path(app, nodes, gpus, sched)
    assert os.path.exists(path), (
        f"no golden for {app} {nodes}x{gpus}node-{sched}; run "
        "tests/trace_golden/update_goldens.py")
    run = traced_collective_run(app, nodes, gpus, sched)
    summary = normalize(run.tracer)
    problems = diff(summary, load_collective_golden(app, nodes, gpus, sched))
    assert not problems, "\n".join(problems)


@pytest.mark.parametrize(("app", "nodes", "gpus", "sched"),
                         COLLECTIVE_CASES, ids=COLLECTIVE_IDS)
def test_collective_trace_reconciles_with_breakdown(app, nodes, gpus, sched):
    """The Fig. 8 accounting identity survives collective scheduling:
    chunked pipelines and relayed hops still attribute every traced
    second to exactly one breakdown bucket."""
    run = traced_collective_run(app, nodes, gpus, sched)
    rows = reconcile(run.tracer, run.breakdown)
    for bucket, row in rows.items():
        tol = 1e-9 if bucket == "other" else 0.0
        assert abs(row["residual"]) <= tol, (
            f"{bucket}: traced {row['traced']!r} != reported "
            f"{row['reported']!r}")


@pytest.mark.parametrize(("app", "nodes", "gpus", "sched"),
                         COLLECTIVE_CASES, ids=COLLECTIVE_IDS)
def test_collective_trace_byte_totals_match_bus(app, nodes, gpus, sched):
    """Traced bytes equal bus bytes per kind under ring/tree too."""
    run = traced_collective_run(app, nodes, gpus, sched)
    summary = normalize(run.tracer)
    bus = run.platform.bus
    for kind in ("h2d", "d2h", "p2p", "net"):
        traced = summary["transfer_bytes"].get(kind, 0)
        assert traced == bus.bytes_moved(kind), (
            f"{kind}: traced {traced} != bus {bus.bytes_moved(kind)}")
    assert summary["transfer_bytes"].get("net", 0) > 0, (
        "collective run never touched the NIC")
