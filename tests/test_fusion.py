"""The kernel fusion pass (``CompileOptions(fuse=True)``).

Three layers:

* **Brute-force differential legality** -- enumerate every two-loop
  producer/consumer program over the affine access shapes the legality
  analysis reasons about (coefficient ``w`` in {1, 2}, write offset
  ``b`` and read offset ``c`` in [-2, 2]) and check the analysis
  against ground truth *in both directions*: pairs it calls legal must
  fuse and stay bit-identical to the unfused run at 1/2/4 GPUs, and
  pairs it bails on must -- when force-fused via the ``fuse_force``
  testing hook -- actually diverge on multi-GPU runs (proving the bail
  was load-bearing, not conservative paranoia).

* **Structural unit tests** -- group formation, demotion, recorded
  bail reasons, trace tagging, explain reporting.

* **App-level equivalence** -- every bundled app runs fused and
  unfused, bit-identically, at 1/2/4 GPUs (tiny workloads).
"""

import numpy as np
import pytest

import repro
from repro.apps import ALL_APPS, EXTRA_APPS
from repro.bench.machines import hypothetical_node
from repro.translator.compiler import CompileOptions
from repro.vcuda.specs import MACHINES

APPS = {**ALL_APPS, **EXTRA_APPS}


def machine_for(ngpus):
    spec = MACHINES["desktop"]
    return spec if ngpus <= spec.gpu_count else hypothetical_node(ngpus)


def run_source(src, args, ngpus, options=None, entry="f", **flags):
    prog = repro.compile(src, options)
    args = {k: (v.copy() if isinstance(v, np.ndarray) else v)
            for k, v in args.items()}
    prog.run(entry, args, machine=machine_for(ngpus), ngpus=ngpus, **flags)
    arrays = {k: v for k, v in args.items() if isinstance(v, np.ndarray)}
    return arrays, prog.compiled


# ---------------------------------------------------------------------------
# Brute-force differential legality
# ---------------------------------------------------------------------------

#: Subscripts are shifted by +2 so every enumerated offset is a valid
#: nonnegative index; shifting both offsets preserves their difference,
#: which is all the dependence rule looks at.
SHIFT = 2
COEFFS = (1, 2)
OFFSETS = range(-2, 3)
N = 37  # not divisible by 2 or 4: uneven splits at every GPU count


def flow_program(w, b, c):
    """Loop 1 writes ``a[w*i + b]``; loop 2 reads ``a[w*i + c]``."""
    return f"""
void f(float *a, float *x, float *out, int n) {{
    #pragma acc parallel loop
    for (int i = 0; i < n; i++)
        a[{w}*i + {b + SHIFT}] = x[i] + 1.0f;
    #pragma acc parallel loop
    for (int i = 0; i < n; i++)
        out[i] = out[i] + a[{w}*i + {c + SHIFT}] * 2.0f;
}}
"""


def writewrite_program(w, b, c):
    """Both loops write ``a`` (replica output dependence)."""
    return f"""
void f(float *a, float *x, float *out, int n) {{
    #pragma acc parallel loop
    for (int i = 0; i < n; i++)
        a[{w}*i + {b + SHIFT}] = x[i] + 1.0f;
    #pragma acc parallel loop
    for (int i = 0; i < n; i++)
        a[{w}*i + {c + SHIFT}] = x[i] * 3.0f;
}}
"""


def flow_args(w, seed=7):
    rng = np.random.default_rng(seed)
    size = w * (N - 1) + 2 * SHIFT + 1
    return {
        "a": rng.uniform(-1.0, 1.0, size=size).astype(np.float32),
        "x": rng.uniform(-1.0, 1.0, size=N).astype(np.float32),
        "out": np.zeros(N, dtype=np.float32),
        "n": N,
    }


def fusion_legal(w, b, c):
    """The oracle: fusable iff the second loop's accesses hit exactly
    the iteration's own element or can never alias a written one."""
    return b == c or (c - b) % w != 0


#: Compile with inference off: every array is a dirty-bit replica, so
#: the enumeration isolates the *dependence* rules (no distribution
#: window mismatches muddying which check fired).
REPLICA = CompileOptions(infer=False, fuse=True)
REPLICA_FORCE = CompileOptions(infer=False, fuse=True, fuse_force=True)
REPLICA_OFF = CompileOptions(infer=False)

CASES = [(w, b, c) for w in COEFFS for b in OFFSETS for c in OFFSETS]
CASE_IDS = [f"w{w}_b{b}_c{c}" for w, b, c in CASES]


@pytest.mark.parametrize("w,b,c", CASES, ids=CASE_IDS)
def test_flow_legality_matches_oracle(w, b, c):
    """The analysis fuses exactly the pairs the oracle calls legal, and
    legal fusions are bit-identical to the unfused schedule."""
    src = flow_program(w, b, c)
    args = flow_args(w)
    _, compiled = run_source(src, args, 1, REPLICA)
    legal = fusion_legal(w, b, c)
    assert bool(compiled.fusion_groups) == legal, (
        f"analysis {'fused' if compiled.fusion_groups else 'bailed'} but "
        f"oracle says legal={legal}: "
        f"{[b_.reason for b_ in compiled.fusion_bails]}")
    if not legal:
        assert any("flow" in b_.reason for b_ in compiled.fusion_bails)
        return
    for ngpus in (1, 2, 4):
        fused, _ = run_source(src, args, ngpus, REPLICA)
        unfused, _ = run_source(src, args, ngpus, REPLICA_OFF)
        for name in ("a", "out"):
            np.testing.assert_array_equal(
                fused[name], unfused[name],
                err_msg=f"w={w} b={b} c={c} ngpus={ngpus}: {name}")


ILLEGAL_CASES = [(w, b, c) for w, b, c in CASES if not fusion_legal(w, b, c)]
ILLEGAL_IDS = [f"w{w}_b{b}_c{c}" for w, b, c in ILLEGAL_CASES]


@pytest.mark.parametrize("w,b,c", ILLEGAL_CASES, ids=ILLEGAL_IDS)
def test_bailed_pairs_really_diverge_when_forced(w, b, c):
    """Every dependence bail is load-bearing: force-fusing the pair
    diverges on multi-GPU runs (while single-GPU stays identical --
    the hazard is exactly the cross-GPU flow the pass protects)."""
    src = flow_program(w, b, c)
    args = flow_args(w)
    _, compiled = run_source(src, args, 1, REPLICA_FORCE)
    assert compiled.fusion_groups, "fuse_force must override the bail"

    one_fused, _ = run_source(src, args, 1, REPLICA_FORCE)
    one_plain, _ = run_source(src, args, 1, REPLICA_OFF)
    np.testing.assert_array_equal(one_fused["out"], one_plain["out"])

    diverged = False
    for ngpus in (2, 4):
        fused, _ = run_source(src, args, ngpus, REPLICA_FORCE)
        unfused, _ = run_source(src, args, ngpus, REPLICA_OFF)
        if not np.array_equal(fused["out"], unfused["out"]):
            diverged = True
    assert diverged, (
        f"w={w} b={b} c={c}: bailed as cross-iteration flow but "
        f"force-fusing never diverged -- bail may be spurious")


@pytest.mark.parametrize("w,b,c", CASES, ids=CASE_IDS)
def test_writewrite_legality_matches_oracle(w, b, c):
    src = writewrite_program(w, b, c)
    args = flow_args(w)
    _, compiled = run_source(src, args, 1, REPLICA)
    legal = fusion_legal(w, b, c)
    assert bool(compiled.fusion_groups) == legal
    if not legal:
        assert any("write-write" in b_.reason
                   for b_ in compiled.fusion_bails)
        return
    for ngpus in (1, 2, 4):
        fused, _ = run_source(src, args, ngpus, REPLICA)
        unfused, _ = run_source(src, args, ngpus, REPLICA_OFF)
        np.testing.assert_array_equal(fused["a"], unfused["a"])


# ---------------------------------------------------------------------------
# Structural unit tests
# ---------------------------------------------------------------------------

PIPE = """
void f(float *u, float *out, int n) {
    float t[n];
    #pragma acc parallel loop
    for (int i = 0; i < n - 1; i++)
        t[i] = u[i + 1] - u[i];
    #pragma acc parallel loop
    for (int i = 0; i < n - 1; i++)
        out[i] = out[i] + t[i];
}
"""


def pipe_args(n=257, seed=3):
    rng = np.random.default_rng(seed)
    return {"u": rng.uniform(-1, 1, size=n).astype(np.float32),
            "out": np.zeros(n, dtype=np.float32), "n": n}


def test_group_formed_and_intermediate_demoted():
    _, compiled = run_source(PIPE, pipe_args(), 1, CompileOptions(fuse=True))
    assert len(compiled.fusion_groups) == 1
    g = compiled.fusion_groups[0]
    assert g.members == ("f_L0", "f_L1")
    assert [d.name for d in g.demoted] == ["t"]
    # The scratch array never reaches the loader: not in merged config.
    assert "t" not in g.fused.config.arrays
    assert "demoted" in g.elided["t"]


def test_fuse_off_is_default_and_untouched():
    _, compiled = run_source(PIPE, pipe_args(), 1)
    assert compiled.fusion_groups == [] and compiled.fusion_bails == []
    assert not compiled.fused_stmts


def test_scalar_reduction_bails():
    src = """
void f(float *a, float *out, int n) {
    float s = 0.0f;
    #pragma acc parallel loop reduction(+:s)
    for (int i = 0; i < n; i++)
        s = s + a[i];
    #pragma acc parallel loop
    for (int i = 0; i < n; i++)
        out[i] = out[i] + a[i];
    out[0] = out[0] + s;
}
"""
    args = {"a": np.ones(64, dtype=np.float32),
            "out": np.zeros(64, dtype=np.float32), "n": 64}
    _, compiled = run_source(src, args, 2, CompileOptions(fuse=True))
    assert not compiled.fusion_groups
    assert any("reduction" in b.reason for b in compiled.fusion_bails)


def test_update_directive_blocks_fusion():
    src = """
void f(float *a, float *out, int n) {
    #pragma acc data copy(a[0:n]) copy(out[0:n])
    {
        #pragma acc parallel loop
        for (int i = 0; i < n; i++)
            a[i] = a[i] * 2.0f;
        #pragma acc update host(a[0:n])
        #pragma acc parallel loop
        for (int i = 0; i < n; i++)
            out[i] = out[i] + a[i];
    }
}
"""
    args = {"a": np.ones(64, dtype=np.float32),
            "out": np.zeros(64, dtype=np.float32), "n": 64}
    fused, compiled = run_source(src, args, 2, CompileOptions(fuse=True))
    assert not compiled.fusion_groups
    assert any("update" in b.reason for b in compiled.fusion_bails)
    plain, _ = run_source(src, args, 2)
    np.testing.assert_array_equal(fused["out"], plain["out"])


def test_host_statement_between_loops_blocks_fusion():
    src = """
void f(float *a, float *out, int n) {
    #pragma acc parallel loop
    for (int i = 0; i < n; i++)
        a[i] = a[i] * 2.0f;
    out[0] = 1.0f;
    #pragma acc parallel loop
    for (int i = 0; i < n; i++)
        out[i] = out[i] + a[i];
}
"""
    args = {"a": np.ones(64, dtype=np.float32),
            "out": np.zeros(64, dtype=np.float32), "n": 64}
    _, compiled = run_source(src, args, 1, CompileOptions(fuse=True))
    assert not compiled.fusion_groups


def test_fused_launch_count_and_trace_tag():
    args = pipe_args()
    prog = repro.compile(PIPE, CompileOptions(fuse=True))
    run = prog.run("f", dict(args), machine=machine_for(2), ngpus=2,
                   trace=True)
    kernels = [e for e in run.tracer.events if e.kind == "kernel"]
    assert len(kernels) == 2  # one fused launch per GPU
    assert all(e.attrs.get("fusion") == ["f_L0", "f_L1"] for e in kernels)

    prog0 = repro.compile(PIPE, CompileOptions())
    run0 = prog0.run("f", dict(args), machine=machine_for(2), ngpus=2,
                     trace=True)
    kernels0 = [e for e in run0.tracer.events if e.kind == "kernel"]
    assert len(kernels0) == 4
    assert all(e.attrs.get("fusion") is None for e in kernels0)


def test_explain_reports_fusion():
    from repro.explain import explain
    report = explain(PIPE, CompileOptions(fuse=True))
    assert report.fusion is not None
    assert len(report.fusion.groups) == 1
    g = report.fusion.groups[0]
    assert g.members == ("f_L0", "f_L1") and g.demoted == ("t",)
    text = report.render()
    assert "fusion:" in text and "f_L0 + f_L1" in text
    # Without fuse the report has no fusion section.
    assert explain(PIPE).fusion is None


def test_interpreter_engine_matches_vector_engine_fused():
    args = pipe_args()
    vec, _ = run_source(PIPE, args, 2, CompileOptions(fuse=True))
    interp, _ = run_source(PIPE, args, 2, CompileOptions(fuse=True),
                           engine="interp")
    np.testing.assert_array_equal(vec["out"], interp["out"])


def test_sanitized_fused_run_is_clean():
    args = pipe_args()
    fused, _ = run_source(PIPE, args, 2, CompileOptions(fuse=True),
                          sanitize=True)
    plain, _ = run_source(PIPE, args, 2)
    np.testing.assert_array_equal(fused["out"], plain["out"])


# ---------------------------------------------------------------------------
# App-level equivalence
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("ngpus", [1, 2, 4])
@pytest.mark.parametrize("app_name", sorted(APPS))
def test_apps_bit_identical_fused(app_name, ngpus):
    spec = APPS[app_name]
    outs = {}
    for fuse in (False, True):
        prog = repro.compile(spec.source, CompileOptions(fuse=fuse))
        args = spec.args_for("tiny")
        prog.run(spec.entry, args, machine=machine_for(ngpus), ngpus=ngpus)
        outs[fuse] = {k: v for k, v in args.items()
                      if isinstance(v, np.ndarray)}
    for name, a in outs[False].items():
        np.testing.assert_array_equal(
            outs[True][name], a,
            err_msg=f"{app_name}.{name} perturbed by fusion at {ngpus} GPUs")


@pytest.mark.parametrize("app_name", ["gradpipe", "phasepipe"])
def test_pipeline_apps_actually_fuse(app_name):
    spec = APPS[app_name]
    prog = repro.compile(spec.source, CompileOptions(fuse=True))
    groups = prog.compiled.fusion_groups
    assert len(groups) == 1 and len(groups[0].members) == 3


def test_fusion_reduces_modeled_comm_seconds():
    """The acceptance claim: fused communication seconds drop at 2 and
    4 GPUs for both pipeline apps, with bit-identical results."""
    for app_name in ("gradpipe", "phasepipe"):
        spec = APPS[app_name]
        for ngpus in (2, 4):
            secs = {}
            for fuse in (False, True):
                prog = repro.compile(spec.source, CompileOptions(fuse=fuse))
                args = spec.args_for("test")
                run = prog.run(spec.entry, args, machine=machine_for(ngpus),
                               ngpus=ngpus)
                bd = run.breakdown
                secs[fuse] = bd.cpu_gpu + bd.gpu_gpu
            assert secs[True] < secs[False], (
                f"{app_name} at {ngpus} GPUs: comm seconds did not drop "
                f"({secs[False]:.3g} -> {secs[True]:.3g})")
