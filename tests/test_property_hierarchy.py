"""Property tests: the two-level (node, GPU) task splitter.

:func:`~repro.runtime.partition.split_tasks_hierarchical` is the
multi-node balancer's mapping primitive: level one divides the
iteration range across nodes by aggregate weight, level two hands each
node's sub-range to the flat weighted splitter.  Its failure modes are
the flat splitter's (invalid cover) *plus* its own (node ranges out of
order, a node's slices leaking into a neighbour's range), so it gets
the same adversarial treatment as ``tests/test_property_partition.py``:

* exact, ordered, contiguous cover of ``[lower, upper)`` for any node
  partitioning of 1-8 GPUs under adversarial weights (zeros, NaN,
  infinities, negatives, denormals);
* disjointness per node: every GPU's slice stays inside its node's
  level-one range;
* determinism, degenerate-weight degradation, and agreement with the
  flat splitter on single-node layouts;
* malformed node ranges (gaps, overlaps, empty nodes, wrong endpoints)
  are rejected with :class:`~repro.runtime.partition.PartitionError`.
"""

import hashlib

import pytest
from hypothesis import given, seed, settings, strategies as st

from repro.runtime.partition import (
    PartitionError,
    split_tasks,
    split_tasks_hierarchical,
    split_tasks_weighted,
)

_SETTINGS = dict(max_examples=200, deadline=None, database=None)


def _case_seed(case_id: str) -> int:
    digest = hashlib.sha256(case_id.encode()).digest()
    return int.from_bytes(digest[:8], "big")


#: Adversarial weight values, mirroring the flat splitter's suite.
_WEIGHTS = st.one_of(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    st.just(0.0),
    st.just(float("nan")),
    st.just(float("inf")),
    st.floats(min_value=-10.0, max_value=0.0),
    st.just(5e-324),  # smallest denormal
    st.just(1e-300),
)

_RANGES = st.tuples(st.integers(-50, 1000), st.integers(0, 1000)).map(
    lambda t: (t[0], t[0] + t[1]))


@st.composite
def _layouts(draw):
    """A weight vector plus a valid node partitioning of it."""
    weights = draw(st.lists(_WEIGHTS, min_size=1, max_size=8))
    ngpus = len(weights)
    cuts = sorted(draw(st.sets(st.integers(1, max(1, ngpus - 1)),
                               max_size=ngpus - 1)) | {0, ngpus})
    node_ranges = [(cuts[i], cuts[i + 1]) for i in range(len(cuts) - 1)]
    return weights, node_ranges


def assert_exact_cover(tasks, lower, upper, ngpus):
    assert len(tasks) == ngpus
    start = lower
    for t0, t1 in tasks:
        assert t0 == start, f"gap/overlap at {t0} (expected {start})"
        assert t1 >= t0, f"negative slice ({t0}, {t1})"
        start = t1
    assert start == max(lower, upper)


class TestHierarchicalCover:
    @seed(_case_seed("TestHierarchicalCover::test_exact_cover_adversarial"))
    @given(_RANGES, _layouts(), st.integers(0, 16))
    @settings(**_SETTINGS)
    def test_exact_cover_adversarial(self, bounds, layout, min_chunk):
        lower, upper = bounds
        weights, node_ranges = layout
        tasks = split_tasks_hierarchical(lower, upper, weights, node_ranges,
                                         min_chunk)
        assert_exact_cover(tasks, lower, upper, len(weights))

    @seed(_case_seed("TestHierarchicalCover::test_node_disjointness"))
    @given(_RANGES, _layouts(), st.integers(0, 16))
    @settings(**_SETTINGS)
    def test_node_disjointness(self, bounds, layout, min_chunk):
        """Every GPU's slice stays inside its node's level-one range:
        nodes own disjoint task intervals, in node order."""
        lower, upper = bounds
        weights, node_ranges = layout
        tasks = split_tasks_hierarchical(lower, upper, weights, node_ranges,
                                         min_chunk)
        node_end = lower
        for glo, ghi in node_ranges:
            node_lo = tasks[glo][0]
            node_hi = tasks[ghi - 1][1]
            assert node_lo == node_end, "node ranges out of order"
            assert node_hi >= node_lo
            for g in range(glo, ghi):
                t0, t1 = tasks[g]
                assert node_lo <= t0 <= t1 <= node_hi, (
                    f"gpu {g} slice ({t0}, {t1}) leaks out of node "
                    f"interval ({node_lo}, {node_hi})")
            node_end = node_hi
        assert node_end == max(lower, upper)

    @seed(_case_seed("TestHierarchicalCover::test_deterministic"))
    @given(_RANGES, _layouts(), st.integers(0, 16))
    @settings(**_SETTINGS)
    def test_deterministic(self, bounds, layout, min_chunk):
        lower, upper = bounds
        weights, node_ranges = layout
        a = split_tasks_hierarchical(lower, upper, weights, node_ranges,
                                     min_chunk)
        b = split_tasks_hierarchical(lower, upper, list(weights),
                                     list(node_ranges), min_chunk)
        assert a == b

    @seed(_case_seed("TestHierarchicalCover::test_single_node_is_flat"))
    @given(_RANGES, st.lists(_WEIGHTS, min_size=1, max_size=8),
           st.integers(0, 16))
    @settings(**_SETTINGS)
    def test_single_node_is_flat(self, bounds, weights, min_chunk):
        """One node covering every GPU degenerates to the flat split --
        the structural half of the 1-node bit-identity guarantee."""
        lower, upper = bounds
        ngpus = len(weights)
        flat = split_tasks_weighted(lower, upper, weights, min_chunk)
        hier = split_tasks_hierarchical(lower, upper, weights,
                                        [(0, ngpus)], min_chunk)
        assert hier == flat

    @seed(_case_seed("TestHierarchicalCover::test_degenerate_weights"))
    @given(_RANGES, _layouts().filter(lambda l: len(l[1]) > 1),
           st.sampled_from(["zeros", "nans", "infs", "negative"]))
    @settings(**_SETTINGS)
    def test_degenerate_weights(self, bounds, layout, kind):
        """All-degenerate weights degrade level by level to equal
        splits: nodes get GPU-count-proportional shares of the range
        (each level's equal split, composed)."""
        lower, upper = bounds
        weights, node_ranges = layout
        ngpus = len(weights)
        value = {"zeros": 0.0, "nans": float("nan"), "infs": float("inf"),
                 "negative": -1.0}[kind]
        tasks = split_tasks_hierarchical(lower, upper, [value] * ngpus,
                                         node_ranges)
        assert_exact_cover(tasks, lower, upper, ngpus)
        node_tasks = split_tasks(lower, upper, len(node_ranges))
        for (glo, ghi), (tlo, thi) in zip(node_ranges, node_tasks):
            assert tasks[glo][0] == tlo and tasks[ghi - 1][1] == thi

    @seed(_case_seed("TestHierarchicalCover::test_starved_node"))
    @given(st.integers(10, 500), st.integers(1, 3), st.integers(1, 3))
    @settings(**_SETTINGS)
    def test_starved_node(self, total, a_gpus, b_gpus):
        """A node whose every GPU weighs zero receives an empty task
        interval; the working node absorbs the whole range."""
        weights = [0.0] * a_gpus + [1.0] * b_gpus
        node_ranges = [(0, a_gpus), (a_gpus, a_gpus + b_gpus)]
        tasks = split_tasks_hierarchical(0, total, weights, node_ranges)
        assert_exact_cover(tasks, 0, total, a_gpus + b_gpus)
        for g in range(a_gpus):
            assert tasks[g][0] == tasks[g][1] == 0
        assert tasks[-1][1] == total


class TestMalformedNodeRanges:
    @pytest.mark.parametrize("node_ranges", [
        [],                       # no nodes at all
        [(0, 2)],                 # does not reach ngpus
        [(1, 4)],                 # does not start at 0
        [(0, 2), (3, 4)],         # gap
        [(0, 3), (2, 4)],         # overlap
        [(0, 2), (2, 2), (2, 4)],  # empty node
        [(2, 4), (0, 2)],         # out of order
    ])
    def test_rejected(self, node_ranges):
        with pytest.raises(PartitionError):
            split_tasks_hierarchical(0, 100, [1.0] * 4, node_ranges)

    def test_empty_weights_rejected(self):
        with pytest.raises(PartitionError):
            split_tasks_hierarchical(0, 100, [], [])
