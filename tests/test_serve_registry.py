"""Persistent compiled-program registry: round trips, corruption, restarts.

The registry is a cache, not a database: every way an on-disk entry can
be damaged (truncation anywhere in the file, flipped payload bytes, a
foreign file under the right name) must degrade to "log, evict,
recompile" -- never to an exception reaching the caller.  The pay-off
it exists for is pinned too: a second *process* compiling the same
source is a disk hit, and a revived program is observationally
identical to the original (bit-identical arrays, identical modeled
time).
"""

import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.apps import ALL_APPS, EXTRA_APPS
from repro.serve.registry import (
    MAGIC,
    ProgramRegistry,
    freeze_program,
    registry_key,
    thaw_program,
)
from repro.translator.compiler import (
    CompileOptions,
    clear_compile_cache,
    compile_source,
)

APPS = {**ALL_APPS, **EXTRA_APPS}
REPO = Path(__file__).resolve().parent.parent


@pytest.fixture
def registry(tmp_path):
    return ProgramRegistry(tmp_path / "registry")


def _run_app(program, name, ngpus=2):
    spec = APPS[name]
    args = spec.args_for("tiny")
    run = repro.AccProgram(program).run(spec.entry, args, ngpus=ngpus)
    arrays = {k: v for k, v in args.items() if isinstance(v, np.ndarray)}
    return arrays, run


class TestFreezeThaw:
    @pytest.mark.parametrize("app_name,options", [
        ("stencil", None),
        ("md", None),
        ("bfs", None),
        ("gradpipe", CompileOptions(fuse=True)),
        ("phasepipe", CompileOptions(fuse=True)),
    ])
    def test_revived_program_is_observationally_identical(
            self, app_name, options):
        spec = APPS[app_name]
        original = compile_source(spec.source, options, cache=False)
        revived = thaw_program(freeze_program(original))
        base, run0 = _run_app(original, app_name)
        got, run1 = _run_app(revived, app_name)
        for name in base:
            np.testing.assert_array_equal(got[name], base[name],
                                          err_msg=f"{app_name}.{name}")
        assert run1.elapsed == run0.elapsed
        assert run1.kernel_launches == run0.kernel_launches

    def test_freeze_leaves_the_original_runnable(self):
        """Freezing must not strip the live program's kernel callables."""
        spec = APPS["stencil"]
        original = compile_source(spec.source, cache=False)
        freeze_program(original)
        assert all(p.fn is not None for p in original.plans
                   if p.source_info is not None)


class TestKeys:
    def test_every_option_field_changes_the_entry_path(self, registry):
        import dataclasses
        src = APPS["stencil"].source
        paths = {registry.path_for(src, None)}
        for f in dataclasses.fields(CompileOptions):
            flipped = CompileOptions(
                **{f.name: not getattr(CompileOptions(), f.name)})
            paths.add(registry.path_for(src, flipped))
        assert len(paths) == 1 + len(dataclasses.fields(CompileOptions))

    def test_default_and_none_share_an_entry(self, registry):
        src = APPS["stencil"].source
        assert registry.path_for(src, None) == \
            registry.path_for(src, CompileOptions())

    def test_distinct_sources_distinct_entries(self):
        assert registry_key(APPS["md"].source) != \
            registry_key(APPS["bfs"].source)


class TestCorruptEntries:
    def _store(self, registry, app_name="stencil"):
        spec = APPS[app_name]
        compiled = compile_source(spec.source, cache=False)
        path = registry.put(spec.source, None, compiled)
        # Evict the in-process front so get() really reads the disk.
        registry._memory.clear()
        return spec.source, path

    def test_round_trip_via_disk(self, registry):
        source, path = self._store(registry)
        assert path.exists()
        assert registry.get(source) is not None

    @pytest.mark.parametrize("keep", [0, 3, 7, 20, 47, 200, -1])
    def test_truncation_anywhere_evicts_and_misses(self, registry, keep):
        """Cut the file inside the magic, the header, the checksum, or
        mid-payload: every prefix must behave like a miss."""
        source, path = self._store(registry)
        blob = path.read_bytes()
        assert len(blob) > 200
        path.write_bytes(blob[:keep] if keep >= 0 else blob[:-1])
        assert registry.get(source) is None
        assert not path.exists(), "corrupt entry must be evicted"
        assert registry.stats_snapshot()["corrupt_evictions"] == 1

    def test_flipped_payload_byte_fails_checksum(self, registry):
        source, path = self._store(registry)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert registry.get(source) is None
        assert not path.exists()

    def test_foreign_file_is_evicted_not_raised(self, registry):
        source, path = self._store(registry)
        path.write_bytes(b"this is not a frozen program")
        assert registry.get(source) is None
        assert not path.exists()

    def test_unpicklable_payload_with_valid_checksum(self, registry):
        """Checksum-valid garbage (a bad writer, not bitrot) still
        degrades to a miss."""
        import hashlib
        import struct
        source, path = self._store(registry)
        payload = b"\x80\x04garbage-that-will-not-unpickle"
        header = struct.Struct(">8sQ32s").pack(
            MAGIC, len(payload), hashlib.sha256(payload).digest())
        path.write_bytes(header + payload)
        assert registry.get(source) is None
        assert not path.exists()

    def test_corrupt_entry_recompiles_and_heals(self, registry):
        source, path = self._store(registry)
        path.write_bytes(path.read_bytes()[:50])
        program, outcome = registry.load_or_compile(source)
        assert outcome == "compiled"
        assert path.exists(), "recompilation must re-persist the entry"
        _run_app(program, "stencil")


class TestLoadOrCompile:
    def test_outcome_ladder(self, registry):
        src = APPS["jacobi"].source
        _, first = registry.load_or_compile(src)
        _, second = registry.load_or_compile(src)
        assert (first, second) == ("compiled", "hit_memory")
        fresh = ProgramRegistry(registry.root)  # same dir, new process-front
        _, third = fresh.load_or_compile(src)
        _, fourth = fresh.load_or_compile(src)
        assert (third, fourth) == ("hit_disk", "hit_memory")

    def test_single_flight_under_contention(self, registry):
        clear_compile_cache()
        src = APPS["heat2d"].source
        n = 12
        barrier = threading.Barrier(n)
        results, errors = [None] * n, []

        def worker(i):
            barrier.wait()
            try:
                results[i] = registry.load_or_compile(src)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        programs = {id(p) for p, _ in results}
        assert len(programs) == 1, "contending threads must share one program"
        assert registry.stats_snapshot()["compiles"] == 1
        assert sum(1 for _, o in results if o == "compiled") == 1


class TestProcessRestart:
    SCRIPT = """\
import sys
import repro
from repro.apps import ALL_APPS, EXTRA_APPS
from repro.serve.registry import ProgramRegistry

registry = ProgramRegistry(sys.argv[1])
spec = {**ALL_APPS, **EXTRA_APPS}["stencil"]
program, outcome = registry.load_or_compile(spec.source)
args = spec.args_for("tiny")
repro.AccProgram(program).run(spec.entry, args, ngpus=2)
print("outcome:" + outcome)
print("checksum:" + repr(float(args[spec.outputs[0]].sum())))
"""

    def test_second_process_hits_disk_with_identical_results(self, tmp_path):
        """The acceptance-criteria restart: compile, restart the
        process, observe a disk hit and bit-identical results."""
        reg_dir = str(tmp_path / "registry")

        def run_once():
            proc = subprocess.run(
                [sys.executable, "-c", self.SCRIPT, reg_dir],
                env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin"},
                capture_output=True, text=True, timeout=300, cwd=REPO)
            assert proc.returncode == 0, proc.stderr
            out = dict(line.split(":", 1) for line in
                       proc.stdout.strip().splitlines())
            return out["outcome"], out["checksum"]

        first, second = run_once(), run_once()
        assert first[0] == "compiled"
        assert second[0] == "hit_disk"
        assert first[1] == second[1]
