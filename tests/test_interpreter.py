"""Scalar-interpreter specifics: expression evaluation and kernel
execution details that the differential tests do not isolate."""

import numpy as np
import pytest

from repro.frontend.parser import parse_expr
from repro.translator.interpreter import (
    ExprEvaluator,
    InterpError,
    _apply_scalar_op,
)
from tests.util import run_source


def make_eval(variables=None, arrays=None):
    variables = variables or {}
    arrays = arrays or {}

    def load_var(name):
        if name in variables:
            return variables[name]
        raise InterpError(f"unknown {name}")

    def load_elem(name, idx):
        return arrays[name][idx]

    return ExprEvaluator(load_var, load_elem)


class TestExprEvaluator:
    def test_arithmetic(self):
        ev = make_eval({"a": 7, "b": 2})
        assert ev.eval(parse_expr("a + b * 3")) == 13
        assert ev.eval(parse_expr("a / b")) == 3  # int division
        assert ev.eval(parse_expr("a % b")) == 1

    def test_float_division(self):
        ev = make_eval({"a": 7.0, "b": 2})
        assert ev.eval(parse_expr("a / b")) == pytest.approx(3.5)

    def test_division_by_zero_reported(self):
        ev = make_eval({"a": 1, "b": 0})
        with pytest.raises(InterpError):
            ev.eval(parse_expr("a / b"))

    def test_comparisons_return_ints(self):
        ev = make_eval({"a": 3})
        assert ev.eval(parse_expr("a > 2")) == 1
        assert ev.eval(parse_expr("a == 4")) == 0

    def test_short_circuit_and(self):
        # b() would divide by zero; && must not evaluate it.
        ev = make_eval({"a": 0, "b": 0})
        assert ev.eval(parse_expr("a != 0 && 1 / b")) == 0

    def test_short_circuit_or(self):
        ev = make_eval({"a": 1, "b": 0})
        assert ev.eval(parse_expr("a == 1 || 1 / b")) == 1

    def test_ternary_lazy(self):
        ev = make_eval({"a": 1, "b": 0})
        assert ev.eval(parse_expr("a ? 5 : 1 / b")) == 5

    def test_math_functions(self):
        ev = make_eval({"x": 4.0})
        assert ev.eval(parse_expr("sqrt(x)")) == pytest.approx(2.0)
        assert ev.eval(parse_expr("fmax(x, 10.0)")) == pytest.approx(10.0)

    def test_array_access(self):
        ev = make_eval({"i": 2}, {"a": np.array([1.0, 2.0, 3.0])})
        assert ev.eval(parse_expr("a[i]")) == pytest.approx(3.0)

    def test_cast(self):
        ev = make_eval({"x": 3.9})
        assert ev.eval(parse_expr("(int)x")) == 3

    def test_bit_ops(self):
        ev = make_eval({"a": 6, "b": 3})
        assert ev.eval(parse_expr("a & b")) == 2
        assert ev.eval(parse_expr("a | b")) == 7
        assert ev.eval(parse_expr("a ^ b")) == 5
        assert ev.eval(parse_expr("a << 1")) == 12
        assert ev.eval(parse_expr("a >> 1")) == 3

    def test_unary(self):
        ev = make_eval({"a": 5})
        assert ev.eval(parse_expr("-a")) == -5
        assert ev.eval(parse_expr("!a")) == 0
        assert ev.eval(parse_expr("~a")) == -6


class TestApplyScalarOp:
    def test_all_ops(self):
        assert _apply_scalar_op(5, "+", 2) == 7
        assert _apply_scalar_op(5, "-", 2) == 3
        assert _apply_scalar_op(5, "*", 2) == 10
        assert _apply_scalar_op(5, "/", 2) == 2
        assert _apply_scalar_op(5.0, "/", 2) == pytest.approx(2.5)
        assert _apply_scalar_op(5, "%", 2) == 1
        assert _apply_scalar_op(5, "&", 3) == 1
        assert _apply_scalar_op(5, "|", 2) == 7
        assert _apply_scalar_op(5, "^", 1) == 4
        assert _apply_scalar_op(5, "<<", 1) == 10
        assert _apply_scalar_op(5, ">>", 1) == 2

    def test_unknown_op(self):
        with pytest.raises(InterpError):
            _apply_scalar_op(1, "?", 1)


class TestInterpreterEngine:
    def test_real_control_flow_no_mask_artifacts(self):
        # Under the interpreter, the else-branch genuinely does not run.
        src = """
        void k(int n, float *x, float *y) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            if (x[i] > 0.0f) { y[i] = 1.0f; } else { y[i] = 2.0f; }
          }
        }
        """
        x = np.array([1.0, -1.0], dtype=np.float32)
        args, _ = run_source(src, {"n": 2, "x": x,
                                   "y": np.zeros(2, np.float32)},
                             engine="interp")
        np.testing.assert_allclose(args["y"], [1, 2])

    def test_out_of_window_read_is_reported(self):
        # The interpreter validates loaded windows strictly, catching
        # programs whose localaccess declaration is wrong -- a debugging
        # feature the vectorized engine's clipped gathers cannot offer.
        src = """
        void k(int n, float *x, float *y) {
          #pragma acc localaccess x[stride(1)] y[stride(1)]
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { y[i] = x[(i + 1) % n]; }
        }
        """
        x = np.arange(4, dtype=np.float32)
        with pytest.raises(Exception, match="window"):
            run_source(src, {"n": 4, "x": x,
                             "y": np.zeros(4, np.float32)},
                       ngpus=2, engine="interp")

    def test_sequential_inner_while_equivalent_semantics(self):
        src = """
        void k(int n, float *x, float *y) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            float acc = 0.0f;
            for (int j = 0; j < 3; j++) {
              acc = acc * 2.0f + x[i];
            }
            y[i] = acc;
          }
        }
        """
        x = np.array([1.0, 2.0], dtype=np.float32)
        args, _ = run_source(src, {"n": 2, "x": x,
                                   "y": np.zeros(2, np.float32)},
                             engine="interp")
        np.testing.assert_allclose(args["y"], [7.0, 14.0])
