"""Application integration tests: every app, every GPU count, both
machines, correctness against the NumPy references, plus the per-app
communication signatures the paper describes."""

import numpy as np
import pytest

import repro
from repro.apps import ALL_APPS, EXTRA_APPS
from repro.apps.cuda_baselines import bfs_cuda, kmeans_cuda, md_cuda
from repro.cpu import run_openmp
from repro.vcuda import DESKTOP_MACHINE, SUPERCOMPUTER_NODE

APPS = {**ALL_APPS, **EXTRA_APPS}

CONFIGS = [("desktop", 1), ("desktop", 2),
           ("supercomputer", 1), ("supercomputer", 2), ("supercomputer", 3)]


@pytest.mark.parametrize("app_name", list(APPS))
@pytest.mark.parametrize("machine,ngpus", CONFIGS)
def test_app_correct_on_proposal(app_name, machine, ngpus):
    spec = APPS[app_name]
    prog = repro.compile(spec.source)
    args = spec.args_for("tiny")
    snap = spec.snapshot(args)
    prog.run(spec.entry, args, machine=machine, ngpus=ngpus)
    spec.check(args, snap)


@pytest.mark.parametrize("app_name", list(APPS))
def test_app_correct_on_openmp(app_name):
    spec = APPS[app_name]
    prog = repro.compile(spec.source)
    args = spec.args_for("tiny")
    snap = spec.snapshot(args)
    run_openmp(prog.compiled, spec.entry, args, DESKTOP_MACHINE)
    spec.check(args, snap)


@pytest.mark.parametrize("fn,app_name", [(md_cuda, "md"),
                                         (kmeans_cuda, "kmeans"),
                                         (bfs_cuda, "bfs")])
def test_app_correct_on_hand_cuda(fn, app_name):
    spec = ALL_APPS[app_name]
    args = spec.args_for("tiny")
    snap = spec.snapshot(args)
    fn(DESKTOP_MACHINE, args)
    spec.check(args, snap)


class TestCommunicationSignatures:
    """Fig. 8's qualitative claims, at the telemetry level."""

    def run(self, app_name, ngpus, machine="desktop", workload="test"):
        spec = APPS[app_name]
        prog = repro.compile(spec.source)
        args = spec.args_for(workload)
        return prog.run(spec.entry, args, machine=machine, ngpus=ngpus)

    def test_md_needs_no_inter_gpu_communication(self):
        run = self.run("md", 2)
        assert run.breakdown.gpu_gpu == 0.0

    def test_kmeans_has_small_reduction_traffic(self):
        # The merge traffic is fixed-size (centers array), so it is only
        # "small" relative to kernels at realistic point counts.
        run = self.run("kmeans", 2, workload="bench")
        assert 0 < run.breakdown.gpu_gpu < run.breakdown.kernels

    def test_bfs_has_heavy_irregular_traffic(self):
        run2 = self.run("bfs", 2)
        assert run2.breakdown.gpu_gpu > 0
        comm = run2.executor.comm
        assert comm.bytes_replica > 0  # dirty-bit propagation
        assert comm.bytes_miss == 0  # levels is replicated, not missed

    def test_bfs_comm_worse_across_qpi(self):
        d = self.run("bfs", 2, machine="desktop")
        s = self.run("bfs", 3, machine="supercomputer")
        assert s.breakdown.gpu_gpu > d.breakdown.gpu_gpu

    def test_stencil_exchanges_only_halos(self):
        run = self.run("stencil", 2)
        comm = run.executor.comm
        assert comm.bytes_halo > 0
        assert comm.bytes_replica == 0
        assert comm.bytes_miss == 0
        # A 1-element halo costs 4 bytes per boundary direction, and each
        # of the 2*steps sweeps refreshes its one written array.
        spec = APPS["stencil"]
        steps = spec.workloads["test"].params["steps"]
        assert comm.bytes_halo == 2 * 4 * (2 * steps)

    def test_shift_scatter_routes_misses(self):
        run = self.run("shift_scale", 2)
        comm = run.executor.comm
        assert comm.bytes_miss > 0

    def test_md_single_kernel_execution(self):
        run = self.run("md", 2)
        assert len(run.loop_stats) == 1

    def test_kmeans_kernel_executions(self):
        spec = APPS["kmeans"]
        niters = spec.workloads["test"].params["niters"]
        run = self.run("kmeans", 2)
        assert len(run.loop_stats) == 2 * niters

    def test_kmeans_loader_caches_across_loops(self):
        run = self.run("kmeans", 2)
        loader = run.executor.loader
        # features/membership keep the same distribution between the two
        # loops and across iterations: reloads must be skipped.
        assert loader.reloads_skipped > 0


class TestMemoryFootprint:
    def test_distribution_saves_memory(self):
        spec = ALL_APPS["md"]
        prog = repro.compile(spec.source)
        runs = {}
        for g in (1, 2):
            args = spec.args_for("test")
            runs[g] = prog.run(spec.entry, args, machine="desktop", ngpus=g)
        u1 = runs[1].memory_high_water("user")
        u2 = runs[2].memory_high_water("user")
        # Far below 2x: only the (small) position array is replicated.
        assert u2 < 1.3 * u1

    def test_bfs_system_overhead_below_30_percent(self):
        spec = ALL_APPS["bfs"]
        prog = repro.compile(spec.source)
        for g in (1, 2):
            args = spec.args_for("test")
            run = prog.run(spec.entry, args, machine="desktop", ngpus=g)
            user = run.memory_high_water("user")
            system = run.memory_high_water("system")
            assert system < 0.30 * user


class TestGeneratedKernels:
    def test_bfs_kernel_uses_csr_flattening(self):
        prog = repro.compile(ALL_APPS["bfs"].source)
        src = prog.kernel_source("bfs_L0")
        assert "ks.flat_ranges" in src

    def test_md_kernel_is_fully_vectorized(self):
        prog = repro.compile(ALL_APPS["md"].source)
        plan = prog.kernel("md_L0")
        assert plan.fn is not None and plan.vectorize_error is None

    def test_all_app_kernels_vectorize(self):
        for name, spec in APPS.items():
            prog = repro.compile(spec.source)
            for plan in prog.kernels:
                assert plan.fn is not None, \
                    f"{name}/{plan.name}: {plan.vectorize_error}"
