"""Runtime tests: kernel context, data loader, communication manager.

These exercise the loader/comm layers directly (below the compiler), so
failures localize to the runtime rather than codegen.
"""

import numpy as np
import pytest

from repro.runtime.comm import CommunicationManager
from repro.runtime.data_loader import DataEnvironmentError, DataLoader
from repro.runtime.dirty import TwoLevelDirty
from repro.runtime.kernelctx import KernelContext
from repro.runtime.partition import Block, split_tasks
from repro.runtime.writemiss import WriteMissBuffer
from repro.translator.array_config import (
    ArrayConfig,
    Placement,
    ReadWindow,
    WriteHandling,
)
from repro.frontend.parser import parse_expr
from repro.vcuda import DESKTOP_MACHINE, Platform, SUPERCOMPUTER_NODE
from repro.vcuda.memory import PURPOSE_SYSTEM, PURPOSE_USER


def stride_window(s=1, left=0, right=0):
    lo = parse_expr(f"{s}*i - {left}")
    hi = parse_expr(f"{s}*(i+1) - 1 + {right}")
    return ReadWindow(lower=lo, upper=hi)


def cfg(name, ctype="float", read=True, written=False,
        placement=Placement.REPLICA, handling=WriteHandling.NONE,
        window=None, reduction_op=None):
    return ArrayConfig(name=name, ctype=ctype, read=read, written=written,
                       placement=placement, write_handling=handling,
                       window=window, reduction_op=reduction_op)


class TestKernelContext:
    def test_mark_dirty_requires_tracker(self):
        ctx = KernelContext(0, 0, 4, arrays={"a": np.zeros(4)},
                            base={"a": 0})
        with pytest.raises(RuntimeError):
            ctx.mark_dirty("a", np.array([0]))

    def test_write_checked_hits_and_misses(self):
        arr = np.zeros(4, dtype=np.float32)
        miss = WriteMissBuffer("a", capacity=8)
        ctx = KernelContext(0, 0, 4, arrays={"a": arr}, base={"a": 4},
                            windows={"a": Block(4, 8)}, miss={"a": miss})
        ctx.write_checked("a", np.array([5, 9, 4]),
                          np.array([1.0, 2.0, 3.0]), "")
        assert arr[1] == 1.0 and arr[0] == 3.0
        assert miss.count == 1
        addrs, vals, _ = miss.drain()[0]
        assert addrs[0] == 9 and vals[0] == 2.0

    def test_write_checked_compound(self):
        arr = np.ones(4, dtype=np.float32)
        ctx = KernelContext(0, 0, 4, arrays={"a": arr}, base={"a": 0},
                            windows={"a": Block(0, 4)},
                            miss={"a": WriteMissBuffer("a", capacity=4)})
        ctx.write_checked("a", np.array([1, 1]), np.array([2.0, 3.0]), "+")
        assert arr[1] == pytest.approx(6.0)  # both updates accumulate

    def test_reduce_scalar_folds_multiple_calls(self):
        ctx = KernelContext(0, 0, 4)
        ctx.reduce_scalar("+", "s", 3.0)
        ctx.reduce_scalar("+", "s", 4.0)
        assert ctx.scalar_results["s"] == 7.0

    def test_reduce_to_array_bounds_checked(self):
        ctx = KernelContext(0, 0, 4,
                            reduction_arrays={"h": np.zeros(3)},
                            arrays={"h": np.zeros(3)}, base={"h": 0})
        with pytest.raises(IndexError):
            ctx.reduce_to_array("h", np.array([3]), np.array([1.0]), "+")

    def test_dyn_count_accumulates(self):
        ctx = KernelContext(0, 0, 4)
        ctx.dyn_count("L0", 5)
        ctx.dyn_count("L0", 7)
        assert ctx.dyn_counts["L0"] == 12

    def test_permissive_mode(self):
        arr = np.zeros(4, dtype=np.float32)
        ctx = KernelContext(0, 0, 4, arrays={"a": arr}, base={"a": 0},
                            permissive=True)
        ctx.mark_dirty("a", np.array([0]))  # no-op, no tracker
        ctx.write_checked("a", np.array([2]), np.array([9.0]), "")
        assert arr[2] == 9.0
        ctx.reduce_to_array("a", np.array([1]), np.array([4.0]), "+")
        assert arr[1] == 4.0


class TestDataLoaderRegions:
    def make(self, ngpus=2):
        p = Platform(DESKTOP_MACHINE, ngpus)
        return p, DataLoader(p)

    def test_region_entry_exit(self):
        p, dl = self.make()
        host = np.arange(8, dtype=np.float32)
        dl.enter_region([("a", host, "copy")])
        assert "a" in dl.arrays
        dl.exit_region()
        assert "a" not in dl.arrays

    def test_duplicate_name_rejected(self):
        p, dl = self.make()
        host = np.arange(8, dtype=np.float32)
        dl.enter_region([("a", host, "copy")])
        with pytest.raises(DataEnvironmentError):
            dl.enter_region([("a", host, "copyin")])

    def test_exit_without_entry_rejected(self):
        _, dl = self.make()
        with pytest.raises(DataEnvironmentError):
            dl.exit_region()

    def test_2d_array_rejected(self):
        _, dl = self.make()
        with pytest.raises(DataEnvironmentError):
            dl.enter_region([("m", np.zeros((3, 3), np.float32), "copy")])

    def test_update_of_absent_array_rejected(self):
        _, dl = self.make()
        with pytest.raises(DataEnvironmentError):
            dl.update_host(["ghost"])


class TestDataLoaderPlacement:
    def ensure(self, dl, configs, n, ngpus, scalars=None):
        tasks = split_tasks(0, n, ngpus)
        dl.ensure_for_loop(configs, tasks, "i", scalars or {})
        dl.platform.bus.sync() if dl.platform.bus.pending_count() else None

    def test_replica_loads_full_copies(self):
        p = Platform(DESKTOP_MACHINE, 2)
        dl = DataLoader(p)
        host = np.arange(10, dtype=np.float32)
        dl.enter_region([("a", host, "copyin")])
        self.ensure(dl, {"a": cfg("a")}, 10, 2)
        ma = dl.arrays["a"]
        for g in range(2):
            assert ma.blocks[g] == Block(0, 10)
            np.testing.assert_array_equal(ma.buffers[g].data, host)
        assert p.memory_usage(PURPOSE_USER) == 2 * host.nbytes

    def test_distribution_loads_blocks(self):
        p = Platform(DESKTOP_MACHINE, 2)
        dl = DataLoader(p)
        host = np.arange(10, dtype=np.float32)
        dl.enter_region([("a", host, "copyin")])
        c = cfg("a", placement=Placement.DISTRIBUTED, window=stride_window())
        self.ensure(dl, {"a": c}, 10, 2)
        ma = dl.arrays["a"]
        assert ma.blocks[0] == Block(0, 5)
        assert ma.blocks[1] == Block(5, 10)
        np.testing.assert_array_equal(ma.buffers[1].data, host[5:])
        assert p.memory_usage(PURPOSE_USER) == host.nbytes  # no replication

    def test_halo_blocks_overlap(self):
        p = Platform(DESKTOP_MACHINE, 2)
        dl = DataLoader(p)
        host = np.arange(10, dtype=np.float32)
        dl.enter_region([("a", host, "copyin")])
        c = cfg("a", placement=Placement.DISTRIBUTED,
                window=stride_window(1, 1, 1))
        self.ensure(dl, {"a": c}, 10, 2)
        ma = dl.arrays["a"]
        assert ma.blocks[0] == Block(0, 6)
        assert ma.blocks[1] == Block(4, 10)
        # Primary ownership still tiles the array.
        assert ma.primary[0].hi == ma.primary[1].lo

    def test_reload_skipped_when_signature_matches(self):
        p = Platform(DESKTOP_MACHINE, 2)
        dl = DataLoader(p)
        host = np.arange(10, dtype=np.float32)
        dl.enter_region([("a", host, "copyin")])
        c = cfg("a", placement=Placement.DISTRIBUTED, window=stride_window())
        self.ensure(dl, {"a": c}, 10, 2)
        loads_before = dl.loads
        self.ensure(dl, {"a": c}, 10, 2)
        assert dl.loads == loads_before
        assert dl.reloads_skipped == 1

    def test_reload_skipping_disabled(self):
        p = Platform(DESKTOP_MACHINE, 2)
        dl = DataLoader(p, reload_skipping=False)
        host = np.arange(10, dtype=np.float32)
        dl.enter_region([("a", host, "copyin")])
        c = cfg("a", placement=Placement.DISTRIBUTED, window=stride_window())
        self.ensure(dl, {"a": c}, 10, 2)
        self.ensure(dl, {"a": c}, 10, 2)
        assert dl.loads == 2 and dl.reloads_skipped == 0

    def test_placement_change_reloads(self):
        p = Platform(DESKTOP_MACHINE, 2)
        dl = DataLoader(p)
        host = np.arange(10, dtype=np.float32)
        dl.enter_region([("a", host, "copyin")])
        self.ensure(dl, {"a": cfg("a", placement=Placement.DISTRIBUTED,
                                  window=stride_window())}, 10, 2)
        self.ensure(dl, {"a": cfg("a")}, 10, 2)  # replica now
        ma = dl.arrays["a"]
        assert ma.blocks[0] == Block(0, 10)
        assert dl.loads == 2

    def test_reduction_dest_filled_with_identity_no_h2d(self):
        p = Platform(DESKTOP_MACHINE, 2)
        dl = DataLoader(p)
        host = np.full(6, 99.0, dtype=np.float32)
        dl.enter_region([("h", host, "copy")])
        c = cfg("h", written=True, handling=WriteHandling.REDUCTION,
                reduction_op="+")
        before = p.bus.bytes_moved("h2d")
        self.ensure(dl, {"h": c}, 6, 2)
        assert p.bus.bytes_moved("h2d") == before  # identity fill, no copy
        for g in range(2):
            assert (dl.arrays["h"].buffers[g].data == 0).all()

    def test_create_array_not_priced(self):
        p = Platform(DESKTOP_MACHINE, 1)
        dl = DataLoader(p)
        host = np.zeros(1000, dtype=np.float32)
        dl.enter_region([("t", host, "create")])
        self.ensure(dl, {"t": cfg("t")}, 1000, 1)
        assert p.bus.bytes_moved("h2d") == 0

    def test_update_host_writes_back(self):
        p = Platform(DESKTOP_MACHINE, 2)
        dl = DataLoader(p)
        host = np.zeros(10, dtype=np.float32)
        dl.enter_region([("a", host, "copy")])
        c = cfg("a", written=True, placement=Placement.DISTRIBUTED,
                window=stride_window(),
                handling=WriteHandling.LOCAL_PROVEN)
        self.ensure(dl, {"a": c}, 10, 2)
        ma = dl.arrays["a"]
        ma.buffers[0].data[:] = 1.0
        ma.buffers[1].data[:] = 2.0
        ma.device_ahead = True
        dl.update_host(["a"])
        np.testing.assert_array_equal(host, [1] * 5 + [2] * 5)

    def test_copyout_on_exit(self):
        p = Platform(DESKTOP_MACHINE, 1)
        dl = DataLoader(p)
        host = np.zeros(4, dtype=np.float32)
        dl.enter_region([("a", host, "copy")])
        self.ensure(dl, {"a": cfg("a", written=True,
                                  handling=WriteHandling.DIRTY_BITS)}, 4, 1)
        dl.arrays["a"].buffers[0].data[:] = 7.0
        dl.arrays["a"].device_ahead = True
        dl.exit_region()
        assert (host == 7.0).all()

    def test_copyin_not_written_back(self):
        p = Platform(DESKTOP_MACHINE, 1)
        dl = DataLoader(p)
        host = np.zeros(4, dtype=np.float32)
        dl.enter_region([("a", host, "copyin")])
        self.ensure(dl, {"a": cfg("a")}, 4, 1)
        dl.arrays["a"].buffers[0].data[:] = 7.0
        dl.arrays["a"].device_ahead = True
        dl.exit_region()
        assert (host == 0.0).all()


class TestCommManager:
    def setup_replica(self, ngpus=2, n=32):
        p = Platform(DESKTOP_MACHINE, ngpus)
        dl = DataLoader(p, chunk_bytes=16)
        host = np.zeros(n, dtype=np.float32)
        dl.enter_region([("a", host, "copy")])
        c = cfg("a", written=True, handling=WriteHandling.DIRTY_BITS)
        dl.ensure_for_loop({"a": c}, split_tasks(0, n, ngpus), "i", {})
        p.bus.sync()
        return p, dl, CommunicationManager(p, dl), c

    def test_replica_propagation(self):
        p, dl, comm, c = self.setup_replica()
        ma = dl.arrays["a"]
        # GPU0 writes element 3, GPU1 writes element 20.
        ma.buffers[0].data[3] = 1.0
        ma.dirty[0].mark(np.array([3]))
        ma.buffers[1].data[20] = 2.0
        ma.dirty[1].mark(np.array([20]))
        comm.after_kernels({"a": c})
        for g in range(2):
            assert ma.buffers[g].data[3] == 1.0
            assert ma.buffers[g].data[20] == 2.0
        assert comm.bytes_replica > 0
        assert p.profiler.snapshot().gpu_gpu > 0
        # Dirty bits cleared for the next loop.
        assert not ma.dirty[0].any_dirty

    def test_replica_single_gpu_no_traffic(self):
        p, dl, comm, c = self.setup_replica(ngpus=1)
        ma = dl.arrays["a"]
        ma.buffers[0].data[3] = 1.0
        ma.dirty[0].mark(np.array([3]))
        comm.after_kernels({"a": c})
        assert comm.bytes_replica == 0
        assert not ma.dirty[0].any_dirty

    def test_chunk_granular_pricing(self):
        p, dl, comm, c = self.setup_replica(n=64)  # chunk = 4 elems
        ma = dl.arrays["a"]
        ma.dirty[0].mark(np.array([0]))  # 1 elem -> 1 chunk of 16B
        comm.after_kernels({"a": c})
        assert comm.bytes_replica == 16

    def setup_distributed(self, handling, window, ngpus=2, n=16):
        p = Platform(DESKTOP_MACHINE, ngpus)
        dl = DataLoader(p)
        host = np.zeros(n, dtype=np.float32)
        dl.enter_region([("a", host, "copy")])
        c = cfg("a", written=True, placement=Placement.DISTRIBUTED,
                window=window, handling=handling)
        dl.ensure_for_loop({"a": c}, split_tasks(0, n, ngpus), "i", {})
        p.bus.sync()
        return p, dl, CommunicationManager(p, dl), c

    def test_miss_routing(self):
        p, dl, comm, c = self.setup_distributed(
            WriteHandling.MISS_CHECK, stride_window())
        ma = dl.arrays["a"]
        # GPU0 missed a write destined for GPU1's block.
        ma.miss[0].record(np.array([12]), np.array([5.0]), "")
        comm.after_kernels({"a": c})
        assert ma.buffers[1].data[12 - ma.blocks[1].lo] == 5.0
        assert comm.bytes_miss > 0

    def test_halo_refresh(self):
        p, dl, comm, c = self.setup_distributed(
            WriteHandling.LOCAL_PROVEN, stride_window(1, 1, 1))
        ma = dl.arrays["a"]
        # GPU0 owns [0,8); its element 7 sits in GPU1's halo.
        ma.buffers[0].data[7 - ma.blocks[0].lo] = 3.0
        comm.after_kernels({"a": c})
        assert ma.buffers[1].data[7 - ma.blocks[1].lo] == 3.0
        assert comm.bytes_halo > 0

    def test_reduction_merge(self):
        p = Platform(DESKTOP_MACHINE, 2)
        dl = DataLoader(p)
        host = np.full(4, 10.0, dtype=np.float32)
        dl.enter_region([("h", host, "copy")])
        c = cfg("h", written=True, handling=WriteHandling.REDUCTION,
                reduction_op="+")
        dl.ensure_for_loop({"h": c}, split_tasks(0, 4, 2), "i", {})
        comm = CommunicationManager(p, dl)
        ma = dl.arrays["h"]
        ma.buffers[0].data[:] = [1, 0, 0, 0]
        ma.buffers[1].data[:] = [0, 2, 0, 0]
        comm.after_kernels({"h": c})
        np.testing.assert_array_equal(host, [11, 12, 10, 10])
        np.testing.assert_array_equal(ma.buffers[0].data, host)
        np.testing.assert_array_equal(ma.buffers[1].data, host)
        assert comm.bytes_reduction == 2 * host.nbytes

    def test_reduction_merge_max(self):
        p = Platform(DESKTOP_MACHINE, 2)
        dl = DataLoader(p)
        host = np.full(3, 5.0, dtype=np.float32)
        dl.enter_region([("h", host, "copy")])
        c = cfg("h", written=True, handling=WriteHandling.REDUCTION,
                reduction_op="max")
        dl.ensure_for_loop({"h": c}, split_tasks(0, 3, 2), "i", {})
        comm = CommunicationManager(p, dl)
        ma = dl.arrays["h"]
        ma.buffers[0].data[:] = [9, -np.inf, -np.inf]
        ma.buffers[1].data[:] = [-np.inf, 3, -np.inf]
        comm.after_kernels({"h": c})
        np.testing.assert_array_equal(host, [9, 5, 5])

    def test_cross_hub_halo_costs_more(self):
        # Same traffic, but on the supercomputer topology the GPU0<->GPU2
        # halo crosses the QPI.
        def run(machine, pair):
            p = Platform(machine, 3) if machine is SUPERCOMPUTER_NODE \
                else Platform(machine, 2)
            dl = DataLoader(p)
            host = np.zeros(30, dtype=np.float32)
            dl.enter_region([("a", host, "copy")])
            c = cfg("a", written=True, placement=Placement.DISTRIBUTED,
                    window=stride_window(1, 1, 1),
                    handling=WriteHandling.LOCAL_PROVEN)
            dl.ensure_for_loop({"a": c}, split_tasks(0, 30, p.ngpus), "i", {})
            p.bus.sync()
            comm = CommunicationManager(p, dl)
            comm.after_kernels({"a": c})
            return p.profiler.snapshot().gpu_gpu

        t_super = run(SUPERCOMPUTER_NODE, (1, 2))
        t_desk = run(DESKTOP_MACHINE, (0, 1))
        assert t_super > t_desk


class TestTreeReduction:
    def _merge_with(self, tree: bool, ngpus: int = 3):
        p = Platform(SUPERCOMPUTER_NODE, ngpus)
        dl = DataLoader(p)
        host = np.full(8, 1.0, dtype=np.float32)
        dl.enter_region([("h", host, "copy")])
        c = cfg("h", written=True, handling=WriteHandling.REDUCTION,
                reduction_op="+")
        dl.ensure_for_loop({"h": c}, split_tasks(0, 8, ngpus), "i", {})
        comm = CommunicationManager(p, dl, tree_reduction=tree)
        ma = dl.arrays["h"]
        for g in range(ngpus):
            ma.buffers[g].data[:] = float(g + 1)
        comm.after_kernels({"h": c})
        return host, ma, p

    def test_tree_and_flat_agree_functionally(self):
        h_tree, ma_t, _ = self._merge_with(True)
        h_flat, ma_f, _ = self._merge_with(False)
        np.testing.assert_array_equal(h_tree, h_flat)
        # 1 (initial) + 1 + 2 + 3 partials = 7.
        assert (h_tree == 7.0).all()
        for g in range(3):
            np.testing.assert_array_equal(ma_t.buffers[g].data, h_tree)

    def test_tree_faster_at_scale(self):
        from repro.bench.machines import hypothetical_node

        def gpu_gpu(tree):
            p = Platform(hypothetical_node(8), 8)
            dl = DataLoader(p)
            host = np.zeros(1 << 16, dtype=np.float32)
            dl.enter_region([("h", host, "copy")])
            c = cfg("h", written=True, handling=WriteHandling.REDUCTION,
                    reduction_op="+")
            dl.ensure_for_loop({"h": c}, split_tasks(0, 1 << 16, 8), "i", {})
            comm = CommunicationManager(p, dl, tree_reduction=tree)
            comm.after_kernels({"h": c})
            return p.profiler.snapshot().gpu_gpu

        assert gpu_gpu(True) < gpu_gpu(False)


class TestMachineHelpers:
    def test_machine_lookup(self):
        from repro.bench.machines import machine

        assert machine("desktop") is DESKTOP_MACHINE
        assert machine(DESKTOP_MACHINE) is DESKTOP_MACHINE
        with pytest.raises(KeyError):
            machine("mainframe")

    def test_hypothetical_node_hubs(self):
        from repro.bench.machines import hypothetical_node

        node = hypothetical_node(6, gpus_per_hub=3)
        assert node.gpu_count == 6
        assert node.hub_of(2) == 0 and node.hub_of(3) == 1
        with pytest.raises(ValueError):
            hypothetical_node(0)
