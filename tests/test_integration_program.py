"""Whole-program integration: a multi-function OpenACC application
combining every major feature in one source file -- helpers called from
the entry point, nested data regions, multiple parallel regions with
different placements, scalar + array reductions, updates, and host
control flow driven by device results."""

import numpy as np
import pytest

from tests.util import run_source

PROGRAM = r"""
float vecsum(int n, float *v) {
  float s = 0.0f;
  #pragma acc parallel loop reduction(+:s)
  for (int i = 0; i < n; i++) { s += v[i]; }
  return s;
}

void normalize(int n, float total, float *v) {
  #pragma acc parallel
  {
    #pragma acc localaccess v[stride(1)]
    #pragma acc loop gang
    for (int i = 0; i < n; i++) { v[i] = v[i] / total; }
  }
}

int pipeline(int n, int nb, int *bin, float *v, float *hist, float *smooth) {
  int rounds = 0;
  #pragma acc data copy(v[0:n], hist[0:nb], smooth[0:n])
  {
    float total = vecsum(n, v);
    if (total > 0.0f) {
      normalize(n, total, v);
      rounds = rounds + 1;
    }
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      #pragma acc reductiontoarray(+: hist[0:nb])
      hist[bin[i]] += v[i];
    }
    #pragma acc parallel
    {
      #pragma acc localaccess v[stride(1, 1, 1)] smooth[stride(1)]
      #pragma acc loop gang
      for (int i = 0; i < n; i++) {
        if (i > 0 && i < n - 1) {
          smooth[i] = (v[i - 1] + v[i] + v[i + 1]) / 3.0f;
        } else {
          smooth[i] = v[i];
        }
      }
    }
  }
  return rounds;
}
"""


def reference(n, nb, bin_, v0):
    v = v0.astype(np.float32).copy()
    total = np.float32(0)
    for x in v:
        total = total + x
    if total > 0:
        v = (v / total).astype(np.float32)
    hist = np.zeros(nb, dtype=np.float32)
    np.add.at(hist, bin_, v)
    smooth = v.copy()
    smooth[1:-1] = (v[:-2] + v[1:-1] + v[2:]) / np.float32(3.0)
    return v, hist, smooth


@pytest.mark.parametrize("ngpus,machine", [(1, "desktop"), (2, "desktop"),
                                           (3, "supercomputer")])
def test_full_pipeline(ngpus, machine):
    rng = np.random.default_rng(9)
    n, nb = 300, 5
    v = rng.uniform(0.1, 2.0, size=n).astype(np.float32)
    bin_ = rng.integers(0, nb, size=n).astype(np.int32)
    args = {"n": n, "nb": nb, "bin": bin_.copy(), "v": v.copy(),
            "hist": np.zeros(nb, np.float32),
            "smooth": np.zeros(n, np.float32)}
    args_out, run = run_source(PROGRAM, args, ngpus=ngpus, machine=machine,
                               entry="pipeline")
    ev, eh, es = reference(n, nb, bin_, v)
    assert run.value == 1
    np.testing.assert_allclose(args_out["v"], ev, rtol=2e-5, atol=1e-6)
    np.testing.assert_allclose(args_out["hist"], eh, rtol=2e-4, atol=1e-5)
    np.testing.assert_allclose(args_out["smooth"], es, rtol=2e-5, atol=1e-6)
    # Four kernels ran: vecsum, normalize, histogram, smooth.
    assert len(run.loop_stats) == 4


def test_pipeline_engines_agree():
    rng = np.random.default_rng(11)
    n, nb = 120, 4
    v = rng.uniform(0.1, 2.0, size=n).astype(np.float32)
    bin_ = rng.integers(0, nb, size=n).astype(np.int32)
    outs = []
    for engine in ("vector", "interp"):
        args = {"n": n, "nb": nb, "bin": bin_.copy(), "v": v.copy(),
                "hist": np.zeros(nb, np.float32),
                "smooth": np.zeros(n, np.float32)}
        out, _ = run_source(PROGRAM, args, ngpus=2, engine=engine,
                            entry="pipeline")
        outs.append(out)
    for key in ("v", "hist", "smooth"):
        np.testing.assert_allclose(outs[0][key], outs[1][key],
                                   rtol=1e-5, atol=1e-6)
