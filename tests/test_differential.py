"""Differential testing: vectorized engine vs scalar interpreter.

The scalar interpreter executes loop bodies with real control flow, one
iteration at a time; the vectorizer executes them with predication and
flattening.  Any program both accept must produce identical effects.
Hypothesis generates random inputs for a family of parameterized
programs covering every translation strategy (predication, constant
inner loops, CSR flattening, reductions, dirty-bit stores, miss-checked
stores), and for each we also vary the GPU count so the partitioning
and communication layers are inside the differential net.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from tests.util import compare_engines

_SETTINGS = dict(max_examples=25, deadline=None)

floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False,
                   width=32)


def farr(draw, n, lo=-100.0, hi=100.0):
    vals = draw(st.lists(st.floats(min_value=lo, max_value=hi,
                                   allow_nan=False, width=32),
                         min_size=n, max_size=n))
    return np.array(vals, dtype=np.float32)


class TestElementwisePrograms:
    SRC = """
    void k(int n, float a, float *x, float *y) {
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        float t = a * x[i] + 1.0f;
        if (t > 0.0f) { y[i] = t; } else { y[i] = -t * 0.5f; }
      }
    }
    """

    @given(st.data(), st.integers(1, 17), st.integers(1, 3))
    @settings(**_SETTINGS)
    def test_predicated_elementwise(self, data, n, ngpus):
        x = farr(data.draw, n)
        a = data.draw(floats)
        machine = "desktop" if ngpus <= 2 else "supercomputer"
        compare_engines(
            self.SRC,
            lambda: {"n": n, "a": a, "x": x.copy(),
                     "y": np.zeros(n, np.float32)},
            ngpus_list=(1, ngpus), machine=machine)


class TestGatherScatter:
    SRC = """
    void k(int n, int m, int *idx, float *x, float *y) {
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        y[idx[i]] = x[i] + 1.0f;
      }
    }
    """

    @given(st.data(), st.integers(1, 12), st.integers(1, 2))
    @settings(**_SETTINGS)
    def test_replica_scatter_with_dirty_bits(self, data, n, ngpus):
        m = n + data.draw(st.integers(0, 5))
        # Unique destinations: duplicate scatter order differs between a
        # sequential interpreter and fancy assignment, and is a race in
        # the source program anyway.
        idx = np.array(data.draw(st.permutations(list(range(m))))[:n],
                       dtype=np.int32)
        x = farr(data.draw, n)
        compare_engines(
            self.SRC,
            lambda: {"n": n, "m": m, "idx": idx.copy(), "x": x.copy(),
                     "y": np.zeros(m, np.float32)},
            ngpus_list=(1, ngpus))


class TestMissCheckedScatter:
    SRC = """
    void k(int n, int shift, float *x, float *y) {
      #pragma acc localaccess x[stride(1)] y[stride(1)]
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        y[(i + shift) % n] = 2.0f * x[i];
      }
    }
    """

    @given(st.data(), st.integers(2, 24), st.integers(0, 23),
           st.integers(1, 3))
    @settings(**_SETTINGS)
    def test_distributed_scatter_with_miss_routing(self, data, n, shift,
                                                   ngpus):
        x = farr(data.draw, n)
        machine = "desktop" if ngpus <= 2 else "supercomputer"
        compare_engines(
            self.SRC,
            lambda: {"n": n, "shift": shift, "x": x.copy(),
                     "y": np.zeros(n, np.float32)},
            ngpus_list=(1, ngpus), machine=machine)


class TestConstantInnerLoop:
    SRC = """
    void k(int n, int m, float *x, float *y) {
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        float s = 0.0f;
        for (int j = 0; j < m; j++) {
          float v = x[i * m + j];
          if (v > 0.0f) { s += v; }
        }
        y[i] = s;
      }
    }
    """

    @given(st.data(), st.integers(1, 8), st.integers(0, 6),
           st.integers(1, 2))
    @settings(**_SETTINGS)
    def test_masked_accumulation(self, data, n, m, ngpus):
        x = farr(data.draw, max(1, n * m))
        compare_engines(
            self.SRC,
            lambda: {"n": n, "m": m, "x": x.copy(),
                     "y": np.zeros(n, np.float32)},
            ngpus_list=(1, ngpus))


class TestCsrPrograms:
    SRC = """
    void k(int n, int *row, int *col, float *vals, float *y, int *touched) {
      #pragma acc localaccess row[stride(1, 0, 1)]
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        float s = 0.0f;
        for (int e = row[i]; e < row[i + 1]; e++) {
          if (vals[e] > 0.0f) {
            s += vals[e];
            touched[col[e]] = 1;
          }
        }
        y[i] = s;
      }
    }
    """

    @given(st.data(), st.integers(1, 10), st.integers(1, 2))
    @settings(**_SETTINGS)
    def test_csr_flatten_with_scatter(self, data, n, ngpus):
        degrees = data.draw(st.lists(st.integers(0, 5), min_size=n,
                                     max_size=n))
        row = np.zeros(n + 1, dtype=np.int32)
        row[1:] = np.cumsum(degrees)
        ne = int(row[-1])
        col = np.array(
            [data.draw(st.integers(0, n - 1)) for _ in range(ne)],
            dtype=np.int32) if ne else np.zeros(0, np.int32)
        vals = farr(data.draw, max(1, ne))[:ne] if ne else \
            np.zeros(0, np.float32)
        compare_engines(
            self.SRC,
            lambda: {"n": n, "row": row.copy(), "col": col.copy(),
                     "vals": vals.copy(), "y": np.zeros(n, np.float32),
                     "touched": np.zeros(n, np.int32)},
            ngpus_list=(1, ngpus))


class TestScalarReductions:
    SRC = """
    float k(int n, float thresh, float *x) {
      float total = 5.0f;
      #pragma acc parallel loop reduction(+:total)
      for (int i = 0; i < n; i++) {
        if (x[i] > thresh) { total += x[i]; }
      }
      return total;
    }
    """

    @given(st.data(), st.integers(1, 30), st.integers(1, 3))
    @settings(**_SETTINGS)
    def test_masked_sum(self, data, n, ngpus):
        from tests.util import run_source

        x = farr(data.draw, n, lo=-10, hi=10)
        thresh = data.draw(st.floats(min_value=-5, max_value=5, width=32))
        machine = "desktop" if ngpus <= 2 else "supercomputer"
        vals = []
        for engine in ("vector", "interp"):
            for g in (1, ngpus):
                _, run = run_source(
                    self.SRC, {"n": n, "thresh": thresh, "x": x.copy()},
                    ngpus=g, machine=machine, engine=engine)
                vals.append(run.value)
        assert all(abs(v - vals[0]) <= 1e-3 * max(1.0, abs(vals[0]))
                   for v in vals)


class TestReductionToArray:
    SRC = """
    void k(int n, int nb, int *bin, float *w, float *hist) {
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        #pragma acc reductiontoarray(+: hist[0:nb])
        hist[bin[i]] += w[i];
      }
    }
    """

    @given(st.data(), st.integers(1, 30), st.integers(1, 6),
           st.integers(1, 3))
    @settings(**_SETTINGS)
    def test_histogram(self, data, n, nb, ngpus):
        bins = np.array([data.draw(st.integers(0, nb - 1))
                         for _ in range(n)], dtype=np.int32)
        w = farr(data.draw, n, lo=0, hi=10)
        machine = "desktop" if ngpus <= 2 else "supercomputer"
        compare_engines(
            self.SRC,
            lambda: {"n": n, "nb": nb, "bin": bins.copy(), "w": w.copy(),
                     "hist": np.zeros(nb, np.float32)},
            ngpus_list=(1, ngpus), machine=machine, rtol=1e-4, atol=1e-4)


class TestHaloStencil:
    SRC = """
    void k(int n, float *a, float *b) {
      #pragma acc localaccess a[stride(1, 1, 1)] b[stride(1)]
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        if (i > 0 && i < n - 1) {
          b[i] = a[i - 1] + a[i] + a[i + 1];
        } else {
          b[i] = a[i];
        }
      }
    }
    """

    @given(st.data(), st.integers(1, 40), st.integers(1, 3))
    @settings(**_SETTINGS)
    def test_halo_windows(self, data, n, ngpus):
        a = farr(data.draw, n)
        machine = "desktop" if ngpus <= 2 else "supercomputer"
        compare_engines(
            self.SRC,
            lambda: {"n": n, "a": a.copy(), "b": np.zeros(n, np.float32)},
            ngpus_list=(1, ngpus), machine=machine)
