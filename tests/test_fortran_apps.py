"""Cross-frontend application check: the MD benchmark written in
Fortran must produce bit-identical results to the C version -- both
lower to the same AST and the same generated kernels."""

import numpy as np

import repro
from repro.apps.md import SPEC as MD_C

MD_FORTRAN = """
subroutine md(natoms, maxneigh, cutsq, lj1, lj2, pos, neigh, force)
  integer :: natoms, maxneigh
  real :: cutsq, lj1, lj2
  real :: pos(natoms * 3)
  integer :: neigh(natoms * maxneigh)
  real :: force(natoms * 3)
  integer :: i, jj, j
  real :: ix, iy, iz, fx, fy, fz
  real :: dx, dy, dz, r2, r2inv, r6inv, fc
  !$acc data copyin(pos[0:natoms*3], neigh[0:natoms*maxneigh]) copyout(force[0:natoms*3])
  !$acc parallel
  !$acc localaccess neigh[stride(maxneigh)] force[stride(3)]
  !$acc loop gang private(ix, iy, iz, fx, fy, fz, dx, dy, dz, r2, r2inv, r6inv, fc, j)
  do i = 1, natoms
    ix = pos((i - 1) * 3 + 1)
    iy = pos((i - 1) * 3 + 2)
    iz = pos((i - 1) * 3 + 3)
    fx = 0.0
    fy = 0.0
    fz = 0.0
    do jj = 1, maxneigh
      j = neigh((i - 1) * maxneigh + jj)
      dx = ix - pos(j * 3 + 1)
      dy = iy - pos(j * 3 + 2)
      dz = iz - pos(j * 3 + 3)
      r2 = dx * dx + dy * dy + dz * dz
      if (r2 < cutsq) then
        r2inv = 1.0 / r2
        r6inv = r2inv * r2inv * r2inv
        fc = r2inv * r6inv * (lj1 * r6inv - lj2)
        fx = fx + dx * fc
        fy = fy + dy * fc
        fz = fz + dz * fc
      end if
    end do
    force((i - 1) * 3 + 1) = fx
    force((i - 1) * 3 + 2) = fy
    force((i - 1) * 3 + 3) = fz
  end do
  !$acc end parallel
  !$acc end data
end subroutine md
"""
# Note the neighbor gather: the C source indexes pos[j*3] with j a
# 0-based atom id; the Fortran twin therefore reads pos(j*3 + 1) --
# element number j*3+1 is 0-based index j*3.


class TestFortranMd:
    def run_both(self, ngpus):
        args_c = MD_C.args_for("tiny")
        c_prog = repro.compile(MD_C.source)
        c_prog.run(MD_C.entry, args_c, machine="desktop", ngpus=ngpus)

        args_f = MD_C.args_for("tiny")
        f_prog = repro.compile_fortran(MD_FORTRAN)
        f_prog.run("md", args_f, machine="desktop", ngpus=ngpus)
        return args_c, args_f, c_prog, f_prog

    def test_identical_forces_1gpu(self):
        c, f, _, _ = self.run_both(1)
        np.testing.assert_array_equal(c["force"], f["force"])

    def test_identical_forces_2gpu(self):
        c, f, _, _ = self.run_both(2)
        np.testing.assert_array_equal(c["force"], f["force"])

    def test_identical_array_configs(self):
        _, _, c_prog, f_prog = self.run_both(1)
        c_cfg = c_prog.kernel("md_L0").config.arrays
        f_cfg = f_prog.kernel("md_L0").config.arrays
        assert set(c_cfg) == set(f_cfg)
        for name in c_cfg:
            assert c_cfg[name].placement == f_cfg[name].placement, name
            assert c_cfg[name].write_handling == \
                f_cfg[name].write_handling, name

    def test_fortran_kernel_vectorized(self):
        f_prog = repro.compile_fortran(MD_FORTRAN)
        plan = f_prog.kernel("md_L0")
        assert plan.fn is not None, plan.vectorize_error
