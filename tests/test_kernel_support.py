"""Property-based tests on the generated-code helper primitives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.translator import kernel_support as ks


class TestFlatRanges:
    def test_simple(self):
        lo = np.array([0, 5, 2])
        cnt = np.array([2, 0, 3])
        np.testing.assert_array_equal(ks.flat_ranges(lo, cnt),
                                      [0, 1, 2, 3, 4])

    def test_empty(self):
        out = ks.flat_ranges(np.array([3]), np.array([0]))
        assert out.size == 0

    def test_negative_counts_clamped(self):
        out = ks.flat_ranges(np.array([0, 1]), np.array([-3, 2]))
        np.testing.assert_array_equal(out, [1, 2])

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 6)),
                    min_size=0, max_size=20))
    @settings(max_examples=80, deadline=None)
    def test_matches_python_ranges(self, pairs):
        lo = np.array([p[0] for p in pairs], dtype=np.int64)
        cnt = np.array([p[1] for p in pairs], dtype=np.int64)
        expect = [v for l, c in pairs for v in range(l, l + c)]
        np.testing.assert_array_equal(ks.flat_ranges(lo, cnt), expect)


class TestSelectionHelpers:
    def test_msel_none_passthrough(self):
        v = np.arange(4)
        assert ks.msel(v, None) is v
        assert ks.msel(3.5, None) == 3.5

    def test_msel_scalar_passthrough_under_mask(self):
        assert ks.msel(3.5, np.array([True, False])) == 3.5

    def test_msel_vector(self):
        v = np.arange(4)
        np.testing.assert_array_equal(
            ks.msel(v, np.array([True, False, True, False])), [0, 2])

    def test_bcv_scalar(self):
        out = ks.bcv(2.0, 4, np.float32)
        assert out.shape == (4,) and out.dtype == np.float32

    def test_bcv_vector_passthrough(self):
        v = np.arange(4, dtype=np.float32)
        assert ks.bcv(v, 4, None) is v

    def test_bcv_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            ks.bcv(np.arange(3), 4, None)

    def test_lanes_of(self):
        assert ks.lanes_of(None, 7) == 7
        assert ks.lanes_of(np.array([True, False, True]), 3) == 2

    def test_ld_clips(self):
        arr = np.arange(4.0)
        out = ks.ld(arr, np.array([-5, 0, 3, 99]))
        np.testing.assert_array_equal(out, [0, 0, 3, 3])
        assert ks.ld(arr, 99) == 3.0

    def test_merge_none_mask(self):
        old = np.zeros(3)
        out = ks.merge(old, np.ones(3), None)
        np.testing.assert_array_equal(out, 1)

    def test_merge_masked(self):
        out = ks.merge(np.zeros(3), np.ones(3),
                       np.array([True, False, True]))
        np.testing.assert_array_equal(out, [1, 0, 1])

    def test_merge_scalar_new_value(self):
        out = ks.merge(np.zeros(3), 5.0, None)
        np.testing.assert_array_equal(out, [5, 5, 5])


class TestStore:
    def test_plain_assign(self):
        a = np.zeros(4)
        ks.store(a, np.array([1, 3]), np.array([10.0, 30.0]))
        np.testing.assert_array_equal(a, [0, 10, 0, 30])

    def test_compound_accumulates_duplicates(self):
        a = np.zeros(3)
        ks.store(a, np.array([1, 1, 1]), np.array([1.0, 2.0, 3.0]), "+")
        assert a[1] == 6.0

    def test_max_store(self):
        a = np.zeros(2)
        ks.store(a, np.array([0, 0]), np.array([3.0, 1.0]), "max")
        assert a[0] == 3.0

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            ks.store(np.zeros(2), np.array([0]), np.array([1.0]), "?")


class TestRedFold:
    def test_sum_vector(self):
        acc = ks.red_fold("+", 0.0, np.arange(5.0), None, 5)
        assert acc == 10.0

    def test_sum_scalar_times_lanes(self):
        acc = ks.red_fold("+", 0.0, 2.0, None, 6)
        assert acc == 12.0

    def test_sum_scalar_under_mask(self):
        mask = np.array([True, False, True])
        assert ks.red_fold("+", 0.0, 1.0, mask, 3) == 2.0

    def test_empty_mask_identity(self):
        mask = np.zeros(3, dtype=bool)
        assert ks.red_fold("+", 7.0, np.arange(3.0), mask, 3) == 7.0

    def test_max_min(self):
        assert ks.red_fold("max", ks.red_identity("max"),
                           np.array([3.0, 9.0]), None, 2) == 9.0
        assert ks.red_fold("min", ks.red_identity("min"),
                           np.array([3.0, 9.0]), None, 2) == 3.0

    def test_logical_or_and(self):
        assert ks.red_fold("||", False, np.array([0, 1, 0]), None, 3) is True
        assert ks.red_fold("&&", True, np.array([1, 0]), None, 2) is False

    def test_product(self):
        assert ks.red_fold("*", 1.0, np.array([2.0, 3.0]), None, 2) == 6.0

    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3, width=32),
                    min_size=0, max_size=30),
           st.sampled_from(["+", "max", "min"]))
    @settings(max_examples=80, deadline=None)
    def test_fold_matches_sequential(self, vals, op):
        arr = np.array(vals, dtype=np.float64)
        acc = ks.red_fold(op, ks.red_identity(op), arr, None, len(vals)) \
            if len(vals) else ks.red_identity(op)
        seq = ks.red_identity(op)
        for v in vals:
            seq = {"+": lambda a, b: a + b,
                   "max": max, "min": min}[op](seq, v)
        assert acc == pytest.approx(seq, rel=1e-9) if vals else True

    def test_cast_to(self):
        assert ks.cast_to(3.7, np.int32) == 3
        out = ks.cast_to(np.array([1.9, 2.1]), np.int32)
        assert out.dtype == np.int32
        np.testing.assert_array_equal(out, [1, 2])
