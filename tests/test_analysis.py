"""Access-pattern analysis tests: affine forms, loop normalization,
read/write classification, inner-loop shapes, opaque locals."""

import pytest

from repro.frontend import cast as C
from repro.frontend.analysis import (
    AnalysisError,
    affine_in,
    analyze_loop,
    const_value,
    expr_mentions,
    normalize_loop,
)
from repro.frontend.parser import parse, parse_expr


def loop_of(src, which=0):
    prog = parse(src)
    f = prog.functions[0]
    loops = [s for s in C.walk(f.body) if isinstance(s, C.For)]
    return loops[which]


def analyze(src, arrays, scalars=()):
    nest = normalize_loop(loop_of(src))
    return analyze_loop(nest, set(arrays), set(scalars))


class TestConstFolding:
    def test_literals(self):
        assert const_value(parse_expr("42")) == 42

    def test_arithmetic(self):
        assert const_value(parse_expr("2 * 3 + 4")) == 10
        assert const_value(parse_expr("7 / 2")) == 3
        assert const_value(parse_expr("7 % 3")) == 1

    def test_negation(self):
        assert const_value(parse_expr("-5")) == -5

    def test_symbolic_is_none(self):
        assert const_value(parse_expr("n + 1")) is None

    def test_division_by_zero_is_none(self):
        assert const_value(parse_expr("1 / 0")) is None


class TestAffine:
    def test_plain_var(self):
        f = affine_in(parse_expr("i"), "i")
        assert f.coeff == 1 and const_value(f.offset) == 0

    def test_constant(self):
        f = affine_in(parse_expr("7"), "i")
        assert f.coeff == 0 and const_value(f.offset) == 7

    def test_linear(self):
        f = affine_in(parse_expr("3 * i + 2"), "i")
        assert f.coeff == 3 and const_value(f.offset) == 2

    def test_var_times_const_on_left(self):
        assert affine_in(parse_expr("i * 4"), "i").coeff == 4

    def test_subtraction(self):
        f = affine_in(parse_expr("2*i - j"), "i")
        assert f.coeff == 2
        assert expr_mentions(f.offset, {"j"})

    def test_negated_var(self):
        assert affine_in(parse_expr("-i"), "i").coeff == -1

    def test_nested_parens(self):
        f = affine_in(parse_expr("2 * (i + 3)"), "i")
        assert f.coeff == 2 and const_value(f.offset) == 6

    def test_symbolic_coefficient_not_affine(self):
        assert affine_in(parse_expr("i * n"), "i") is None

    def test_quadratic_not_affine(self):
        assert affine_in(parse_expr("i * i"), "i") is None

    def test_division_of_var_not_affine(self):
        assert affine_in(parse_expr("i / 2"), "i") is None

    def test_var_free_division_is_offset(self):
        f = affine_in(parse_expr("n / 2"), "i")
        assert f is not None and f.coeff == 0

    def test_subscript_free_of_var_is_offset(self):
        f = affine_in(parse_expr("a[j] + i"), "i")
        assert f is not None and f.coeff == 1

    def test_subscript_of_var_not_affine(self):
        assert affine_in(parse_expr("a[i]"), "i") is None


class TestNormalizeLoop:
    def test_canonical(self):
        nest = normalize_loop(loop_of(
            "void f(int n) { for (int i = 0; i < n; i++) { } }"))
        assert nest.var == "i"
        assert const_value(nest.lower) == 0
        assert isinstance(nest.upper, C.Ident)

    def test_le_condition_adds_one(self):
        nest = normalize_loop(loop_of(
            "void f(int n) { for (int i = 0; i <= n; i++) { } }"))
        assert isinstance(nest.upper, C.BinOp) and nest.upper.op == "+"

    def test_plus_equals_step(self):
        nest = normalize_loop(loop_of(
            "void f(int n) { for (int i = 0; i < n; i += 1) { } }"))
        assert nest.var == "i"

    def test_i_equals_i_plus_one(self):
        nest = normalize_loop(loop_of(
            "void f(int n) { int i; for (i = 0; i < n; i = i + 1) { } }"))
        assert nest.var == "i"

    def test_nonunit_step_rejected(self):
        with pytest.raises(AnalysisError):
            normalize_loop(loop_of(
                "void f(int n) { for (int i = 0; i < n; i += 2) { } }"))

    def test_downward_loop_rejected(self):
        with pytest.raises(AnalysisError):
            normalize_loop(loop_of(
                "void f(int n) { for (int i = n; i > 0; i++) { } }"))

    def test_uninitialized_var_rejected(self):
        with pytest.raises(AnalysisError):
            normalize_loop(loop_of(
                "void f(int n) { for (int i; i < n; i++) { } }"))


class TestReadWriteSets:
    SRC = """
    void f(int n, float *x, float *y, float *z) {
      for (int i = 0; i < n; i++) {
        float t = x[i] * 2.0f;
        y[i] = t;
        z[i] += t;
      }
    }
    """

    def test_classification(self):
        la = analyze(self.SRC, {"x", "y", "z"}, {"n"})
        assert la.arrays["x"].read_only
        assert la.arrays["y"].write_only
        assert la.arrays["z"].is_read and la.arrays["z"].is_written

    def test_compound_assign_counts_as_read(self):
        la = analyze(self.SRC, {"x", "y", "z"}, {"n"})
        assert not la.arrays["z"].write_only

    def test_host_scalars_found(self):
        src = """
        void f(int n, float a, float *x) {
          for (int i = 0; i < n; i++) { x[i] = a * 2.0f + b; }
        }
        """
        la = analyze(src, {"x"}, {"n", "a", "b"})
        assert set(la.host_scalars) >= {"a", "b"}

    def test_locals_found(self):
        la = analyze(self.SRC, {"x", "y", "z"}, {"n"})
        assert "t" in la.locals_

    def test_affine_write_detected(self):
        la = analyze(self.SRC, {"x", "y", "z"}, {"n"})
        assert la.arrays["y"].writes_affine

    def test_data_dependent_index_not_affine(self):
        src = """
        void f(int n, int *idx, float *x) {
          for (int i = 0; i < n; i++) {
            int j = idx[i];
            x[j] = 1.0f;
          }
        }
        """
        la = analyze(src, {"idx", "x"}, {"n"})
        assert not la.arrays["x"].writes_affine

    def test_direct_indirect_index(self):
        src = """
        void f(int n, int *idx, float *x) {
          for (int i = 0; i < n; i++) { x[idx[i]] = 1.0f; }
        }
        """
        la = analyze(src, {"idx", "x"}, {"n"})
        acc = la.arrays["x"].accesses[0]
        assert acc.affine is None and acc.data_dependent


class TestInnerLoops:
    def test_constant_trip(self):
        src = """
        void f(int n, int m, float *x) {
          for (int i = 0; i < n; i++) {
            for (int j = 0; j < m; j++) { x[i] += 1.0f; }
          }
        }
        """
        la = analyze(src, {"x"}, {"n", "m"})
        assert la.inner_loops[0].kind == "constant"

    def test_csr_pattern(self):
        src = """
        void f(int n, int *row, float *x) {
          for (int i = 0; i < n; i++) {
            for (int e = row[i]; e < row[i+1]; e++) { x[i] += 1.0f; }
          }
        }
        """
        la = analyze(src, {"row", "x"}, {"n"})
        assert la.inner_loops[0].kind == "csr"

    def test_opaque_bounds(self):
        src = """
        void f(int n, int *a, int *b, float *x) {
          for (int i = 0; i < n; i++) {
            for (int e = a[i] + b[i]; e < a[i+1]; e++) { x[i] += 1.0f; }
          }
        }
        """
        la = analyze(src, {"a", "b", "x"}, {"n"})
        assert la.inner_loops[0].kind == "opaque"

    def test_while_in_body_rejected(self):
        src = """
        void f(int n, float *x) {
          for (int i = 0; i < n; i++) {
            while (x[i] > 0.0f) { x[i] -= 1.0f; }
          }
        }
        """
        with pytest.raises(AnalysisError):
            analyze(src, {"x"}, {"n"})


class TestDirectiveCollection:
    def test_reductiontoarray_collected(self):
        src = """
        void f(int n, int *m, float *c) {
          for (int i = 0; i < n; i++) {
            #pragma acc reductiontoarray(+: c[0:8])
            c[m[i]] += 1.0f;
          }
        }
        """
        la = analyze(src, {"m", "c"}, {"n"})
        assert len(la.array_reductions) == 1
        assert la.array_reductions[0].array == "c"

    def test_scalar_reduction_from_directive(self):
        src = """
        void f(int n, float *x) {
          #pragma acc loop reduction(+:total)
          for (int i = 0; i < n; i++) { total += x[i]; }
        }
        """
        loop = loop_of(src)
        from repro.frontend.directives import AccLoop
        d = next(d for d in loop.directives if isinstance(d, AccLoop))
        nest = normalize_loop(loop, d)
        la = analyze_loop(nest, {"x"}, {"n", "total"})
        assert la.scalar_reductions == [("+", "total")]
