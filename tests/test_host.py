"""Host-program executor tests: control flow, functions, data regions,
update directives, implicit data attributes."""

import numpy as np
import pytest

from repro.translator.host import HostError
from tests.util import run_source


class TestControlFlow:
    def test_host_for_loop(self):
        src = """
        int k() {
          int s = 0;
          for (int i = 0; i < 5; i++) { s += i; }
          return s;
        }
        """
        _, run = run_source(src, {})
        assert run.value == 10

    def test_host_while_with_break(self):
        src = """
        int k() {
          int i = 0;
          while (1) {
            i = i + 1;
            if (i >= 7) { break; }
          }
          return i;
        }
        """
        _, run = run_source(src, {})
        assert run.value == 7

    def test_continue(self):
        src = """
        int k() {
          int s = 0;
          for (int i = 0; i < 10; i++) {
            if (i % 2 == 0) { continue; }
            s += i;
          }
          return s;
        }
        """
        _, run = run_source(src, {})
        assert run.value == 25

    def test_nested_loops(self):
        src = """
        int k() {
          int s = 0;
          for (int i = 0; i < 3; i++) {
            for (int j = 0; j < 4; j++) { s += 1; }
          }
          return s;
        }
        """
        _, run = run_source(src, {})
        assert run.value == 12

    def test_host_array_declaration_and_use(self):
        src = """
        float k(int n) {
          float tmp[10];
          for (int i = 0; i < n; i++) { tmp[i] = i * 2.0; }
          return tmp[n - 1];
        }
        """
        _, run = run_source(src, {"n": 5})
        assert run.value == pytest.approx(8.0)

    def test_ternary_on_host(self):
        src = "int k(int x) { return x > 0 ? 1 : -1; }"
        _, run = run_source(src, {"x": -5})
        assert run.value == -1

    def test_integer_division_truncation(self):
        src = "int k(int a, int b) { return a / b; }"
        _, run = run_source(src, {"a": 7, "b": 2})
        assert run.value == 3


class TestFunctions:
    def test_call_with_scalar_args(self):
        src = """
        int square(int x) { return x * x; }
        int k(int v) { return square(v) + square(2); }
        """
        _, run = run_source(src, {"v": 3}, entry="k")
        assert run.value == 13

    def test_array_passed_by_reference(self):
        src = """
        void fill(int n, float *a) {
          for (int i = 0; i < n; i++) { a[i] = 9.0f; }
        }
        void k(int n, float *a) { fill(n, a); }
        """
        args, _ = run_source(src, {"n": 4, "a": np.zeros(4, np.float32)},
                             entry="k")
        assert (args["a"] == 9.0).all()

    def test_printf_is_noop(self):
        src = 'int k() { printf("hello %d", 1); return 1; }'
        _, run = run_source(src, {})
        assert run.value == 1

    def test_unknown_function_rejected(self):
        src = "int k() { return mystery(); }"
        with pytest.raises(HostError):
            run_source(src, {})

    def test_wrong_arity_rejected(self):
        src = """
        int one(int x) { return x; }
        int k() { return one(1, 2); }
        """
        with pytest.raises(HostError):
            run_source(src, {}, entry="k")

    def test_recursion(self):
        src = """
        int fact(int n) {
          if (n <= 1) { return 1; }
          return n * fact(n - 1);
        }
        int k(int n) { return fact(n); }
        """
        _, run = run_source(src, {"n": 5}, entry="k")
        assert run.value == 120


class TestArguments:
    def test_missing_argument(self):
        with pytest.raises(HostError):
            run_source("int k(int n) { return n; }", {})

    def test_unknown_argument(self):
        with pytest.raises(HostError):
            run_source("int k() { return 0; }", {"bogus": 1})

    def test_dtype_checked(self):
        src = "void k(int n, float *x) { }"
        with pytest.raises(HostError):
            run_source(src, {"n": 1, "x": np.zeros(4, np.float64)})

    def test_2d_argument_rejected(self):
        src = "void k(float *x) { }"
        with pytest.raises(HostError):
            run_source(src, {"x": np.zeros((2, 2), np.float32)})

    def test_scalar_coercion(self):
        _, run = run_source("float k(float v) { return v; }", {"v": 3})
        assert run.value == pytest.approx(3.0)


class TestDataRegions:
    def test_copy_roundtrip(self):
        src = """
        void k(int n, float *x) {
          #pragma acc data copy(x[0:n])
          {
            #pragma acc parallel loop
            for (int i = 0; i < n; i++) { x[i] = x[i] + 1.0f; }
          }
        }
        """
        args, _ = run_source(src, {"n": 4, "x": np.zeros(4, np.float32)},
                             ngpus=2)
        assert (args["x"] == 1.0).all()

    def test_copyin_does_not_write_back(self):
        src = """
        void k(int n, float *x, float *y) {
          #pragma acc data copyin(x[0:n]) copyout(y[0:n])
          {
            #pragma acc parallel loop
            for (int i = 0; i < n; i++) { y[i] = x[i]; }
          }
        }
        """
        x = np.arange(4, dtype=np.float32)
        args, _ = run_source(src, {"n": 4, "x": x,
                                   "y": np.zeros(4, np.float32)})
        assert (args["y"] == x).all()

    def test_update_host_mid_region(self):
        src = """
        float k(int n, float *x) {
          float seen = 0.0f;
          #pragma acc data copy(x[0:n])
          {
            #pragma acc parallel loop
            for (int i = 0; i < n; i++) { x[i] = 5.0f; }
            #pragma acc update host(x[0:n])
            seen = x[0];
          }
          return seen;
        }
        """
        _, run = run_source(src, {"n": 4, "x": np.zeros(4, np.float32)},
                            ngpus=2)
        assert run.value == pytest.approx(5.0)

    def test_update_device_mid_region(self):
        src = """
        void k(int n, float *x, float *y) {
          #pragma acc data copyin(x[0:n]) copyout(y[0:n])
          {
            for (int i = 0; i < n; i++) { x[i] = 100.0f; }
            #pragma acc update device(x[0:n])
            #pragma acc parallel loop
            for (int i = 0; i < n; i++) { y[i] = x[i]; }
          }
        }
        """
        args, _ = run_source(src, {"n": 4, "x": np.zeros(4, np.float32),
                                   "y": np.zeros(4, np.float32)}, ngpus=2)
        assert (args["y"] == 100.0).all()

    def test_stale_device_copy_without_update(self):
        # Host writes inside a data region are NOT visible to kernels
        # without update device -- OpenACC semantics.
        src = """
        void k(int n, float *x, float *y) {
          #pragma acc data copyin(x[0:n]) copyout(y[0:n])
          {
            for (int i = 0; i < n; i++) { x[i] = 100.0f; }
            #pragma acc parallel loop
            for (int i = 0; i < n; i++) { y[i] = x[i]; }
          }
        }
        """
        x = np.ones(4, dtype=np.float32)
        args, _ = run_source(src, {"n": 4, "x": x,
                                   "y": np.zeros(4, np.float32)})
        assert (args["y"] == 1.0).all()  # device still has the old values

    def test_implicit_copy_for_unlisted_arrays(self):
        src = """
        void k(int n, float *x) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { x[i] = 3.0f; }
        }
        """
        args, _ = run_source(src, {"n": 4, "x": np.zeros(4, np.float32)},
                             ngpus=2)
        assert (args["x"] == 3.0).all()

    def test_present_over_enclosing_region(self):
        src = """
        void k(int n, float *x) {
          #pragma acc data copy(x[0:n])
          {
            #pragma acc parallel present(x[0:n])
            {
              #pragma acc loop gang
              for (int i = 0; i < n; i++) { x[i] = 2.0f; }
            }
          }
        }
        """
        args, _ = run_source(src, {"n": 4, "x": np.zeros(4, np.float32)})
        assert (args["x"] == 2.0).all()

    def test_present_without_region_rejected(self):
        src = """
        void k(int n, float *x) {
          #pragma acc parallel present(x[0:n])
          {
            #pragma acc loop gang
            for (int i = 0; i < n; i++) { x[i] = 2.0f; }
          }
        }
        """
        with pytest.raises(HostError):
            run_source(src, {"n": 4, "x": np.zeros(4, np.float32)})

    def test_loop_bounds_from_host_expression(self):
        src = """
        void k(int n, float *x) {
          int half = n / 2;
          #pragma acc parallel loop
          for (int i = 0; i < half; i++) { x[i] = 1.0f; }
        }
        """
        args, _ = run_source(src, {"n": 8, "x": np.zeros(8, np.float32)},
                             ngpus=2)
        np.testing.assert_array_equal(args["x"], [1] * 4 + [0] * 4)

    def test_kernel_reruns_inside_host_loop(self):
        src = """
        void k(int n, int steps, float *x) {
          #pragma acc data copy(x[0:n])
          {
            for (int s = 0; s < steps; s++) {
              #pragma acc parallel loop
              for (int i = 0; i < n; i++) { x[i] = x[i] + 1.0f; }
            }
          }
        }
        """
        args, run = run_source(src, {"n": 4, "steps": 5,
                                     "x": np.zeros(4, np.float32)}, ngpus=2)
        assert (args["x"] == 5.0).all()
        assert len(run.loop_stats) == 5
