"""Parser unit tests: declarations, statements, expressions, pragmas."""

import pytest

from repro.frontend import cast as C
from repro.frontend.directives import AccLoop, AccParallel
from repro.frontend.parser import ParseError, parse, parse_expr


def first_func(src):
    return parse(src).functions[0]


def body_of(src):
    return first_func(src).body.body


class TestDeclarations:
    def test_global_scalar(self):
        prog = parse("int n = 10;")
        assert prog.globals[0].name == "n"
        assert prog.globals[0].ctype.base == "int"
        assert isinstance(prog.globals[0].init, C.IntLit)

    def test_global_array(self):
        prog = parse("float data[100];")
        d = prog.globals[0]
        assert d.ctype.is_array
        assert d.ctype.array_dims[0].value == 100

    def test_pointer_declaration(self):
        prog = parse("void f(float *x) {}")
        p = prog.functions[0].params[0]
        assert p.ctype.pointers == 1
        assert p.ctype.is_arraylike

    def test_restrict_pointer(self):
        prog = parse("void f(float * restrict x) {}")
        assert prog.functions[0].params[0].ctype.pointers == 1

    def test_const_qualifier(self):
        prog = parse("void f(const float *x) {}")
        assert prog.functions[0].params[0].ctype.const

    def test_unsigned_int(self):
        prog = parse("unsigned int u;")
        assert prog.globals[0].ctype.base == "unsigned int"

    def test_long_long(self):
        prog = parse("long long big;")
        assert prog.globals[0].ctype.base == "long"

    def test_multi_declarator(self):
        prog = parse("int a = 1, b = 2, c;")
        assert [d.name for d in prog.globals] == ["a", "b", "c"]
        assert prog.globals[2].init is None

    def test_local_declaration_in_body(self):
        stmts = body_of("void f() { int x = 5; }")
        assert isinstance(stmts[0], C.Decl)
        assert stmts[0].name == "x"

    def test_2d_array(self):
        prog = parse("float m[4][8];")
        assert len(prog.globals[0].ctype.array_dims) == 2


class TestFunctions:
    def test_void_params(self):
        f = first_func("int main(void) { return 0; }")
        assert f.params == []
        assert f.return_type.base == "int"

    def test_empty_params(self):
        assert first_func("void f() {}").params == []

    def test_multiple_params(self):
        f = first_func("float g(int n, float *x, double d) { return d; }")
        assert [p.name for p in f.params] == ["n", "x", "d"]

    def test_multiple_functions(self):
        prog = parse("void a() {} void b() {}")
        assert [f.name for f in prog.functions] == ["a", "b"]
        assert prog.function("b").name == "b"

    def test_unknown_function_lookup(self):
        with pytest.raises(KeyError):
            parse("void a() {}").function("zzz")


class TestStatements:
    def test_if_else(self):
        s = body_of("void f(int x) { if (x > 0) x = 1; else x = 2; }")[0]
        assert isinstance(s, C.If)
        assert s.orelse is not None

    def test_dangling_else_binds_inner(self):
        s = body_of(
            "void f(int x) { if (x) if (x > 1) x = 1; else x = 2; }")[0]
        assert isinstance(s, C.If)
        assert s.orelse is None
        assert isinstance(s.then, C.If)
        assert s.then.orelse is not None

    def test_for_loop_with_decl(self):
        s = body_of("void f(int n) { for (int i = 0; i < n; i++) { } }")[0]
        assert isinstance(s, C.For)
        assert isinstance(s.init, C.Decl)
        assert s.init.name == "i"

    def test_for_loop_with_assignment_init(self):
        s = body_of("void f(int n) { int i; for (i = 0; i < n; i++) { } }")[1]
        assert isinstance(s, C.For)
        assert isinstance(s.init, C.ExprStmt)

    def test_for_empty_clauses(self):
        s = body_of("void f() { for (;;) break; }")[0]
        assert s.init is None and s.cond is None and s.step is None

    def test_while(self):
        s = body_of("void f(int x) { while (x) x = x - 1; }")[0]
        assert isinstance(s, C.While)

    def test_break_continue(self):
        stmts = body_of("void f() { while (1) { break; continue; } }")
        inner = stmts[0].body.body
        assert isinstance(inner[0], C.Break)
        assert isinstance(inner[1], C.Continue)

    def test_return_value(self):
        s = body_of("int f() { return 41 + 1; }")[0]
        assert isinstance(s, C.Return)
        assert isinstance(s.value, C.BinOp)

    def test_empty_statement(self):
        s = body_of("void f() { ; }")[0]
        assert isinstance(s, C.ExprStmt) and s.expr is None

    def test_nested_blocks(self):
        s = body_of("void f() { { int x = 1; } }")[0]
        assert isinstance(s, C.Compound)

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("void f() { int x = 1;")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, C.BinOp) and e.op == "+"
        assert isinstance(e.right, C.BinOp) and e.right.op == "*"

    def test_precedence_relational_over_logical(self):
        e = parse_expr("a < b && c > d")
        assert e.op == "&&"

    def test_left_associativity(self):
        e = parse_expr("a - b - c")
        assert e.op == "-" and isinstance(e.left, C.BinOp)
        assert e.left.op == "-"

    def test_parentheses_override(self):
        e = parse_expr("(1 + 2) * 3")
        assert e.op == "*" and isinstance(e.left, C.BinOp)

    def test_unary_minus(self):
        e = parse_expr("-x * y")
        assert e.op == "*" and isinstance(e.left, C.UnOp)

    def test_logical_not(self):
        e = parse_expr("!done")
        assert isinstance(e, C.UnOp) and e.op == "!"

    def test_ternary(self):
        e = parse_expr("a ? b : c")
        assert isinstance(e, C.Ternary)

    def test_nested_ternary_right_assoc(self):
        e = parse_expr("a ? b : c ? d : e")
        assert isinstance(e.other, C.Ternary)

    def test_assignment_right_assoc(self):
        e = parse_expr("a = b = c")
        assert isinstance(e, C.Assign) and isinstance(e.value, C.Assign)

    def test_compound_assignment_op(self):
        e = parse_expr("x += 2")
        assert isinstance(e, C.Assign) and e.op == "+"

    def test_subscript(self):
        e = parse_expr("a[i + 1]")
        assert isinstance(e, C.Index)
        assert e.base_name() == "a"

    def test_multi_subscript_collected(self):
        e = parse_expr("m[i][j]")
        assert isinstance(e, C.Index) and len(e.indices) == 2

    def test_call_no_args(self):
        e = parse_expr("f()")
        assert isinstance(e, C.Call) and e.args == []

    def test_call_with_args(self):
        e = parse_expr("pow(x, 2.0)")
        assert e.func == "pow" and len(e.args) == 2

    def test_cast(self):
        e = parse_expr("(float)x")
        assert isinstance(e, C.CastExpr) and e.to.base == "float"

    def test_sizeof_type_folds(self):
        e = parse_expr("sizeof(float)")
        assert isinstance(e, C.IntLit) and e.value == 4
        assert parse_expr("sizeof(double)").value == 8

    def test_preincrement_desugars(self):
        e = parse_expr("++i")
        assert isinstance(e, C.Assign) and e.op == "+"

    def test_postincrement_desugars(self):
        e = parse_expr("i--")
        assert isinstance(e, C.Assign) and e.op == "-"

    def test_char_literal_is_int(self):
        e = parse_expr("'A'")
        assert isinstance(e, C.IntLit) and e.value == 65

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("a + b c")

    def test_modulo(self):
        assert parse_expr("a % 4").op == "%"

    def test_bit_ops_precedence(self):
        e = parse_expr("a | b & c")
        assert e.op == "|"


class TestPragmaAttachment:
    SRC = """
    void f(int n, float *x) {
      #pragma acc parallel
      {
        #pragma acc loop gang
        for (int i = 0; i < n; i++) {
          x[i] = 0.0f;
        }
      }
    }
    """

    def test_parallel_attaches_to_compound(self):
        stmts = body_of(self.SRC)
        region = stmts[0]
        assert isinstance(region, C.Compound)
        assert any(isinstance(d, AccParallel) for d in region.directives)

    def test_loop_attaches_to_for(self):
        region = body_of(self.SRC)[0]
        loop = region.body[0]
        assert isinstance(loop, C.For)
        assert any(isinstance(d, AccLoop) for d in loop.directives)

    def test_multiple_pragmas_accumulate(self):
        src = """
        void f(int n, float *x) {
          #pragma acc localaccess x[stride(1)]
          #pragma acc loop gang
          for (int i = 0; i < n; i++) { x[i] = 1.0f; }
        }
        """
        loop = body_of(src)[0]
        assert len(loop.directives) == 2

    def test_non_acc_pragma_ignored(self):
        src = """
        void f(int n) {
          #pragma omp parallel for
          for (int i = 0; i < n; i++) { }
        }
        """
        loop = body_of(src)[0]
        assert loop.directives == []


class TestTraversal:
    def test_walk_visits_nested(self):
        f = first_func("void f() { if (1) { while (0) { int z = 3; } } }")
        kinds = [type(s).__name__ for s in C.walk(f.body)]
        assert "If" in kinds and "While" in kinds and "Decl" in kinds

    def test_all_exprs_reaches_subscripts(self):
        f = first_func("void f(float *a, int i) { a[i * 2] = a[i] + 1.0f; }")
        subs = [e for e in C.all_exprs(f.body) if isinstance(e, C.Index)]
        assert len(subs) == 2
