"""Property tests: the affine analyzer recovers randomly built forms.

Build ``coeff*i + offset`` as a randomized AST shape (distributing the
multiplication, shuffling term order, nesting parentheses), then check
:func:`affine_in` recovers exactly (coeff, offset).
"""

from hypothesis import given, settings, strategies as st

from repro.frontend import cast as C
from repro.frontend.analysis import affine_in, const_value


def build_affine(draw, coeff: int, offset: int, depth: int = 0) -> C.Expr:
    """A random expression provably equal to coeff*i + offset."""
    if depth >= 3:
        return base_form(coeff, offset)
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return base_form(coeff, offset)
    if choice == 1:
        # Split the offset across two affine halves.
        o1 = draw(st.integers(-10, 10))
        c1 = draw(st.integers(-3, 3))
        left = build_affine(draw, c1, o1, depth + 1)
        right = build_affine(draw, coeff - c1, offset - o1, depth + 1)
        return C.BinOp("+", left, right)
    if choice == 2:
        # Subtraction form.
        o1 = draw(st.integers(-10, 10))
        c1 = draw(st.integers(-3, 3))
        left = build_affine(draw, coeff + c1, offset + o1, depth + 1)
        right = build_affine(draw, c1, o1, depth + 1)
        return C.BinOp("-", left, right)
    # Scaling form: coeff and offset must share the factor.
    for k in (2, 3, -2):
        if coeff % k == 0 and offset % k == 0:
            inner = build_affine(draw, coeff // k, offset // k, depth + 1)
            if draw(st.booleans()):
                return C.BinOp("*", inner, C.IntLit(k))
            return C.BinOp("*", C.IntLit(k), inner)
    return base_form(coeff, offset)


def base_form(coeff: int, offset: int) -> C.Expr:
    return C.BinOp("+", C.BinOp("*", C.IntLit(coeff), C.Ident("i")),
                   C.IntLit(offset))


class TestAffineRecovery:
    @given(st.data(), st.integers(-6, 6), st.integers(-50, 50))
    @settings(max_examples=150, deadline=None)
    def test_recovers_coeff_and_offset(self, data, coeff, offset):
        e = build_affine(data.draw, coeff, offset)
        form = affine_in(e, "i")
        assert form is not None
        assert form.coeff == coeff
        assert const_value(form.offset) == offset

    @given(st.integers(-6, 6), st.integers(-50, 50),
           st.integers(-6, 6), st.integers(-50, 50))
    @settings(max_examples=100, deadline=None)
    def test_sums_compose(self, c1, o1, c2, o2):
        e = C.BinOp("+", base_form(c1, o1), base_form(c2, o2))
        form = affine_in(e, "i")
        assert form is not None
        assert form.coeff == c1 + c2
        assert const_value(form.offset) == o1 + o2

    def test_quadratic_rejected(self):
        e = C.BinOp("*", C.Ident("i"), C.Ident("i"))
        assert affine_in(e, "i") is None

    def test_symbolic_times_var_rejected(self):
        e = C.BinOp("*", C.Ident("i"), C.Ident("n"))
        assert affine_in(e, "i") is None
