"""Compiler-driver tests: plan extraction, array configuration decisions,
write-handling selection, and diagnostics."""

import pytest

from repro.translator.array_config import Placement, WriteHandling
from repro.translator.compiler import (
    CompileError,
    CompileOptions,
    compile_source,
)


def plan_of(src, which=0, **opts):
    return compile_source(src, CompileOptions(**opts)).plans[which]


SAXPY = """
void k(int n, float a, float *x, float *y) {
  #pragma acc parallel
  {
    #pragma acc localaccess x[stride(1)] y[stride(1)]
    #pragma acc loop gang
    for (int i = 0; i < n; i++) { y[i] = a * x[i] + y[i]; }
  }
}
"""


class TestPlanExtraction:
    def test_kernel_names(self):
        compiled = compile_source(SAXPY)
        assert compiled.kernel_names() == ["k_L0"]

    def test_fused_parallel_loop(self):
        src = """
        void k(int n, float *x) {
          #pragma acc parallel loop copyin(x[0:n])
          for (int i = 0; i < n; i++) { x[i] = 1.0f; }
        }
        """
        compiled = compile_source(src)
        assert len(compiled.plans) == 1
        assert len(compiled.regions_by_stmt) == 1

    def test_multiple_loops_in_one_region(self):
        src = """
        void k(int n, float *x, float *y) {
          #pragma acc parallel
          {
            #pragma acc loop gang
            for (int i = 0; i < n; i++) { x[i] = 1.0f; }
            #pragma acc loop gang
            for (int i = 0; i < n; i++) { y[i] = 2.0f; }
          }
        }
        """
        compiled = compile_source(src)
        assert compiled.kernel_names() == ["k_L0", "k_L1"]
        region = next(iter(compiled.regions_by_stmt.values()))
        assert len(region.plans) == 2

    def test_two_regions_in_one_function(self):
        src = """
        void k(int n, float *x) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { x[i] = 1.0f; }
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { x[i] = 2.0f; }
        }
        """
        compiled = compile_source(src)
        assert len(compiled.plans) == 2
        assert len(compiled.regions_by_stmt) == 2

    def test_region_without_loop_rejected(self):
        src = """
        void k(int n, float *x) {
          #pragma acc parallel
          { x[0] = 1.0f; }
        }
        """
        with pytest.raises(CompileError):
            compile_source(src)

    def test_fused_loop_on_non_for_rejected(self):
        src = """
        void k(int n, float *x) {
          #pragma acc parallel loop
          { x[0] = 1.0f; }
        }
        """
        with pytest.raises(CompileError):
            compile_source(src)


class TestPlacementDecisions:
    def test_localaccess_gives_distribution(self):
        plan = plan_of(SAXPY)
        assert plan.config.arrays["x"].placement == Placement.DISTRIBUTED
        assert plan.config.arrays["x"].has_localaccess

    def test_no_localaccess_gives_replica(self):
        # Without annotation (and with inference off) arrays replicate;
        # the default pipeline instead infers an equivalent window for
        # this affine loop and distributes (see tests/test_infer.py).
        src = """
        void k(int n, float *x, float *y) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { y[i] = x[i]; }
        }
        """
        plan = plan_of(src, infer=False)
        assert plan.config.arrays["x"].placement == Placement.REPLICA
        assert not plan.config.arrays["x"].has_localaccess
        inferred = plan_of(src).config.arrays["x"]
        assert inferred.placement == Placement.DISTRIBUTED
        assert inferred.window_origin == "inferred"

    def test_all_spec_is_replica_but_counts_as_localaccess(self):
        src = """
        void k(int n, float *x, float *y) {
          #pragma acc localaccess x[all]
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { y[i] = x[i]; }
        }
        """
        cfg = plan_of(src).config.arrays["x"]
        assert cfg.placement == Placement.REPLICA
        assert cfg.has_localaccess

    def test_localaccess_on_untouched_array_rejected(self):
        src = """
        void k(int n, float *x, float *ghost) {
          #pragma acc localaccess ghost[stride(1)]
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { x[i] = 1.0f; }
        }
        """
        with pytest.raises(CompileError):
            compile_source(src)

    def test_duplicate_localaccess_rejected(self):
        src = """
        void k(int n, float *x) {
          #pragma acc localaccess x[stride(1)]
          #pragma acc localaccess x[all]
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { x[i] = 1.0f; }
        }
        """
        with pytest.raises(CompileError):
            compile_source(src)


class TestWriteHandling:
    def test_replica_write_gets_dirty_bits(self):
        src = """
        void k(int n, int *idx, float *x) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { x[idx[i]] = 1.0f; }
        }
        """
        assert plan_of(src).config.arrays["x"].write_handling == \
            WriteHandling.DIRTY_BITS

    def test_proven_local_write(self):
        plan = plan_of(SAXPY)
        assert plan.config.arrays["y"].write_handling == \
            WriteHandling.LOCAL_PROVEN

    def test_proof_respects_halo(self):
        src = """
        void k(int n, float *x, float *y) {
          #pragma acc localaccess y[stride(1, 0, 1)]
          #pragma acc parallel loop
          for (int i = 0; i < n - 1; i++) { y[i + 1] = x[i]; }
        }
        """
        assert plan_of(src).config.arrays["y"].write_handling == \
            WriteHandling.LOCAL_PROVEN

    def test_out_of_window_write_gets_miss_check(self):
        src = """
        void k(int n, float *x, float *y) {
          #pragma acc localaccess y[stride(1)]
          #pragma acc parallel loop
          for (int i = 0; i < n - 5; i++) { y[i + 5] = x[i]; }
        }
        """
        assert plan_of(src).config.arrays["y"].write_handling == \
            WriteHandling.MISS_CHECK

    def test_dynamic_write_gets_miss_check(self):
        src = """
        void k(int n, int *idx, float *y) {
          #pragma acc localaccess y[stride(1)]
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { y[idx[i]] = 1.0f; }
        }
        """
        assert plan_of(src).config.arrays["y"].write_handling == \
            WriteHandling.MISS_CHECK

    def test_elision_disabled_by_option(self):
        plan = plan_of(SAXPY, elide_write_checks=False)
        assert plan.config.arrays["y"].write_handling == \
            WriteHandling.MISS_CHECK

    def test_reduction_destination(self):
        src = """
        void k(int n, int *b, float *h) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            #pragma acc reductiontoarray(+: h[0:4])
            h[b[i]] += 1.0f;
          }
        }
        """
        cfg = plan_of(src).config.arrays["h"]
        assert cfg.write_handling == WriteHandling.REDUCTION
        assert cfg.reduction_op == "+"

    def test_stride_window_mismatch_not_proven(self):
        # Writes with coefficient 2 under a stride-1 window cannot be
        # proven local.
        src = """
        void k(int n, float *y) {
          #pragma acc localaccess y[stride(1)]
          #pragma acc parallel loop
          for (int i = 0; i < n / 2; i++) { y[i * 2] = 1.0f; }
        }
        """
        assert plan_of(src).config.arrays["y"].write_handling == \
            WriteHandling.MISS_CHECK


class TestTableTwoInputs:
    def test_localaccess_counts(self):
        from repro.apps import ALL_APPS

        expected = {"md": "2/3", "kmeans": "2/5", "bfs": "2/3"}
        for name, app in ALL_APPS.items():
            compiled = compile_source(app.source)
            used, with_la = set(), set()
            for plan in compiled.plans:
                for aname, cfg in plan.config.arrays.items():
                    used.add(aname)
                    if cfg.has_localaccess:
                        with_la.add(aname)
            assert f"{len(with_la)}/{len(used)}" == expected[name], name

    def test_parallel_loop_counts(self):
        from repro.apps import ALL_APPS

        expected = {"md": 1, "kmeans": 2, "bfs": 1}
        for name, app in ALL_APPS.items():
            assert len(compile_source(app.source).plans) == expected[name]


class TestDiagnostics:
    def test_bad_loop_shape_reports_line(self):
        src = """
        void k(int n, float *x) {
          #pragma acc parallel loop
          for (int i = n; i > 0; i--) { x[i] = 1.0f; }
        }
        """
        with pytest.raises(CompileError):
            compile_source(src)

    def test_require_vectorized_surfaces_error(self):
        src = """
        void k(int n, float *x) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { return; }
        }
        """
        with pytest.raises(CompileError):
            compile_source(src, CompileOptions(require_vectorized=True))

    def test_plan_lookup(self):
        compiled = compile_source(SAXPY)
        assert compiled.plan("k_L0").name == "k_L0"
        with pytest.raises(KeyError):
            compiled.plan("nope")
