"""Compiler fuzzing: random programs through both engines.

Hypothesis builds random C expression trees (as source text) and random
predicated statement structures; each generated program is compiled and
executed with the vectorized engine and the scalar interpreter on 1 and
2 GPUs, and all observable effects must match.  This hunts exactly the
class of bugs a vectorizing translator breeds: mask mishandling, type
promotion drift, operator precedence/codegen mismatches, and
index-rewriting errors.

Every generated program additionally runs under the coherence
sanitizer on 1, 2 and 4 GPUs: no :class:`CoherenceViolation` may fire,
and the outputs must be bit-identical to the unsanitized run of the
same configuration (the sanitizer is a pure observer).
"""

import hashlib

import numpy as np
from hypothesis import given, seed, settings, strategies as st

from repro import CompileOptions
from repro.bench.machines import hypothetical_node
from tests.util import run_source

#: ``database=None``: don't depend on the local ``.hypothesis`` example
#: database, so a failure printed by CI replays identically on any
#: checkout of the same code -- reproduction needs only the test id.
_SETTINGS = dict(max_examples=40, deadline=None, database=None)


def _case_seed(case_id: str) -> int:
    """Deterministic per-test RNG seed derived from the test's id.

    Each test gets its own fixed generation sequence: a failure in
    ``test_float_expressions`` reruns standalone (``pytest -k``) with
    exactly the inputs that failed, without the example database and
    without being perturbed by sibling tests drawing from a shared
    stream."""
    digest = hashlib.sha256(case_id.encode()).digest()
    return int.from_bytes(digest[:8], "big")


# -- expression source generator --------------------------------------------

_LEAVES_F = ["x[i]", "w[i]", "a", "1.5f", "0.25f", "2.0f"]
_LEAVES_I = ["i", "k[i]", "m", "3", "1"]


def float_expr(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return draw(st.sampled_from(_LEAVES_F))
    kind = draw(st.integers(0, 5))
    l = float_expr(draw, depth + 1)
    r = float_expr(draw, depth + 1)
    if kind == 0:
        return f"({l} + {r})"
    if kind == 1:
        return f"({l} - {r})"
    if kind == 2:
        return f"({l} * {r})"
    if kind == 3:
        # Division with a denominator bounded away from zero.
        return f"({l} / ({r} * {r} + 0.5f))"
    if kind == 4:
        return f"fabs({l})"
    cond = bool_expr(draw, depth + 1)
    return f"({cond} ? {l} : {r})"


def bool_expr(draw, depth=0):
    l = float_expr(draw, depth + 1)
    r = float_expr(draw, depth + 1)
    op = draw(st.sampled_from(["<", ">", "<=", ">=", "==", "!="]))
    base = f"({l} {op} {r})"
    if depth < 2 and draw(st.booleans()):
        other = bool_expr(draw, depth + 1)
        joiner = draw(st.sampled_from(["&&", "||"]))
        return f"({base} {joiner} {other})"
    return base


def int_expr(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        return draw(st.sampled_from(_LEAVES_I))
    l = int_expr(draw, depth + 1)
    r = int_expr(draw, depth + 1)
    op = draw(st.sampled_from(["+", "-", "*"]))
    return f"({l} {op} {r})"


def make_program(body: str) -> str:
    return f"""
    void fuzz(int n, int m, float a, float *x, float *w, int *k,
              float *y, int *z) {{
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {{
        {body}
      }}
    }}
    """


def fresh_args(draw, n):
    x = np.array(draw(st.lists(
        st.floats(min_value=-8, max_value=8, allow_nan=False, width=32),
        min_size=n, max_size=n)), dtype=np.float32)
    w = np.array(draw(st.lists(
        st.floats(min_value=-8, max_value=8, allow_nan=False, width=32),
        min_size=n, max_size=n)), dtype=np.float32)
    k = np.array([draw(st.integers(0, n - 1)) for _ in range(n)],
                 dtype=np.int32)
    return {
        "n": n,
        "m": draw(st.integers(0, 5)),
        "a": draw(st.floats(min_value=-4, max_value=4, allow_nan=False,
                            width=32)),
        "x": x,
        "w": w,
        "k": k,
        "y": np.zeros(n, dtype=np.float32),
        "z": np.zeros(n, dtype=np.int32),
    }


def run_all_engines(src, make):
    # Draw ONE input set; give each engine/GPU combination its own deep
    # copy (run() mutates arrays in place).
    template = make()

    def clone():
        return {k: (v.copy() if isinstance(v, np.ndarray) else v)
                for k, v in template.items()}

    outs = []
    for engine in ("vector", "interp"):
        for ngpus in (1, 2):
            args, _ = run_source(src, clone(), ngpus=ngpus, engine=engine)
            outs.append((engine, ngpus, args))
    _, _, base = outs[0]
    for engine, ngpus, args in outs[1:]:
        for name in ("y", "z"):
            np.testing.assert_allclose(
                args[name], base[name], rtol=2e-5, atol=2e-5,
                err_msg=f"{name} mismatch at {engine}/{ngpus}")
    # Sanitized runs: any coherence bug the random program tickles
    # raises CoherenceViolation; outputs must match the unsanitized
    # vector run of the same GPU count bit for bit.
    plain = {1: outs[0][2], 2: outs[1][2]}
    for ngpus in (1, 2, 4):
        machine = "desktop" if ngpus <= 2 else hypothetical_node(ngpus)
        if ngpus not in plain:
            plain[ngpus], _ = run_source(src, clone(), ngpus=ngpus,
                                         machine=machine)
        args, run = run_source(src, clone(), ngpus=ngpus, machine=machine,
                               sanitize=True)
        assert run.sanitizer.loops_checked > 0
        for name in ("y", "z"):
            np.testing.assert_array_equal(
                args[name], plain[ngpus][name],
                err_msg=f"{name} perturbed by sanitizer at ngpus={ngpus}")


class TestExpressionFuzz:
    @seed(_case_seed("TestExpressionFuzz::test_float_expressions"))
    @given(st.data(), st.integers(1, 13))
    @settings(**_SETTINGS)
    def test_float_expressions(self, data, n):
        expr = float_expr(data.draw)
        src = make_program(f"y[i] = {expr};")
        run_all_engines(src, lambda: fresh_args(data.draw, n))

    @seed(_case_seed("TestExpressionFuzz::test_int_expressions"))
    @given(st.data(), st.integers(1, 13))
    @settings(**_SETTINGS)
    def test_int_expressions(self, data, n):
        expr = int_expr(data.draw)
        src = make_program(f"z[i] = {expr};")
        run_all_engines(src, lambda: fresh_args(data.draw, n))

    @seed(_case_seed("TestExpressionFuzz::test_predicated_statements"))
    @given(st.data(), st.integers(1, 13))
    @settings(**_SETTINGS)
    def test_predicated_statements(self, data, n):
        cond1 = bool_expr(data.draw)
        cond2 = bool_expr(data.draw)
        e1 = float_expr(data.draw)
        e2 = float_expr(data.draw)
        e3 = float_expr(data.draw)
        body = f"""
        float t = {e1};
        if ({cond1}) {{
          t = {e2};
          if ({cond2}) {{ z[i] = 1; }}
        }} else {{
          t = t + {e3};
        }}
        y[i] = t;
        """
        src = make_program(body)
        run_all_engines(src, lambda: fresh_args(data.draw, n))

    @seed(_case_seed("TestExpressionFuzz::test_constant_inner_loop_bodies"))
    @given(st.data(), st.integers(1, 10))
    @settings(max_examples=25, deadline=None, database=None)
    def test_constant_inner_loop_bodies(self, data, n):
        e = float_expr(data.draw)
        cond = bool_expr(data.draw)
        body = f"""
        float s = 0.0f;
        for (int q = 0; q < m; q++) {{
          if ({cond}) {{ s += {e}; }}
        }}
        y[i] = s;
        """
        src = make_program(body)
        run_all_engines(src, lambda: fresh_args(data.draw, n))


# -- fusion fuzz -------------------------------------------------------------


def make_two_loop_program(body1: str, body2: str) -> str:
    """Two adjacent parallel loops over the same space: loop 1 produces
    ``y``, loop 2 consumes it at the producing offset -- the shape the
    fusion pass must fuse and keep bit-identical."""
    return f"""
    void fuzz(int n, int m, float a, float *x, float *w, int *k,
              float *y, int *z) {{
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {{
        {body1}
      }}
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {{
        {body2}
      }}
    }}
    """


def run_fused_vs_unfused(src, make):
    """Fused runs (vector + interp engines, sanitized, 1/2/4 GPUs) must
    match the unfused vector run of the same GPU count bit for bit."""
    template = make()

    def clone():
        return {k: (v.copy() if isinstance(v, np.ndarray) else v)
                for k, v in template.items()}

    fuse = CompileOptions(fuse=True)
    for ngpus in (1, 2, 4):
        machine = "desktop" if ngpus <= 2 else hypothetical_node(ngpus)
        plain, _ = run_source(src, clone(), ngpus=ngpus, machine=machine)
        fused, _ = run_source(src, clone(), ngpus=ngpus, machine=machine,
                              options=fuse)
        fint, _ = run_source(src, clone(), ngpus=ngpus, machine=machine,
                             options=fuse, engine="interp")
        fsan, run = run_source(src, clone(), ngpus=ngpus, machine=machine,
                               options=fuse, sanitize=True)
        assert run.sanitizer.loops_checked > 0
        for name in ("y", "z"):
            np.testing.assert_array_equal(
                fused[name], plain[name],
                err_msg=f"{name} perturbed by fusion at ngpus={ngpus}")
            np.testing.assert_array_equal(
                fint[name], plain[name],
                err_msg=f"{name} fused-interp mismatch at ngpus={ngpus}")
            np.testing.assert_array_equal(
                fsan[name], plain[name],
                err_msg=f"{name} fused-sanitized mismatch at ngpus={ngpus}")


class TestFusionFuzz:
    @seed(_case_seed("TestFusionFuzz::test_producer_consumer_pairs"))
    @given(st.data(), st.integers(1, 13))
    @settings(max_examples=25, deadline=None, database=None)
    def test_producer_consumer_pairs(self, data, n):
        e1 = float_expr(data.draw)
        e2 = float_expr(data.draw)
        src = make_two_loop_program(
            f"y[i] = {e1};",
            f"z[i] = (y[i] + {e2} > 0.0f) ? 1 : 0;")
        run_fused_vs_unfused(src, lambda: fresh_args(data.draw, n))

    @seed(_case_seed("TestFusionFuzz::test_predicated_consumers"))
    @given(st.data(), st.integers(1, 13))
    @settings(max_examples=25, deadline=None, database=None)
    def test_predicated_consumers(self, data, n):
        e1 = float_expr(data.draw)
        cond = bool_expr(data.draw)
        e3 = float_expr(data.draw)
        body2 = f"""
        float t = y[i];
        if ({cond}) {{ t = t + {e3}; z[i] = 1; }}
        y[i] = t;
        """
        src = make_two_loop_program(f"y[i] = {e1};", body2)
        run_fused_vs_unfused(src, lambda: fresh_args(data.draw, n))
