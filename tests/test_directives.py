"""OpenACC directive parsing tests, including the paper's extensions."""

import pytest

from repro.frontend import cast as C
from repro.frontend.directives import (
    AccCache,
    AccData,
    AccLocalAccess,
    AccLoop,
    AccParallel,
    AccReductionToArray,
    AccUpdate,
    DirectiveError,
    parse_pragma,
)


def p(text):
    return parse_pragma(text, line=1)


class TestDataDirective:
    def test_copy_clause(self):
        d = p("acc data copy(a[0:n])")
        assert isinstance(d, AccData)
        assert d.clauses[0].kind == "copy"
        sec = d.clauses[0].sections[0]
        assert sec.name == "a"
        assert isinstance(sec.start, C.IntLit)
        assert isinstance(sec.length, C.Ident)

    def test_multiple_clauses(self):
        d = p("acc data copyin(x[0:n], y[0:n]) copyout(z[0:n]) create(t[0:n])")
        assert [c.kind for c in d.clauses] == ["copyin", "copyout", "create"]
        assert len(d.clauses[0].sections) == 2

    def test_bare_array_section(self):
        d = p("acc data copy(a)")
        assert d.clauses[0].sections[0].start is None

    def test_present_clause(self):
        d = p("acc data present(a[0:n])")
        assert d.clauses[0].kind == "present"

    def test_pcopy_normalized(self):
        d = p("acc data pcopyin(a[0:n])")
        assert d.clauses[0].kind == "copyin"

    def test_data_without_clause_rejected(self):
        with pytest.raises(DirectiveError):
            p("acc data")

    def test_expression_bounds(self):
        d = p("acc data copy(a[i*2 : n-1])")
        sec = d.clauses[0].sections[0]
        assert isinstance(sec.start, C.BinOp)


class TestParallelDirective:
    def test_bare_parallel(self):
        d = p("acc parallel")
        assert isinstance(d, AccParallel) and d.construct == "parallel"
        assert d.fused_loop is None

    def test_kernels(self):
        assert p("acc kernels").construct == "kernels"

    def test_parallel_with_data_clauses(self):
        d = p("acc parallel copyin(x[0:n]) copy(y[0:n])")
        assert len(d.clauses) == 2

    def test_fused_parallel_loop(self):
        d = p("acc parallel loop gang copyin(x[0:n])")
        assert d.fused_loop is not None
        assert d.fused_loop.gang

    def test_fused_loop_reduction(self):
        d = p("acc parallel loop reduction(+:total)")
        assert d.fused_loop.reductions[0].op == "+"
        assert d.fused_loop.reductions[0].variables == ["total"]

    def test_num_gangs(self):
        d = p("acc parallel num_gangs(64)")
        assert isinstance(d.num_gangs, C.IntLit)

    def test_vector_length(self):
        d = p("acc parallel vector_length(128)")
        assert d.vector_length is not None

    def test_async_flag(self):
        assert p("acc parallel async").is_async

    def test_unknown_clause_rejected(self):
        with pytest.raises(DirectiveError):
            p("acc parallel bogus(x)")


class TestLoopDirective:
    def test_gang_worker_vector(self):
        d = p("acc loop gang worker vector")
        assert d.gang and d.worker and d.vector

    def test_independent_seq(self):
        assert p("acc loop independent").independent
        assert p("acc loop seq").seq

    def test_reduction_ops(self):
        for op in ("+", "*", "max", "min", "&", "|", "&&", "||"):
            d = p(f"acc loop reduction({op}:v)")
            assert d.reductions[0].op == op

    def test_reduction_multiple_vars(self):
        d = p("acc loop reduction(+:a, b)")
        assert d.reductions[0].variables == ["a", "b"]

    def test_invalid_reduction_op(self):
        with pytest.raises(DirectiveError):
            p("acc loop reduction(-:v)")

    def test_private_clause(self):
        d = p("acc loop private(t, u)")
        assert d.private == ["t", "u"]

    def test_unknown_loop_clause(self):
        with pytest.raises(DirectiveError):
            p("acc loop collapse(2)")


class TestUpdateDirective:
    def test_host(self):
        d = p("acc update host(a[0:n])")
        assert isinstance(d, AccUpdate)
        assert d.host[0].name == "a" and d.device == []

    def test_self_is_host(self):
        assert p("acc update self(a)").host[0].name == "a"

    def test_device(self):
        assert p("acc update device(b)").device[0].name == "b"

    def test_both(self):
        d = p("acc update host(a) device(b)")
        assert d.host and d.device

    def test_empty_update_rejected(self):
        with pytest.raises(DirectiveError):
            p("acc update")


class TestCacheDirective:
    def test_parsed(self):
        d = p("acc cache(a[0:64])")
        assert isinstance(d, AccCache)
        assert d.sections[0].name == "a"


class TestLocalAccess:
    def test_stride_full_form(self):
        d = p("acc localaccess x[stride(3, 1, 2)]")
        assert isinstance(d, AccLocalAccess)
        spec = d.entries["x"]
        assert spec.kind == "stride"
        assert spec.stride.value == 3
        assert spec.left.value == 1
        assert spec.right.value == 2

    def test_stride_defaults(self):
        spec = p("acc localaccess x[stride(1)]").entries["x"]
        assert spec.left.value == 0 and spec.right.value == 0

    def test_stride_symbolic(self):
        spec = p("acc localaccess f[stride(nfeatures)]").entries["f"]
        assert isinstance(spec.stride, C.Ident)

    def test_all_spec(self):
        assert p("acc localaccess x[all]").entries["x"].kind == "all"

    def test_range_spec(self):
        spec = p("acc localaccess x[range(0, n*m)]").entries["x"]
        assert spec.kind == "range"
        assert isinstance(spec.hi, C.BinOp)

    def test_bounds_spec_with_array_reads(self):
        spec = p("acc localaccess col[bounds(row[u], row[u+1] - 1)]") \
            .entries["col"]
        assert spec.kind == "bounds"
        assert isinstance(spec.lo, C.Index)

    def test_multiple_entries_bare(self):
        d = p("acc localaccess a[stride(1)] b[stride(2)]")
        assert set(d.entries) == {"a", "b"}

    def test_multiple_entries_parenthesized(self):
        d = p("acc localaccess(a[stride(1)], b[all])")
        assert set(d.entries) == {"a", "b"}

    def test_duplicate_entry_rejected(self):
        with pytest.raises(DirectiveError):
            p("acc localaccess a[stride(1)] a[all]")

    def test_empty_rejected(self):
        with pytest.raises(DirectiveError):
            p("acc localaccess()")

    def test_too_many_stride_args(self):
        with pytest.raises(DirectiveError):
            p("acc localaccess x[stride(1, 2, 3, 4)]")

    def test_bad_spec_rejected(self):
        with pytest.raises(DirectiveError):
            p("acc localaccess x[banana(1)]")


class TestReductionToArray:
    def test_basic(self):
        d = p("acc reductiontoarray(+: errors[0:k])")
        assert isinstance(d, AccReductionToArray)
        assert d.op == "+"
        assert d.array == "errors"
        assert isinstance(d.length, C.Ident)

    def test_max_op(self):
        assert p("acc reductiontoarray(max: m[0:8])").op == "max"

    def test_without_section_bounds(self):
        d = p("acc reductiontoarray(+: c)")
        assert d.array == "c" and d.start is None

    def test_bad_op_rejected(self):
        with pytest.raises(DirectiveError):
            p("acc reductiontoarray(-: a[0:4])")


class TestMisc:
    def test_non_acc_returns_none(self):
        assert p("omp parallel for") is None
        assert p("once") is None

    def test_unknown_acc_directive(self):
        with pytest.raises(DirectiveError):
            p("acc banana")

    def test_unsupported_acc_directive_named(self):
        with pytest.raises(DirectiveError):
            p("acc wait")
        with pytest.raises(DirectiveError):
            p("acc host_data use_device(a)")
