"""Unit tests for the tracing subsystem's primitives.

The integration/golden suites (``tests/trace_golden/``) pin whole-run
behavior; these tests pin the pieces in isolation: the metrics
registry's label algebra, the tracer's bracketing/tagging/accumulation
semantics on synthetic inputs, the exporters' formats, the golden
normalizer/diff, and the ``fig8_reconciliation`` harness helper.
"""

import json

import pytest

import repro
from repro.apps import ALL_APPS
from repro.bench.harness import fig8_reconciliation
from repro.trace import (
    EVENT_KERNEL,
    EVENT_LOOP_BEGIN,
    EVENT_RESPLIT,
    MECH_HALO,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    jsonl,
    lane_names,
    loop_summary_table,
    reconcile,
)
from repro.trace.golden import TraceInvariantError, check_invariants, diff
from repro.vcuda.bus import (
    CATEGORY_CPU_GPU,
    CATEGORY_GPU_GPU,
    CATEGORY_KERNELS,
    Transfer,
)
from repro.vcuda.profiler import TimeBreakdown


class TestMetricsRegistry:
    def test_counters_accumulate_per_label_set(self):
        m = MetricsRegistry()
        m.count("bytes", 10, gpu=0, loop="a")
        m.count("bytes", 5, gpu=0, loop="a")
        m.count("bytes", 7, gpu=1, loop="a")
        assert m.counter_total("bytes", gpu=0, loop="a") == 15
        assert m.counter_total("bytes", gpu=1) == 7

    def test_counter_total_sums_over_unspecified_labels(self):
        m = MetricsRegistry()
        m.count("bytes", 1, gpu=0, loop="a")
        m.count("bytes", 2, gpu=1, loop="a")
        m.count("bytes", 4, gpu=0, loop="b")
        assert m.counter_total("bytes") == 7
        assert m.counter_total("bytes", loop="a") == 3
        assert m.counter_total("bytes", gpu=0) == 5
        assert m.counter_total("bytes", gpu=2) == 0
        assert m.counter_total("nonexistent") == 0

    def test_label_order_is_irrelevant(self):
        m = MetricsRegistry()
        m.count("n", 1, a=1, b=2)
        m.count("n", 1, b=2, a=1)
        assert m.counter_total("n", a=1, b=2) == 2

    def test_histograms(self):
        m = MetricsRegistry()
        for v in (1.0, 3.0, 2.0):
            m.observe("secs", v, loop="a")
        h = m.histogram("secs", loop="a")
        assert h.count == 3
        assert h.total == 6.0
        assert h.min == 1.0 and h.max == 3.0 and h.mean == 2.0
        empty = m.histogram("secs", loop="zzz")
        assert empty.count == 0 and empty.mean == 0.0

    def test_snapshot_is_json_serializable(self):
        m = MetricsRegistry()
        m.count("bytes", 3, kind="h2d", mechanism=None)
        m.count("launches", 2)
        snap = m.snapshot()
        json.dumps(snap)
        assert snap["launches"]["(total)"] == 2


def _transfer(kind, nbytes, src, dst, start=0.0, secs=1e-4, category=None):
    return Transfer(kind=kind, nbytes=nbytes, src_device=src,
                    dst_device=dst, start=start, end=start + secs,
                    category_override=category)


class TestTracer:
    def test_seq_strictly_increasing_across_events_and_spans(self):
        t = Tracer(ngpus=2)
        t.emit("load", "x", start=0.0)
        t.on_clock(0.0, 0.5, CATEGORY_KERNELS)
        t.emit("load", "y", start=1.0)
        seqs = [t.events[0].seq, t.spans[0].seq, t.events[1].seq]
        assert seqs == sorted(seqs) and len(set(seqs)) == 3

    def test_loop_bracketing_attributes_events(self):
        t = Tracer(ngpus=2)
        t.enter_loop("L7")
        # Decisions made while planning the split (before loop_begin)
        # already carry the loop id.
        ev = t.emit(EVENT_RESPLIT, "L7", start=0.0)
        assert ev.loop == "L7" and ev.loop_call == 0
        t.loop_started(0.0, [(0, 5), (5, 10)])
        t.end_loop(1.0)
        assert t.current_loop is None
        t.enter_loop("L7")
        assert t.current_call == 1
        t.loop_started(1.0, [(0, 10), (10, 10)])
        t.end_loop(2.0)
        assert t.metrics.counter_total("loop_calls", loop="L7") == 2
        begin = next(e for e in t.events if e.kind == EVENT_LOOP_BEGIN)
        assert begin.attrs["tasks"] == [[0, 5], [5, 10]]

    def test_tag_annotates_transfers_and_restores(self):
        t = Tracer(ngpus=2)
        with t.tag(MECH_HALO, "u"):
            t.on_transfer(_transfer("p2p", 4096, 0, 1))
        t.on_transfer(_transfer("h2d", 128, None, 0))
        tagged, untagged = t.events
        assert tagged.mechanism == MECH_HALO and tagged.array == "u"
        assert tagged.kind == "p2p" and tagged.nbytes == 4096
        assert untagged.mechanism is None and untagged.array is None
        assert t.metrics.counter_total("transfer_bytes",
                                       mechanism=MECH_HALO) == 4096

    def test_tag_nesting_restores_outer_tag(self):
        t = Tracer()
        with t.tag("outer", "a"):
            with t.tag("inner", "b"):
                t.on_transfer(_transfer("p2p", 1, 0, 1))
            t.on_transfer(_transfer("p2p", 2, 0, 1))
        assert t.events[0].mechanism == "inner"
        assert t.events[1].mechanism == "outer"

    def test_category_totals_accumulate_exactly(self):
        t = Tracer()
        deltas = [0.1, 0.2, 0.30000000000000004, 1e-12]
        expect = 0.0
        for d in deltas:
            t.on_clock(0.0, d, CATEGORY_KERNELS)
            expect += d
        # Bit-exact: same deltas, same order, same accumulator shape.
        assert t.category_totals()[CATEGORY_KERNELS] == expect

    def test_hidden_comm_seconds(self):
        from repro.vcuda.bus import CATEGORY_GPU_GPU_OVERLAPPED
        t = Tracer()
        assert t.hidden_comm_seconds == 0.0
        t.on_clock(0.0, 0.25, CATEGORY_GPU_GPU_OVERLAPPED, charged=True)
        assert t.hidden_comm_seconds == 0.25

    def test_loop_summary_sums_to_category_totals(self):
        t = Tracer()
        t.enter_loop("a")
        t.loop_started(0.0, [(0, 1)])
        t.on_clock(0.0, 0.5, CATEGORY_KERNELS)
        t.end_loop(0.5)
        t.on_clock(0.5, 0.25, CATEGORY_CPU_GPU)  # between loops
        rows = t.loop_summary()
        assert [r["loop"] for r in rows] == ["a", "(outside)"]
        summed: dict = {}
        for r in rows:
            for c, s in r["categories"].items():
                summed[c] = summed.get(c, 0.0) + s
        assert summed == t.category_totals()


class TestExporters:
    def _traced(self):
        t = Tracer(ngpus=2, machine="desktop")
        t.enter_loop("L0")
        t.loop_started(0.0, [(0, 4), (4, 8)])
        t.emit(EVENT_KERNEL, "k0", start=0.0, duration=0.001, gpu=1,
               grid_dim=1, block_dim=128)
        with t.tag(MECH_HALO, "u"):
            t.on_transfer(_transfer("p2p", 64, 0, 1, start=0.001))
        t.on_transfer(_transfer("h2d", 32, None, 0, start=0.002))
        t.end_loop(0.003)
        return t

    def test_chrome_trace_structure(self):
        doc = chrome_trace(self._traced())
        json.dumps(doc)  # serializable
        evs = doc["traceEvents"]
        meta = [e for e in evs if e["ph"] == "M" and e["name"] == "thread_name"]
        assert {m["args"]["name"] for m in meta} == {
            "gpu0", "gpu1", "loader", "comm"}
        kernel = next(e for e in evs if e.get("cat") == EVENT_KERNEL)
        assert kernel["ph"] == "X"
        assert kernel["tid"] == 1  # its GPU's lane
        assert kernel["dur"] == pytest.approx(1000.0)  # 1 ms in µs
        p2p = next(e for e in evs if e.get("cat") == "p2p")
        h2d = next(e for e in evs if e.get("cat") == "h2d")
        names = lane_names(2)
        assert names[p2p["tid"]] == "comm"
        assert names[h2d["tid"]] == "loader"

    def test_jsonl_round_trips(self):
        t = self._traced()
        lines = [json.loads(l) for l in jsonl(t).splitlines()]
        assert len(lines) == len(t.events)
        assert [l["seq"] for l in lines] == [ev.seq for ev in t.events]
        p2p = next(l for l in lines if l["kind"] == "p2p")
        assert p2p["mechanism"] == MECH_HALO and p2p["nbytes"] == 64
        assert jsonl(Tracer()) == ""

    def test_reconcile_residuals(self):
        t = Tracer()
        t.on_clock(0.0, 1.5, CATEGORY_KERNELS)
        t.on_clock(1.5, 0.5, CATEGORY_CPU_GPU)
        t.on_clock(2.0, 0.25, CATEGORY_GPU_GPU)
        t.on_clock(2.25, 0.125, None)
        bd = TimeBreakdown(kernels=1.5, cpu_gpu=0.5, gpu_gpu=0.25,
                           other=0.125)
        rows = reconcile(t, bd)
        for bucket in ("kernels", "cpu_gpu", "gpu_gpu",
                       "gpu_gpu_overlapped"):
            assert rows[bucket]["residual"] == 0.0
        assert abs(rows["other"]["residual"]) <= 1e-9
        # A deliberate mismatch shows up as a nonzero residual.
        bad = TimeBreakdown(kernels=1.0, cpu_gpu=0.5, gpu_gpu=0.25)
        assert reconcile(t, bad)["kernels"]["residual"] == 0.5

    def test_loop_summary_table_renders(self):
        t = Tracer(ngpus=2)
        t.enter_loop("L0")
        t.loop_started(0.0, [(0, 4), (4, 8)])
        t.on_clock(0.0, 0.001, CATEGORY_KERNELS)
        t.end_loop(0.001)
        text = loop_summary_table(t)
        assert "L0" in text and "(sum)" in text


class TestGoldenHelpers:
    def test_check_invariants_rejects_malformed_traces(self):
        t = Tracer()
        t.enter_loop("a")
        t.loop_started(0.0, [(0, 1)])
        with pytest.raises(TraceInvariantError, match="unclosed"):
            check_invariants(t)  # never ended

        t2 = Tracer()
        t2.enter_loop("a")
        t2.loop_started(0.0, [(0, 1)])
        t2.enter_loop("b")
        t2.loop_started(0.0, [(0, 1)])  # nested loop_begin
        with pytest.raises(TraceInvariantError, match="inside open loop"):
            check_invariants(t2)

        t3 = Tracer()
        t3.emit(EVENT_KERNEL, "k", start=0.0, duration=0.1, gpu=0)
        with pytest.raises(TraceInvariantError, match="outside any loop"):
            check_invariants(t3)

    def test_diff_reports_paths(self):
        golden = {"a": {"b": 1, "c": 2}, "order": ["x", "y"]}
        same = {"a": {"b": 1, "c": 2}, "order": ["x", "y"]}
        assert diff(same, golden) == []
        problems = diff({"a": {"b": 9}, "order": ["x"]}, golden)
        text = "\n".join(problems)
        assert "trace.a.b" in text      # changed value
        assert "trace.a.c" in text      # missing key
        assert "trace.order" in text    # list mismatch


class TestFig8ReconciliationHarness:
    def test_identity_holds_on_tiny_workload(self):
        rows = fig8_reconciliation(
            machine="desktop", apps={"md": ALL_APPS["md"]}, workload="tiny")
        assert [r.ngpus for r in rows] == [1, 2]
        for r in rows:
            assert r.app == "md" and r.machine == "desktop"
            for bucket, vals in r.buckets.items():
                tol = 1e-9 if bucket == "other" else 0.0
                assert abs(vals["residual"]) <= tol, (bucket, vals)
            assert r.max_residual <= 1e-9


class TestTraceOptIn:
    def test_trace_off_by_default(self):
        spec = ALL_APPS["md"]
        prog = repro.compile(spec.source)
        run = prog.run(spec.entry, spec.args_for("tiny"), ngpus=2)
        assert run.tracer is None

    def test_env_var_enables_tracing(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        spec = ALL_APPS["md"]
        prog = repro.compile(spec.source)
        run = prog.run(spec.entry, spec.args_for("tiny"), ngpus=2)
        assert run.tracer is not None
        assert run.tracer.events

    def test_env_var_zero_means_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        spec = ALL_APPS["md"]
        prog = repro.compile(spec.source)
        run = prog.run(spec.entry, spec.args_for("tiny"), ngpus=2)
        assert run.tracer is None
