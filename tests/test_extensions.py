"""Tests for features beyond the paper's minimum: launch-geometry
clauses, the `kernels` construct, row-block 2-D stencils, SpMV's
segmented accumulation, and interpreter-engine parity for the extra
apps."""

import numpy as np
import pytest

import repro
from repro.apps import EXTRA_APPS
from repro.translator.compiler import CompileError, compile_source
from tests.util import run_source


class TestLaunchClauses:
    def test_vector_length_sets_block_dim(self):
        src = """
        void k(int n, float *x) {
          #pragma acc parallel loop vector_length(128)
          for (int i = 0; i < n; i++) { x[i] = 1.0f; }
        }
        """
        compiled = compile_source(src)
        assert compiled.plans[0].block_dim == 128
        args, run = run_source(src, {"n": 1024,
                                     "x": np.zeros(1024, np.float32)})
        launch = run.platform.devices[0].launches[0]
        assert launch.config.block_dim == 128
        assert launch.config.grid_dim == 8

    def test_num_gangs_caps_grid(self):
        src = """
        void k(int n, float *x) {
          #pragma acc parallel loop num_gangs(4)
          for (int i = 0; i < n; i++) { x[i] = 1.0f; }
        }
        """
        args, run = run_source(src, {"n": 1 << 16,
                                     "x": np.zeros(1 << 16, np.float32)})
        launch = run.platform.devices[0].launches[0]
        assert launch.config.grid_dim == 4
        assert (args["x"] == 1.0).all()

    def test_small_grid_is_slower(self):
        base = """
        void k(int n, float *x) {
          #pragma acc parallel loop {CLAUSE}
          for (int i = 0; i < n; i++) { x[i] = x[i] * 2.0f + 1.0f; }
        }
        """
        times = {}
        for clause in ("", "num_gangs(2)"):
            src = base.replace("{CLAUSE}", clause)
            _, run = run_source(src, {"n": 1 << 18,
                                      "x": np.ones(1 << 18, np.float32)})
            times[clause] = run.breakdown.kernels
        assert times["num_gangs(2)"] > times[""]

    def test_bad_vector_length_rejected(self):
        src = """
        void k(int n, float *x) {
          #pragma acc parallel loop vector_length(5000)
          for (int i = 0; i < n; i++) { x[i] = 1.0f; }
        }
        """
        with pytest.raises(CompileError):
            compile_source(src)

    def test_symbolic_vector_length_rejected(self):
        src = """
        void k(int n, int vl, float *x) {
          #pragma acc parallel loop vector_length(vl)
          for (int i = 0; i < n; i++) { x[i] = 1.0f; }
        }
        """
        with pytest.raises(CompileError):
            compile_source(src)


class TestKernelsConstruct:
    def test_kernels_region_compiles_and_runs(self):
        src = """
        void k(int n, float *x, float *y) {
          #pragma acc kernels
          {
            #pragma acc loop
            for (int i = 0; i < n; i++) { y[i] = x[i] * 2.0f; }
          }
        }
        """
        x = np.arange(8, dtype=np.float32)
        args, _ = run_source(src, {"n": 8, "x": x,
                                   "y": np.zeros(8, np.float32)}, ngpus=2)
        np.testing.assert_allclose(args["y"], 2 * x)


class TestHeat2d:
    SPEC = EXTRA_APPS["heat2d"]

    def test_row_block_halo_volume(self):
        prog = repro.compile(self.SPEC.source)
        args = self.SPEC.args_for("test")
        run = prog.run(self.SPEC.entry, args, machine="desktop", ngpus=2)
        comm = run.executor.comm
        w = self.SPEC.workloads["test"].params["w"]
        steps = self.SPEC.workloads["test"].params["steps"]
        # One row of halo per boundary direction per written array per
        # sweep: 2 directions x w floats x 2 sweeps x steps.
        assert comm.bytes_halo == 2 * w * 4 * 2 * steps
        assert comm.bytes_replica == 0

    def test_checked_writes_never_miss(self):
        prog = repro.compile(self.SPEC.source)
        args = self.SPEC.args_for("test")
        run = prog.run(self.SPEC.entry, args, machine="desktop", ngpus=2)
        # Symbolic-stride writes use the checked path, but rows always
        # land in the local window: zero miss records routed.
        assert run.executor.comm.bytes_miss == 0

    def test_memory_scales_by_rows_not_grid(self):
        prog = repro.compile(self.SPEC.source)
        mems = {}
        for g in (1, 2):
            args = self.SPEC.args_for("test")
            run = prog.run(self.SPEC.entry, args, machine="desktop", ngpus=g)
            mems[g] = run.memory_high_water("user")
        h = self.SPEC.workloads["test"].params["h"]
        # 2 GPUs: each holds ~half the rows + 1 halo row per side.
        assert mems[2] <= mems[1] * (1 + 4.0 / h)

    def test_interp_engine_agrees(self):
        prog = repro.compile(self.SPEC.source)
        outs = {}
        for engine in ("vector", "interp"):
            args = self.SPEC.args_for("tiny")
            prog.run(self.SPEC.entry, args, machine="desktop", ngpus=2,
                     engine=engine)
            outs[engine] = args["u"].copy()
        np.testing.assert_allclose(outs["vector"], outs["interp"])


class TestSpmv:
    SPEC = EXTRA_APPS["spmv"]

    def test_segmented_accumulation_in_generated_code(self):
        prog = repro.compile(self.SPEC.source)
        src = prog.kernel_source("spmv_L0")
        assert "np.add.at" in src  # outer-local += inside the csr axis
        assert "ks.flat_ranges" in src

    def test_both_csr_arrays_distribute_by_edge_ranges(self):
        prog = repro.compile(self.SPEC.source)
        args = self.SPEC.args_for("test")
        run = prog.run(self.SPEC.entry, args, machine="desktop", ngpus=2)
        loader = run.executor.loader
        # During execution col/val were loaded as edge-range blocks; the
        # user memory high-water must therefore stay near 1x (plus the
        # replicated x vector) rather than 2x.
        total_bytes = (args["row"].nbytes + args["col"].nbytes
                       + args["val"].nbytes + args["x"].nbytes
                       + args["y"].nbytes)
        assert run.memory_high_water("user") < 1.25 * total_bytes

    def test_matches_scipy(self):
        import scipy.sparse as sp

        spec = self.SPEC
        prog = repro.compile(spec.source)
        args = spec.args_for("test")
        snap = spec.snapshot(args)
        prog.run(spec.entry, args, machine="desktop", ngpus=2)
        m = sp.csr_matrix((snap["val"], snap["col"], snap["row"]),
                          shape=(args["n"], args["n"]))
        expect = m @ snap["x"]
        np.testing.assert_allclose(args["y"], expect, rtol=2e-4, atol=2e-4)


class TestPrivateClause:
    SRC = """
    void k(int n, float *x, float *y) {
      float t;
      #pragma acc parallel
      {
        #pragma acc loop gang private(t)
        for (int i = 0; i < n; i++) {
          t = x[i] * 2.0f;
          if (t > 4.0f) { t = 4.0f; }
          y[i] = t;
        }
      }
    }
    """

    def test_private_scalar_both_engines(self):
        import numpy as np
        from tests.util import compare_engines

        x = np.arange(6, dtype=np.float32)
        out = compare_engines(
            self.SRC,
            lambda: {"n": 6, "x": x.copy(), "y": np.zeros(6, np.float32)},
            ngpus_list=(1, 2))
        np.testing.assert_allclose(out["y"], [0, 2, 4, 4, 4, 4])

    def test_private_array_rejected(self):
        src = """
        void k(int n, float *x) {
          float buf[8];
          #pragma acc parallel
          {
            #pragma acc loop gang private(buf)
            for (int i = 0; i < n; i++) { x[i] = 1.0f; }
          }
        }
        """
        with pytest.raises(CompileError):
            compile_source(src)

    def test_private_undeclared_rejected(self):
        src = """
        void k(int n, float *x) {
          #pragma acc parallel
          {
            #pragma acc loop gang private(ghost)
            for (int i = 0; i < n; i++) { x[i] = 1.0f; }
          }
        }
        """
        with pytest.raises(CompileError):
            compile_source(src)
