"""OpenMP baseline executor and public API tests."""

import numpy as np
import pytest

import repro
from repro.cpu import CpuPlatform, run_openmp
from repro.translator.compiler import compile_source
from repro.vcuda import DESKTOP_MACHINE, SUPERCOMPUTER_NODE
from repro.vcuda.device import KernelWork

SAXPY = """
void k(int n, float a, float *x, float *y) {
  #pragma acc parallel loop copyin(x[0:n]) copy(y[0:n])
  for (int i = 0; i < n; i++) { y[i] = a * x[i] + y[i]; }
}
"""


class TestCpuModel:
    def test_compute_bound(self):
        p = CpuPlatform(DESKTOP_MACHINE)
        t = p.loop_time(KernelWork(flops=1e9))
        # ~128 GF/s peak at 0.55 efficiency -> ~14ms.
        assert 0.005 < t < 0.05

    def test_dual_socket_faster(self):
        w = KernelWork(flops=1e9, coalesced_bytes=1e9)
        t1 = CpuPlatform(DESKTOP_MACHINE).loop_time(w)
        t2 = CpuPlatform(SUPERCOMPUTER_NODE).loop_time(w)
        assert t2 < t1

    def test_random_traffic_expensive(self):
        p = CpuPlatform(DESKTOP_MACHINE)
        t_r = p.loop_time(KernelWork(random_bytes=1e8))
        t_c = p.loop_time(KernelWork(coalesced_bytes=1e8))
        assert t_r > t_c

    def test_region_overhead_floor(self):
        p = CpuPlatform(DESKTOP_MACHINE)
        assert p.loop_time(KernelWork()) > 0


class TestOpenMPExecution:
    def test_runs_and_matches(self):
        c = compile_source(SAXPY)
        x = np.arange(16, dtype=np.float32)
        y = np.ones(16, dtype=np.float32)
        r = run_openmp(c, "k", {"n": 16, "a": 3.0, "x": x, "y": y},
                       DESKTOP_MACHINE)
        np.testing.assert_allclose(y, 3 * np.arange(16) + 1)
        assert r.elapsed > 0
        assert len(r.loop_stats) == 1

    def test_scalar_reduction_on_cpu(self):
        src = """
        float k(int n, float *x) {
          float s = 10.0f;
          #pragma acc parallel loop reduction(+:s)
          for (int i = 0; i < n; i++) { s += x[i]; }
          return s;
        }
        """
        c = compile_source(src)
        x = np.ones(8, dtype=np.float32)
        r = run_openmp(c, "k", {"n": 8, "x": x}, DESKTOP_MACHINE)
        assert r.value == pytest.approx(18.0)

    def test_reduction_to_array_on_cpu(self):
        src = """
        void k(int n, int *b, float *h) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            #pragma acc reductiontoarray(+: h[0:2])
            h[b[i]] += 1.0f;
          }
        }
        """
        c = compile_source(src)
        h = np.zeros(2, dtype=np.float32)
        run_openmp(c, "k", {"n": 4, "b": np.array([0, 1, 0, 0], np.int32),
                            "h": h}, DESKTOP_MACHINE)
        np.testing.assert_allclose(h, [3, 1])

    def test_interp_engine_on_cpu(self):
        c = compile_source(SAXPY)
        y = np.zeros(4, dtype=np.float32)
        run_openmp(c, "k", {"n": 4, "a": 1.0,
                            "x": np.ones(4, np.float32), "y": y},
                   DESKTOP_MACHINE, engine="interp")
        assert (y == 1.0).all()


class TestPublicApi:
    def test_compile_and_kernel_listing(self):
        prog = repro.compile(SAXPY)
        assert [p.name for p in prog.kernels] == ["k_L0"]
        assert "def kernel" in prog.kernel_source("k_L0")

    def test_run_returns_breakdown_and_memory(self):
        prog = repro.compile(SAXPY)
        run = prog.run("k", {"n": 64, "a": 1.0,
                             "x": np.ones(64, np.float32),
                             "y": np.zeros(64, np.float32)},
                       machine="desktop", ngpus=2)
        assert run.elapsed > 0
        assert run.breakdown.total == pytest.approx(run.elapsed, rel=1e-6)
        assert run.memory_high_water() > 0
        assert run.kernel_launches == 2  # one per GPU

    def test_machine_by_spec_object(self):
        prog = repro.compile(SAXPY)
        run = prog.run("k", {"n": 8, "a": 1.0,
                             "x": np.ones(8, np.float32),
                             "y": np.zeros(8, np.float32)},
                       machine=SUPERCOMPUTER_NODE, ngpus=3)
        assert run.platform.ngpus == 3

    def test_invalid_machine_name(self):
        prog = repro.compile(SAXPY)
        with pytest.raises(KeyError):
            prog.run("k", {}, machine="laptop")

    def test_invalid_engine(self):
        prog = repro.compile(SAXPY)
        with pytest.raises(ValueError):
            prog.run("k", {"n": 1, "a": 1.0,
                           "x": np.zeros(1, np.float32),
                           "y": np.zeros(1, np.float32)}, engine="magic")

    def test_compile_error_surfaces(self):
        with pytest.raises(repro.CompileError):
            repro.compile("""
            void k(int n, float *x) {
              #pragma acc parallel
              { x[0] = 1.0f; }
            }
            """)

    def test_loop_stats_recorded(self):
        prog = repro.compile(SAXPY)
        run = prog.run("k", {"n": 32, "a": 1.0,
                             "x": np.ones(32, np.float32),
                             "y": np.zeros(32, np.float32)}, ngpus=2)
        assert len(run.loop_stats) == 1
        stats = run.loop_stats[0]
        assert stats.tasks == [(0, 16), (16, 32)]
        assert stats.kernel_seconds > 0


class TestTimeline:
    def test_events_cover_the_run(self):
        prog = repro.compile(SAXPY)
        run = prog.run("k", {"n": 1 << 14, "a": 1.0,
                             "x": np.ones(1 << 14, np.float32),
                             "y": np.zeros(1 << 14, np.float32)}, ngpus=2)
        events = run.timeline()
        kinds = {e.kind for e in events}
        assert {"kernel", "h2d", "d2h"} <= kinds
        assert all(e.end >= e.start for e in events)
        assert max(e.end for e in events) <= run.elapsed + 1e-12
        # Sorted chronologically.
        starts = [e.start for e in events]
        assert starts == sorted(starts)

    def test_kernels_on_distinct_gpus_overlap(self):
        prog = repro.compile(SAXPY)
        run = prog.run("k", {"n": 1 << 16, "a": 1.0,
                             "x": np.ones(1 << 16, np.float32),
                             "y": np.zeros(1 << 16, np.float32)}, ngpus=2)
        kernels = [e for e in run.timeline() if e.kind == "kernel"]
        assert len(kernels) == 2
        a, b = kernels
        assert a.start < b.end and b.start < a.end  # intervals intersect
