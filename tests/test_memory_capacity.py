"""The paper's capacity claim: "Utilization of multiple GPUs increases
not only the number of cores but also the total amount of GPU memories,
so some applications which have large input data are benefited"
(section I), and "the applications with the proposed system can benefit
from the larger amount of GPU memory by using multiple GPUs" (V-B1,
about BFS on the supercomputer node)."""

import numpy as np
import pytest

import repro
from repro.vcuda import GpuSpec, MachineSpec, OutOfDeviceMemory
from repro.vcuda.specs import CORE_I7_980, PCIE_GEN2_DESKTOP


def tiny_machine(capacity_bytes: int, gpu_count: int = 3) -> MachineSpec:
    gpu = GpuSpec(
        name=f"Tiny-{capacity_bytes}", cuda_cores=448, sm_count=14,
        clock_hz=1.15e9, peak_sp_flops=1030e9, mem_bandwidth=144e9,
        mem_capacity=capacity_bytes)
    return MachineSpec(
        name="tiny", cpu=CORE_I7_980, cpu_sockets=1, gpu=gpu,
        gpu_count=gpu_count, bus=PCIE_GEN2_DESKTOP,
        gpu_hub=tuple(0 for _ in range(gpu_count)))


DISTRIBUTED_SRC = """
void scale(int n, float *x, float *y) {
  #pragma acc data copyin(x[0:n]) copyout(y[0:n])
  {
    #pragma acc parallel
    {
      #pragma acc localaccess x[stride(1)] y[stride(1)]
      #pragma acc loop gang
      for (int i = 0; i < n; i++) { y[i] = 2.0f * x[i]; }
    }
  }
}
"""

REPLICATED_SRC = """
void scale(int n, float *x, float *y) {
  #pragma acc data copyin(x[0:n]) copyout(y[0:n])
  {
    #pragma acc parallel
    {
      #pragma acc loop gang
      for (int i = 0; i < n; i++) { y[i] = 2.0f * x[i]; }
    }
  }
}
"""


class TestCapacityBenefit:
    N = 4096  # 2 arrays x 16 KiB = 32 KiB of user data

    def args(self):
        return {"n": self.N,
                "x": np.ones(self.N, dtype=np.float32),
                "y": np.zeros(self.N, dtype=np.float32)}

    def test_too_big_for_one_gpu_fits_on_two(self):
        machine = tiny_machine(24 << 10)  # 24 KiB per GPU
        prog = repro.compile(DISTRIBUTED_SRC)
        with pytest.raises(OutOfDeviceMemory):
            prog.run("scale", self.args(), machine=machine, ngpus=1)
        args = self.args()
        run = prog.run("scale", args, machine=machine, ngpus=2)
        assert (args["y"] == 2.0).all()
        # Each GPU held only its block: half the data per device.
        per_gpu = max(d.memory.high_water_of("user")
                      for d in run.platform.devices)
        assert per_gpu <= (self.N * 4 * 2) // 2

    def test_replication_does_not_gain_capacity(self):
        # Without localaccess (and with inference off) the arrays
        # replicate: adding GPUs does NOT help capacity -- the contrast
        # that motivates distribution.
        machine = tiny_machine(24 << 10)
        prog = repro.compile(REPLICATED_SRC,
                             repro.CompileOptions(infer=False))
        for g in (1, 2, 3):
            with pytest.raises(OutOfDeviceMemory):
                prog.run("scale", self.args(), machine=machine, ngpus=g)

    def test_inference_rescues_the_unannotated_program(self):
        # The default pipeline infers stride(1) windows for the same
        # unannotated source, so it regains the capacity benefit.
        machine = tiny_machine(24 << 10)
        prog = repro.compile(REPLICATED_SRC)
        args = self.args()
        prog.run("scale", args, machine=machine, ngpus=2)
        assert (args["y"] == 2.0).all()

    def test_three_gpus_fit_even_less_per_device(self):
        machine = tiny_machine(15 << 10)  # 15 KiB per GPU
        prog = repro.compile(DISTRIBUTED_SRC)
        with pytest.raises(OutOfDeviceMemory):
            prog.run("scale", self.args(), machine=machine, ngpus=2)
        args = self.args()
        prog.run("scale", args, machine=machine, ngpus=3)
        assert (args["y"] == 2.0).all()
