"""Concurrent program service: isolation, acceptance smoke, lifecycle.

Two layers of concurrency guarantees are pinned here.  The *substrate*
layer (no service involved): N threads compiling through the shared
caches and running programs on disjoint carved sub-fleets produce
bit-identical arrays to the same programs run serially.  The *service*
layer: the acceptance-criteria smoke -- 64+ queued requests submitted
concurrently against a modeled 16-GPU fleet, every one completing with
bit-identical results -- plus the request lifecycle (trace events in
order, queue-wait metrics, utilization) and the structured rejection
and queueing edges.
"""

import threading

import numpy as np
import pytest

import repro
from repro.apps import ALL_APPS, EXTRA_APPS
from repro.bench.machines import hypothetical_node
from repro.serve import (
    AdmissionError,
    ProgramRegistry,
    ProgramService,
    RunRequest,
)
from repro.trace import chrome_trace, jsonl
from repro.trace.events import (
    EVENT_REQ_ADMITTED,
    EVENT_REQ_COMPLETED,
    EVENT_REQ_ENQUEUED,
    EVENT_REQ_PLACED,
    REQUEST_KINDS,
)
from repro.translator.compiler import CompileOptions, compile_source

APPS = {**ALL_APPS, **EXTRA_APPS}
FLEET16 = hypothetical_node(16, gpus_per_hub=4)

#: (app, ngpus, options) rows for the concurrency matrix.  Mixed
#: widths, mixed options, every app with a distinct access pattern.
MATRIX = [
    ("stencil", 2, None),
    ("jacobi", 2, None),
    ("md", 4, None),
    ("kmeans", 1, None),
    ("bfs", 2, None),
    ("gradpipe", 2, CompileOptions(fuse=True)),
    ("heat2d", 2, None),
    ("shift_scale", 1, None),
]


def serial_baseline(app_name, ngpus, options=None):
    """Output arrays of one app run serially (fresh args, no service)."""
    spec = APPS[app_name]
    args = spec.args_for("tiny")
    program = compile_source(spec.source, options)
    repro.AccProgram(program).run(spec.entry, args, machine=FLEET16,
                                  ngpus=ngpus)
    return {k: v.copy() for k, v in args.items()
            if isinstance(v, np.ndarray)}


def make_request(app_name, ngpus, options=None, tenant="default", label=None):
    spec = APPS[app_name]
    return RunRequest(source=spec.source, entry=spec.entry,
                      args=spec.args_for("tiny"), options=options,
                      ngpus=ngpus, tenant=tenant, label=label)


def assert_matches_baseline(request, baseline, who):
    for name, want in baseline.items():
        got = request.args[name]
        np.testing.assert_array_equal(
            got, want, err_msg=f"{who}: array {name!r} diverged from the "
            f"serial run")


class TestSubstrateConcurrency:
    """Satellite: threads + disjoint sub-fleets == serial, no service."""

    def test_threads_on_disjoint_subsets_match_serial(self):
        baselines = {(a, n): serial_baseline(a, n, o) for a, n, o in MATRIX}
        # Carve disjoint slices of the 16-GPU fleet, one per thread.
        cursor = 0
        plans = []
        for app_name, ngpus, options in MATRIX:
            plans.append((app_name, ngpus, options,
                          list(range(cursor, cursor + ngpus))))
            cursor += ngpus
        assert cursor <= FLEET16.gpu_count
        barrier = threading.Barrier(len(plans))
        results, errors = [None] * len(plans), []

        def worker(i):
            app_name, ngpus, options, slots = plans[i]
            spec = APPS[app_name]
            args = spec.args_for("tiny")
            barrier.wait()
            try:
                program = compile_source(spec.source, options)
                repro.AccProgram(program).run(
                    spec.entry, args, machine=FLEET16.subset(slots),
                    ngpus=ngpus)
                results[i] = args
            except BaseException as exc:  # noqa: BLE001
                errors.append((app_name, exc))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(len(plans))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        for (app_name, ngpus, options, slots), args in zip(plans, results):
            baseline = baselines[(app_name, ngpus)]
            for name, want in baseline.items():
                np.testing.assert_array_equal(
                    args[name], want,
                    err_msg=f"{app_name} on slots {slots}: {name!r} "
                    f"diverged from serial")


class TestServiceAcceptance:
    """The ISSUE acceptance smoke: >= 64 queued concurrent requests on
    a modeled 16-GPU fleet, bit-identical per-program results."""

    N_REQUESTS = 64
    SUBMIT_THREADS = 8

    def test_64_requests_on_16_gpus_bit_identical(self):
        baselines = {(a, n): serial_baseline(a, n, o) for a, n, o in MATRIX}
        service = ProgramService(FLEET16, policy="fair")
        rows = [MATRIX[i % len(MATRIX)] for i in range(self.N_REQUESTS)]
        requests = [
            make_request(a, n, o, tenant=f"tenant-{i % 4}", label=f"r{i:03d}")
            for i, (a, n, o) in enumerate(rows)]
        tickets = [None] * len(requests)
        errors = []
        barrier = threading.Barrier(self.SUBMIT_THREADS)

        def submitter(t):
            barrier.wait()
            for i in range(t, len(requests), self.SUBMIT_THREADS):
                try:
                    tickets[i] = service.submit(requests[i])
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

        threads = [threading.Thread(target=submitter, args=(t,))
                   for t in range(self.SUBMIT_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        records = service.drain(timeout=300)
        assert len(records) == self.N_REQUESTS

        # Every request completed, none failed.
        for rec in records:
            assert rec.done()
            assert rec.error is None, (rec.request_id, rec.error)
            assert rec.run is not None

        # Bit-identical to the serial runs of the same (app, ngpus).
        for i, rec in enumerate(tickets):
            app_name, ngpus, _ = rows[int(rec.request_id[1:])] \
                if rec.request_id.startswith("r") else rows[i]
            assert_matches_baseline(
                rec.request, baselines[(app_name, ngpus)], rec.request_id)

        # Slot hygiene: placements never overlapped in time.  Replay
        # admitted/completed transitions in seq order and track owners.
        owned = {}
        for ev in service.tracer.events:
            if ev.kind == EVENT_REQ_PLACED:
                for s in ev.attrs["slots"]:
                    assert s not in owned, (
                        f"slot {s} double-booked: {owned[s]} and {ev.label}")
                    owned[s] = ev.label
            elif ev.kind == EVENT_REQ_COMPLETED:
                for s in ev.attrs["slots"]:
                    assert owned.pop(s) == ev.label
        assert not owned, f"slots never released: {owned}"

        report = service.report()
        assert report.completed == self.N_REQUESTS
        assert report.failed == 0 and report.rejected == 0
        assert report.peak_concurrency > 1, (
            "64 requests on 16 GPUs must actually overlap")
        assert 0 < report.utilization <= 1
        service.shutdown()


class TestLifecycleObservability:
    def test_events_in_order_and_metrics_present(self):
        service = ProgramService(FLEET16, policy="fifo")
        service.submit(make_request("stencil", 2, label="one"))
        service.submit(make_request("jacobi", 2, label="two"))
        service.drain(timeout=120)

        for rid in ("one", "two"):
            kinds = [ev.kind for ev in service.tracer.events
                     if ev.kind in REQUEST_KINDS and ev.label == rid]
            assert kinds == [EVENT_REQ_ENQUEUED, EVENT_REQ_ADMITTED,
                             EVENT_REQ_PLACED, EVENT_REQ_COMPLETED]
            seqs = [ev.seq for ev in service.tracer.events
                    if ev.kind in REQUEST_KINDS and ev.label == rid]
            assert seqs == sorted(seqs)

        done = [ev for ev in service.tracer.events
                if ev.kind == EVENT_REQ_COMPLETED]
        for ev in done:
            assert ev.attrs["wait_seconds"] >= 0
            assert ev.attrs["service_seconds"] > 0
            assert ev.attrs["modeled_seconds"] > 0
            assert ev.attrs["compile_outcome"] in (
                "cache_hit", "cache_miss", "hit_memory", "hit_disk",
                "compiled")

        metrics = service.tracer.metrics
        assert metrics.counter_total("requests_enqueued") == 2
        assert metrics.counter_total("requests_admitted") == 2
        assert metrics.counter_total("requests_completed") == 2
        waits = metrics.histograms["queue_wait_seconds"]
        assert sum(h.count for h in waits.values()) == 2

    def test_trace_exports_include_request_events(self):
        service = ProgramService(FLEET16)
        service.submit(make_request("stencil", 2, label="only"))
        service.drain(timeout=120)
        text = jsonl(service.tracer)
        assert '"req_enqueued"' in text and '"req_completed"' in text
        doc = chrome_trace(service.tracer)
        cats = {ev.get("cat") for ev in doc["traceEvents"]}
        assert {"req_enqueued", "req_placed", "req_completed"} <= cats

    def test_ticket_wait_and_service_times(self):
        service = ProgramService(FLEET16)
        rec = service.submit(make_request("stencil", 2))
        rec.result(timeout=120)
        assert rec.wait_seconds is not None and rec.wait_seconds >= 0
        assert rec.service_seconds > 0
        assert rec.compile_outcome in ("cache_hit", "cache_miss")


class TestQueueingEdges:
    def test_queue_when_full_serializes_without_loss(self):
        fleet = hypothetical_node(2, gpus_per_hub=2)
        service = ProgramService(fleet)
        tickets = [service.submit(make_request("stencil", 2, label=f"q{i}"))
                   for i in range(4)]
        records = service.drain(timeout=120)
        assert all(r.error is None for r in records)
        report = service.report()
        assert report.completed == 4
        # 2-GPU requests on a 2-GPU fleet can never overlap.
        assert report.peak_concurrency == 1
        # The queue imposed FIFO order: waits are monotone.
        waits = [t.wait_seconds for t in tickets]
        assert waits == sorted(waits)

    def test_oversized_gpus_rejected_with_code(self):
        service = ProgramService(hypothetical_node(2, gpus_per_hub=2))
        with pytest.raises(AdmissionError) as exc:
            service.submit(make_request("stencil", 3))
        assert exc.value.code == "oversized_gpus"
        report = service.report()
        assert report.rejected == 1 and report.submitted == 0

    def test_oversized_memory_rejected_with_code(self):
        service = ProgramService(FLEET16)
        req = make_request("stencil", 1)
        req.bytes_per_gpu = 1 << 62
        with pytest.raises(AdmissionError) as exc:
            service.submit(req)
        assert exc.value.code == "oversized_memory"

    def test_bounded_queue_rejects_overflow(self):
        fleet = hypothetical_node(2, gpus_per_hub=2)
        service = ProgramService(fleet, max_queue=2)
        for i in range(8):
            try:
                service.submit(make_request("stencil", 2, label=f"b{i}"))
            except AdmissionError as exc:
                assert exc.code == "queue_full"
                break
        else:
            pytest.fail("bounded queue never filled")
        service.drain(timeout=120)

    def test_rejection_leaves_a_trace_event(self):
        service = ProgramService(hypothetical_node(2, gpus_per_hub=2))
        with pytest.raises(AdmissionError):
            service.submit(make_request("stencil", 5, label="nope"))
        rejects = [ev for ev in service.tracer.events
                   if ev.kind == "req_rejected"]
        assert len(rejects) == 1
        assert rejects[0].attrs["code"] == "oversized_gpus"


class TestServiceWithRegistry:
    def test_compile_outcomes_flow_through_the_registry(self, tmp_path):
        registry = ProgramRegistry(tmp_path / "reg")
        service = ProgramService(FLEET16, registry=registry)
        for i in range(4):
            service.submit(make_request("stencil", 2, label=f"s{i}"))
        records = service.drain(timeout=120)
        outcomes = sorted(r.compile_outcome for r in records)
        assert outcomes.count("compiled") == 1, (
            "single-flight: four concurrent requests for one program "
            f"must compile once, got {outcomes}")
        assert all(o in ("compiled", "hit_memory") for o in outcomes)
        report = service.report()
        assert report.registry_stats is not None
        assert report.registry_stats["compiles"] == 1

        # A second service over the same directory: pure disk/memory hits.
        service2 = ProgramService(FLEET16,
                                  registry=ProgramRegistry(tmp_path / "reg"))
        service2.submit(make_request("stencil", 2, label="warm"))
        [rec] = service2.drain(timeout=120)
        assert rec.compile_outcome == "hit_disk"


class TestFairnessUnderLoad:
    def test_fair_policy_interleaves_tenants(self):
        # A 2-slot fleet so admissions are strictly serialized, making
        # the admission order observable.
        fleet = hypothetical_node(2, gpus_per_hub=2)
        service = ProgramService(fleet, policy="fair")
        # Tenant A floods first; tenant B's single request arrives last.
        for i in range(6):
            service.submit(make_request("stencil", 2, tenant="flood",
                                        label=f"a{i}"))
        service.submit(make_request("jacobi", 2, tenant="patient",
                                    label="b0"))
        service.drain(timeout=120)
        admitted = [ev.label for ev in service.tracer.events
                    if ev.kind == EVENT_REQ_ADMITTED]
        # b0 must not be admitted last: fairness lets it overtake the
        # flood (a0 may already be running when b0 arrives).
        assert admitted.index("b0") < len(admitted) - 1, admitted
        report = service.report()
        assert report.per_tenant_completed == {"flood": 6, "patient": 1}
