"""Multi-GPU coherence sanitizer tests.

Three angles: clean programs stay clean (every paper app on 1/2/4
GPUs, static and adaptive, no violation and unchanged results);
seeded coherence bugs are caught with the right localization; and the
sanitizer is a pure observer (off by default, zero modeled-time
perturbation when on).
"""

import numpy as np
import pytest

import repro
from repro.apps import ALL_APPS, EXTRA_APPS
from repro.bench.machines import hypothetical_node
from repro.runtime import comm as comm_mod
from repro.runtime.data_loader import DataLoader
from repro.runtime.dirty import TwoLevelDirty
from repro.sanitizer import CoherenceViolation, Sanitizer
from repro.translator.array_config import ArrayConfig
from repro.vcuda import DESKTOP_MACHINE, Platform
from tests.util import run_source

APPS = {**ALL_APPS, **EXTRA_APPS}

STEP = r"""
void step(int n, float *x, float *y) {
  #pragma acc data copyin(x[0:n]) copy(y[0:n])
  {
    #pragma acc parallel
    {
      #pragma acc loop gang
      for (int i = 0; i < n; i++) { y[i] = x[i] + 1.0f; }
    }
    #pragma acc parallel
    {
      #pragma acc loop gang
      for (int i = 0; i < n; i++) { y[i] = y[i] * 2.0f; }
    }
  }
}
"""


def step_args(n=64):
    return {"n": n, "x": np.arange(n, dtype=np.float32),
            "y": np.zeros(n, dtype=np.float32)}


def run_app(name, ngpus, adaptive=False, sanitize=True):
    spec = APPS[name]
    prog = repro.compile(spec.source)
    machine = "desktop" if ngpus <= 2 else hypothetical_node(ngpus)
    args = spec.args_for("tiny")
    snap = spec.snapshot(args)
    run = prog.run(spec.entry, args, machine=machine, ngpus=ngpus,
                   sanitize=sanitize, adaptive=adaptive)
    spec.check(args, snap)
    return run


class TestCleanApps:
    """Acceptance sweep: all paper apps run violation-free sanitized."""

    @pytest.mark.parametrize("app", sorted(APPS))
    @pytest.mark.parametrize("ngpus", [1, 2, 4])
    def test_static(self, app, ngpus):
        run = run_app(app, ngpus)
        assert run.sanitizer is not None
        assert run.sanitizer.loops_checked > 0
        assert run.sanitizer.oracle.elements_compared > 0

    @pytest.mark.parametrize("app", ["bfs", "jacobi", "kmeans"])
    def test_adaptive(self, app):
        run = run_app(app, 4, adaptive=True)
        assert run.sanitizer.loops_checked > 0

    def test_localaccess_apps_are_audited(self):
        # BFS declares user localaccess windows on row and col: the
        # auditor must actually have exercised them.
        run = run_app("bfs", 2)
        assert run.sanitizer.auditor.audited > 0


class TestOptIn:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        _, run = run_source(STEP, step_args(), ngpus=2)
        assert run.sanitizer is None

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        _, run = run_source(STEP, step_args(), ngpus=2)
        assert run.sanitizer is not None
        assert run.sanitizer.loops_checked == 2

    def test_env_var_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        _, run = run_source(STEP, step_args(), ngpus=2)
        assert run.sanitizer is None

    def test_explicit_kwarg_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        _, run = run_source(STEP, step_args(), ngpus=2, sanitize=False)
        assert run.sanitizer is None


class TestPureObserver:
    """The sanitizer works purely in data space: identical results and
    identical modeled time with it on or off."""

    def test_results_and_time_unperturbed(self):
        base_args, base = run_source(STEP, step_args(), ngpus=2)
        san_args, san = run_source(STEP, step_args(), ngpus=2,
                                   sanitize=True)
        np.testing.assert_array_equal(san_args["y"], base_args["y"])
        assert san.elapsed == base.elapsed
        assert san.breakdown.total == base.breakdown.total

    @pytest.mark.parametrize("app", ["md", "stencil", "heat2d"])
    def test_apps_time_unperturbed(self, app):
        base = run_app(app, 2, sanitize=False)
        san = run_app(app, 2, sanitize=True)
        assert base.sanitizer is None
        assert san.elapsed == base.elapsed


class TestLocalAccessAudit:
    UNDER = r"""
    void step(int n, float *x, float *y) {
      #pragma acc data copyin(x[0:n]) copy(y[0:n])
      {
        #pragma acc parallel
        {
          #pragma acc localaccess x[stride(1, 0, 0)] y[stride(1, 0, 0)]
          #pragma acc loop gang
          for (int i = 0; i < n - 1; i++) {
            y[i] = x[i] + x[i + 1];
          }
        }
      }
    }
    """

    def test_under_declared_window_reported(self):
        with pytest.raises(CoherenceViolation) as exc:
            run_source(self.UNDER, step_args(), ngpus=2, sanitize=True)
        e = exc.value
        assert e.kind == "localaccess-underdeclared"
        assert e.loop == "step_L0"
        assert e.array == "x"
        # The offending per-iteration range: i reads [i, i+1] but
        # declared only [i, i].
        assert (e.lo, e.hi) == (0, 1)
        assert "declared localaccess window" in e.detail

    def test_correct_window_passes(self):
        ok = self.UNDER.replace("x[stride(1, 0, 0)]", "x[stride(1, 0, 1)]")
        args, run = run_source(ok, step_args(), ngpus=2, sanitize=True)
        assert run.sanitizer.auditor.audited > 0
        np.testing.assert_allclose(
            args["y"][:-1],
            np.arange(64, dtype=np.float32)[:-1] * 2 + 1)


class TestFaultInjection:
    """Seeded runtime bugs must be caught, with the right diagnosis.

    The seeded bugs live in the replica-propagation machinery, so STEP
    compiles with infer=False here -- by default localaccess inference
    would distribute its arrays and never take the broken paths.
    """

    NO_INFER = repro.CompileOptions(infer=False)

    def test_unmarked_write_caught(self, monkeypatch):
        # Suppress both marking entry points: span-qualified stores mark
        # through mark_span, everything else through mark.
        monkeypatch.setattr(TwoLevelDirty, "mark",
                            lambda self, idx: None)
        monkeypatch.setattr(TwoLevelDirty, "mark_span",
                            lambda self, lo, hi: None)
        with pytest.raises(CoherenceViolation) as exc:
            run_source(STEP, step_args(), ngpus=2, sanitize=True,
                       options=self.NO_INFER)
        e = exc.value
        assert e.kind == "dirty-unmarked"
        assert e.array == "y"
        assert e.transfer == "replica-broadcast"
        assert e.chunk is not None

    def test_skipped_propagation_caught(self, monkeypatch):
        monkeypatch.setattr(
            comm_mod.CommunicationManager, "_propagate_replica",
            lambda self, ma: None)
        with pytest.raises(CoherenceViolation) as exc:
            run_source(STEP, step_args(), ngpus=2, sanitize=True,
                       options=self.NO_INFER)
        assert exc.value.kind == "dirty-uncleared"

    def test_dataless_propagation_caught(self, monkeypatch):
        # Clears the dirty bits but never ships the data: the replicas
        # disagree after the communication phase.
        def hollow(self, ma):
            for t in ma.dirty:
                if t is not None:
                    t.clear()

        monkeypatch.setattr(
            comm_mod.CommunicationManager, "_propagate_replica", hollow)
        with pytest.raises(CoherenceViolation) as exc:
            run_source(STEP, step_args(), ngpus=2, sanitize=True,
                       options=self.NO_INFER)
        assert exc.value.kind in ("replica-divergence", "result-divergence")
        assert exc.value.array == "y"
        assert exc.value.gpu is not None

    def test_scalar_reduction_divergence_caught(self, monkeypatch):
        from repro.runtime import reduction_rt

        SUM = r"""
        void total(int n, float *x, float *s) {
          float acc = 0.0f;
          #pragma acc parallel loop reduction(+:acc)
          for (int i = 0; i < n; i++) { acc += x[i]; }
          s[0] = acc;
        }
        """
        orig = reduction_rt.finalize_scalar_reductions

        def skewed(platform, results, ops, host_env):
            out = orig(platform, results, ops, host_env)
            for name in out:
                host_env[name] = host_env[name] + 1.0
            return out

        monkeypatch.setattr(reduction_rt, "finalize_scalar_reductions",
                            skewed)
        monkeypatch.setattr("repro.runtime.context.finalize_scalar_reductions",
                            skewed)
        with pytest.raises(CoherenceViolation) as exc:
            run_source(SUM, {"n": 32,
                             "x": np.ones(32, np.float32),
                             "s": np.zeros(1, np.float32)},
                       ngpus=2, sanitize=True)
        assert exc.value.kind == "scalar-divergence"
        assert exc.value.array == "acc"


class TestStaleReloadSkip:
    def test_corrupted_buffer_behind_skip_caught(self):
        p = Platform(DESKTOP_MACHINE, 2)
        dl = DataLoader(p)
        dl.sanitizer = Sanitizer(dl)
        host = np.arange(32, dtype=np.float32)
        dl.enter_region([("a", host, "copyin")])
        cfg = {"a": ArrayConfig(name="a", ctype="float", read=True)}
        tasks = [(0, 16), (16, 32)]
        dl.ensure_for_loop(cfg, tasks, "i", {})
        p.bus.sync()
        # Corrupt one replica behind the loader's back; the next
        # ensure() would skip the reload (same signature) and trust it.
        dl.arrays["a"].buffers[0].data[3] = -99.0
        with pytest.raises(CoherenceViolation) as exc:
            dl.ensure_for_loop(cfg, tasks, "i", {})
        assert exc.value.kind == "stale-reload-skip"
        assert exc.value.array == "a"

    def test_valid_skip_passes(self):
        p = Platform(DESKTOP_MACHINE, 2)
        dl = DataLoader(p)
        dl.sanitizer = Sanitizer(dl)
        host = np.arange(32, dtype=np.float32)
        dl.enter_region([("a", host, "copyin")])
        cfg = {"a": ArrayConfig(name="a", ctype="float", read=True)}
        tasks = [(0, 16), (16, 32)]
        dl.ensure_for_loop(cfg, tasks, "i", {})
        p.bus.sync()
        skipped0 = dl.reloads_skipped
        dl.ensure_for_loop(cfg, tasks, "i", {})
        assert dl.reloads_skipped == skipped0 + 1


class TestViolationFormatting:
    def test_message_carries_localization(self):
        e = CoherenceViolation("result-divergence", loop="jacobi_L0",
                              array="u", gpu=1, lo=128, hi=128, chunk=2,
                              transfer="replica-broadcast",
                              detail="expected 1.0, got 0.0")
        msg = str(e)
        for piece in ("[result-divergence]", "loop 'jacobi_L0'",
                      "array 'u'", "gpu 1", "elements [128, 128]",
                      "chunk 2", "via replica-broadcast",
                      "expected 1.0, got 0.0"):
            assert piece in msg

    def test_minimal_violation(self):
        e = CoherenceViolation("oracle-failure", detail="boom")
        assert e.kind == "oracle-failure"
        assert str(e) == "coherence violation [oracle-failure]: boom"


class TestZeroLengthPrograms:
    """Satellite regression: empty and single-element arrays flow
    through partitioning, dirty tracking and the sanitizer."""

    SRC = r"""
    void k(int n, float *x, float *y) {
      #pragma acc data copyin(x[0:n]) copy(y[0:n])
      {
        #pragma acc parallel loop
        for (int i = 0; i < n; i++) { y[i] = x[i] * 2.0f; }
      }
    }
    """

    @pytest.mark.parametrize("n", [0, 1])
    @pytest.mark.parametrize("ngpus", [1, 2, 4])
    def test_tiny_arrays_sanitized(self, n, ngpus):
        machine = "desktop" if ngpus <= 2 else hypothetical_node(ngpus)
        args, run = run_source(self.SRC, {
            "n": n, "x": np.arange(n, dtype=np.float32),
            "y": np.zeros(n, dtype=np.float32)},
            ngpus=ngpus, machine=machine, sanitize=True)
        np.testing.assert_array_equal(
            args["y"], np.arange(n, dtype=np.float32) * 2)
        assert run.sanitizer.loops_checked == 1
