"""Vectorizer semantics: generated kernels vs expected NumPy results,
plus generated-source structure and rejection of unsupported constructs.

Each test compiles a small OpenACC program and runs it end-to-end on the
virtual platform (1 and 2 GPUs where interesting); the heavy
engine-vs-engine equivalence lives in test_differential.py.
"""

import numpy as np
import pytest

import repro
from repro.translator.compiler import CompileOptions, compile_source
from repro.translator.vectorizer import VectorizeError

from tests.util import run_source


def f32(*vals):
    return np.array(vals, dtype=np.float32)


class TestElementwise:
    def test_saxpy(self):
        src = """
        void k(int n, float a, float *x, float *y) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { y[i] = a * x[i] + y[i]; }
        }
        """
        x = np.arange(8, dtype=np.float32)
        y = np.ones(8, dtype=np.float32)
        args, _ = run_source(src, {"n": 8, "a": 2.0, "x": x, "y": y}, ngpus=2)
        np.testing.assert_allclose(args["y"], 2 * np.arange(8) + 1)

    def test_shifted_read(self):
        src = """
        void k(int n, float *x, float *y) {
          #pragma acc parallel loop
          for (int i = 0; i < n - 1; i++) { y[i] = x[i + 1]; }
        }
        """
        x = np.arange(8, dtype=np.float32)
        y = np.zeros(8, dtype=np.float32)
        args, _ = run_source(src, {"n": 8, "x": x, "y": y})
        np.testing.assert_allclose(args["y"][:7], x[1:])

    def test_integer_division_and_modulo(self):
        src = """
        void k(int n, int *x, int *q, int *r) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            q[i] = x[i] / 3;
            r[i] = x[i] % 3;
          }
        }
        """
        x = np.arange(12, dtype=np.int32)
        args, _ = run_source(src, {
            "n": 12, "x": x,
            "q": np.zeros(12, np.int32), "r": np.zeros(12, np.int32)})
        np.testing.assert_array_equal(args["q"], np.arange(12) // 3)
        np.testing.assert_array_equal(args["r"], np.arange(12) % 3)

    def test_math_calls(self):
        src = """
        void k(int n, float *x, float *y) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            y[i] = sqrt(fabs(x[i])) + exp(0.0f) + fmax(x[i], 2.0f);
          }
        }
        """
        x = f32(-4.0, 9.0, 1.0)
        args, _ = run_source(src, {"n": 3, "x": x, "y": np.zeros(3, np.float32)})
        np.testing.assert_allclose(
            args["y"], np.sqrt(np.abs(x)) + 1.0 + np.maximum(x, 2.0),
            rtol=1e-6)

    def test_ternary(self):
        src = """
        void k(int n, float *x, float *y) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { y[i] = x[i] > 0.0f ? x[i] : -x[i]; }
        }
        """
        x = f32(-3.0, 4.0, -5.0)
        args, _ = run_source(src, {"n": 3, "x": x, "y": np.zeros(3, np.float32)})
        np.testing.assert_allclose(args["y"], np.abs(x))

    def test_cast(self):
        src = """
        void k(int n, int *x, float *y) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { y[i] = (float)x[i] / 2.0f; }
        }
        """
        args, _ = run_source(src, {
            "n": 4, "x": np.arange(4, dtype=np.int32),
            "y": np.zeros(4, np.float32)})
        np.testing.assert_allclose(args["y"], np.arange(4) / 2.0)

    def test_gather(self):
        src = """
        void k(int n, int *idx, float *x, float *y) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { y[i] = x[idx[i]]; }
        }
        """
        idx = np.array([3, 0, 2, 1], dtype=np.int32)
        x = f32(10, 11, 12, 13)
        args, _ = run_source(src, {"n": 4, "idx": idx, "x": x,
                                   "y": np.zeros(4, np.float32)}, ngpus=2)
        np.testing.assert_allclose(args["y"], x[idx])


class TestPredication:
    def test_if_masks_stores(self):
        src = """
        void k(int n, float *x, float *y) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            if (x[i] > 0.0f) { y[i] = 1.0f; }
          }
        }
        """
        x = f32(-1, 2, -3, 4)
        y = np.zeros(4, dtype=np.float32)
        args, _ = run_source(src, {"n": 4, "x": x, "y": y}, ngpus=2)
        np.testing.assert_allclose(args["y"], [0, 1, 0, 1])

    def test_if_else(self):
        src = """
        void k(int n, float *x, float *y) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            if (x[i] > 0.0f) { y[i] = 1.0f; } else { y[i] = -1.0f; }
          }
        }
        """
        x = f32(-1, 2, -3, 4)
        args, _ = run_source(src, {"n": 4, "x": x,
                                   "y": np.zeros(4, np.float32)})
        np.testing.assert_allclose(args["y"], [-1, 1, -1, 1])

    def test_nested_if(self):
        src = """
        void k(int n, float *x, float *y) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            if (x[i] > 0.0f) {
              if (x[i] > 2.0f) { y[i] = 2.0f; } else { y[i] = 1.0f; }
            }
          }
        }
        """
        x = f32(-1, 1, 3)
        args, _ = run_source(src, {"n": 3, "x": x,
                                   "y": np.zeros(3, np.float32)})
        np.testing.assert_allclose(args["y"], [0, 1, 2])

    def test_local_merge_under_mask(self):
        src = """
        void k(int n, float *x, float *y) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            float t = 0.0f;
            if (x[i] > 0.0f) { t = x[i] * 2.0f; }
            y[i] = t;
          }
        }
        """
        x = f32(-1, 2, -3, 4)
        args, _ = run_source(src, {"n": 4, "x": x,
                                   "y": np.zeros(4, np.float32)})
        np.testing.assert_allclose(args["y"], [0, 4, 0, 8])

    def test_guarded_out_of_range_read_is_safe(self):
        # The predicated gather evaluates all lanes; the clip guard must
        # keep lane n-1's x[i+1] from crashing.
        src = """
        void k(int n, float *x, float *y) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            if (i < n - 1) { y[i] = x[i + 1]; }
          }
        }
        """
        x = np.arange(6, dtype=np.float32)
        args, _ = run_source(src, {"n": 6, "x": x,
                                   "y": np.zeros(6, np.float32)}, ngpus=2)
        np.testing.assert_allclose(args["y"], [1, 2, 3, 4, 5, 0])

    def test_logical_ops_in_condition(self):
        src = """
        void k(int n, float *x, float *y) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            if (i > 0 && i < n - 1 || x[i] > 10.0f) { y[i] = 1.0f; }
          }
        }
        """
        x = f32(20, 0, 0, 0)
        args, _ = run_source(src, {"n": 4, "x": x,
                                   "y": np.zeros(4, np.float32)})
        np.testing.assert_allclose(args["y"], [1, 1, 1, 0])


class TestInnerLoops:
    def test_constant_trip_accumulation(self):
        src = """
        void k(int n, int m, float *x, float *y) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            float s = 0.0f;
            for (int j = 0; j < m; j++) { s = s + x[i * m + j]; }
            y[i] = s;
          }
        }
        """
        x = np.arange(12, dtype=np.float32)
        args, _ = run_source(src, {"n": 4, "m": 3, "x": x,
                                   "y": np.zeros(4, np.float32)}, ngpus=2)
        np.testing.assert_allclose(args["y"], x.reshape(4, 3).sum(axis=1))

    def test_triangular_bounds(self):
        src = """
        void k(int n, float *y) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            float s = 0.0f;
            for (int j = 0; j < i; j++) { s = s + 1.0f; }
            y[i] = s;
          }
        }
        """
        args, _ = run_source(src, {"n": 6, "y": np.zeros(6, np.float32)},
                             ngpus=2)
        np.testing.assert_allclose(args["y"], np.arange(6))

    def test_nested_constant_loops(self):
        src = """
        void k(int n, int a, int b, float *y) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            float s = 0.0f;
            for (int p = 0; p < a; p++) {
              for (int q = 0; q < b; q++) { s = s + 1.0f; }
            }
            y[i] = s;
          }
        }
        """
        args, _ = run_source(src, {"n": 3, "a": 2, "b": 5,
                                   "y": np.zeros(3, np.float32)})
        np.testing.assert_allclose(args["y"], [10, 10, 10])

    def test_csr_flattening(self):
        src = """
        void k(int n, int *row, float *vals, float *y) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            float s = 0.0f;
            for (int e = row[i]; e < row[i + 1]; e++) { s += vals[e]; }
            y[i] = s;
          }
        }
        """
        row = np.array([0, 2, 2, 5], dtype=np.int32)
        vals = f32(1, 2, 10, 20, 30)
        args, _ = run_source(src, {"n": 3, "row": row, "vals": vals,
                                   "y": np.zeros(3, np.float32)}, ngpus=2)
        np.testing.assert_allclose(args["y"], [3, 0, 60])

    def test_csr_under_outer_if_compresses(self):
        src = """
        void k(int n, int *row, int *col, int *active, int *seen) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            if (active[i] == 1) {
              for (int e = row[i]; e < row[i + 1]; e++) {
                seen[col[e]] = 1;
              }
            }
          }
        }
        """
        row = np.array([0, 2, 4, 6], dtype=np.int32)
        col = np.array([0, 1, 1, 2, 2, 0], dtype=np.int32)
        active = np.array([1, 0, 1], dtype=np.int32)
        seen = np.zeros(3, dtype=np.int32)
        args, _ = run_source(src, {"n": 3, "row": row, "col": col,
                                   "active": active, "seen": seen}, ngpus=2)
        np.testing.assert_array_equal(args["seen"], [1, 1, 1])

    def test_csr_with_inner_if(self):
        src = """
        void k(int n, int *row, float *vals, float *y) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            float s = 0.0f;
            for (int e = row[i]; e < row[i + 1]; e++) {
              if (vals[e] > 0.0f) { s += vals[e]; }
            }
            y[i] = s;
          }
        }
        """
        row = np.array([0, 3, 5], dtype=np.int32)
        vals = f32(1, -2, 3, -4, 5)
        args, _ = run_source(src, {"n": 2, "row": row, "vals": vals,
                                   "y": np.zeros(2, np.float32)})
        np.testing.assert_allclose(args["y"], [4, 5])

    def test_empty_csr_rows(self):
        src = """
        void k(int n, int *row, float *vals, float *y) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            for (int e = row[i]; e < row[i + 1]; e++) { y[i] += vals[e]; }
          }
        }
        """
        row = np.zeros(5, dtype=np.int32)  # all rows empty
        args, _ = run_source(src, {"n": 4, "row": row,
                                   "vals": np.zeros(1, np.float32),
                                   "y": np.zeros(4, np.float32)}, ngpus=2)
        np.testing.assert_allclose(args["y"], 0)


class TestReductions:
    def test_sum_reduction(self):
        src = """
        float k(int n, float *x) {
          float total = 0.0f;
          #pragma acc parallel loop reduction(+:total)
          for (int i = 0; i < n; i++) { total += x[i]; }
          return total;
        }
        """
        x = np.arange(100, dtype=np.float32)
        _, run = run_source(src, {"n": 100, "x": x}, ngpus=2)
        assert run.value == pytest.approx(x.sum())

    def test_sum_with_host_initial_value(self):
        src = """
        float k(int n, float *x) {
          float total = 1000.0f;
          #pragma acc parallel loop reduction(+:total)
          for (int i = 0; i < n; i++) { total += x[i]; }
          return total;
        }
        """
        x = np.ones(10, dtype=np.float32)
        _, run = run_source(src, {"n": 10, "x": x}, ngpus=2)
        assert run.value == pytest.approx(1010.0)

    def test_max_reduction(self):
        src = """
        float k(int n, float *x) {
          float m = -1.0e30f;
          #pragma acc parallel loop reduction(max:m)
          for (int i = 0; i < n; i++) { m = fmax(m, x[i]); }
          return m;
        }
        """
        x = f32(3, 9, 2, 7)
        _, run = run_source(src, {"n": 4, "x": x}, ngpus=2)
        assert run.value == pytest.approx(9.0)

    def test_min_reduction_via_assignment_pattern(self):
        src = """
        float k(int n, float *x) {
          float m = 1.0e30f;
          #pragma acc parallel loop reduction(min:m)
          for (int i = 0; i < n; i++) { m = fmin(x[i], m); }
          return m;
        }
        """
        _, run = run_source(src, {"n": 4, "x": f32(3, 9, 2, 7)}, ngpus=2)
        assert run.value == pytest.approx(2.0)

    def test_masked_reduction(self):
        src = """
        int k(int n, float *x) {
          int cnt = 0;
          #pragma acc parallel loop reduction(+:cnt)
          for (int i = 0; i < n; i++) {
            if (x[i] > 0.0f) { cnt += 1; }
          }
          return cnt;
        }
        """
        x = f32(1, -1, 2, -2, 3)
        _, run = run_source(src, {"n": 5, "x": x}, ngpus=2)
        assert run.value == 3

    def test_reduction_inside_csr(self):
        src = """
        int k(int n, int *row) {
          int edges = 0;
          #pragma acc parallel loop reduction(+:edges)
          for (int i = 0; i < n; i++) {
            for (int e = row[i]; e < row[i + 1]; e++) { edges += 1; }
          }
          return edges;
        }
        """
        row = np.array([0, 2, 5, 9], dtype=np.int32)
        _, run = run_source(src, {"n": 3, "row": row}, ngpus=2)
        assert run.value == 9

    def test_reduction_to_array(self):
        src = """
        void k(int n, int nb, int *bin, float *w, float *hist) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            #pragma acc reductiontoarray(+: hist[0:nb])
            hist[bin[i]] += w[i];
          }
        }
        """
        bin_ = np.array([0, 1, 0, 2, 1, 0], dtype=np.int32)
        w = f32(1, 2, 3, 4, 5, 6)
        hist = np.zeros(3, dtype=np.float32)
        args, _ = run_source(src, {"n": 6, "nb": 3, "bin": bin_, "w": w,
                                   "hist": hist}, ngpus=2)
        np.testing.assert_allclose(args["hist"], [10, 7, 4])

    def test_reduction_to_array_keeps_initial(self):
        src = """
        void k(int n, int nb, int *bin, float *hist) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            #pragma acc reductiontoarray(+: hist[0:nb])
            hist[bin[i]] += 1.0f;
          }
        }
        """
        hist = f32(100, 200)
        args, _ = run_source(src, {
            "n": 4, "nb": 2, "bin": np.array([0, 0, 1, 0], np.int32),
            "hist": hist}, ngpus=2)
        np.testing.assert_allclose(args["hist"], [103, 201])


class TestGeneratedSource:
    def test_source_is_inspectable(self):
        src = """
        void k(int n, float *x) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { x[i] = 1.0f; }
        }
        """
        prog = repro.compile(src)
        text = prog.kernel_source("k_L0")
        assert "def kernel(ctx):" in text
        assert "np.arange(ctx.i0, ctx.i1" in text

    def test_index_rewriting_subtracts_base(self):
        src = """
        void k(int n, float *x) {
          #pragma acc localaccess x[stride(1)]
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { x[i] = 1.0f; }
        }
        """
        text = repro.compile(src).kernel_source("k_L0")
        assert "_b_x" in text

    def test_dirty_marking_emitted_for_replica_writes(self):
        src = """
        void k(int n, int *idx, float *x) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { x[idx[i]] = 1.0f; }
        }
        """
        text = repro.compile(src).kernel_source("k_L0")
        assert "ctx.mark_dirty('x'" in text

    def test_miss_check_emitted_for_unproven_distributed_writes(self):
        src = """
        void k(int n, int *idx, float *x) {
          #pragma acc localaccess x[stride(1)]
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { x[idx[i]] = 1.0f; }
        }
        """
        text = repro.compile(src).kernel_source("k_L0")
        assert "ctx.write_checked('x'" in text

    def test_proven_writes_have_no_instrumentation(self):
        src = """
        void k(int n, float *x) {
          #pragma acc localaccess x[stride(1)]
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { x[i] = 1.0f; }
        }
        """
        text = repro.compile(src).kernel_source("k_L0")
        assert "write_checked" not in text
        assert "mark_dirty" not in text

    def test_dyn_count_emitted_for_inner_loops(self):
        src = """
        void k(int n, int m, float *x) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            for (int j = 0; j < m; j++) { x[i] += 1.0f; }
          }
        }
        """
        text = repro.compile(src).kernel_source("k_L0")
        assert "ctx.dyn_count('L0'" in text


class TestRejections:
    def expect_reject(self, src, match=None):
        opts = CompileOptions(require_vectorized=True)
        with pytest.raises((VectorizeError, Exception)) as exc:
            compile_source(src, opts)
        if match:
            assert match in str(exc.value)

    def test_irregular_compound_update_needs_annotation(self):
        self.expect_reject("""
        void k(int n, int *idx, float *x) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { x[idx[i]] += 1.0f; }
        }
        """, "reductiontoarray")

    def test_break_rejected(self):
        self.expect_reject("""
        void k(int n, float *x) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            for (int j = 0; j < 4; j++) { break; }
          }
        }
        """)

    def test_host_scalar_write_rejected(self):
        self.expect_reject("""
        void k(int n, float a, float *x) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { a = x[i]; }
        }
        """, "read-only")

    def test_interpreter_fallback_without_require(self):
        src = """
        void k(int n, float *x) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            for (int j = 0; j < 4; j++) { break; }
          }
        }
        """
        compiled = compile_source(src)  # no require_vectorized
        plan = compiled.plans[0]
        assert plan.fn is None
        assert plan.vectorize_error is not None
        assert plan.interp is not None
