"""The paper's own illustrative programs, reconstructed and executed.

Fig. 1 (section II-A) shows a basic OpenACC program: data directives, a
parallel region with a gang loop, and a scalar reduction clause.
Fig. 4 (section III-C) shows the extension example: the read patterns
of ``x``, ``b`` and ``c`` declared with ``localaccess``; the ``errors``
array left undeclared (so it is not aggressively optimized -- replica
placement); and a ``reductiontoarray`` annotation on the dynamically
indexed accumulation.  These tests pin that the compiler treats the
paper's own examples exactly as section IV says it should.
"""

import numpy as np
import pytest

import repro
from repro.translator.array_config import Placement, WriteHandling
from tests.util import run_source

# Fig. 1 shape: data region, parallel + loop gang, scalar reduction.
FIG1 = r"""
float fig1(int n, float *a, float *b) {
  float sum = 0.0f;
  #pragma acc data copyin(a[0:n]) copyout(b[0:n])
  {
    #pragma acc parallel
    {
      #pragma acc loop gang reduction(+:sum)
      for (int i = 0; i < n; i++) {
        b[i] = 2.0f * a[i];
        sum += b[i];
      }
    }
  }
  return sum;
}
"""

# Fig. 4 shape: a row-relaxation step; x/b/c carry localaccess, the
# dynamically indexed errors array carries reductiontoarray.
FIG4 = r"""
void fig4(int n, int nbins, float *x, float *b, float *c, int *binof,
          float *errors) {
  #pragma acc data copy(x[0:n], errors[0:nbins]) copyin(b[0:n], c[0:n], binof[0:n])
  {
    #pragma acc parallel
    {
      #pragma acc localaccess x[stride(1)] b[stride(1)] c[stride(1)]
      #pragma acc loop gang
      for (int i = 0; i < n; i++) {
        float xnew = (b[i] - c[i]) * 0.5f;
        float delta = fabs(xnew - x[i]);
        x[i] = xnew;
        #pragma acc reductiontoarray(+: errors[0:nbins])
        errors[binof[i]] += delta;
      }
    }
  }
}
"""


class TestFig1:
    def test_runs_and_reduces(self):
        n = 64
        a = np.arange(n, dtype=np.float32)
        b = np.zeros(n, dtype=np.float32)
        args, run = run_source(FIG1, {"n": n, "a": a, "b": b}, ngpus=2,
                               entry="fig1")
        np.testing.assert_allclose(args["b"], 2 * a)
        assert run.value == pytest.approx(float((2 * a).sum()))


class TestFig4:
    def compile(self):
        return repro.compile(FIG4)

    def test_config_matches_papers_description(self):
        cfg = self.compile().kernel("fig4_L0").config
        # "the read access patterns for the array x, the array b, and the
        # array c are passed to the compiler through the localaccess
        # directive"
        for name in ("x", "b", "c"):
            assert cfg.arrays[name].has_localaccess, name
            assert cfg.arrays[name].placement == Placement.DISTRIBUTED, name
        # "the errors array does not have the localaccess directive.  In
        # this case, the compiler does not aggressively optimize the data
        # movements for the array"
        assert not cfg.arrays["errors"].has_localaccess
        # "the statement at line 10 must be treated as the reduction
        # operations whose destinations are the elements in the array
        # errors"
        assert cfg.arrays["errors"].write_handling == WriteHandling.REDUCTION
        assert cfg.arrays["errors"].reduction_op == "+"
        # x is written in-window: the check code is eliminated (IV-D2).
        assert cfg.arrays["x"].write_handling == WriteHandling.LOCAL_PROVEN

    def test_runs_correctly_on_every_gpu_count(self):
        n, nbins = 200, 4
        rng = np.random.default_rng(3)
        base = {
            "n": n, "nbins": nbins,
            "x": rng.uniform(-1, 1, n).astype(np.float32),
            "b": rng.uniform(-1, 1, n).astype(np.float32),
            "c": rng.uniform(-1, 1, n).astype(np.float32),
            "binof": rng.integers(0, nbins, n).astype(np.int32),
            "errors": np.zeros(nbins, np.float32),
        }
        expected = None
        for machine, g in (("desktop", 1), ("desktop", 2),
                           ("supercomputer", 3)):
            args = {k: (v.copy() if isinstance(v, np.ndarray) else v)
                    for k, v in base.items()}
            run_source(FIG4, args, ngpus=g, machine=machine, entry="fig4")
            if expected is None:
                xnew = (base["b"] - base["c"]) * np.float32(0.5)
                delta = np.abs(xnew - base["x"])
                errs = np.zeros(nbins, np.float32)
                np.add.at(errs, base["binof"], delta)
                expected = (xnew, errs)
            np.testing.assert_allclose(args["x"], expected[0], rtol=1e-6)
            np.testing.assert_allclose(args["errors"], expected[1],
                                       rtol=1e-4)

    def test_papers_promise_no_manual_distribution(self):
        # "programmers do not have to consider the existence of the
        # multiple GPUs because no task mapping and no data transfer
        # between the multiple GPUs are manually commanded" -- the source
        # has no GPU ids, no transfers; yet 2-GPU runs distribute x/b/c
        # and replicate + merge errors.
        prog = self.compile()
        n, nbins = 100, 3
        args = {"n": n, "nbins": nbins,
                "x": np.ones(n, np.float32), "b": np.ones(n, np.float32),
                "c": np.zeros(n, np.float32),
                "binof": np.zeros(n, np.int32),
                "errors": np.zeros(nbins, np.float32)}
        run = prog.run("fig4", args, machine="desktop", ngpus=2)
        user = run.memory_high_water("user")
        # Distributed x/b/c: well under full 2x replication of everything.
        full_replication = 2 * (3 * n * 4 + n * 4 + nbins * 4)
        assert user < 0.8 * full_replication
"""Reconstructions are shape-faithful: the paper's figure listings are
partially OCR-garbled in our source text, so variable roles (x, b, c,
errors, the dynamic index) and directive placement follow the prose of
section III-C rather than the exact listing."""
