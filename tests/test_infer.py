"""Automatic ``localaccess`` inference tests.

Window synthesis over every affine subscript shape the analysis tests
exercise, the write-safety and bail-out rules, explicit-directive
precedence, the ``infer=False`` escape hatch, cross-loop window
harmonization, differential runs (inferred vs hand-annotated must be
bit-identical with identical golden-trace summaries), a sanitized fuzz
sweep on 1/2/4 GPUs, and the ``repro.explain`` reports.
"""

import hashlib
import json
import re

import numpy as np
import pytest
from hypothesis import given, seed, settings, strategies as st

import repro
from repro.apps import stencil
from repro.bench.machines import hypothetical_node
from repro.explain import ExplainReport, explain, main as explain_main
from repro.frontend import cast as C
from repro.frontend.analysis import analyze_loop, normalize_loop
from repro.frontend.parser import parse
from repro.runtime.partition import (
    Block,
    primary_blocks,
    split_tasks,
)
from repro.sanitizer.violations import CoherenceViolation
from repro.trace.golden import normalize
from repro.translator.array_config import Placement, WriteHandling
from repro.translator.compiler import CompileOptions, compile_source
from repro.translator.infer import (
    equivalent_stride_clause,
    infer_array_window,
    primary_safe_offsets,
    static_window_span,
    window_from_span,
)
from tests.util import run_source

_SETTINGS = dict(max_examples=25, deadline=None, database=None)


def _case_seed(case_id: str) -> int:
    digest = hashlib.sha256(case_id.encode()).digest()
    return int.from_bytes(digest[:8], "big")


def usage_of(body, array="a"):
    """Analyze a one-loop function and return one array's usage."""
    src = f"""
    void f(int n, int m, int j, float *a, float *y, int *k) {{
      for (int i = 0; i < n; i++) {{ {body} }}
    }}
    """
    prog = parse(src)
    loop = next(s for s in C.walk(prog.functions[0].body)
                if isinstance(s, C.For))
    nest = normalize_loop(loop)
    analysis = analyze_loop(nest, {"a", "y", "k"}, {"n", "m", "j", "i"})
    return analysis.arrays[array]


def infer(body, array="a", **kw):
    return infer_array_window(usage_of(body, array), "i", **kw)


def strip_localaccess(source):
    return re.sub(r"^.*#pragma acc localaccess.*\n", "", source,
                  flags=re.MULTILINE)


def machine_for(ngpus):
    return "desktop" if ngpus <= 2 else hypothetical_node(ngpus)


# ---------------------------------------------------------------------------
# Window synthesis over the affine shapes (mirrors TestAffine fixtures)
# ---------------------------------------------------------------------------


class TestWindowSynthesis:
    def test_plain_var(self):
        d = infer("y[i] = a[i];")
        assert d.adopted and d.span == (1, 0, 0)

    def test_constant_subscript(self):
        # Read-only constant window: legal (coeff 0, a range window).
        d = infer("y[i] = a[7];")
        assert d.adopted and d.span == (0, 7, 7)

    def test_linear(self):
        d = infer("y[i] = a[3 * i + 2];")
        assert d.adopted and d.span == (3, 2, 2)

    def test_var_times_const_on_left(self):
        d = infer("y[i] = a[i * 4];")
        assert d.adopted and d.span == (4, 0, 0)

    def test_nested_parens(self):
        d = infer("y[i] = a[2 * (i + 3)];")
        assert d.adopted and d.span == (2, 6, 6)

    def test_envelope_widens_over_all_reads(self):
        d = infer("y[i] = a[i - 1] + a[i + 1] + a[i + 4];")
        assert d.adopted and d.span == (1, -1, 4)
        assert equivalent_stride_clause(d.span) == "stride(1, 1, 4)"

    def test_symbolic_offset_bails(self):
        d = infer("y[i] = a[2 * i - j];")
        assert not d.adopted and "symbolic read" in d.reason

    def test_negated_var_bails(self):
        d = infer("y[i] = a[-i + 8];")
        assert not d.adopted and "negative read stride" in d.reason

    def test_symbolic_coefficient_bails(self):
        d = infer("y[i] = a[i * n];")
        assert not d.adopted and "non-affine" in d.reason

    def test_quadratic_bails(self):
        d = infer("y[i] = a[i * i];")
        assert not d.adopted and "non-affine" in d.reason

    def test_division_of_var_bails(self):
        d = infer("y[i] = a[i / 2];")
        assert not d.adopted and "non-affine" in d.reason

    def test_var_free_division_is_symbolic_offset(self):
        d = infer("y[i] = a[n / 2];")
        assert not d.adopted and "symbolic read" in d.reason

    def test_data_dependent_subscript_bails(self):
        d = infer("y[i] = a[k[i]];")
        assert not d.adopted and "data-dependent read" in d.reason

    def test_mixed_strides_bail(self):
        d = infer("y[i] = a[i] + a[2 * i];")
        assert not d.adopted and "mixed read strides" in d.reason

    def test_reduction_target_bails(self):
        d = infer("y[i] = a[i];", is_reduction_target=True)
        assert not d.adopted and "reductiontoarray" in d.reason

    def test_window_expression_form(self):
        d = infer("y[i] = a[2 * i + 3];")
        w = d.window
        assert w.origin == "inferred" and w.spec is None
        assert static_window_span(w, "i") == (2, 3, 3)

    def test_stride_clause_round_trip(self):
        # The suggested clause re-declares exactly the inferred span.
        for span in [(1, -1, 1), (1, 0, 0), (3, 2, 2), (2, -4, 5)]:
            clause = equivalent_stride_clause(span)
            src = f"""
            void f(int n, float *a, float *y) {{
              #pragma acc parallel loop
              #pragma acc localaccess a[{clause}]
              for (int i = 0; i < n; i++) {{ y[i] = a[i]; }}
            }}
            """
            cp = compile_source(src, cache=False)
            cfg = cp.plans[0].config.arrays["a"]
            assert static_window_span(cfg.window, "i") == span, span


class TestWriteRules:
    def test_write_only_infers_from_writes(self):
        d = infer("a[i] = 1.0f;")
        assert d.adopted and d.source == "writes" and d.span == (1, 0, 0)

    def test_symmetric_read_write(self):
        d = infer("a[i] = a[i - 1] + a[i + 1];")
        assert d.adopted and d.span == (1, -1, 1)

    def test_write_outside_read_window_bails(self):
        d = infer("y[i] = a[i]; a[i + 2] = y[i];")
        assert not d.adopted
        assert "outside the inferred read window" in d.reason

    def test_write_outside_primary_safe_band_bails(self):
        # Window [i, i+5] puts the ownership cut so that offset 5 of a
        # boundary iteration lands in the next GPU's primary block.
        d = infer("y[i] = a[i] + a[i + 5]; a[i + 5] = y[i];")
        assert not d.adopted
        assert "primary-safe band" in d.reason

    def test_constant_window_write_bails(self):
        d = infer("a[0] = 1.0f;")
        assert not d.adopted and "cross-GPU write race" in d.reason

    def test_data_dependent_write_bails(self):
        d = infer("a[k[i]] = 1.0f;")
        assert not d.adopted and "data-dependent write" in d.reason

    def test_elision_disabled_bails_written_arrays(self):
        d = infer("a[i] = 1.0f;", elide_write_checks=False)
        assert not d.adopted and "elision disabled" in d.reason
        # Read-only arrays are unaffected by the elision switch.
        d = infer("y[i] = a[i];", elide_write_checks=False)
        assert d.adopted

    def test_adopted_writes_classify_local_proven(self):
        src = """
        void f(int n, float *a, float *b) {
          #pragma acc parallel loop
          for (int i = 1; i < n - 1; i++) { b[i] = a[i - 1] + a[i + 1]; }
        }
        """
        cp = compile_source(src, cache=False)
        cfg = cp.plans[0].config.arrays["b"]
        assert cfg.placement == Placement.DISTRIBUTED
        assert cfg.window_origin == "inferred"
        assert cfg.write_handling == WriteHandling.LOCAL_PROVEN


class TestPrimarySafeBand:
    def test_known_values(self):
        assert primary_safe_offsets(1, -1, 1) == (0, 0)
        assert primary_safe_offsets(1, 0, 0) == (0, 0)
        assert primary_safe_offsets(3, 2, 2) == (1, 3)

    def test_band_matches_runtime_partitioner(self):
        # Every offset the formula declares safe must land in the
        # writing GPU's primary block under the *actual* runtime
        # partitioning, for every split the scheduler can produce.
        for coeff, lo, hi in [(1, -1, 1), (1, 0, 0), (1, -2, 3),
                              (2, 0, 1), (3, -1, 4), (2, -3, 3)]:
            safe_lo, safe_hi = primary_safe_offsets(coeff, lo, hi)
            band = [b for b in range(lo, hi + 1) if safe_lo <= b <= safe_hi]
            assert band, (coeff, lo, hi)
            for tasks_n in (7, 16, 33):
                length = coeff * tasks_n + hi + 4
                for ngpus in (2, 3, 4):
                    slices = split_tasks(0, tasks_n, ngpus)
                    windows = [
                        Block(coeff * t0 + lo,
                              coeff * (t1 - 1) + hi + 1).clamp(length)
                        if t1 > t0 else Block(0, 0)
                        for t0, t1 in slices
                    ]
                    primary = primary_blocks(windows, length)
                    for g, (t0, t1) in enumerate(slices):
                        for i in (t0, t1 - 1):
                            if i < t0:
                                continue
                            for b in band:
                                x = coeff * i + b
                                if 0 <= x < length:
                                    blk = primary[g]
                                    assert blk.lo <= x < blk.hi, (
                                        coeff, lo, hi, b, ngpus, g, i)


# ---------------------------------------------------------------------------
# Compiler integration: precedence, infer=False, harmonization
# ---------------------------------------------------------------------------


TWO_SWEEP = """
void sweep(double* a, double* b, int n, int steps) {
    for (int t = 0; t < steps; t++) {
        #pragma acc parallel loop
        %s
        for (int i = 1; i < n - 1; i++) {
            b[i] = 0.25 * (a[i-1] + 2.0 * a[i] + a[i+1]);
        }
        #pragma acc parallel loop
        %s
        for (int i = 1; i < n - 1; i++) {
            a[i] = b[i];
        }
    }
}
"""


class TestPrecedenceAndDisable:
    def test_explicit_directive_wins_over_inference(self):
        # Declare a *wider* window than inference would pick: the
        # declared one must survive untouched.
        src = TWO_SWEEP % ("#pragma acc localaccess a[stride(1, 2, 2)]", "")
        cp = compile_source(src, cache=False)
        cfg = cp.plans[0].config.arrays["a"]
        assert cfg.window_origin == "declared"
        assert cfg.window.spec is not None
        assert static_window_span(cfg.window, "i") == (1, -2, 2)
        # The unannotated array in the same loop is still inferred.
        assert cp.plans[0].config.arrays["b"].window_origin == "inferred"

    def test_infer_false_reproduces_paper_behavior(self):
        src = TWO_SWEEP % ("", "")
        cp = compile_source(src, CompileOptions(infer=False), cache=False)
        for plan in cp.plans:
            for name, cfg in plan.config.arrays.items():
                assert cfg.placement == Placement.REPLICA, name
                assert cfg.window is None
                assert cfg.infer_reason == "inference disabled (infer=False)"
                if cfg.written:
                    assert cfg.write_handling == WriteHandling.DIRTY_BITS

    def test_infer_false_still_correct(self):
        n, steps = 512, 3
        def args():
            return {"a": np.linspace(0, 1, n), "b": np.zeros(n),
                    "n": n, "steps": steps}
        src = TWO_SWEEP % ("", "")
        on, _ = run_source(src, args(), ngpus=2)
        off, _ = run_source(src, args(), ngpus=2,
                            options=CompileOptions(infer=False))
        np.testing.assert_array_equal(on["a"], off["a"])
        np.testing.assert_array_equal(on["b"], off["b"])

    def test_options_cache_key_separates_infer(self):
        src = TWO_SWEEP % ("", "")
        a = compile_source(src, CompileOptions(infer=True))
        b = compile_source(src, CompileOptions(infer=False))
        assert a is not b


class TestHarmonization:
    def test_ping_pong_windows_align_across_loops(self):
        # `a` is read [i-1, i+1] in L0 but written [i, i] in L1: the
        # write window must widen to the read envelope so both loops
        # request identical blocks.  `b` is [i, i] in both loops and
        # needs no widening.
        cp = compile_source(TWO_SWEEP % ("", ""), cache=False)
        for plan in cp.plans:
            for name, span in [("a", (1, -1, 1)), ("b", (1, 0, 0))]:
                cfg = plan.config.arrays[name]
                assert cfg.window_origin == "inferred"
                assert cfg.inferred_span == span, (plan.name, name)

    def test_unsafe_widening_keeps_per_loop_windows(self):
        # L0 reads a[i+3] (span (1,3,3)); L1 writes a[i] (span (1,0,0)).
        # The envelope (1,0,3) would put offset 0 outside the
        # primary-safe band, so harmonization must leave both alone.
        src = """
        void f(int n, float *a, float *y) {
          #pragma acc parallel loop
          for (int i = 0; i < n - 3; i++) { y[i] = a[i + 3]; }
          #pragma acc parallel loop
          for (int i = 0; i < n - 3; i++) { a[i] = y[i]; }
        }
        """
        cp = compile_source(src, cache=False)
        assert cp.plans[0].config.arrays["a"].inferred_span == (1, 3, 3)
        assert cp.plans[1].config.arrays["a"].inferred_span == (1, 0, 0)

    def test_inferred_aligns_to_declared_window(self):
        src = TWO_SWEEP % ("#pragma acc localaccess a[stride(1, 1, 1)]", "")
        cp = compile_source(src, cache=False)
        # Loop 1's inferred window for `a` must widen to the declared
        # stride(1,1,1) of loop 0 so the loader block signatures match.
        cfg0 = cp.plans[0].config.arrays["a"]
        cfg1 = cp.plans[1].config.arrays["a"]
        assert cfg0.window_origin == "declared"
        assert cfg1.window_origin == "inferred"
        assert cfg1.inferred_span == (1, -1, 1)


# ---------------------------------------------------------------------------
# Differential: inferred vs hand-annotated stencil
# ---------------------------------------------------------------------------


class TestDifferential:
    @pytest.mark.parametrize("ngpus", [1, 2, 4])
    def test_bit_identical_and_same_golden_trace(self, ngpus):
        bare = strip_localaccess(stencil.SOURCE)
        assert "localaccess" not in bare
        runs = {}
        for label, src in [("annotated", stencil.SOURCE),
                           ("inferred", bare)]:
            args = stencil.make_args(n=96, steps=4)
            _, run = run_source(src, args, ngpus=ngpus,
                                machine=machine_for(ngpus),
                                entry="stencil", trace=True)
            runs[label] = (args, run)
        args_a, run_a = runs["annotated"]
        args_i, run_i = runs["inferred"]
        for name in ("a", "b"):
            np.testing.assert_array_equal(args_a[name], args_i[name])
        assert normalize(run_a.tracer) == normalize(run_i.tracer)
        assert run_i.executor.comm.bytes_replica == 0

    def test_inferred_matches_annotated_configs(self):
        annotated = compile_source(stencil.SOURCE, cache=False)
        inferred = compile_source(strip_localaccess(stencil.SOURCE),
                                  cache=False)
        for pa, pi in zip(annotated.plans, inferred.plans):
            for name, cfg_a in pa.config.arrays.items():
                cfg_i = pi.config.arrays[name]
                assert cfg_i.placement == Placement.DISTRIBUTED
                assert cfg_i.window_origin == "inferred"
                assert cfg_i.inferred_span == (1, -1, 1)
                assert cfg_i.write_handling == cfg_a.write_handling

    @pytest.mark.parametrize("ngpus", [1, 2, 4])
    def test_sanitized_inferred_stencil(self, ngpus):
        bare = strip_localaccess(stencil.SOURCE)
        args = stencil.make_args(n=64, steps=3)
        _, run = run_source(bare, args, ngpus=ngpus,
                            machine=machine_for(ngpus),
                            entry="stencil", sanitize=True)
        assert run.sanitizer is not None
        assert run.sanitizer.auditor.audited > 0

    def test_too_narrow_inferred_window_is_a_violation(self):
        # Narrow an adopted window by hand: sanitized runs must flag it
        # as an inference bug, not a user error.
        bare = strip_localaccess(stencil.SOURCE)
        cp = compile_source(bare, cache=False)
        for plan in cp.plans:
            cfg = plan.config.arrays["a"]
            cfg.window = window_from_span((1, 0, 0), plan.config.loop_var)
            cfg.inferred_span = (1, 0, 0)
        prog = repro.AccProgram(cp)
        with pytest.raises(CoherenceViolation) as exc:
            prog.run("stencil", stencil.make_args(n=64, steps=2),
                     ngpus=2, sanitize=True)
        assert "localaccess-inference-unsound" in str(exc.value)


# ---------------------------------------------------------------------------
# Sanitized fuzz with inference on 1/2/4 GPUs
# ---------------------------------------------------------------------------


def _fuzz_program(off1, off2, woff, scale):
    return f"""
    void fuzz(int n, float *x, float *w, float *y) {{
      #pragma acc parallel loop
      for (int i = 2; i < n - 2; i++) {{
        y[i + {woff}] = {scale}f * x[i + {off1}] + w[i + {off2}];
      }}
    }}
    """


class TestSanitizedFuzz:
    @seed(_case_seed("TestSanitizedFuzz::test_affine_stencils"))
    @given(st.data(), st.integers(8, 40))
    @settings(**_SETTINGS)
    def test_affine_stencils(self, data, n):
        off1 = data.draw(st.integers(-2, 2))
        off2 = data.draw(st.integers(-2, 2))
        woff = data.draw(st.integers(min(0, off1, off2),
                                     max(0, off1, off2)))
        src = _fuzz_program(off1, off2, woff, 0.5)
        template = {
            "n": n,
            "x": np.arange(n, dtype=np.float32),
            "w": np.ones(n, dtype=np.float32),
            "y": np.zeros(n, dtype=np.float32),
        }

        def clone():
            return {k: (v.copy() if isinstance(v, np.ndarray) else v)
                    for k, v in template.items()}

        base = None
        for ngpus in (1, 2, 4):
            args, _ = run_source(src, clone(), ngpus=ngpus,
                                 machine=machine_for(ngpus),
                                 sanitize=True)
            if base is None:
                base = args
            else:
                np.testing.assert_array_equal(args["y"], base["y"])
        # Inference must adopt windows for x and w (pure affine
        # reads), whatever it decided for the written array.
        cp = compile_source(src, cache=False)
        for name in ("x", "w"):
            assert cp.plans[0].config.arrays[name].window_origin \
                == "inferred"


# ---------------------------------------------------------------------------
# Explain reports
# ---------------------------------------------------------------------------


class TestExplain:
    def test_reports_every_loop_array_pair(self):
        report = explain(strip_localaccess(stencil.SOURCE))
        assert isinstance(report, ExplainReport)
        assert [l.loop for l in report.loops] == ["stencil_L0", "stencil_L1"]
        for lp in report.loops:
            assert {a.array for a in lp.arrays} == {"a", "b"}
            for a in lp.arrays:
                assert a.placement == "distributed"
                assert a.origin == "inferred"
                assert a.window == "[i - 1, i + 1]"
                assert a.stride_clause == "stride(1, 1, 1)"
                assert a.audited

    def test_declared_and_bailed_arrays(self):
        report = explain(repro.compile(stencil.SOURCE))  # AccProgram
        a = report.loop("stencil_L0").array("a")
        assert a.origin == "declared" and a.stride_clause is None
        from repro.apps import bfs
        levels = explain(bfs.SPEC.source).loop("bfs_L0").array("levels")
        assert levels.placement == "replica"
        assert levels.origin == "replica-default"
        assert "data-dependent" in levels.bail_reason
        assert not levels.audited

    def test_render_and_json(self):
        report = explain(strip_localaccess(stencil.SOURCE))
        text = report.render()
        assert "loop stencil_L0" in text and "inferred window" in text
        data = json.loads(report.to_json())
        assert len(data["loops"]) == 2
        assert data["loops"][0]["arrays"][0]["origin"] == "inferred"

    def test_accprogram_explain_method(self):
        prog = repro.compile(strip_localaccess(stencil.SOURCE))
        report = prog.explain()
        assert report.loop("stencil_L0").array("a").origin == "inferred"

    def test_infer_reason_survives_explain(self):
        report = explain(TWO_SWEEP % ("", ""),
                         CompileOptions(infer=False))
        for lp in report.loops:
            for a in lp.arrays:
                assert a.bail_reason == "inference disabled (infer=False)"


class TestExplainCLI:
    def test_app_mode(self, capsys):
        assert explain_main(["--app", "stencil"]) == 0
        out = capsys.readouterr().out
        assert "stencil_L0" in out and "declared window" in out

    def test_file_mode_with_json(self, tmp_path, capsys):
        f = tmp_path / "prog.c"
        f.write_text(strip_localaccess(stencil.SOURCE))
        assert explain_main([str(f), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        arrays = data["loops"][0]["arrays"]
        assert all(a["origin"] == "inferred" for a in arrays)

    def test_no_infer_flag(self, tmp_path, capsys):
        f = tmp_path / "prog.c"
        f.write_text(strip_localaccess(stencil.SOURCE))
        assert explain_main([str(f), "--no-infer"]) == 0
        assert "replica (default)" in capsys.readouterr().out

    def test_fortran_flag(self, tmp_path, capsys):
        f = tmp_path / "saxpy.f90"
        f.write_text("""
subroutine saxpy(n, a, x, y)
  integer :: n
  real :: a
  real :: x(n), y(n)
  integer :: i
  !$acc parallel
  !$acc loop gang
  do i = 1, n
    y(i) = a * x(i) + y(i)
  end do
  !$acc end parallel
end subroutine saxpy
""")
        assert explain_main([str(f), "--fortran"]) == 0
        out = capsys.readouterr().out
        assert "saxpy_L0" in out and "inferred window" in out

    def test_unknown_app_errors(self):
        with pytest.raises(SystemExit):
            explain_main(["--app", "nope"])

    def test_topology_cluster(self, capsys):
        assert explain_main(["--topology", "tsubame2"]) == 0
        out = capsys.readouterr().out
        assert "2 nodes" in out and "nic:" in out and "node1" in out

    def test_topology_single_machine(self, capsys):
        assert explain_main(["--topology", "desktop"]) == 0
        out = capsys.readouterr().out
        assert "1 node" in out and "hub0" in out

    def test_topology_unknown_machine_errors(self):
        with pytest.raises(SystemExit):
            explain_main(["--topology", "nope"])
