"""Task/array partitioning tests (+ hypothesis invariants)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend.parser import parse_expr
from repro.runtime.partition import (
    Block,
    PartitionError,
    make_window_evaluator,
    owner_of,
    primary_blocks,
    split_tasks,
    split_tasks_weighted,
    window_for_tasks,
)
from repro.translator.array_config import ReadWindow


class TestSplitTasks:
    def test_even_split(self):
        assert split_tasks(0, 12, 3) == [(0, 4), (4, 8), (8, 12)]

    def test_remainder_goes_first(self):
        assert split_tasks(0, 10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_offset_range(self):
        assert split_tasks(5, 11, 2) == [(5, 8), (8, 11)]

    def test_more_gpus_than_tasks(self):
        slices = split_tasks(0, 2, 4)
        assert slices == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_empty_range(self):
        assert split_tasks(3, 3, 2) == [(3, 3), (3, 3)]

    def test_zero_gpus_rejected(self):
        with pytest.raises(PartitionError):
            split_tasks(0, 10, 0)

    @given(st.integers(0, 1000), st.integers(0, 1000), st.integers(1, 8))
    @settings(max_examples=100, deadline=None)
    def test_partition_invariants(self, lo, size, g):
        hi = lo + size
        slices = split_tasks(lo, hi, g)
        # Cover exactly [lo, hi) with contiguous, ordered, disjoint slices.
        assert len(slices) == g
        assert slices[0][0] == lo and slices[-1][1] == hi
        for (a0, a1), (b0, b1) in zip(slices, slices[1:]):
            assert a1 == b0
            assert a0 <= a1
        sizes = [b - a for a, b in slices]
        assert max(sizes) - min(sizes) <= 1  # equal block split


class TestSplitTasksWeighted:
    def test_equal_weights_match_equal_split(self):
        for total, g in [(12, 3), (10, 3), (7, 4), (0, 2), (2, 4)]:
            assert split_tasks_weighted(0, total, [1.0] * g) == \
                split_tasks(0, total, g)

    def test_proportional_sizes(self):
        slices = split_tasks_weighted(0, 100, [3.0, 1.0])
        assert slices == [(0, 75), (75, 100)]

    def test_remainder_follows_fractional_parts(self):
        # raw = [3.33.., 3.33.., 3.33..] over 10 tasks: the two extra
        # tasks go to the lowest-indexed GPUs (deterministic ties).
        assert split_tasks_weighted(0, 10, [1.0, 1.0, 1.0]) == \
            [(0, 4), (4, 7), (7, 10)]
        # raw = [1.8, 7.2]: GPU 0 has the larger fractional part.
        assert split_tasks_weighted(0, 9, [1.0, 4.0]) == [(0, 2), (2, 9)]

    def test_zero_weight_gets_empty_slice(self):
        slices = split_tasks_weighted(0, 10, [1.0, 0.0, 1.0], min_chunk=1)
        assert slices == [(0, 5), (5, 5), (5, 10)]

    def test_min_chunk_raises_small_active_slices(self):
        slices = split_tasks_weighted(0, 100, [99.0, 1.0], min_chunk=8)
        assert slices == [(0, 92), (92, 100)]

    def test_min_chunk_infeasible_falls_back_to_equal(self):
        assert split_tasks_weighted(0, 3, [1.0, 1.0], min_chunk=2) == \
            split_tasks(0, 3, 2)

    def test_degenerate_weights_fall_back_to_equal(self):
        for bad in ([0.0, 0.0], [-1.0, -2.0], [float("inf"), 1.0]):
            assert split_tasks_weighted(0, 10, bad) == split_tasks(0, 10, 2)
        # NaN clamps to zero weight: the finite peer takes everything.
        assert split_tasks_weighted(0, 10, [float("nan"), 1.0]) == \
            [(0, 0), (0, 10)]

    def test_zero_gpus_rejected(self):
        with pytest.raises(PartitionError):
            split_tasks_weighted(0, 10, [])

    def test_fewer_tasks_than_gpus_still_covers(self):
        # total < ngpus with skewed weights: every task lands exactly
        # once, trailing slices may be empty but never negative.
        slices = split_tasks_weighted(0, 2, [1.0, 2.0, 3.0, 4.0])
        assert slices[0][0] == 0 and slices[-1][1] == 2
        for (a0, a1), (b0, b1) in zip(slices, slices[1:]):
            assert a1 == b0
            assert a0 <= a1
        assert sum(b - a for a, b in slices) == 2

    def test_single_task_all_weight_on_one_gpu(self):
        assert split_tasks_weighted(0, 1, [0.0, 5.0]) == [(0, 0), (0, 1)]

    def test_all_zero_weights_fewer_tasks_than_gpus(self):
        # Degenerate weights AND total < ngpus at once: falls back to
        # the equal split, which handles short ranges.
        assert split_tasks_weighted(0, 2, [0.0, 0.0, 0.0]) == \
            split_tasks(0, 2, 3)

    @given(st.integers(0, 1000), st.integers(0, 500), st.integers(1, 8),
           st.data())
    @settings(max_examples=100, deadline=None)
    def test_weighted_invariants(self, lo, size, g, data):
        hi = lo + size
        weights = data.draw(st.lists(
            st.floats(0.0, 100.0, allow_nan=False), min_size=g, max_size=g))
        min_chunk = data.draw(st.integers(0, 4))
        slices = split_tasks_weighted(lo, hi, weights, min_chunk)
        # Same tiling invariants as the equal split: exact contiguous
        # cover of [lo, hi), no negative slices, regardless of weights.
        assert len(slices) == g
        assert slices[0][0] == lo and slices[-1][1] == hi
        for (a0, a1), (b0, b1) in zip(slices, slices[1:]):
            assert a1 == b0
        for a0, a1 in slices:
            assert a0 <= a1

    @given(st.integers(1, 500), st.integers(2, 6))
    @settings(max_examples=60, deadline=None)
    def test_weighted_tracks_weights(self, size, g):
        # One GPU weighted 3x its peers gets the largest slice.
        weights = [1.0] * g
        weights[0] = 3.0
        slices = split_tasks_weighted(0, size, weights)
        sizes = [b - a for a, b in slices]
        assert sizes[0] == max(sizes)


class TestBlocks:
    def test_clamp(self):
        assert Block(-5, 20).clamp(10) == Block(0, 10)

    def test_intersect(self):
        assert Block(0, 10).intersect(Block(5, 15)) == Block(5, 10)
        assert Block(0, 3).intersect(Block(5, 8)).size == 0

    def test_contains(self):
        assert Block(0, 10).contains(Block(2, 5))
        assert Block(0, 10).contains(Block(5, 5))  # empty always contained
        assert not Block(0, 10).contains(Block(5, 12))


class TestWindowEvaluation:
    def make_eval(self, scalars=None, arrays=None):
        return make_window_evaluator("i", scalars or {}, arrays or {})

    def window(self, lo_src, hi_src):
        return ReadWindow(lower=parse_expr(lo_src), upper=parse_expr(hi_src))

    def test_stride_window(self):
        # stride(3): [3i, 3i+2]
        w = self.window("3*i", "3*(i+1) - 1")
        ev = self.make_eval()
        blk = window_for_tasks(w, (2, 5), 100, ev)
        assert blk == Block(6, 15)

    def test_halo_window(self):
        w = self.window("i - 1", "i + 1")
        blk = window_for_tasks(w, (4, 8), 100, self.make_eval())
        assert blk == Block(3, 9)

    def test_clamped_to_array(self):
        w = self.window("i - 1", "i + 1")
        blk = window_for_tasks(w, (0, 10), 10, self.make_eval())
        assert blk == Block(0, 10)

    def test_empty_tasks_empty_window(self):
        w = self.window("i", "i")
        assert window_for_tasks(w, (5, 5), 10, self.make_eval()).size == 0

    def test_host_scalar_in_bounds(self):
        w = self.window("i * m", "i * m + m - 1")
        ev = self.make_eval(scalars={"m": 4})
        assert window_for_tasks(w, (0, 3), 100, ev) == Block(0, 12)

    def test_indirect_bounds_via_host_array(self):
        # The BFS col window: bounds(row[i], row[i+1]-1).
        row = np.array([0, 2, 7, 9], dtype=np.int64)
        w = self.window("row[i]", "row[i+1] - 1")
        ev = self.make_eval(arrays={"row": row})
        assert window_for_tasks(w, (0, 2), 100, ev) == Block(0, 7)
        assert window_for_tasks(w, (2, 3), 100, ev) == Block(7, 9)

    def test_non_monotone_rejected(self):
        w = self.window("10 - i", "20 - i")
        with pytest.raises(PartitionError):
            window_for_tasks(w, (0, 5), 100, self.make_eval())

    def test_unknown_name_rejected(self):
        w = self.window("q * i", "q * i")
        with pytest.raises(PartitionError):
            window_for_tasks(w, (0, 2), 10, self.make_eval())

    def test_missing_host_array_rejected(self):
        w = self.window("row[i]", "row[i]")
        with pytest.raises(PartitionError):
            window_for_tasks(w, (0, 2), 10, self.make_eval())


class TestOwnership:
    def test_disjoint_windows_are_their_own_primaries(self):
        wins = [Block(0, 5), Block(5, 10)]
        assert primary_blocks(wins, 10) == [Block(0, 5), Block(5, 10)]

    def test_halo_overlap_split_at_midpoint(self):
        wins = [Block(0, 6), Block(4, 10)]
        prims = primary_blocks(wins, 10)
        assert prims[0].hi == prims[1].lo
        assert 4 <= prims[0].hi <= 6

    def test_ownership_covers_whole_array(self):
        wins = [Block(0, 4), Block(3, 8), Block(7, 12)]
        prims = primary_blocks(wins, 12)
        assert prims[0].lo == 0 and prims[-1].hi == 12
        for a, b in zip(prims, prims[1:]):
            assert a.hi == b.lo

    def test_empty_window_gets_empty_primary(self):
        wins = [Block(0, 10), Block(0, 0)]
        prims = primary_blocks(wins, 10)
        assert prims[1].size == 0
        assert prims[0] == Block(0, 10)

    def test_owner_of_vectorized(self):
        prims = [Block(0, 4), Block(4, 8), Block(8, 12)]
        idx = np.array([0, 3, 4, 7, 8, 11])
        np.testing.assert_array_equal(owner_of(idx, prims),
                                      [0, 0, 1, 1, 2, 2])

    @given(st.lists(st.integers(0, 30), min_size=2, max_size=5),
           st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_primary_blocks_always_tile(self, sizes, halo):
        # Build overlapping windows from consecutive spans + halo.
        length = sum(sizes)
        wins = []
        pos = 0
        for s in sizes:
            wins.append(Block(max(0, pos - halo),
                              min(length, pos + s + halo)))
            pos += s
        prims = primary_blocks(wins, length)
        assert prims[0].lo == 0
        assert prims[-1].hi == length
        for a, b in zip(prims, prims[1:]):
            assert a.hi == b.lo
