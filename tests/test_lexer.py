"""Lexer unit tests."""

import pytest

from repro.frontend.lexer import (
    CHAR_LIT,
    EOF,
    FLOAT_LIT,
    ID,
    INT_LIT,
    KEYWORD,
    LexError,
    PRAGMA,
    PUNCT,
    STRING_LIT,
    tokenize,
)


def kinds(src):
    return [t.kind for t in tokenize(src)]


def values(src):
    return [t.value for t in tokenize(src)][:-1]  # drop EOF


class TestBasicTokens:
    def test_empty_source_yields_eof(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind == EOF

    def test_identifier(self):
        t = tokenize("foo_bar2")[0]
        assert t.kind == ID and t.value == "foo_bar2"

    def test_identifier_with_leading_underscore(self):
        assert tokenize("_x")[0].kind == ID

    def test_keyword_recognized(self):
        t = tokenize("while")[0]
        assert t.kind == KEYWORD and t.value == "while"

    def test_keyword_prefix_is_identifier(self):
        assert tokenize("whilex")[0].kind == ID

    def test_int_literal(self):
        t = tokenize("42")[0]
        assert t.kind == INT_LIT and t.value == "42"

    def test_hex_literal(self):
        t = tokenize("0x1F")[0]
        assert t.kind == INT_LIT and t.value == "0x1F"

    def test_int_with_suffix(self):
        assert tokenize("42u")[0].kind == INT_LIT
        assert tokenize("42UL")[0].kind == INT_LIT

    def test_float_literal(self):
        assert tokenize("3.25")[0].kind == FLOAT_LIT

    def test_float_with_f_suffix(self):
        t = tokenize("1.5f")[0]
        assert t.kind == FLOAT_LIT and t.value == "1.5f"

    def test_float_exponent(self):
        assert tokenize("1e10")[0].kind == FLOAT_LIT
        assert tokenize("2.5e-3")[0].kind == FLOAT_LIT

    def test_int_f_suffix_is_float(self):
        # 1f is a float constant in the subset (as in C with a suffix).
        assert tokenize("1f")[0].kind == FLOAT_LIT

    def test_leading_dot_float(self):
        assert tokenize(".5")[0].kind == FLOAT_LIT

    def test_string_literal(self):
        t = tokenize('"hi there"')[0]
        assert t.kind == STRING_LIT and t.value == '"hi there"'

    def test_string_with_escape(self):
        t = tokenize(r'"a\"b"')[0]
        assert t.kind == STRING_LIT

    def test_char_literal(self):
        assert tokenize("'x'")[0].kind == CHAR_LIT


class TestOperators:
    def test_longest_match(self):
        assert values("a <<= b") == ["a", "<<=", "b"]
        assert values("a << b") == ["a", "<<", "b"]
        assert values("a < b") == ["a", "<", "b"]

    def test_increment_vs_plus(self):
        assert values("i++ + 1") == ["i", "++", "+", "1"]

    def test_arrow(self):
        assert values("p->x") == ["p", "->", "x"]

    def test_all_compound_assignments(self):
        for op in ["+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="]:
            assert op in values(f"a {op} b")

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a $ b")


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert values("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert values("a /* x\n y */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_line_numbers_across_newlines(self):
        toks = tokenize("a\nb\n\nc")
        assert [t.line for t in toks[:3]] == [1, 2, 4]

    def test_line_numbers_after_block_comment(self):
        toks = tokenize("/* a\nb */ x")
        assert toks[0].line == 2


class TestPragmas:
    def test_pragma_captured(self):
        toks = tokenize("#pragma acc loop gang\nx")
        assert toks[0].kind == PRAGMA
        assert toks[0].value == "acc loop gang"
        assert toks[1].value == "x"

    def test_include_dropped(self):
        assert values("#include <stdio.h>\nx") == ["x"]

    def test_define_dropped(self):
        assert values("#define N 100\nx") == ["x"]

    def test_pragma_line_continuation(self):
        toks = tokenize("#pragma acc data \\\n copy(a)\nx")
        assert toks[0].kind == PRAGMA
        assert "copy(a)" in toks[0].value

    def test_pragma_at_eof(self):
        toks = tokenize("#pragma acc loop")
        assert toks[0].kind == PRAGMA

    def test_non_acc_pragma_still_tokenized(self):
        toks = tokenize("#pragma omp parallel for\nx")
        assert toks[0].kind == PRAGMA and toks[0].value.startswith("omp")
