"""Two-level dirty bits and write-miss buffer tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.dirty import ReferenceTwoLevelDirty, TwoLevelDirty
from repro.runtime.writemiss import (
    MissBufferOverflow,
    RECORD_BYTES,
    WriteMissBuffer,
)
from repro.vcuda.memory import DeviceMemory, PURPOSE_SYSTEM


class TestTwoLevelDirty:
    def make(self, n=1000, itemsize=4, chunk_bytes=64):
        return TwoLevelDirty("a", n, itemsize, chunk_bytes=chunk_bytes)

    def test_initially_clean(self):
        d = self.make()
        assert not d.any_dirty
        assert d.dirty_chunks().size == 0
        assert d.transfer_bytes() == 0

    def test_mark_sets_both_levels(self):
        d = self.make()  # 16 elems/chunk
        d.mark(np.array([5, 17]))
        assert d.element_bits[5] == 1 and d.element_bits[17] == 1
        np.testing.assert_array_equal(d.dirty_chunks(), [0, 1])

    def test_dirty_elements_scan(self):
        d = self.make()
        idx = np.array([3, 100, 999])
        d.mark(idx)
        np.testing.assert_array_equal(d.dirty_elements(), [3, 100, 999])

    def test_transfer_at_chunk_granularity(self):
        d = self.make(n=1000, itemsize=4, chunk_bytes=64)
        d.mark(np.array([0]))  # one dirty element -> one whole chunk
        assert d.transfer_bytes() == 64

    def test_last_partial_chunk(self):
        d = self.make(n=20, itemsize=4, chunk_bytes=64)  # chunk=16 elems
        d.mark(np.array([19]))
        assert d.transfer_bytes() == 4 * (20 - 16)

    def test_clear(self):
        d = self.make()
        d.mark(np.array([1, 2, 3]))
        d.clear()
        assert not d.any_dirty
        assert d.dirty_elements().size == 0

    def test_out_of_range_mark_rejected(self):
        d = self.make(n=10)
        with pytest.raises(IndexError):
            d.mark(np.array([10]))
        with pytest.raises(IndexError):
            d.mark(np.array([-1]))

    def test_scalar_mark(self):
        d = self.make()
        d.mark(np.int64(7))
        assert d.element_bits[7] == 1

    def test_device_memory_accounted_as_system(self):
        mem = DeviceMemory(0, 1 << 20)
        d = TwoLevelDirty("a", 1000, 4, memory=mem, chunk_bytes=64)
        assert mem.live_bytes_of(PURPOSE_SYSTEM) > 0
        d.release(mem)
        assert mem.live_bytes_of(PURPOSE_SYSTEM) == 0

    def test_chunk_smaller_than_item_rejected(self):
        with pytest.raises(ValueError):
            TwoLevelDirty("a", 10, 8, chunk_bytes=4)

    def test_zero_length_array(self):
        # An empty array block must get genuinely empty bitmaps: no
        # phantom chunk 0, nothing to scan, nothing to transfer.
        d = self.make(n=0)
        assert d.n_chunks == 0
        assert d.element_bits.size == 0
        assert not d.any_dirty
        assert d.dirty_chunks().size == 0
        assert d.dirty_elements().size == 0
        assert d.transfer_bytes() == 0
        d.mark(np.empty(0, dtype=np.int64))  # legal no-op
        d.clear()
        assert not d.any_dirty
        with pytest.raises(IndexError):
            d.mark(np.array([0]))  # every index is out of range

    def test_zero_length_device_accounting(self):
        mem = DeviceMemory(0, 1 << 20)
        d = TwoLevelDirty("a", 0, 4, memory=mem, chunk_bytes=64)
        assert d.n_chunks == 0
        d.release(mem)
        assert mem.live_bytes_of(PURPOSE_SYSTEM) == 0

    def test_single_element_array(self):
        d = self.make(n=1)
        assert d.n_chunks == 1
        d.mark(np.array([0]))
        np.testing.assert_array_equal(d.dirty_elements(), [0])
        assert d.transfer_bytes() == 4  # one partial chunk of one item

    @given(st.lists(st.integers(0, 499), min_size=1, max_size=60),
           st.sampled_from([16, 64, 256, 1024]))
    @settings(max_examples=60, deadline=None)
    def test_invariants(self, indices, chunk_bytes):
        d = TwoLevelDirty("a", 500, 4, chunk_bytes=chunk_bytes)
        d.mark(np.array(indices))
        elems = d.dirty_elements()
        # Exactly the marked set, sorted unique.
        np.testing.assert_array_equal(elems, np.unique(indices))
        # Every dirty element's chunk has its summary bit set, and
        # transfer bytes cover at least the dirty elements.
        epc = d.elems_per_chunk
        assert set(np.unique(np.array(indices) // epc)) == \
            set(d.dirty_chunks().tolist())
        assert d.transfer_bytes() >= elems.size * 4


def _dirty_ops(n):
    """Strategy: one (op, payload) step applicable to an n-element array."""
    ops = [st.tuples(st.just("clear"), st.just(None))]
    # Spans with lo <= hi <= n (empty spans included on purpose).
    ops.append(st.tuples(
        st.just("span"),
        st.tuples(st.integers(0, n), st.integers(0, n)).map(sorted)))
    if n > 0:
        ops.append(st.tuples(
            st.just("mark"),
            st.lists(st.integers(0, n - 1), min_size=0, max_size=40)))
    return st.one_of(ops)


@st.composite
def dirty_scenarios(draw):
    n = draw(st.sampled_from([0, 1, 2, 15, 16, 17, 63, 64, 65, 500, 1000]))
    chunk_bytes = draw(st.sampled_from([4, 16, 64, 256, 1024]))
    steps = draw(st.lists(_dirty_ops(n), min_size=0, max_size=10))
    return n, chunk_bytes, steps


class TestDifferentialDirty:
    """Packed-word engine vs the byte-per-flag reference, differentially.

    Every observable of the packed ``TwoLevelDirty`` (scans, summaries,
    transfer sizing, the unpacked bit views) must match
    ``ReferenceTwoLevelDirty`` after any interleaving of random marks,
    span marks and clears -- including zero-length and single-element
    arrays and chunk sizes straddling the 64-bit word boundary.
    """

    @staticmethod
    def assert_same(fast, ref):
        assert fast.elems_per_chunk == ref.elems_per_chunk
        assert fast.n_chunks == ref.n_chunks
        assert fast.any_dirty == ref.any_dirty
        np.testing.assert_array_equal(fast.dirty_chunks(),
                                      ref.dirty_chunks())
        np.testing.assert_array_equal(fast.dirty_elements(),
                                      ref.dirty_elements())
        assert fast.dirty_chunk_runs() == ref.dirty_chunk_runs()
        assert fast.transfer_bytes() == ref.transfer_bytes()
        np.testing.assert_array_equal(np.asarray(fast.element_bits) != 0,
                                      np.asarray(ref.element_bits) != 0)
        np.testing.assert_array_equal(np.asarray(fast.chunk_bits) != 0,
                                      np.asarray(ref.chunk_bits) != 0)
        # When the packed engine claims a dense dirty slice it must
        # describe exactly the dirty element set.
        sl = fast.dirty_slice()
        if sl is not None:
            lo, hi = sl
            np.testing.assert_array_equal(fast.dirty_elements(),
                                          np.arange(lo, hi))

    @given(dirty_scenarios())
    @settings(max_examples=120, deadline=None)
    def test_differential(self, scenario):
        n, chunk_bytes, steps = scenario
        fast = TwoLevelDirty("a", n, 4, chunk_bytes=chunk_bytes)
        ref = ReferenceTwoLevelDirty("a", n, 4, chunk_bytes=chunk_bytes)
        self.assert_same(fast, ref)
        for op, payload in steps:
            if op == "clear":
                fast.clear()
                ref.clear()
            elif op == "span":
                lo, hi = payload
                fast.mark_span(lo, hi)
                ref.mark_span(lo, hi)
            else:
                idx = np.array(payload, dtype=np.int64)
                fast.mark(idx)
                ref.mark(idx)
            self.assert_same(fast, ref)
        assert fast.stats.marks == ref.stats.marks

    @given(st.sampled_from([0, 1, 10]),
           st.sampled_from([(-1, "neg"), (0, "end"), (5, "past")]))
    @settings(max_examples=30, deadline=None)
    def test_differential_out_of_range(self, n, probe):
        off, _ = probe
        bad = n + off if off >= 0 else off
        fast = TwoLevelDirty("a", n, 4, chunk_bytes=64)
        ref = ReferenceTwoLevelDirty("a", n, 4, chunk_bytes=64)
        with pytest.raises(IndexError):
            fast.mark(np.array([bad]))
        with pytest.raises(IndexError):
            ref.mark(np.array([bad]))
        with pytest.raises(IndexError):
            fast.mark_span(bad, bad + 1)
        with pytest.raises(IndexError):
            ref.mark_span(bad, bad + 1)


class TestWriteMissBuffer:
    def test_record_and_drain(self):
        b = WriteMissBuffer("a", capacity=16)
        b.record(np.array([1, 2]), np.array([10.0, 20.0]), "")
        b.record(np.array([3]), np.array([30.0]), "+")
        assert b.count == 3
        drained = b.drain()
        assert len(drained) == 2
        assert drained[1][2] == "+"
        assert b.count == 0

    def test_scalar_value_broadcast(self):
        b = WriteMissBuffer("a", capacity=16)
        b.record(np.array([1, 2, 3]), np.float32(5.0), "")
        addrs, vals, _ = b.drain()[0]
        assert vals.shape == (3,)
        assert (vals == 5.0).all()

    def test_growth(self):
        b = WriteMissBuffer("a", capacity=2)
        b.record(np.arange(5), np.arange(5.0), "")
        assert b.capacity >= 5
        assert b.high_water == 5

    def test_overflow_without_growth(self):
        b = WriteMissBuffer("a", capacity=2, allow_growth=False)
        with pytest.raises(MissBufferOverflow):
            b.record(np.arange(5), np.arange(5.0), "")

    def test_empty_record_is_noop(self):
        b = WriteMissBuffer("a", capacity=4)
        b.record(np.empty(0, np.int64), np.empty(0), "")
        assert b.count == 0

    def test_record_bytes(self):
        b = WriteMissBuffer("a", capacity=16)
        b.record(np.arange(3), np.arange(3.0), "")
        assert b.record_bytes == 3 * RECORD_BYTES

    def test_device_memory_accounting(self):
        mem = DeviceMemory(0, 1 << 20)
        b = WriteMissBuffer("a", capacity=4, memory=mem)
        assert mem.live_bytes_of(PURPOSE_SYSTEM) == 4 * RECORD_BYTES
        b.record(np.arange(10), np.arange(10.0), "")  # forces growth
        assert mem.live_bytes_of(PURPOSE_SYSTEM) > 4 * RECORD_BYTES
        b.release()
        assert mem.live_bytes_of(PURPOSE_SYSTEM) == 0

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            WriteMissBuffer("a", capacity=0)

    def test_reset_releases_growth_steps(self):
        mem = DeviceMemory(0, 1 << 20)
        b = WriteMissBuffer("a", capacity=4, memory=mem)
        base_bytes = mem.live_bytes_of(PURPOSE_SYSTEM)
        b.record(np.arange(10), np.arange(10.0), "")  # forces growth
        assert mem.live_bytes_of(PURPOSE_SYSTEM) > base_bytes
        b.drain()
        b.reset()
        # Live system bytes return to the up-front allocation; the
        # peak record count survives for Fig. 9.
        assert mem.live_bytes_of(PURPOSE_SYSTEM) == base_bytes
        assert b.capacity == b.base_capacity == 4
        assert b.high_water == 10

    def test_repeated_overflow_does_not_ratchet(self):
        mem = DeviceMemory(0, 1 << 20)
        b = WriteMissBuffer("a", capacity=4, memory=mem)
        base_bytes = mem.live_bytes_of(PURPOSE_SYSTEM)
        for _ in range(5):
            b.record(np.arange(9), np.arange(9.0), "")
            b.drain()
            b.reset()
        assert mem.live_bytes_of(PURPOSE_SYSTEM) == base_bytes
        assert mem.high_water_of(PURPOSE_SYSTEM) > base_bytes
        assert b.high_water == 9

    def test_reset_discards_leftover_records(self):
        b = WriteMissBuffer("a", capacity=4)
        b.record(np.arange(2), np.arange(2.0), "")
        b.reset()
        assert b.count == 0
        assert b.drain() == []

    def test_reset_without_memory(self):
        b = WriteMissBuffer("a", capacity=2)
        b.record(np.arange(7), np.arange(7.0), "")
        b.reset()
        assert b.capacity == 2
