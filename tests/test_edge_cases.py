"""Edge cases across the stack: empty iteration spaces, more GPUs than
work, boundary-sized arrays, zero-iteration host loops, repeated runs,
and error reporting quality."""

import numpy as np
import pytest

import repro
from repro.translator.compiler import CompileError
from tests.util import run_source

SAXPY = """
void k(int n, float a, float *x, float *y) {
  #pragma acc parallel
  {
    #pragma acc localaccess x[stride(1)] y[stride(1)]
    #pragma acc loop gang
    for (int i = 0; i < n; i++) { y[i] = a * x[i] + y[i]; }
  }
}
"""


class TestEmptyAndTiny:
    def test_zero_iterations(self):
        args, run = run_source(SAXPY, {
            "n": 0, "a": 1.0,
            "x": np.zeros(1, np.float32), "y": np.zeros(1, np.float32)},
            ngpus=2)
        assert (args["y"] == 0).all()

    def test_single_iteration_two_gpus(self):
        args, _ = run_source(SAXPY, {
            "n": 1, "a": 2.0,
            "x": np.ones(1, np.float32), "y": np.zeros(1, np.float32)},
            ngpus=2)
        assert args["y"][0] == 2.0

    def test_fewer_tasks_than_gpus(self):
        args, run = run_source(SAXPY, {
            "n": 2, "a": 1.0,
            "x": np.ones(4, np.float32), "y": np.zeros(4, np.float32)},
            machine="supercomputer", ngpus=3)
        np.testing.assert_allclose(args["y"], [1, 1, 0, 0])

    def test_single_element_array(self):
        src = """
        void k(float *x) {
          #pragma acc parallel loop
          for (int i = 0; i < 1; i++) { x[i] = 7.0f; }
        }
        """
        args, _ = run_source(src, {"x": np.zeros(1, np.float32)}, ngpus=2)
        assert args["x"][0] == 7.0

    def test_dynamic_zero_bound_from_host(self):
        src = """
        void k(int n, float *x) {
          int lim = n - n;
          #pragma acc parallel loop
          for (int i = 0; i < lim; i++) { x[i] = 1.0f; }
        }
        """
        args, _ = run_source(src, {"n": 5, "x": np.zeros(5, np.float32)})
        assert (args["x"] == 0).all()


class TestRepeatedRuns:
    def test_program_object_is_reusable(self):
        prog = repro.compile(SAXPY)
        for trial in range(3):
            y = np.zeros(8, dtype=np.float32)
            run = prog.run("k", {"n": 8, "a": float(trial),
                                 "x": np.ones(8, np.float32), "y": y},
                           ngpus=2)
            assert (y == trial).all()

    def test_runs_are_deterministic(self):
        prog = repro.compile(SAXPY)
        times = []
        for _ in range(2):
            run = prog.run("k", {"n": 1024, "a": 1.0,
                                 "x": np.ones(1024, np.float32),
                                 "y": np.zeros(1024, np.float32)}, ngpus=2)
            times.append(run.elapsed)
        assert times[0] == times[1]


class TestNonZeroLowerBound:
    def test_loop_from_offset(self):
        src = """
        void k(int n, float *x) {
          #pragma acc parallel loop
          for (int i = 2; i < n; i++) { x[i] = 1.0f; }
        }
        """
        args, _ = run_source(src, {"n": 6, "x": np.zeros(6, np.float32)},
                             ngpus=2)
        np.testing.assert_allclose(args["x"], [0, 0, 1, 1, 1, 1])

    def test_distributed_window_with_offset_loop(self):
        src = """
        void k(int n, float *x) {
          #pragma acc localaccess x[stride(1)]
          #pragma acc parallel loop
          for (int i = 1; i < n - 1; i++) { x[i] = 2.0f; }
        }
        """
        args, _ = run_source(src, {"n": 8, "x": np.zeros(8, np.float32)},
                             ngpus=2)
        np.testing.assert_allclose(args["x"],
                                   [0, 2, 2, 2, 2, 2, 2, 0])


class TestMultipleArraysSameLoop:
    def test_mixed_placements(self):
        # One distributed, one replicated-written, one reduction dest --
        # all in one loop.
        src = """
        void k(int n, int *idx, float *src_a, float *marks, float *hist) {
          #pragma acc localaccess src_a[stride(1)]
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            float v = src_a[i];
            marks[idx[i]] = v;
            #pragma acc reductiontoarray(+: hist[0:4])
            hist[idx[i] % 4] += 1.0f;
          }
        }
        """
        n = 16
        idx = np.arange(n, dtype=np.int32)[::-1].copy()
        a = np.arange(n, dtype=np.float32)
        marks = np.zeros(n, dtype=np.float32)
        hist = np.zeros(4, dtype=np.float32)
        args, _ = run_source(src, {"n": n, "idx": idx, "src_a": a,
                                   "marks": marks, "hist": hist}, ngpus=2)
        np.testing.assert_allclose(args["marks"], a[::-1])
        np.testing.assert_allclose(args["hist"], [4, 4, 4, 4])


class TestDiagnostics:
    def test_compile_error_includes_line(self):
        src = "\n\nvoid k(int n) {\n  #pragma acc parallel\n  { n = 1; }\n}"
        with pytest.raises(CompileError) as exc:
            repro.compile(src)
        assert "line" in str(exc.value)

    def test_unknown_entry_function(self):
        prog = repro.compile(SAXPY)
        with pytest.raises(KeyError):
            prog.run("missing", {})

    def test_localaccess_window_violation_caught_by_interp(self):
        # Declared stride(1) but reads i+2: the scalar engine flags it.
        src = """
        void k(int n, float *x, float *y) {
          #pragma acc localaccess x[stride(1)] y[stride(1)]
          #pragma acc parallel loop
          for (int i = 0; i < n - 2; i++) { y[i] = x[i + 2]; }
        }
        """
        with pytest.raises(Exception, match="window"):
            run_source(src, {"n": 12, "x": np.ones(12, np.float32),
                             "y": np.zeros(12, np.float32)},
                       ngpus=2, engine="interp")

    def test_reduction_var_mismatched_op(self):
        src = """
        float k(int n, float *x) {
          float s = 0.0f;
          #pragma acc parallel loop reduction(+:s)
          for (int i = 0; i < n; i++) { s *= x[i]; }
          return s;
        }
        """
        with pytest.raises(Exception, match="reduction"):
            run_source(src, {"n": 4, "x": np.ones(4, np.float32)})


class TestDeviceCapacity:
    def test_out_of_memory_reported(self):
        from repro.vcuda import GpuSpec, MachineSpec
        from repro.vcuda.specs import CORE_I7_980, PCIE_GEN2_DESKTOP

        tiny_gpu = GpuSpec(
            name="TinyGPU", cuda_cores=448, sm_count=14, clock_hz=1e9,
            peak_sp_flops=1e12, mem_bandwidth=1e11, mem_capacity=1024)
        machine = MachineSpec(
            name="tiny", cpu=CORE_I7_980, cpu_sockets=1, gpu=tiny_gpu,
            gpu_count=1, bus=PCIE_GEN2_DESKTOP, gpu_hub=(0,))
        prog = repro.compile(SAXPY)
        from repro.vcuda.memory import OutOfDeviceMemory

        with pytest.raises(OutOfDeviceMemory):
            prog.run("k", {"n": 4096, "a": 1.0,
                           "x": np.ones(4096, np.float32),
                           "y": np.zeros(4096, np.float32)},
                     machine=machine, ngpus=1)
