"""Adaptive task mapping and placement switching (runtime/balancer.py).

Unit coverage of the balancer mechanics (model prior, hysteresis,
starvation, split-consistency groups, placement advisor), the loader's
delta migration, the per-loop profiler accounting, and end-to-end
parity: ``adaptive=True`` must never change program results, only
timing.
"""

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.apps import ALL_APPS
from repro.bench.machines import hypothetical_node, mixed_node
from repro.frontend.parser import parse_expr
from repro.runtime.balancer import AdaptiveBalancer
from repro.runtime.data_loader import DataLoader
from repro.runtime.partition import Block, split_tasks
from repro.translator.array_config import (
    ArrayConfig,
    Placement,
    ReadWindow,
    WriteHandling,
)
from repro.vcuda import DESKTOP_MACHINE, Platform
from repro.vcuda.profiler import LoopKernelStats, Profiler
from repro.vcuda.specs import TESLA_C1060, TESLA_M2050
from tests.util import run_source


def fake_plan(name, arrays=None, cost=None):
    return SimpleNamespace(name=name, cost=cost,
                           config=SimpleNamespace(arrays=arrays or {}))


def dist_cfg(name):
    w = ReadWindow(lower=parse_expr("i"), upper=parse_expr("i"))
    return ArrayConfig(name=name, ctype="float", read=True,
                       placement=Placement.DISTRIBUTED, window=w)


def replica_span_cfg(name, coeff=1, lo=0, hi=0):
    w = ReadWindow(lower=parse_expr(f"{coeff}*i + {lo}"),
                   upper=parse_expr(f"{coeff}*i + {hi}"))
    return ArrayConfig(name=name, ctype="float", read=True, written=True,
                       placement=Placement.REPLICA,
                       write_handling=WriteHandling.DIRTY_BITS,
                       inferred_window=w, inferred_span=(coeff, lo, hi))


# ---------------------------------------------------------------------------
# Profiler per-loop accounting (satellite: launch counts / busy time by
# loop id).
# ---------------------------------------------------------------------------


class TestLoopKernelStats:
    def make(self, ngpus=3):
        p = Platform(DESKTOP_MACHINE, min(ngpus, 2))
        return Profiler(p.clock, ngpus=ngpus)

    def test_record_accumulates_per_gpu(self):
        prof = self.make(ngpus=2)
        prof.note_loop_call("L0")
        prof.record_kernel("L0", 0, 0.5, launches=1, iterations=100)
        prof.record_kernel("L0", 1, 0.25, launches=2, iterations=60)
        prof.record_kernel("L0", 1, 0.25, launches=1, iterations=60)
        st = prof.kernel_stats("L0")
        assert st.calls == 1
        assert st.launches == [1, 3]
        assert st.busy_seconds == [0.5, 0.5]
        assert st.iterations == [100, 120]
        assert st.total_launches == 4
        assert st.total_busy_seconds == 1.0

    def test_loops_keyed_independently(self):
        prof = self.make()
        prof.record_kernel("a", 0, 1.0)
        prof.record_kernel("b", 0, 2.0)
        assert prof.kernel_stats("a").busy_seconds[0] == 1.0
        assert prof.kernel_stats("b").busy_seconds[0] == 2.0
        assert prof.kernel_stats("nope") is None

    def test_preallocates_all_gpu_slots(self):
        prof = self.make(ngpus=3)
        prof.note_loop_call("L")
        st = prof.kernel_stats("L")
        assert len(st.launches) == 3 and st.launches == [0, 0, 0]

    def test_e2e_run_populates_loop_stats(self):
        spec = ALL_APPS["md"]
        prog = repro.compile(spec.source)
        run = prog.run(spec.entry, spec.args_for("tiny"),
                       machine="desktop", ngpus=2)
        stats = run.platform.profiler.loop_kernels
        assert stats, "no per-loop kernel stats recorded"
        for st_ in stats.values():
            assert isinstance(st_, LoopKernelStats)
            assert st_.calls >= 1
            assert st_.total_launches >= st_.calls
            assert st_.total_busy_seconds > 0.0
            assert sum(st_.iterations) > 0


# ---------------------------------------------------------------------------
# Heterogeneous machine plumbing.
# ---------------------------------------------------------------------------


class TestMixedMachine:
    def test_mixed_node_alternates_specs(self):
        spec = mixed_node()
        assert spec.gpu_count == 4
        assert [g.name for g in spec.gpu_specs] == [
            TESLA_M2050.name, TESLA_C1060.name,
            TESLA_M2050.name, TESLA_C1060.name]
        assert spec.is_heterogeneous
        assert "C1060" in spec.gpu_mix_label and "M2050" in spec.gpu_mix_label

    def test_platform_devices_use_per_slot_specs(self):
        p = Platform(mixed_node(), 4)
        assert p.devices[0].spec is TESLA_M2050
        assert p.devices[1].spec is TESLA_C1060

    def test_uniform_node_not_heterogeneous(self):
        spec = hypothetical_node(4)
        assert not spec.is_heterogeneous
        assert spec.gpu_mix_label == TESLA_M2050.name


# ---------------------------------------------------------------------------
# Balancer task mapping mechanics.
# ---------------------------------------------------------------------------


class TestBalancerMapping:
    def make(self, machine=None, ngpus=2, **kw):
        p = Platform(machine or DESKTOP_MACHINE, ngpus)
        return AdaptiveBalancer(p, **kw)

    def test_no_cost_prior_is_equal_split(self):
        bal = self.make()
        tasks = bal.plan_tasks(fake_plan("L"), 0, 10)
        assert tasks == split_tasks(0, 10, 2)
        assert bal.loops["L"].weights == [0.5, 0.5]

    def test_measured_feedback_resplits(self):
        bal = self.make()
        plan = fake_plan("L")
        tasks = bal.plan_tasks(plan, 0, 100)
        # GPU 0 measured 3x faster than GPU 1 at equal slices.
        bal.observe(plan, tasks, [1.0, 3.0])
        tasks2 = bal.plan_tasks(plan, 0, 100)
        sizes = [b - a for a, b in tasks2]
        assert sizes[0] > sizes[1]
        assert bal.loops["L"].resplits == 1

    def test_hysteresis_suppresses_small_moves(self):
        bal = self.make(hysteresis=0.05)
        plan = fake_plan("L")
        tasks = bal.plan_tasks(plan, 0, 100)
        # 51/49 balance: inside the 5% band, keep the old split so
        # reload skipping keeps firing.
        bal.observe(plan, tasks, [0.98, 1.02])
        assert bal.plan_tasks(plan, 0, 100) == tasks
        assert bal.loops["L"].resplits == 0

    def test_starve_zeroes_tiny_weights(self):
        bal = self.make(ngpus=2)
        assert bal._starve([0.005, 0.995]) == [0.0, 1.0]
        # All-starved degenerates to the input (never all-zero).
        assert bal._starve([0.001, 0.002]) == [0.001, 0.002]

    def test_canonical_vector_shared_across_loops(self):
        bal = self.make()
        a, b = fake_plan("A"), fake_plan("B")
        ta = bal.plan_tasks(a, 0, 100)
        tb = bal.plan_tasks(b, 0, 100)
        bal.observe(a, ta, [1.0, 3.0])
        bal.observe(b, tb, [1.02, 2.95])
        ta2 = bal.plan_tasks(a, 0, 100)
        tb2 = bal.plan_tasks(b, 0, 100)
        # Near-identical targets adopt one canonical vector: the splits
        # coincide exactly, so the loader sees one signature.
        assert ta2 == tb2

    def test_group_members_follow_owner(self):
        bal = self.make()
        arrays = {"d": dist_cfg("d")}
        owner = fake_plan("A", arrays)
        member = fake_plan("B", arrays)
        to = bal.plan_tasks(owner, 0, 100)
        tm = bal.plan_tasks(member, 0, 100)
        assert bal.loops["A"].group == bal.loops["B"].group
        # The member measures wildly different balance; only the owner
        # may move the shared vector, so nothing changes.
        bal.observe(member, tm, [1.0, 9.0])
        assert bal.plan_tasks(member, 0, 100) == tm
        assert bal.loops["B"].resplits == 0
        # The owner's measurement does move the group.
        bal.observe(owner, to, [1.0, 9.0])
        t2 = bal.plan_tasks(owner, 0, 100)
        assert t2 != to
        assert bal.plan_tasks(member, 0, 100) == t2

    def test_unrelated_loops_get_separate_groups(self):
        bal = self.make()
        a = fake_plan("A", {"x": dist_cfg("x")})
        b = fake_plan("B", {"y": dist_cfg("y")})
        bal.plan_tasks(a, 0, 10)
        bal.plan_tasks(b, 0, 10)
        assert bal.loops["A"].group != bal.loops["B"].group


class TestModelPrior:
    def test_mixed_node_prior_skews_toward_fermi(self):
        # The roofline fixed point on the mixed node: a C1060 at any
        # slice size is under-occupied on these kernels (its per-call
        # time is flat), so its share collapses and the starvation rule
        # zeroes it.  MD's single-shot force loop gets this split on
        # its *first* call -- no measurement needed.
        spec = ALL_APPS["md"]
        prog = repro.compile(spec.source)
        plans = [p for p in prog.compiled.plans
                 if getattr(p, "cost", None) is not None]
        assert plans, "md has no costed plans"
        bal = AdaptiveBalancer(Platform(mixed_node(), 4))
        weights, _ = bal._model_split(plans[0], 100_000)
        weights = bal._starve(weights)
        m2050 = weights[0] + weights[2]
        assert m2050 > 0.7, weights
        assert weights[0] > weights[1] and weights[2] > weights[3], weights

    def test_uniform_node_prior_is_equal(self):
        spec = ALL_APPS["md"]
        prog = repro.compile(spec.source)
        plans = [p for p in prog.compiled.plans
                 if getattr(p, "cost", None) is not None]
        bal = AdaptiveBalancer(Platform(hypothetical_node(4), 4))
        weights, _ = bal._model_split(plans[0], 100_000)
        assert max(abs(w - 0.25) for w in weights) < 1e-6


# ---------------------------------------------------------------------------
# Placement advisor.
# ---------------------------------------------------------------------------


class TestPlacementAdvisor:
    def make(self, **kw):
        p = Platform(DESKTOP_MACHINE, 2)
        kw.setdefault("min_calls", 2)
        kw.setdefault("cooldown", 2)
        return AdaptiveBalancer(p, **kw)

    def observe_replica(self, bal, plan, nbytes, calls=1):
        tasks = [(0, 50), (50, 100)]
        for _ in range(calls):
            bal.observe(plan, tasks, [1.0, 1.0],
                        {"a": {"replica": nbytes}})

    def test_demotes_heavy_broadcaster(self):
        bal = self.make()
        plan = fake_plan("L", {"a": replica_span_cfg("a")})
        self.observe_replica(bal, plan, 1 << 20, calls=2)
        st = bal.arrays[("L", "a")]
        assert st.demoted and st.switches == 1
        eff = bal.effective_configs(plan)
        assert eff["a"].placement == Placement.DISTRIBUTED
        assert eff["a"].window is plan.config.arrays["a"].inferred_window
        # The plan's own config is untouched (copy-on-write).
        assert plan.config.arrays["a"].placement == Placement.REPLICA

    def test_small_traffic_never_demotes(self):
        bal = self.make()
        plan = fake_plan("L", {"a": replica_span_cfg("a")})
        self.observe_replica(bal, plan, 128, calls=6)
        assert not bal.arrays[("L", "a")].demoted

    def test_min_calls_gates_first_switch(self):
        bal = self.make(min_calls=3)
        plan = fake_plan("L", {"a": replica_span_cfg("a")})
        self.observe_replica(bal, plan, 1 << 20, calls=2)
        assert not bal.arrays[("L", "a")].demoted
        self.observe_replica(bal, plan, 1 << 20, calls=1)
        assert bal.arrays[("L", "a")].demoted

    def test_cooldown_and_promotion(self):
        bal = self.make(cooldown=2)
        plan = fake_plan("L", {"a": replica_span_cfg("a")})
        self.observe_replica(bal, plan, 1 << 20, calls=2)
        st = bal.arrays[("L", "a")]
        assert st.demoted
        # Windowed traffic now dominating the remembered broadcast
        # volume argues for promotion, but the cooldown holds first.
        tasks = [(0, 50), (50, 100)]
        bal.observe(plan, tasks, [1.0, 1.0],
                    {"a": {"windowed": 4 << 20}})
        assert st.demoted  # still cooling down
        bal.observe(plan, tasks, [1.0, 1.0],
                    {"a": {"windowed": 4 << 20}})
        bal.observe(plan, tasks, [1.0, 1.0],
                    {"a": {"windowed": 4 << 20}})
        assert not st.demoted and st.switches == 2

    def test_shared_array_never_demoted(self):
        bal = self.make()
        arrays = {"a": replica_span_cfg("a")}
        p1, p2 = fake_plan("L1", arrays), fake_plan("L2", arrays)
        self.observe_replica(bal, p1, 1 << 20, calls=1)
        # A second loop touches 'a': from now on the advisor must not
        # demote it for either loop (re-placement churn on alternation).
        self.observe_replica(bal, p2, 1 << 20, calls=3)
        self.observe_replica(bal, p1, 1 << 20, calls=3)
        assert not any(st.demoted for st in bal.arrays.values())

    def test_effective_configs_identity_without_demotions(self):
        bal = self.make()
        plan = fake_plan("L", {"a": replica_span_cfg("a")})
        assert bal.effective_configs(plan) is plan.config.arrays


# ---------------------------------------------------------------------------
# Delta migration in the data loader.
# ---------------------------------------------------------------------------


class TestDeltaMigration:
    def ensure(self, dl, configs, tasks):
        dl.ensure_for_loop(configs, tasks, "i", {})
        if dl.platform.bus.pending_count():
            dl.platform.bus.sync()

    def test_distributed_resplit_migrates_not_reloads(self):
        p = Platform(DESKTOP_MACHINE, 2)
        dl = DataLoader(p, migrate_deltas=True)
        host = np.arange(100, dtype=np.float32)
        dl.enter_region([("a", host, "copyin")])
        c = dist_cfg("a")
        self.ensure(dl, {"a": c}, [(0, 50), (50, 100)])
        loads0 = dl.loads
        self.ensure(dl, {"a": c}, [(0, 70), (70, 100)])
        assert dl.migrations == 1
        assert dl.loads == loads0  # no full reload
        ma = dl.arrays["a"]
        assert ma.blocks[0] == Block(0, 70)
        assert ma.blocks[1] == Block(70, 100)
        np.testing.assert_array_equal(ma.buffers[0].data, host[:70])
        np.testing.assert_array_equal(ma.buffers[1].data, host[70:])

    def test_same_split_still_skips(self):
        p = Platform(DESKTOP_MACHINE, 2)
        dl = DataLoader(p, migrate_deltas=True)
        host = np.arange(100, dtype=np.float32)
        dl.enter_region([("a", host, "copyin")])
        c = dist_cfg("a")
        tasks = [(0, 50), (50, 100)]
        self.ensure(dl, {"a": c}, tasks)
        skipped0 = dl.reloads_skipped
        self.ensure(dl, {"a": c}, tasks)
        assert dl.reloads_skipped == skipped0 + 1
        assert dl.migrations == 0

    def test_idle_gpu_holds_no_replica(self):
        p = Platform(DESKTOP_MACHINE, 2)
        dl = DataLoader(p, migrate_deltas=True)
        host = np.arange(10, dtype=np.float32)
        dl.enter_region([("a", host, "copyin")])
        c = ArrayConfig(name="a", ctype="float", read=True)
        self.ensure(dl, {"a": c}, [(0, 10), (10, 10)])
        ma = dl.arrays["a"]
        assert ma.blocks[0] == Block(0, 10)
        assert ma.blocks[1].size == 0
        assert ma.buffers[1] is None or ma.buffers[1].data.size == 0

    def test_static_loader_keeps_full_replicas_on_idle_gpus(self):
        p = Platform(DESKTOP_MACHINE, 2)
        dl = DataLoader(p)  # migrate_deltas off: paper behavior
        host = np.arange(10, dtype=np.float32)
        dl.enter_region([("a", host, "copyin")])
        c = ArrayConfig(name="a", ctype="float", read=True)
        self.ensure(dl, {"a": c}, [(0, 10), (10, 10)])
        assert dl.arrays["a"].blocks[1] == Block(0, 10)

    def test_placement_switch_invalidates_reload_skip(self):
        # Regression: after the balancer switches an array's placement
        # the loader's "same access pattern" fast path must not trust
        # the stale signature -- the buffers it would skip re-checking
        # were materialized under the old placement.
        p = Platform(DESKTOP_MACHINE, 2)
        dl = DataLoader(p, migrate_deltas=True)
        host = np.arange(100, dtype=np.float32)
        dl.enter_region([("a", host, "copyin")])
        c = dist_cfg("a")
        tasks = [(0, 50), (50, 100)]
        self.ensure(dl, {"a": c}, tasks)
        skipped0 = dl.reloads_skipped
        loads0, migs0 = dl.loads, dl.migrations
        dl.note_placement_switch("a")
        self.ensure(dl, {"a": c}, tasks)
        assert dl.reloads_skipped == skipped0  # fast path suppressed
        assert dl.loads + dl.migrations > loads0 + migs0
        # The invalidation is one-shot: the next stable ensure skips.
        skipped1 = dl.reloads_skipped
        self.ensure(dl, {"a": c}, tasks)
        assert dl.reloads_skipped == skipped1 + 1

    def test_note_placement_switch_on_unknown_array_is_noop(self):
        p = Platform(DESKTOP_MACHINE, 2)
        dl = DataLoader(p)
        dl.note_placement_switch("ghost")  # must not raise


# ---------------------------------------------------------------------------
# End-to-end: adaptive changes timing, never results.
# ---------------------------------------------------------------------------

RELAX_SRC = r"""
void relax(int n, int iters, float *a, float *b) {
  #pragma acc data copy(a[0:n], b[0:n])
  {
    for (int it = 0; it < iters; it++) {
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        a[i] = a[i] * 0.5f + b[i];
      }
    }
  }
}
"""


def relax_args(n=4096, iters=8, seed=0):
    rng = np.random.default_rng(seed)
    return {"n": n, "iters": iters,
            "a": rng.standard_normal(n).astype(np.float32),
            "b": rng.standard_normal(n).astype(np.float32)}


class TestAdaptiveParity:
    @pytest.mark.parametrize("app", ["md", "bfs"])
    def test_apps_bit_identical_on_mixed_node(self, app):
        spec = ALL_APPS[app]
        prog = repro.compile(spec.source)
        outs = {}
        for adaptive in (False, True):
            args = spec.args_for("tiny")
            prog.run(spec.entry, args, machine=mixed_node(), ngpus=4,
                     adaptive=adaptive)
            outs[adaptive] = {k: np.asarray(args[k]).copy()
                              for k in spec.outputs}
        for k in spec.outputs:
            np.testing.assert_array_equal(outs[False][k], outs[True][k])

    def test_kmeans_matches_reference_adaptively(self):
        spec = ALL_APPS["kmeans"]
        prog = repro.compile(spec.source)
        args = spec.args_for("tiny")
        inputs = spec.snapshot(args)
        prog.run(spec.entry, args, machine=mixed_node(), ngpus=4,
                 adaptive=True)
        spec.check(args, inputs)

    def test_relax_demotes_and_stays_bit_identical(self):
        # infer=False: localaccess inference would distribute a/b at
        # compile time, leaving the balancer no replica to demote --
        # this test covers the runtime demotion path specifically.
        prog = repro.compile(RELAX_SRC,
                             repro.CompileOptions(infer=False))
        outs = {}
        runs = {}
        for adaptive in (False, True):
            args = relax_args(n=200_000, iters=12)
            run = prog.run("relax", args, machine="desktop", ngpus=2,
                           adaptive=adaptive)
            outs[adaptive] = args["a"].copy()
            runs[adaptive] = run
        np.testing.assert_array_equal(outs[False], outs[True])
        snap = runs[True].executor.balancer.snapshot()
        demoted = [a for a in snap["arrays"].values() if a["demoted"]]
        assert demoted, snap["arrays"]
        # The replica->distributed switch moves data by delta migration,
        # not reloads, and the windowed path beats the broadcasts.
        assert runs[True].executor.loader.migrations >= 1
        assert runs[True].breakdown.gpu_gpu < runs[False].breakdown.gpu_gpu

    def test_relax_demote_runs_clean_under_sanitizer(self):
        # A placement switch mid-run exercises the invalidated reload-
        # skip path and the windowed-propagation coherence machinery;
        # the sanitizer must find nothing to complain about.
        # (infer=False so a/b start replicated -- see the parity test.)
        prog = repro.compile(RELAX_SRC,
                             repro.CompileOptions(infer=False))
        args = relax_args(n=200_000, iters=12)
        run = prog.run("relax", args, machine="desktop", ngpus=2,
                       adaptive=True, sanitize=True)
        snap = run.executor.balancer.snapshot()
        assert any(a["demoted"] for a in snap["arrays"].values())
        assert run.sanitizer.loops_checked == 12

    def test_reload_skip_survives_stable_adaptive_split(self):
        # Regression: with an unchanged split the adaptive loader must
        # keep skipping reloads exactly like the static one.
        prog = repro.compile(RELAX_SRC)
        skips = {}
        for adaptive in (False, True):
            args = relax_args(n=2048, iters=10)
            run = prog.run("relax", args, machine="desktop", ngpus=2,
                           adaptive=adaptive)
            skips[adaptive] = run.executor.loader.reloads_skipped
        assert skips[True] > 0
        assert skips[True] >= skips[False] - 2  # demotion may re-place once

    def test_uniform_node_adaptive_matches_static_timing(self):
        spec = ALL_APPS["md"]
        prog = repro.compile(spec.source)
        elapsed = {}
        for adaptive in (False, True):
            args = spec.args_for("tiny")
            run = prog.run(spec.entry, args, machine=hypothetical_node(4),
                           ngpus=4, adaptive=adaptive)
            elapsed[adaptive] = run.elapsed
        assert elapsed[True] == pytest.approx(elapsed[False], rel=1e-6)


class TestAdaptiveOracle:
    """Property: adaptive vector execution equals the scalar interpreter
    oracle bit-for-bit on elementwise programs, machine regardless."""

    @given(n=st.integers(16, 400), iters=st.integers(1, 4),
           ngpus=st.integers(1, 4), seed=st.integers(0, 10))
    @settings(max_examples=12, deadline=None)
    def test_relax_matches_interp_oracle(self, n, iters, ngpus, seed):
        oracle, _ = run_source(RELAX_SRC, relax_args(n, iters, seed),
                               ngpus=1, engine="interp")
        got, _ = run_source(RELAX_SRC, relax_args(n, iters, seed),
                            ngpus=ngpus, machine=mixed_node(),
                            engine="vector", adaptive=True)
        np.testing.assert_array_equal(got["a"], oracle["a"])
