"""Documentation health tests (the CI docs job).

Three guarantees keep the reference pages from rotting:

* every intra-repo markdown link (and same-page/cross-page anchor)
  resolves,
* the ``python -m repro.explain`` CLI runs against a bundled app,
* doc-referenced runnable snippets execute: the README quickstart
  code block and the example script the inference docs point at.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

#: Markdown files whose links must resolve: everything at the repo
#: root plus the whole docs/ tree.
DOC_FILES = sorted(REPO.glob("*.md")) + sorted((REPO / "docs").glob("*.md"))

_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def _slug(heading: str) -> str:
    """GitHub's anchor slug for a heading."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set:
    text = _CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    return {_slug(h) for h in _HEADING.findall(text)}


def _links(path: Path):
    text = _CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target


class TestMarkdownLinks:
    @pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
    def test_intra_repo_links_resolve(self, doc):
        for target in _links(doc):
            target, _, anchor = target.partition("#")
            dest = doc if not target else (doc.parent / target).resolve()
            assert dest.exists(), f"{doc.name}: broken link -> {target}"
            if anchor and dest.suffix == ".md":
                assert _slug(anchor) in _anchors(dest), (
                    f"{doc.name}: link to missing anchor "
                    f"{dest.name}#{anchor}")

    def test_readme_indexes_all_docs_pages(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        for page in sorted((REPO / "docs").glob("*.md")):
            assert f"docs/{page.name}" in readme, (
                f"README.md does not index docs/{page.name}")


class TestChoosingFlags:
    """The README "Choosing flags" how-to cannot drift from the code:
    every ``AccProgram.run`` parameter and every ``CompileOptions``
    field must appear (backticked) in that section, and the section
    must not advertise flags that no longer exist."""

    @staticmethod
    def _section() -> str:
        text = (REPO / "README.md").read_text(encoding="utf-8")
        m = re.search(r"## Choosing flags\n(.*?)\n## ", text, re.DOTALL)
        assert m, "README.md lost its 'Choosing flags' section"
        return m.group(1)

    def test_every_run_parameter_is_documented(self):
        import inspect

        sys.path.insert(0, str(REPO / "src"))
        try:
            from repro.api import AccProgram
            params = [p for p in inspect.signature(
                AccProgram.run).parameters if p != "self"]
        finally:
            sys.path.remove(str(REPO / "src"))
        section = self._section()
        missing = [p for p in params if f"`{p}`" not in section]
        assert not missing, (
            f"README 'Choosing flags' misses run() params: {missing}")

    def test_every_compile_option_is_documented(self):
        import dataclasses

        sys.path.insert(0, str(REPO / "src"))
        try:
            from repro.translator.compiler import CompileOptions
            fields = [f.name for f in dataclasses.fields(CompileOptions)]
        finally:
            sys.path.remove(str(REPO / "src"))
        section = self._section()
        missing = [f for f in fields if f"`{f}`" not in section]
        assert not missing, (
            f"README 'Choosing flags' misses CompileOptions: {missing}")

    def test_documented_collective_modes_exist(self):
        sys.path.insert(0, str(REPO / "src"))
        try:
            from repro.runtime.collectives import COLLECTIVE_MODES
        finally:
            sys.path.remove(str(REPO / "src"))
        section = self._section()
        for mode in COLLECTIVE_MODES:
            assert f'"{mode}"' in section, (
                f"README 'Choosing flags' misses collective mode {mode!r}")


def _run(cmd, **kw):
    full_env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
    return subprocess.run(cmd, cwd=REPO, env=full_env, text=True,
                          capture_output=True, timeout=600, **kw)


class TestExplainCLI:
    def test_module_runs_on_bundled_app(self):
        proc = _run([sys.executable, "-m", "repro.explain",
                     "--app", "stencil"])
        assert proc.returncode == 0, proc.stderr
        assert "stencil_L0" in proc.stdout

    def test_module_runs_json_no_infer(self):
        proc = _run([sys.executable, "-m", "repro.explain",
                     "--app", "md", "--json", "--no-infer"])
        assert proc.returncode == 0, proc.stderr
        assert '"loops"' in proc.stdout


class TestDocSnippets:
    def test_readme_quickstart_block_executes(self):
        """The first self-contained ```python block in README runs."""
        text = (REPO / "README.md").read_text(encoding="utf-8")
        blocks = re.findall(r"```python\n(.*?)```", text, re.DOTALL)
        runnable = [b for b in blocks if "import repro" in b]
        assert runnable, "README.md lost its runnable quickstart block"
        sys.path.insert(0, str(REPO / "src"))
        try:
            exec(compile(runnable[0], "README.md", "exec"), {})
        finally:
            sys.path.remove(str(REPO / "src"))

    def test_auto_localaccess_example_runs(self):
        """The example the inference docs reference, at a tiny size."""
        proc = _run([sys.executable, "examples/auto_localaccess.py",
                     "2048", "3"])
        assert proc.returncode == 0, proc.stderr
        assert "inferred placement matches" in proc.stdout
