"""Differential determinism matrix.

Every optimization flag in the runtime (communication overlap, transfer
coalescing, adaptive mapping, tracing, the sanitizer) is documented as
changing *timing only*, never results.  This suite pins that claim as a
matrix: for each example app, every flag combination must produce
bit-identical output arrays at a fixed GPU count, and the plain run
must be bit-identical across 1/2/4 GPUs.

The one principled exception: kmeans performs float32 ``+`` reductions
whose association order depends on the split, so across *GPU counts*
its centers are only ``allclose`` (measured max divergence ~6e-5 on
the tiny workload) and its integer cluster assignments -- which flip
chaotically once centers drift by an ulp -- are checked via the app's
own semantic validator instead of equality.  Across *flag combos* at a
fixed GPU count the split is unchanged, so even kmeans must be
bit-identical.
"""

import numpy as np
import pytest

import repro
from repro.apps import ALL_APPS, EXTRA_APPS
from repro.bench.machines import hypothetical_cluster, hypothetical_node
from repro.vcuda.specs import MACHINES

APPS = {**ALL_APPS, **EXTRA_APPS}

#: Apps whose plain runs are bit-identical across GPU counts (all but
#: kmeans: no float reductions whose grouping follows the split).
BIT_IDENTICAL_ACROSS_GPUS = [n for n in APPS if n != "kmeans"]

#: Baseline is all-off; each single flag plus the everything-on combo.
FLAG_COMBOS = [
    {"overlap": True},
    {"coalesce": True},
    {"adaptive": True},
    {"trace": True},
    {"sanitize": True},
    # fastpath=False switches every wall-clock fast path (packed dirty
    # bitsets, span codegen branches, launch-context caching, batched
    # miss replay) to the reference implementations; the baseline runs
    # with fastpath on, so this axis pins on-vs-off bit-identity.
    {"fastpath": False},
    # fuse=True rewrites the kernel schedule itself (merged launches,
    # elided inter-loop communication, scratch-demoted intermediates);
    # results must still be bit-identical to the unfused baseline.
    {"fuse": True},
    # collective=ring/tree reschedules replica broadcasts and staged
    # exchanges through the collective engine (hub-local ring chains /
    # binomial trees + the chunked progress engine); pure re-pricing,
    # so results must match the legacy "none" schedule bit for bit.
    {"collective": "ring"},
    {"collective": "tree"},
    {"overlap": True, "coalesce": True, "adaptive": True,
     "trace": True, "sanitize": True},
    {"overlap": True, "coalesce": True, "adaptive": True,
     "trace": True, "sanitize": True, "fastpath": False},
    {"overlap": True, "coalesce": True, "adaptive": True,
     "trace": True, "sanitize": True, "fuse": True},
]

COMBO_IDS = ["+".join(k if isinstance(v, bool) else f"{k}={v}"
                      for k, v in sorted(c.items()))
             for c in FLAG_COMBOS]


def machine_for(ngpus):
    spec = MACHINES["desktop"]
    return spec if ngpus <= spec.gpu_count else hypothetical_node(ngpus)


def run_app(name, ngpus, **flags):
    spec = APPS[name]
    # ``fuse`` is a compile-time axis, not a runtime flag.
    options = repro.CompileOptions(fuse=True) if flags.pop("fuse", False) \
        else None
    prog = repro.compile(spec.source, options)
    args = spec.args_for("tiny")
    snap = spec.snapshot(args)
    prog.run(spec.entry, args, machine=machine_for(ngpus), ngpus=ngpus,
             **flags)
    arrays = {k: v for k, v in args.items() if isinstance(v, np.ndarray)}
    return arrays, args, snap


@pytest.fixture(scope="module")
def baselines():
    """Plain (all flags off) outputs per app, per GPU count."""
    return {(name, g): run_app(name, g)[0]
            for name in APPS for g in (1, 2, 4)}


@pytest.mark.parametrize("flags", FLAG_COMBOS, ids=COMBO_IDS)
@pytest.mark.parametrize("app_name", list(APPS))
def test_flags_never_change_results(app_name, flags, baselines):
    """At a fixed GPU count every flag combo is bit-identical to the
    plain run -- for every app, kmeans included."""
    base = baselines[(app_name, 2)]
    arrays, _, _ = run_app(app_name, 2, **flags)
    for name, a in arrays.items():
        np.testing.assert_array_equal(
            a, base[name],
            err_msg=f"{app_name}.{name} perturbed by {flags}")


@pytest.mark.parametrize("ngpus", [2, 4])
@pytest.mark.parametrize("app_name", BIT_IDENTICAL_ACROSS_GPUS)
def test_bit_identical_across_gpu_counts(app_name, ngpus, baselines):
    base = baselines[(app_name, 1)]
    multi = baselines[(app_name, ngpus)]
    for name, a in base.items():
        np.testing.assert_array_equal(
            multi[name], a,
            err_msg=f"{app_name}.{name} differs at ngpus={ngpus}")


@pytest.mark.parametrize("ngpus", [2, 4])
def test_kmeans_close_across_gpu_counts(ngpus, baselines):
    """kmeans floats reassociate with the split: centers must stay
    within float32 reduction noise, and the run must still satisfy the
    app's own semantic check."""
    base = baselines[("kmeans", 1)]
    np.testing.assert_allclose(
        baselines[("kmeans", ngpus)]["new_centers"], base["new_centers"],
        rtol=1e-4, atol=1e-4)
    _, args, snap = run_app("kmeans", ngpus)
    APPS["kmeans"].check(args, snap)


#: Node axis: the same four GPUs as one node, two nodes of two, and
#: four single-GPU nodes.  The split and hence the float association
#: is fixed by the flattened GPU count, so results must be
#: bit-identical across topologies -- kmeans included.
NODE_TOPOLOGIES = [(1, 4), (2, 2), (4, 1)]
NODE_IDS = [f"{n}x{g}" for n, g in NODE_TOPOLOGIES]


@pytest.mark.parametrize(("nodes", "gpus"), NODE_TOPOLOGIES, ids=NODE_IDS)
@pytest.mark.parametrize("app_name", list(APPS))
def test_bit_identical_across_node_topologies(app_name, nodes, gpus,
                                              baselines):
    """Re-sharding four GPUs across 1/2/4 nodes never changes results:
    the NIC tier and staged exchange are timing-only, like every other
    transport."""
    spec = APPS[app_name]
    base = baselines[(app_name, 4)]
    prog = repro.compile(spec.source)
    args = spec.args_for("tiny")
    cluster = hypothetical_cluster(nodes, gpus)
    prog.run(spec.entry, args, machine=cluster, ngpus=4)
    for name, a in base.items():
        np.testing.assert_array_equal(
            args[name], a,
            err_msg=f"{app_name}.{name} differs on {nodes}x{gpus} topology")


@pytest.mark.parametrize("app_name", list(APPS))
def test_repeated_runs_identical(app_name):
    """Two identical invocations (fresh compile each) are bit-identical:
    no hidden global state, wall-clock, or RNG leaks into results."""
    a, _, _ = run_app(app_name, 2, adaptive=True, trace=True)
    b, _, _ = run_app(app_name, 2, adaptive=True, trace=True)
    for name in a:
        np.testing.assert_array_equal(
            a[name], b[name], err_msg=f"{app_name}.{name} not reproducible")
