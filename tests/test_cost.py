"""Cost model tests: collector buckets, access pricing, launch totals."""

import pytest

from repro.translator.compiler import CompileOptions, compile_source
from repro.translator.cost import (
    ACCESS_BROADCAST,
    ACCESS_COALESCED,
    ACCESS_RANDOM,
    ACCESS_STRIDED,
    CostCollector,
    KernelCostInfo,
)
from repro.vcuda.device import KernelWork


class TestCollector:
    def test_base_bucket_default(self):
        c = CostCollector()
        c.flop("+")
        assert c.buckets["base"].flops == 1.0

    def test_push_pop_switches_bucket(self):
        c = CostCollector()
        c.push("L0")
        c.flop("*", 3)
        c.pop()
        c.flop("+")
        assert c.buckets["L0"].flops == 3.0
        assert c.buckets["base"].flops == 1.0

    def test_pop_underflow(self):
        with pytest.raises(RuntimeError):
            CostCollector().pop()

    def test_expensive_ops_cost_more(self):
        c = CostCollector()
        c.flop("sqrt")
        assert c.buckets["base"].flops > 1.0

    def test_access_classes(self):
        c = CostCollector()
        c.access(4, ACCESS_COALESCED)
        c.access(4, ACCESS_BROADCAST)
        c.access(4, ACCESS_STRIDED)
        c.access(4, ACCESS_RANDOM)
        w = c.buckets["base"]
        assert w.coalesced_bytes == pytest.approx(4 + 4 / 32)
        assert w.random_bytes == pytest.approx(4 * 2.5 + 4 * 4.0)

    def test_serialize_keeps_max(self):
        c = CostCollector()
        c.serialize(2.0)
        c.serialize(1.5)
        assert c.buckets["base"].serialization == 2.0


class TestCostInfo:
    def test_total_combines_buckets(self):
        info = KernelCostInfo(buckets={
            "base": KernelWork(flops=2),
            "L0": KernelWork(flops=10),
        })
        w = info.total(5, {"L0": 7})
        assert w.flops == 2 * 5 + 10 * 7

    def test_missing_dyn_total_counts_zero(self):
        info = KernelCostInfo(buckets={"base": KernelWork(flops=1),
                                       "L0": KernelWork(flops=100)})
        assert info.total(3, {}).flops == 3

    def test_inner_labels(self):
        info = KernelCostInfo(buckets={"base": KernelWork(),
                                       "L0": KernelWork()})
        assert info.inner_labels() == ["L0"]


class TestCompiledCosts:
    def compile_kernel(self, src, **opts):
        return compile_source(src, CompileOptions(**opts)).plans[0]

    def test_coalesced_read_detected(self):
        plan = self.compile_kernel("""
        void k(int n, float *x, float *y) {
          #pragma acc localaccess y[stride(1)]
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { y[i] = x[i]; }
        }
        """)
        base = plan.cost.base
        assert base.coalesced_bytes >= 8  # one 4B read + one 4B write
        assert base.random_bytes == 0  # proven-local write: no dirty bits

    def test_gather_priced_random(self):
        plan = self.compile_kernel("""
        void k(int n, int *idx, float *x, float *y) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { y[i] = x[idx[i]]; }
        }
        """)
        assert plan.cost.base.random_bytes > 0

    def test_broadcast_read_cheap(self):
        plan = self.compile_kernel("""
        void k(int n, float *c, float *y) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { y[i] = c[0]; }
        }
        """)
        base = plan.cost.base
        assert base.coalesced_bytes < 8  # broadcast read ~free

    def test_layout_transform_changes_pricing(self):
        src = """
        void k(int n, int m, float *x, float *y) {
          #pragma acc localaccess x[stride(m)]
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            float s = 0.0f;
            for (int j = 0; j < m; j++) { s += x[i * m + j]; }
            y[i] = s;
          }
        }
        """
        with_opt = self.compile_kernel(src, layout_transform=True)
        without = self.compile_kernel(src, layout_transform=False)
        lbl = with_opt.cost.inner_labels()[0]
        assert with_opt.cost.buckets[lbl].random_bytes < \
            without.cost.buckets[lbl].random_bytes

    def test_inner_loop_gets_own_bucket(self):
        plan = self.compile_kernel("""
        void k(int n, int m, float *x) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) {
            for (int j = 0; j < m; j++) { x[i] += 1.0f; }
          }
        }
        """)
        assert plan.cost.inner_labels() == ["L0"]
        assert plan.cost.buckets["L0"].flops > 0

    def test_dirty_instrumentation_adds_cost(self):
        scatter = """
        void k(int n, int *idx, float *x) {
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { x[idx[i]] = 1.0f; }
        }
        """
        direct = """
        void k(int n, int *idx, float *x) {
          #pragma acc localaccess x[stride(1)]
          #pragma acc parallel loop
          for (int i = 0; i < n; i++) { x[i] = 1.0f; }
        }
        """
        dirty = self.compile_kernel(scatter)
        clean = self.compile_kernel(direct)
        assert dirty.cost.base.int_ops > clean.cost.base.int_ops
