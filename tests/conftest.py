"""Shared fixtures for the test suite."""

import pytest


@pytest.fixture
def desktop():
    from repro.vcuda import DESKTOP_MACHINE, Platform

    return Platform(DESKTOP_MACHINE, 2)
