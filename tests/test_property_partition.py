"""Property tests: the partitioning primitives under adversarial input.

The splitters feed every other runtime layer -- an invalid cover
silently drops or duplicates iterations downstream -- so they are
pinned by randomized properties instead of a handful of examples:

* :func:`split_tasks` / :func:`split_tasks_weighted` always produce an
  exact, ordered, contiguous cover of ``[lower, upper)`` for 1-8 GPUs,
  including fewer tasks than GPUs, empty ranges, and adversarial
  weights (zeros, NaN, infinities, negatives, denormal-tiny values);
* both splits are deterministic (same inputs, same output) and
  weighted splitting degrades to the equal split on degenerate weights;
* ``min_chunk`` is honored for every positive-weight GPU whenever the
  range is large enough, and never breaks the cover;
* :func:`primary_blocks` ownership always covers the array exactly and
  :func:`owner_of` maps every element to the block that owns it.
"""

import hashlib

import numpy as np
from hypothesis import given, seed, settings, strategies as st

from repro.runtime.partition import (
    Block,
    owner_of,
    primary_blocks,
    split_tasks,
    split_tasks_weighted,
)

_SETTINGS = dict(max_examples=200, deadline=None, database=None)


def _case_seed(case_id: str) -> int:
    digest = hashlib.sha256(case_id.encode()).digest()
    return int.from_bytes(digest[:8], "big")


#: Adversarial weight values: garbage measurements the balancer could
#: conceivably feed the splitter.
_WEIGHTS = st.one_of(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    st.just(0.0),
    st.just(float("nan")),
    st.just(float("inf")),
    st.floats(min_value=-10.0, max_value=0.0),
    st.just(5e-324),  # smallest denormal
    st.just(1e-300),
)

_RANGES = st.tuples(st.integers(-50, 1000), st.integers(0, 1000)).map(
    lambda t: (t[0], t[0] + t[1]))


def assert_exact_cover(tasks, lower, upper, ngpus):
    """The one partition invariant everything downstream relies on."""
    assert len(tasks) == ngpus
    start = lower
    for t0, t1 in tasks:
        assert t0 == start, f"gap/overlap at {t0} (expected {start})"
        assert t1 >= t0, f"negative slice ({t0}, {t1})"
        start = t1
    assert start == max(lower, upper)


class TestSplitTasks:
    @seed(_case_seed("TestSplitTasks::test_exact_ordered_cover"))
    @given(_RANGES, st.integers(1, 8))
    @settings(**_SETTINGS)
    def test_exact_ordered_cover(self, bounds, ngpus):
        lower, upper = bounds
        tasks = split_tasks(lower, upper, ngpus)
        assert_exact_cover(tasks, lower, upper, ngpus)

    @seed(_case_seed("TestSplitTasks::test_equal_split_balance"))
    @given(_RANGES, st.integers(1, 8))
    @settings(**_SETTINGS)
    def test_equal_split_balance(self, bounds, ngpus):
        lower, upper = bounds
        sizes = [t1 - t0 for t0, t1 in split_tasks(lower, upper, ngpus)]
        assert max(sizes) - min(sizes) <= 1
        # Larger slices come first (the remainder goes to low indices).
        assert sizes == sorted(sizes, reverse=True)

    @seed(_case_seed("TestSplitTasks::test_fewer_tasks_than_gpus"))
    @given(st.integers(0, 7), st.integers(1, 8))
    @settings(**_SETTINGS)
    def test_fewer_tasks_than_gpus(self, total, ngpus):
        tasks = split_tasks(0, total, ngpus)
        assert_exact_cover(tasks, 0, total, ngpus)
        nonempty = [t for t in tasks if t[1] > t[0]]
        assert len(nonempty) == min(total, ngpus)
        assert all(t1 - t0 == 1 for t0, t1 in nonempty) or total >= ngpus


class TestSplitTasksWeighted:
    @seed(_case_seed("TestSplitTasksWeighted::test_exact_cover_adversarial"))
    @given(_RANGES, st.lists(_WEIGHTS, min_size=1, max_size=8),
           st.integers(0, 16))
    @settings(**_SETTINGS)
    def test_exact_cover_adversarial(self, bounds, weights, min_chunk):
        lower, upper = bounds
        tasks = split_tasks_weighted(lower, upper, weights, min_chunk)
        assert_exact_cover(tasks, lower, upper, len(weights))

    @seed(_case_seed("TestSplitTasksWeighted::test_deterministic"))
    @given(_RANGES, st.lists(_WEIGHTS, min_size=1, max_size=8),
           st.integers(0, 16))
    @settings(**_SETTINGS)
    def test_deterministic(self, bounds, weights, min_chunk):
        lower, upper = bounds
        a = split_tasks_weighted(lower, upper, weights, min_chunk)
        b = split_tasks_weighted(lower, upper, list(weights), min_chunk)
        assert a == b

    @seed(_case_seed("TestSplitTasksWeighted::test_degenerate_weights"))
    @given(_RANGES, st.integers(1, 8),
           st.sampled_from(["zeros", "nans", "infs", "negative"]))
    @settings(**_SETTINGS)
    def test_degenerate_weights(self, bounds, ngpus, kind):
        """No usable proportion information -> the equal split."""
        lower, upper = bounds
        weights = {
            "zeros": [0.0] * ngpus,
            "nans": [float("nan")] * ngpus,
            "infs": [float("inf")] * ngpus,
            "negative": [-1.0] * ngpus,
        }[kind]
        assert (split_tasks_weighted(lower, upper, weights)
                == split_tasks(lower, upper, ngpus))

    @seed(_case_seed("TestSplitTasksWeighted::test_nan_clamps_to_zero"))
    @given(st.integers(10, 500), st.integers(2, 8))
    @settings(**_SETTINGS)
    def test_nan_clamps_to_zero(self, total, ngpus):
        """One NaN weight starves that GPU, never poisons the split."""
        weights = [1.0] * ngpus
        weights[ngpus // 2] = float("nan")
        tasks = split_tasks_weighted(0, total, weights)
        assert_exact_cover(tasks, 0, total, ngpus)
        t0, t1 = tasks[ngpus // 2]
        assert t1 == t0

    @seed(_case_seed("TestSplitTasksWeighted::test_proportionality"))
    @given(st.integers(64, 2000), st.integers(2, 8), st.data())
    @settings(**_SETTINGS)
    def test_proportionality(self, total, ngpus, data):
        """With sane weights, each slice is within one task of its
        proportional share."""
        weights = [data.draw(st.floats(min_value=0.1, max_value=10.0,
                                       allow_nan=False))
                   for _ in range(ngpus)]
        tasks = split_tasks_weighted(0, total, weights)
        s = sum(weights)
        for (t0, t1), w in zip(tasks, weights):
            assert abs((t1 - t0) - total * w / s) < 1.0 + 1e-9

    @seed(_case_seed("TestSplitTasksWeighted::test_min_chunk_honored"))
    @given(st.integers(2, 8), st.integers(1, 8), st.data())
    @settings(**_SETTINGS)
    def test_min_chunk_honored(self, ngpus, min_chunk, data):
        weights = [data.draw(st.floats(min_value=0.01, max_value=10.0,
                                       allow_nan=False))
                   for _ in range(ngpus)]
        total = data.draw(st.integers(ngpus * min_chunk, 4000))
        tasks = split_tasks_weighted(0, total, weights, min_chunk)
        assert_exact_cover(tasks, 0, total, ngpus)
        sizes = [t1 - t0 for t0, t1 in tasks]
        # Every GPU has positive weight here, and the range is big
        # enough, so either all slices meet min_chunk or the splitter
        # legitimately fell back to the equal split (which may not).
        if tasks != split_tasks(0, total, ngpus):
            assert all(sz >= min_chunk for sz in sizes)

    @seed(_case_seed("TestSplitTasksWeighted::test_tiny_weights"))
    @given(st.integers(1, 1000), st.integers(1, 8))
    @settings(**_SETTINGS)
    def test_tiny_weights(self, total, ngpus):
        """Denormal-tiny but equal weights behave like the equal split
        (the ratio, not the magnitude, carries the information)."""
        tasks = split_tasks_weighted(0, total, [1e-300] * ngpus)
        assert_exact_cover(tasks, 0, total, ngpus)
        sizes = [t1 - t0 for t0, t1 in tasks]
        assert max(sizes) - min(sizes) <= 1


class TestOwnership:
    @seed(_case_seed("TestOwnership::test_primary_blocks_cover"))
    @given(st.integers(1, 6), st.integers(0, 400), st.data())
    @settings(**_SETTINGS)
    def test_primary_blocks_cover(self, ngpus, length, data):
        """Ownership of halo'd windows is an exact disjoint cover."""
        halo = data.draw(st.integers(0, 5))
        tasks = split_tasks(0, length, ngpus)
        windows = [Block(max(0, t0 - halo), min(length, t1 + halo))
                   if t1 > t0 else Block(0, 0)
                   for t0, t1 in tasks]
        prim = primary_blocks(windows, length)
        assert len(prim) == ngpus
        start = 0
        for b in prim:
            assert b.lo == start and b.hi >= b.lo
            start = b.hi
        assert start == length

    @seed(_case_seed("TestOwnership::test_owner_of_matches_blocks"))
    @given(st.integers(1, 6), st.integers(1, 400))
    @settings(**_SETTINGS)
    def test_owner_of_matches_blocks(self, ngpus, length):
        tasks = split_tasks(0, length, ngpus)
        blocks = [Block(t0, t1) for t0, t1 in tasks]
        idx = np.arange(length, dtype=np.int64)
        owners = owner_of(idx, blocks)
        for g, b in enumerate(blocks):
            sel = (idx >= b.lo) & (idx < b.hi)
            assert (owners[sel] == g).all()
