"""Compile-cache concurrency and key-completeness regression tests.

The module-global compile cache used to be unsynchronized: concurrent
compiles raced on the dict insert and lost or miscounted hits, and
``clear_compile_cache`` could interleave with a concurrent insert.
These tests pin the fixed behavior: all access is atomic, concurrent
callers of one key converge on a single shared program, and *every*
:class:`CompileOptions` field participates in the cache key, so two
compiles differing in any single option never share a cached program.
"""

import dataclasses
import threading

import pytest

from repro.apps import ALL_APPS, EXTRA_APPS
from repro.translator.compiler import (
    CompileOptions,
    canonical_options_key,
    clear_compile_cache,
    compile_cache_stats,
    compile_cache_stats_snapshot,
    compile_source,
    compile_source_with_info,
)

APPS = {**ALL_APPS, **EXTRA_APPS}
#: Every source here vectorizes fully, so flipping require_vectorized
#: never turns the compile into an error.
SRC = APPS["stencil"].source
OPTION_FIELDS = [f.name for f in dataclasses.fields(CompileOptions)]


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


def _flipped(field_name):
    default = getattr(CompileOptions(), field_name)
    assert isinstance(default, bool), (
        f"new non-bool CompileOptions field {field_name!r}: extend this "
        f"suite's flip helper so the key audit still covers every field")
    return CompileOptions(**{field_name: not default})


class TestKeyCoversEveryOption:
    @pytest.mark.parametrize("field_name", OPTION_FIELDS)
    def test_single_flipped_option_never_shares_a_program(self, field_name):
        base = compile_source(SRC)
        flipped = compile_source(SRC, _flipped(field_name))
        assert flipped is not base, (
            f"CompileOptions.{field_name} does not participate in the "
            f"compile-cache key")
        # Same flipped options again -> the flipped entry is shared.
        assert compile_source(SRC, _flipped(field_name)) is flipped

    def test_none_and_default_options_share_one_entry(self):
        assert compile_source(SRC) is compile_source(SRC, CompileOptions())
        assert compile_cache_stats_snapshot() == {"hits": 1, "misses": 1}

    def test_canonical_key_lists_every_field(self):
        key_names = [name for name, _ in canonical_options_key(None)]
        assert sorted(key_names) == sorted(OPTION_FIELDS)
        assert canonical_options_key(None) == \
            canonical_options_key(CompileOptions())


class TestPerCallInfo:
    def test_miss_then_hit(self):
        _, first = compile_source_with_info(SRC)
        _, second = compile_source_with_info(SRC)
        assert (first.hit, second.hit) == (False, True)
        assert first.key == second.key
        assert not first.bypassed

    def test_bypass_reports_itself_and_touches_no_stats(self):
        _, info = compile_source_with_info(SRC, cache=False)
        assert info.bypassed and not info.hit
        assert compile_cache_stats_snapshot() == {"hits": 0, "misses": 0}


class TestConcurrentCompiles:
    N = 16

    def _hammer(self, fn):
        barrier = threading.Barrier(self.N)
        results, errors = [None] * self.N, []

        def worker(i):
            barrier.wait()
            try:
                results[i] = fn(i)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(self.N)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        return results

    def test_same_key_converges_on_one_program_and_exact_stats(self):
        results = self._hammer(lambda i: compile_source(SRC))
        assert all(r is results[0] for r in results)
        stats = compile_cache_stats_snapshot()
        # Every call is accounted exactly once.  Racing translations
        # may each count as a miss (both did the work), but at least
        # one miss and no lost updates.
        assert stats["hits"] + stats["misses"] == self.N
        assert stats["misses"] >= 1
        # The cache now holds the key: one more call is a pure hit.
        before = compile_cache_stats_snapshot()
        assert compile_source(SRC) is results[0]
        after = compile_cache_stats_snapshot()
        assert after["hits"] == before["hits"] + 1

    def test_distinct_keys_compile_concurrently_without_loss(self):
        sources = [APPS[name].source
                   for name in ("stencil", "jacobi", "md", "bfs")]

        def fn(i):
            return compile_source(sources[i % len(sources)])

        results = self._hammer(fn)
        # All callers of one source share one object.
        for j in range(len(sources)):
            group = results[j::len(sources)]
            assert all(r is group[0] for r in group)
        stats = compile_cache_stats_snapshot()
        assert stats["hits"] + stats["misses"] == self.N

    def test_clear_races_never_corrupt_counters(self):
        def fn(i):
            if i % 4 == 0:
                clear_compile_cache()
                return None
            return compile_source(SRC)

        self._hammer(fn)
        stats = compile_cache_stats_snapshot()
        assert stats["hits"] >= 0 and stats["misses"] >= 0
        clear_compile_cache()
        assert compile_cache_stats_snapshot() == {"hits": 0, "misses": 0}
        # The exported dict object is the live one (mutated in place,
        # identity stable across clears).
        assert compile_cache_stats == {"hits": 0, "misses": 0}
