"""Admission/placement scheduler unit tests (no threads, no clocks).

The scheduler decides three things -- can a request ever run
(admissibility), where does it run (memory-aware best-fit bin-packing
over GPU slots), and who goes next (FIFO vs tenant-fair) -- and each is
pinned here directly against :class:`FleetState`, including the
byte-accounted reservations flowing through the same
:class:`~repro.vcuda.memory.MemoryAccountant` the virtual devices use.
"""

import numpy as np
import pytest

from repro.bench.machines import hypothetical_node, mixed_node
from repro.serve.scheduler import (
    AdmissionError,
    FairSharePolicy,
    FifoPolicy,
    FleetState,
    QueueEntry,
    SYSTEM_OVERHEAD_FRACTION,
    estimate_request_bytes,
    plan_placement,
)
from repro.vcuda.specs import GB


def fleet16():
    return FleetState(hypothetical_node(16, gpus_per_hub=4))


def entry(request_id, tenant="t", ngpus=1, bytes_per_gpu=1024, arrival=0):
    return QueueEntry(request_id=request_id, tenant=tenant, ngpus=ngpus,
                      bytes_per_gpu=bytes_per_gpu, arrival=arrival)


class TestEstimate:
    def test_counts_array_bytes_plus_system_overhead(self):
        args = {"n": 100, "a": np.zeros(1000, np.float32),
                "b": np.zeros(500, np.float64)}
        user = 1000 * 4 + 500 * 8
        assert estimate_request_bytes(args) == \
            int(user * (1 + SYSTEM_OVERHEAD_FRACTION))

    def test_scalar_only_request_is_zero(self):
        assert estimate_request_bytes({"n": 4, "eps": 0.5}) == 0


class TestAdmissibility:
    def test_too_many_gpus_is_structured(self):
        with pytest.raises(AdmissionError) as exc:
            fleet16().check_admissible(ngpus=17, bytes_per_gpu=1)
        assert exc.value.code == "oversized_gpus"
        assert exc.value.details["fleet_gpus"] == 16

    def test_oversized_memory_is_structured(self):
        state = fleet16()  # M2050 slots: 3 GB each
        with pytest.raises(AdmissionError) as exc:
            state.check_admissible(ngpus=1, bytes_per_gpu=4 * GB)
        assert exc.value.code == "oversized_memory"

    def test_mixed_fleet_counts_only_big_enough_slots(self):
        # mixed_node: 2x M2050 (3 GB) + 2x C1060 (4 GB).
        state = FleetState(mixed_node(fast=2, slow=2))
        state.check_admissible(ngpus=2, bytes_per_gpu=int(3.5 * GB))
        with pytest.raises(AdmissionError) as exc:
            state.check_admissible(ngpus=3, bytes_per_gpu=int(3.5 * GB))
        assert exc.value.code == "oversized_memory"
        assert exc.value.details["eligible_slots"] == 2

    def test_fitting_request_passes(self):
        fleet16().check_admissible(ngpus=16, bytes_per_gpu=GB)


class TestPlacement:
    def test_disjoint_slots_across_requests(self):
        state = fleet16()
        seen = set()
        for rid in range(8):
            slots = plan_placement(state, ngpus=2, bytes_per_gpu=1024)
            assert slots is not None and len(slots) == 2
            assert not (set(slots) & seen)
            seen |= set(slots)
            state.reserve(f"r{rid}", slots, 1024)
        assert plan_placement(state, 1, 1024) is None  # fleet full

    def test_prefers_single_hub(self):
        state = fleet16()  # hubs of 4
        slots = plan_placement(state, ngpus=4, bytes_per_gpu=1024)
        assert len({state.slots[s].hub for s in slots}) == 1

    def test_best_fit_leaves_whole_hubs_for_wide_requests(self):
        state = fleet16()
        # Fragment hub 0: take 3 of its 4 slots.
        state.reserve("frag", [0, 1, 2], 1024)
        # A 1-GPU request should fill fragmented hub 0 (best fit),
        # not break a pristine hub.
        slots = plan_placement(state, ngpus=1, bytes_per_gpu=1024)
        assert slots == [3]

    def test_spans_hubs_when_no_single_hub_fits(self):
        state = fleet16()
        slots = plan_placement(state, ngpus=6, bytes_per_gpu=1024)
        assert len(slots) == 6
        assert len({state.slots[s].hub for s in slots}) > 1

    def test_memory_filter_excludes_small_slots(self):
        # Alternating M2050 (3 GB) / C1060 (4 GB) slots.
        state = FleetState(mixed_node(fast=2, slow=2))
        big = int(3.5 * GB)
        slots = plan_placement(state, ngpus=2, bytes_per_gpu=big)
        assert slots is not None
        for s in slots:
            assert state.slots[s].capacity >= big
        state.reserve("big", slots, big)
        assert plan_placement(state, 1, big) is None  # both 4 GB slots busy
        assert plan_placement(state, 1, GB) is not None  # 3 GB ones fit this

    def test_best_fit_prefers_smallest_capacity_that_fits(self):
        state = FleetState(mixed_node(fast=2, slow=2))
        slots = plan_placement(state, ngpus=1, bytes_per_gpu=GB)
        # 3 GB M2050 slots sort before the 4 GB C1060s.
        assert state.slots[slots[0]].capacity == 3 * GB


class TestReservationAccounting:
    def test_reserve_release_round_trip(self):
        state = fleet16()
        state.reserve("r", [0, 1], 4096)
        assert state.busy_count == 2
        assert state.slots[0].accountant.live_total == 4096
        assert state.utilization() == 2 / 16
        state.release("r", [0, 1], 4096)
        assert state.busy_count == 0
        assert state.slots[0].accountant.live_total == 0

    def test_double_release_is_a_loud_bug(self):
        state = fleet16()
        state.reserve("r", [0], 4096)
        state.release("r", [0], 4096)
        with pytest.raises(AssertionError):
            state.release("r", [0], 4096)


class TestFifoPolicy:
    def test_strict_arrival_order(self):
        state, policy = fleet16(), FifoPolicy()
        q = [entry("b", arrival=1), entry("a", arrival=0)]
        assert policy.pick(q, state).request_id == "a"

    def test_head_of_line_blocks(self):
        state, policy = fleet16(), FifoPolicy()
        state.reserve("busy", list(range(15)), 1024)  # one slot left
        q = [entry("wide", ngpus=4, arrival=0), entry("thin", arrival=1)]
        # The 4-GPU head cannot be placed; FIFO refuses to let the
        # 1-GPU request overtake it.
        assert policy.pick(q, state) is None


class TestFairSharePolicy:
    def test_round_robin_across_tenants(self):
        state, policy = fleet16(), FairSharePolicy()
        q = [entry("a0", tenant="a", arrival=0),
             entry("a1", tenant="a", arrival=1),
             entry("b0", tenant="b", arrival=2)]
        first = policy.pick(q, state)
        assert first.request_id == "a0"
        policy.admitted(first)
        q.remove(first)
        second = policy.pick(q, state)
        assert second.request_id == "b0", (
            "after admitting tenant a, tenant b must go next even though "
            "a1 arrived earlier")

    def test_flooding_tenant_cannot_starve_another(self):
        state, policy = fleet16(), FairSharePolicy()
        q = [entry(f"a{i}", tenant="a", arrival=i) for i in range(10)]
        q.append(entry("b0", tenant="b", arrival=10))
        admitted = []
        for _ in range(3):
            e = policy.pick(q, state)
            policy.admitted(e)
            q.remove(e)
            admitted.append(e.request_id)
        assert "b0" in admitted[:2]

    def test_skips_tenant_whose_head_does_not_fit(self):
        state, policy = fleet16(), FairSharePolicy()
        state.reserve("busy", list(range(14)), 1024)  # two slots left
        q = [entry("wide", tenant="a", ngpus=8, arrival=0),
             entry("thin", tenant="b", ngpus=1, arrival=1)]
        picked = policy.pick(q, state)
        assert picked.request_id == "thin", (
            "fair policy must skip a tenant whose head cannot be placed")
