"""Multi-node platform tests: topology, equivalence, faults, placement.

The cluster tier must be invisible when it is trivial and explicit
when it is not:

* a one-node :class:`~repro.vcuda.specs.ClusterSpec` run is
  *bit-identical* -- arrays, modeled time, every breakdown bucket,
  per-kind transfer bytes, normalized trace summary -- to the same run
  on the underlying :class:`~repro.vcuda.specs.MachineSpec`, for every
  flag combination in the determinism matrix;
* both internode transports produce arrays bit-identical to single-GPU,
  and staged aggregation moves strictly fewer cross-node bytes than
  naive per-pair exchange on the monitored-stencil workload;
* a dead NIC link surfaces a structured
  :class:`~repro.vcuda.bus.NetworkError` naming the link, instead of
  silently stalling or producing stale halos;
* fleet carving and serve placement respect node boundaries: a
  placement never spans nodes unless spanning was requested.
"""

import numpy as np
import pytest

import repro
from repro.apps import EXTRA_APPS
from repro.bench.machines import hypothetical_cluster, hypothetical_node
from repro.bench.multinode import (
    ENTRY as PROBE_ENTRY,
    STENCIL_PROBES_SOURCE,
    probe_args,
)
from repro.serve.scheduler import (
    AdmissionError,
    FleetState,
    plan_placement,
)
from repro.trace.golden import normalize
from repro.vcuda.bus import NetworkError
from repro.vcuda.specs import CLUSTERS, ClusterSpec, MachineSpec, cluster_of

from .test_determinism_matrix import COMBO_IDS, FLAG_COMBOS

BREAKDOWN_FIELDS = ("kernels", "cpu_gpu", "gpu_gpu", "gpu_gpu_overlapped",
                    "net", "net_overlapped", "other")


def _run(app_name, machine, ngpus, **flags):
    spec = EXTRA_APPS[app_name]
    options = repro.CompileOptions(fuse=True) if flags.pop("fuse", False) \
        else None
    prog = repro.compile(spec.source, options)
    args = spec.args_for("tiny")
    run = prog.run(spec.entry, args, machine=machine, ngpus=ngpus, **flags)
    arrays = {k: v for k, v in args.items() if isinstance(v, np.ndarray)}
    return run, arrays


class TestOneNodeEquivalence:
    """cluster_of(1, node) is the node, bit for bit."""

    @pytest.mark.parametrize("flags", FLAG_COMBOS, ids=COMBO_IDS)
    def test_bit_identical_to_machine(self, flags):
        node = hypothetical_node(4)
        cluster = cluster_of(1, node)
        flat_run, flat = _run("jacobi", node, 4, **dict(flags))
        clus_run, clus = _run("jacobi", cluster, 4, **dict(flags))
        for name, a in flat.items():
            np.testing.assert_array_equal(
                clus[name], a, err_msg=f"jacobi.{name} perturbed by "
                f"1-node ClusterSpec under {flags}")
        assert clus_run.elapsed == flat_run.elapsed
        for field in BREAKDOWN_FIELDS:
            assert getattr(clus_run.breakdown, field) \
                == getattr(flat_run.breakdown, field), field
        for kind in ("h2d", "d2h", "p2p", "net"):
            assert clus_run.platform.bus.bytes_moved(kind) \
                == flat_run.platform.bus.bytes_moved(kind), kind
        assert clus_run.platform.bus.cross_node_bytes() == 0
        if flags.get("trace"):
            assert normalize(clus_run.tracer) == normalize(flat_run.tracer)

    def test_one_node_ignores_internode_choice(self):
        node = hypothetical_node(2)
        cluster = cluster_of(1, node)
        a_run, a = _run("jacobi", cluster, 2, internode="staged")
        b_run, b = _run("jacobi", cluster, 2, internode="naive")
        for name in a:
            np.testing.assert_array_equal(b[name], a[name])
        assert a_run.elapsed == b_run.elapsed


class TestPlatformTopology:
    def test_node_helpers(self):
        cluster = hypothetical_cluster(2, 4)
        run, _ = _run("jacobi", cluster, 8)
        platform = run.platform
        assert platform.node_count == 2
        assert [platform.node_of(g) for g in range(8)] \
            == [0, 0, 0, 0, 1, 1, 1, 1]
        assert list(platform.node_devices(0)) == [0, 1, 2, 3]
        assert list(platform.node_devices(1)) == [4, 5, 6, 7]

    def test_single_machine_is_one_node(self):
        run, _ = _run("jacobi", hypothetical_node(4), 4)
        assert run.platform.node_count == 1
        assert list(run.platform.node_devices(0)) == [0, 1, 2, 3]

    def test_partial_fleet_stays_on_first_nodes(self):
        """ngpus below the fleet size occupies a node-count prefix."""
        cluster = hypothetical_cluster(2, 4)
        run, _ = _run("jacobi", cluster, 4)
        assert run.platform.node_count == 1
        assert run.platform.bus.cross_node_bytes() == 0

    def test_named_cluster_resolves(self):
        assert "tsubame2" in CLUSTERS
        spec = EXTRA_APPS["jacobi"]
        prog = repro.compile(spec.source)
        args = spec.args_for("tiny")
        run = prog.run(spec.entry, args, machine="tsubame2", ngpus=4)
        assert isinstance(run.platform.machine, ClusterSpec)

    def test_timeline_has_nic_lane(self):
        cluster = hypothetical_cluster(2, 2)
        run, _ = _run("jacobi", cluster, 4)
        nets = [e for e in run.timeline() if e.kind == "net"]
        assert nets, "cross-node run scheduled nothing on the NIC"
        assert all(e.resource.startswith("nic node") for e in nets)
        chart = repro.format_timeline(run.timeline())
        assert "~" in chart and "nic node" in chart


class TestInternodeTransports:
    def test_both_modes_match_single_gpu(self):
        prog = repro.compile(STENCIL_PROBES_SOURCE)
        ref = probe_args()
        prog.run(PROBE_ENTRY, ref, machine="desktop", ngpus=1)
        cluster = hypothetical_cluster(2, 4)
        for mode in ("staged", "naive"):
            args = probe_args()
            prog.run(PROBE_ENTRY, args, machine=cluster, ngpus=8,
                     internode=mode)
            for name in ("a", "record"):
                np.testing.assert_array_equal(
                    args[name], ref[name],
                    err_msg=f"{name} perturbed by internode={mode}")

    def test_staged_reduces_cross_node_bytes(self):
        prog = repro.compile(STENCIL_PROBES_SOURCE)
        cluster = hypothetical_cluster(2, 4)
        moved = {}
        for mode in ("staged", "naive"):
            run = prog.run(PROBE_ENTRY, probe_args(), machine=cluster,
                           ngpus=8, internode=mode)
            comm = run.executor.comm
            moved[mode] = (run.platform.bus.cross_node_bytes(),
                           comm.bytes_internode, comm.staged_exchanges)
        assert moved["staged"][0] < moved["naive"][0]
        assert moved["staged"][1] < moved["naive"][1]
        assert moved["staged"][2] > 0 and moved["naive"][2] == 0

    def test_unknown_mode_rejected(self):
        prog = repro.compile(STENCIL_PROBES_SOURCE)
        with pytest.raises(ValueError, match="internode"):
            prog.run(PROBE_ENTRY, probe_args(),
                     machine=hypothetical_cluster(2, 2), ngpus=4,
                     internode="telepathy")


class TestFaultInjection:
    def test_dead_link_raises_structured_error(self):
        cluster = hypothetical_cluster(2, 2).degrade_link(0, 1, 0.0)
        spec = EXTRA_APPS["jacobi"]
        prog = repro.compile(spec.source)
        with pytest.raises(NetworkError) as exc_info:
            prog.run(spec.entry, spec.args_for("tiny"), machine=cluster,
                     ngpus=4)
        err = exc_info.value
        assert isinstance(err, RuntimeError)
        assert {err.src_node, err.dst_node} == {0, 1}
        assert err.bandwidth == 0.0
        assert "node" in str(err)

    @pytest.mark.parametrize("internode", ["staged", "naive"])
    def test_dead_link_raises_under_both_transports(self, internode):
        cluster = hypothetical_cluster(2, 2).degrade_link(0, 1, 0.0)
        prog = repro.compile(STENCIL_PROBES_SOURCE)
        with pytest.raises(NetworkError):
            prog.run(PROBE_ENTRY, probe_args(), machine=cluster, ngpus=4,
                     internode=internode)

    def test_degraded_link_is_timing_only(self):
        """A slow (but live) link changes modeled time, never results."""
        spec = EXTRA_APPS["jacobi"]
        prog = repro.compile(spec.source)
        healthy = hypothetical_cluster(2, 2)
        crippled = healthy.degrade_link(0, 1, 1e4)
        a = spec.args_for("tiny")
        fast = prog.run(spec.entry, a, machine=healthy, ngpus=4)
        b = spec.args_for("tiny")
        slow = prog.run(spec.entry, b, machine=crippled, ngpus=4)
        for name, v in a.items():
            if isinstance(v, np.ndarray):
                np.testing.assert_array_equal(b[name], v)
        assert slow.elapsed > fast.elapsed


class TestNodeAwareCarving:
    def test_subset_within_node_is_plain_machine(self):
        cluster = hypothetical_cluster(2, 4)
        sub = cluster.subset([1, 2])
        assert isinstance(sub, MachineSpec)
        assert sub.gpu_count == 2

    def test_subset_across_nodes_stays_clustered(self):
        cluster = hypothetical_cluster(2, 4)
        sub = cluster.subset([0, 1, 4, 5])
        assert isinstance(sub, ClusterSpec)
        assert sub.node_count == 2
        assert [sub.node_of(g) for g in range(4)] == [0, 0, 1, 1]

    def test_subset_preserves_degraded_links(self):
        cluster = hypothetical_cluster(2, 2).degrade_link(0, 1, 0.0)
        sub = cluster.subset([0, 3])
        assert isinstance(sub, ClusterSpec)
        assert sub.link_bandwidth(0, 1) == 0.0


class TestNodeAwarePlacement:
    def test_placement_never_spans_nodes(self):
        state = FleetState(hypothetical_cluster(2, 4))
        slots = plan_placement(state, 3, 1024)
        assert slots is not None
        assert len({state.slots[i].node for i in slots}) == 1
        state.reserve("a", slots, 1024)
        # The next 3-wide request must land whole on the other node,
        # not straddle the boundary through the leftover slot.
        more = plan_placement(state, 3, 1024)
        assert more is not None
        assert {state.slots[i].node for i in more} == {1}

    def test_wide_request_waits_instead_of_spanning(self):
        state = FleetState(hypothetical_cluster(2, 4))
        assert plan_placement(state, 6, 1024) is None
        with pytest.raises(AdmissionError) as exc_info:
            state.check_admissible(6, 1024)
        assert exc_info.value.code == "oversized_node"

    def test_spanning_must_be_requested(self):
        state = FleetState(hypothetical_cluster(2, 4), span_nodes=True)
        state.check_admissible(6, 1024)
        slots = plan_placement(state, 6, 1024)
        assert slots is not None
        assert {state.slots[i].node for i in slots} == {0, 1}
        # Even with spanning allowed, a request one node can host
        # stays node-local.
        state2 = FleetState(hypothetical_cluster(2, 4), span_nodes=True)
        local = plan_placement(state2, 4, 1024)
        assert len({state2.slots[i].node for i in local}) == 1

    def test_single_node_fleet_unchanged(self):
        """On a plain MachineSpec the node tier is a no-op: same picks
        as before the node axis existed."""
        state = FleetState(hypothetical_node(8))
        assert all(s.node == 0 for s in state.slots)
        slots = plan_placement(state, 4, 1024)
        assert slots == [0, 1, 2, 3]
