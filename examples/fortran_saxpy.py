#!/usr/bin/env python
"""Fortran frontend example: the same compiler, a second language.

OpenACC is specified for C *and* Fortran; the paper's translator
accepts both. This example compiles a Fortran subroutine with the
multi-GPU directive extensions and runs it next to its C twin: both
lower to the same AST, produce byte-identical kernels modulo the
1-based-index rewriting, and behave identically at run time.

Run:  python examples/fortran_saxpy.py
"""

import numpy as np

import repro

FORTRAN = """
subroutine daxpy(n, a, x, y)
  integer :: n
  real(8) :: a
  real(8) :: x(n), y(n)
  integer :: i
  !$acc data copyin(x[0:n]) copy(y[0:n])
  !$acc parallel
  !$acc localaccess x[stride(1)] y[stride(1)]
  !$acc loop gang
  do i = 1, n
    y(i) = a * x(i) + y(i)
  end do
  !$acc end parallel
  !$acc end data
end subroutine daxpy
"""

C_TWIN = r"""
void daxpy(int n, double a, double *x, double *y) {
  #pragma acc data copyin(x[0:n]) copy(y[0:n])
  {
    #pragma acc parallel
    {
      #pragma acc localaccess x[stride(1)] y[stride(1)]
      #pragma acc loop gang
      for (int i = 0; i < n; i++) { y[i] = a * x[i] + y[i]; }
    }
  }
}
"""


def main() -> None:
    n = 1 << 18
    results = {}
    for label, compiler, src in (("Fortran", repro.compile_fortran, FORTRAN),
                                 ("C", repro.compile, C_TWIN)):
        prog = compiler(src)
        x = np.linspace(0.0, 1.0, n)
        y = np.full(n, 10.0)
        run = prog.run("daxpy", {"n": n, "a": 3.0, "x": x, "y": y},
                       machine="desktop", ngpus=2)
        results[label] = (y, run)
        print(f"{label:>8}: elapsed {run.elapsed * 1e3:.3f} ms, "
              f"kernel {prog.kernels[0].name}, "
              f"correct={bool(np.allclose(y, 3.0 * x + 10.0))}")

    fy, _ = results["Fortran"]
    cy, _ = results["C"]
    print(f"\nFortran and C outputs identical: "
          f"{bool(np.array_equal(fy, cy))}")

    print("\n=== Fortran-compiled kernel ===")
    print(repro.compile_fortran(FORTRAN).kernel_source("daxpy_L0"))


if __name__ == "__main__":
    main()
