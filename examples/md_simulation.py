#!/usr/bin/env python
"""MD example: the paper's best-scaling application.

Runs the SHOC-style Lennard-Jones force kernel on every version the
paper compares (OpenMP, hand CUDA, the proposal on 1 and 2 GPUs) and
prints the Fig. 7-style relative performance.  MD distributes both its
neighbor list and force output, needs **zero** inter-GPU communication,
and therefore scales almost linearly -- watch the GPU-GPU column stay
at exactly 0.

Run:  python examples/md_simulation.py [natoms] [maxneigh]
"""

import sys

import numpy as np

import repro
from repro.apps.cuda_baselines import md_cuda
from repro.apps.md import SPEC
from repro.cpu import run_openmp
from repro.vcuda import DESKTOP_MACHINE


def main() -> None:
    natoms = int(sys.argv[1]) if len(sys.argv) > 1 else 16384
    maxneigh = int(sys.argv[2]) if len(sys.argv) > 2 else 32
    print(f"MD: {natoms} atoms, {maxneigh} neighbors each")

    prog = repro.compile(SPEC.source)

    def fresh_args():
        return SPEC.make_args(natoms=natoms, maxneigh=maxneigh)

    # OpenMP baseline (12 threads on the desktop's Core i7).
    args = fresh_args()
    snap = SPEC.snapshot(args)
    omp = run_openmp(prog.compiled, SPEC.entry, args, DESKTOP_MACHINE)
    SPEC.check(args, snap)
    print(f"\n{'version':<14} {'time (ms)':>10} {'vs OpenMP':>10} "
          f"{'GPU-GPU (ms)':>13}")
    print(f"{'OpenMP':<14} {omp.elapsed * 1e3:>10.3f} {1.0:>10.2f} "
          f"{'-':>13}")

    # Hand-written CUDA, single GPU.
    args = fresh_args()
    snap = SPEC.snapshot(args)
    cuda = md_cuda(DESKTOP_MACHINE, args)
    SPEC.check(args, snap)
    print(f"{'CUDA(1)':<14} {cuda.elapsed * 1e3:>10.3f} "
          f"{omp.elapsed / cuda.elapsed:>10.2f} {'-':>13}")

    # The proposal on 1 and 2 GPUs -- same source, zero code changes.
    for g in (1, 2):
        args = fresh_args()
        snap = SPEC.snapshot(args)
        run = prog.run(SPEC.entry, args, machine="desktop", ngpus=g)
        SPEC.check(args, snap)
        print(f"{f'Proposal({g})':<14} {run.elapsed * 1e3:>10.3f} "
              f"{omp.elapsed / run.elapsed:>10.2f} "
              f"{run.breakdown.gpu_gpu * 1e3:>13.3f}")
        assert run.breakdown.gpu_gpu == 0.0, \
            "MD must need no inter-GPU communication"

    print("\nNote: force and the neighbor list are distribution-placed "
          "(localaccess), so each GPU loads only its block; the gathered "
          "positions stay replicated but are read-only.")


if __name__ == "__main__":
    main()
