#!/usr/bin/env python
"""BFS example: the paper's communication-bound worst case.

Level-synchronous BFS writes new frontier levels at data-dependent
vertex indices, so the `levels` array must stay replicated and every
kernel is followed by a two-level-dirty-bit propagation between GPU
memories.  On the dual-I/O-hub supercomputer node, peer transfers that
cross the QPI run at less than half the bandwidth -- which is exactly
why the paper's Fig. 8 shows BFS's GPU-GPU bucket exploding there.

This example runs BFS on both Table I machines at every GPU count and
prints the breakdown, plus the localaccess windows the data loader
computed for the CSR adjacency array (the `bounds(row[u], row[u+1]-1)`
indirect-window form).

Run:  python examples/graph_bfs.py [nverts] [avg_degree]
"""

import sys

import numpy as np

import repro
from repro.apps.bfs import SPEC, make_args


def main() -> None:
    nverts = int(sys.argv[1]) if len(sys.argv) > 1 else 20000
    deg = int(sys.argv[2]) if len(sys.argv) > 2 else 12
    prog = repro.compile(SPEC.source)

    base = make_args(nverts=nverts, avg_degree=deg)
    print(f"BFS: {nverts} vertices, {base['nedges']} edges")

    print(f"\n{'machine':<15} {'GPUs':>4} {'total ms':>9} {'KERNELS':>8} "
          f"{'CPU-GPU':>8} {'GPU-GPU':>8} {'levels':>7}")
    for machine, counts in (("desktop", (1, 2)),
                            ("supercomputer", (1, 2, 3))):
        for g in counts:
            args = make_args(nverts=nverts, avg_degree=deg)
            snap = SPEC.snapshot(args)
            run = prog.run(SPEC.entry, args, machine=machine, ngpus=g)
            SPEC.check(args, snap)
            bd = run.breakdown
            depth = int(args["levels"].max())
            print(f"{machine:<15} {g:>4} {run.elapsed * 1e3:>9.3f} "
                  f"{bd.kernels * 1e3:>8.3f} {bd.cpu_gpu * 1e3:>8.3f} "
                  f"{bd.gpu_gpu * 1e3:>8.3f} {depth:>7}")

    # Show what the compiler derived for the adjacency array: an
    # indirect per-iteration window evaluated through the host-resident
    # row pointers -- the general form of the localaccess directive.
    plan = prog.kernel("bfs_L0")
    print("\narray configuration (paper section IV-B5):")
    for name, cfg in plan.config.arrays.items():
        window = "-"
        if cfg.window is not None and cfg.window.spec is not None:
            window = cfg.window.spec.kind
        print(f"  {name:<8} placement={cfg.placement.value:<12} "
              f"writes={cfg.write_handling.value:<13} window={window}")


if __name__ == "__main__":
    main()
