#!/usr/bin/env python
"""Stencil example: halo exchange beyond the paper's three benchmarks.

The paper's section VI names stencils as the target of its future-work
multi-dimensional localaccess; the 1-D form works today.  Declaring
`stride(1, 1, 1)` -- one halo element per side -- on both ping-pong
arrays in both sweeps makes the loader cache the distribution across
sweeps and reduces all inter-GPU traffic to 4-byte boundary exchanges.

A second variant (`shift_scale`) writes through a dynamically computed
wrapping index, demonstrating the write-miss machinery: the compiler
cannot prove the destination local, so it plants per-write checks and
the runtime routes the buffered (address, value) records to the owner
GPU after the kernel.

Run:  python examples/stencil_halo.py [n] [steps]
"""

import sys

import numpy as np

import repro
from repro.apps.stencil import SHIFT_SPEC, SPEC, make_args, shift_args


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1 << 18
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    prog = repro.compile(SPEC.source)

    print(f"1-D Jacobi: n={n}, {steps} steps (= {2 * steps} sweeps)")
    print(f"\n{'GPUs':>4} {'total ms':>9} {'halo bytes':>11} "
          f"{'halo ms':>8}")
    for g in (1, 2, 3):
        machine = "desktop" if g <= 2 else "supercomputer"
        args = make_args(n=n, steps=steps)
        snap = SPEC.snapshot(args)
        run = prog.run(SPEC.entry, args, machine=machine, ngpus=g)
        SPEC.check(args, snap)
        comm = run.executor.comm
        print(f"{g:>4} {run.elapsed * 1e3:>9.3f} {comm.bytes_halo:>11} "
              f"{run.breakdown.gpu_gpu * 1e3:>8.3f}")
        assert comm.bytes_replica == 0 and comm.bytes_miss == 0

    print("\n-- write-miss variant: dst[(i + shift) % n] = ... --")
    sprog = repro.compile(SHIFT_SPEC.source)
    for g in (1, 2):
        args = shift_args(n=max(1024, n // 8), shift=n // 16 + 1)
        snap = SHIFT_SPEC.snapshot(args)
        run = sprog.run(SHIFT_SPEC.entry, args, machine="desktop", ngpus=g)
        SHIFT_SPEC.check(args, snap)
        comm = run.executor.comm
        print(f"{g} GPU(s): {comm.bytes_miss} miss-record bytes routed, "
              f"correct={True}")


if __name__ == "__main__":
    main()
