#!/usr/bin/env python
"""KMEANS example: complicated reductions with `reductiontoarray`.

The accumulation loop of k-means updates `new_centers[c*nfeatures+f]`
and `counts[c]` where `c` comes out of device memory -- stock OpenACC
cannot express this reduction, which is exactly why the paper adds the
`reductiontoarray` directive (section III-B).  The runtime gives each
GPU a private identity-initialized copy, and the communication manager
merges the partials after the kernel: KMEANS' only inter-GPU traffic.

The example also shows the data loader's reload skipping: the feature
matrix keeps the same distribution across all iterations, so after the
first load nothing moves over PCIe except the tiny merged centers.

Run:  python examples/kmeans_clustering.py [npoints] [nclusters]
"""

import sys

import numpy as np

import repro
from repro.apps.kmeans import SPEC, make_args


def main() -> None:
    npoints = int(sys.argv[1]) if len(sys.argv) > 1 else 30000
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    prog = repro.compile(SPEC.source)

    print(f"KMEANS: {npoints} points, {k} clusters")
    print(f"\n{'GPUs':>4} {'total ms':>9} {'GPU-GPU ms':>11} "
          f"{'H2D bytes':>12} {'reloads skipped':>16}")
    for g in (1, 2):
        args = make_args(npoints=npoints, nclusters=k, nfeatures=16,
                         niters=8)
        snap = SPEC.snapshot(args)
        run = prog.run(SPEC.entry, args, machine="desktop", ngpus=g)
        SPEC.check(args, snap)
        h2d = run.platform.bus.bytes_moved("h2d")
        skipped = run.executor.loader.reloads_skipped
        print(f"{g:>4} {run.elapsed * 1e3:>9.3f} "
              f"{run.breakdown.gpu_gpu * 1e3:>11.3f} {h2d:>12} "
              f"{skipped:>16}")

    # Final cluster populations, straight from the merged reduction.
    counts = args["counts"]
    print(f"\nfinal cluster sizes: {counts.tolist()} "
          f"(sum {int(counts.sum())} == {npoints})")
    assert int(counts.sum()) == npoints

    # Peek at the generated accumulation kernel: the reduction routes
    # through ctx.reduce_to_array instead of a raw store.
    src = prog.kernel_source("kmeans_L1")
    line = next(l for l in src.splitlines() if "reduce_to_array" in l)
    print(f"\ngenerated reduction call: {line.strip()}")


if __name__ == "__main__":
    main()
