#!/usr/bin/env python
"""Kernel fusion: a three-loop pipeline, before and after ``fuse=True``.

``gradpipe`` runs three adjacent parallel loops per time step:

    t[i]   = u[i+1] - u[i]          (gradient)
    s[i]   = t[i] * t[i]            (square)
    out[i] = out[i] + s[i] + t[i]/4 (accumulate)

Unfused, every step pays three kernel launches per GPU and a full
load/writeback round for the intermediates ``t`` and ``s`` between
them.  With ``CompileOptions(fuse=True)`` the compiler proves all
inter-loop dependences are same-iteration (``t[i]``/``s[i]`` consumed
exactly where they are produced), fuses the three loops into one
kernel, and demotes both intermediates to kernel-local scratch -- their
host traffic disappears entirely.

The script prints the ``repro.explain`` report for both compilations
(the fused one lists the group, the demotions, and what was elided),
then runs the app both ways on 2 GPUs and reports the measured
difference: traced transfer bytes, kernel launches, and modeled
communication seconds -- with bit-identical results.

Run:  python examples/fusion_pipeline.py [n] [steps]
"""

import sys

import numpy as np

import repro
from repro.apps.pipelines import GRADPIPE_SPEC, gradpipe_args


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1 << 16
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    plain = repro.compile(GRADPIPE_SPEC.source)
    fused = repro.compile(GRADPIPE_SPEC.source,
                          repro.CompileOptions(fuse=True))

    print("-- explain report, fuse=False --\n")
    print(plain.explain().render())
    print("\n-- explain report, fuse=True --\n")
    print(fused.explain().render())

    # One group of all three loops, both intermediates demoted.
    (group,) = fused.compiled.fusion_groups
    assert group.members == ("gradpipe_L0", "gradpipe_L1", "gradpipe_L2")
    assert sorted(d.name for d in group.demoted) == ["s", "t"]

    print(f"\n{'':>12} {'launches':>9} {'bytes':>10} {'CPU-GPU s':>11}")
    runs = {}
    for label, prog in (("fuse=False", plain), ("fuse=True", fused)):
        args = gradpipe_args(n=n, steps=steps)
        run = prog.run(GRADPIPE_SPEC.entry, args, machine="desktop",
                       ngpus=2, trace=True)
        m = run.tracer.metrics
        runs[label] = (args["out"].copy(), m.counter_total("kernel_launches"),
                       m.counter_total("transfer_bytes"),
                       run.breakdown.cpu_gpu)
        _, launches, nbytes, comm = runs[label]
        print(f"{label:>12} {int(launches):>9} {int(nbytes):>10} "
              f"{comm:>11.6f}")

    out_plain, l0, b0, c0 = runs["fuse=False"]
    out_fused, l1, b1, c1 = runs["fuse=True"]
    np.testing.assert_array_equal(out_fused, out_plain)
    assert l1 * 3 == l0 and b1 < b0 and c1 < c0
    print(f"\nbit-identical results; elided {int(b0 - b1)} transfer bytes, "
          f"{int(l0 - l1)} launches")


if __name__ == "__main__":
    main()
