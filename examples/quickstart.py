#!/usr/bin/env python
"""Quickstart: compile a single-GPU OpenACC program and run it on 1 and
2 virtual GPUs, unchanged -- the paper's core promise.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro

# A plain OpenACC program (no multi-GPU code anywhere).  The only
# additions over stock OpenACC are the paper's `localaccess` hints,
# which tell the compiler each iteration's read window so the runtime
# can *distribute* the arrays instead of replicating them.
SOURCE = r"""
void saxpy(int n, float a, float *x, float *y) {
  #pragma acc data copyin(x[0:n]) copy(y[0:n])
  {
    #pragma acc parallel
    {
      #pragma acc localaccess x[stride(1)] y[stride(1)]
      #pragma acc loop gang
      for (int i = 0; i < n; i++) {
        y[i] = a * x[i] + y[i];
      }
    }
  }
}
"""


def main() -> None:
    prog = repro.compile(SOURCE)

    print("=== generated kernel (vectorized NumPy) ===")
    print(prog.kernel_source("saxpy_L0"))

    n = 1 << 20
    for ngpus in (1, 2):
        x = np.arange(n, dtype=np.float32)
        y = np.ones(n, dtype=np.float32)
        run = prog.run("saxpy", {"n": n, "a": 2.0, "x": x, "y": y},
                       machine="desktop", ngpus=ngpus)
        ok = np.allclose(y, 2.0 * np.arange(n) + 1.0)
        bd = run.breakdown
        print(f"\n--- {ngpus} GPU(s) ---")
        print(f"correct:          {ok}")
        print(f"modeled time:     {run.elapsed * 1e3:.3f} ms")
        print(f"  kernels:        {bd.kernels * 1e3:.3f} ms")
        print(f"  host<->device:  {bd.cpu_gpu * 1e3:.3f} ms")
        print(f"  GPU<->GPU:      {bd.gpu_gpu * 1e3:.3f} ms")
        print(f"device memory:    {run.memory_high_water() / 1e6:.2f} MB "
              f"(user {run.memory_high_water('user') / 1e6:.2f} MB)")
        assert ok
        if ngpus == 2:
            print("\ntimeline (virtual time):")
            print(repro.format_timeline(run.timeline()))


if __name__ == "__main__":
    main()
