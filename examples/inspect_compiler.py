#!/usr/bin/env python
"""Compiler-internals tour: what the translator derives from a program.

Walks one annotated program through every stage the paper describes --
parsing, access analysis, array configuration information (IV-B5), the
static cost model, and the generated vectorized kernel -- and prints
each artifact.  Useful as a template for debugging your own programs.

Run:  python examples/inspect_compiler.py
"""

import numpy as np

import repro
from repro.translator.compiler import CompileOptions, compile_source

SOURCE = r"""
float wave(int n, float damp, float *prev, float *cur, float *next, int *flags) {
  float peak = 0.0f;
  #pragma acc data copyin(prev[0:n], cur[0:n], flags[0:n]) copyout(next[0:n])
  {
    #pragma acc parallel
    {
      #pragma acc localaccess cur[stride(1, 1, 1)] prev[stride(1)] next[stride(1)]
      #pragma acc loop gang reduction(max:peak)
      for (int i = 0; i < n; i++) {
        float v = 2.0f * cur[i] - prev[i];
        if (i > 0 && i < n - 1) {
          v = v + damp * (cur[i - 1] - 2.0f * cur[i] + cur[i + 1]);
        }
        if (flags[i] == 1) {
          v = 0.0f;
        }
        next[i] = v;
        peak = fmax(peak, v);
      }
    }
  }
  return peak;
}
"""


def main() -> None:
    compiled = compile_source(SOURCE, CompileOptions())
    plan = compiled.plans[0]

    print("=== kernel plan ===")
    print(f"name:        {plan.name}")
    print(f"loop var:    {plan.loop_var}")
    print(f"host scalars passed to the kernel: {plan.scalar_names}")
    print(f"scalar reductions: {plan.config.scalar_reductions}")

    print("\n=== array configuration information (section IV-B5) ===")
    hdr = f"{'array':<8} {'rw':<4} {'placement':<12} {'writes':<14} {'window'}"
    print(hdr)
    print("-" * len(hdr))
    for name, cfg in sorted(plan.config.arrays.items()):
        rw = ("r" if cfg.read else "") + ("w" if cfg.written else "")
        window = cfg.window.spec.kind if cfg.window and cfg.window.spec \
            else "-"
        print(f"{name:<8} {rw:<4} {cfg.placement.value:<12} "
              f"{cfg.write_handling.value:<14} {window}")

    print("\n=== static cost model (per-iteration work) ===")
    for label, work in plan.cost.buckets.items():
        print(f"{label}: flops={work.flops:.1f} int={work.int_ops:.1f} "
              f"coalescedB={work.coalesced_bytes:.2f} "
              f"randomB={work.random_bytes:.2f} "
              f"serialization={work.serialization:.1f}")

    print("\n=== generated vectorized kernel ===")
    print(plan.source)

    # And it runs: a quick 2-GPU execution with a reflecting boundary.
    n = 4096
    x = np.linspace(0, 4 * np.pi, n).astype(np.float32)
    prev = np.sin(x).astype(np.float32)
    cur = np.sin(x + 0.1).astype(np.float32)
    flags = np.zeros(n, dtype=np.int32)
    flags[0] = flags[-1] = 1
    args = {"n": n, "damp": 0.5, "prev": prev, "cur": cur,
            "next": np.zeros(n, dtype=np.float32), "flags": flags}
    prog = repro.AccProgram(compiled)
    run = prog.run("wave", args, machine="desktop", ngpus=2)
    print(f"=== executed on 2 GPUs: peak amplitude "
          f"{float(np.abs(args['next']).max()):.4f}, "
          f"modeled {run.elapsed * 1e6:.1f} us ===")


if __name__ == "__main__":
    main()
