#!/usr/bin/env python
"""Automatic localaccess inference: the unannotated stencil.

`stencil_halo.py` hand-annotates both ping-pong arrays with
`localaccess a[stride(1, 1, 1)]` to get distribution-based placement
and 4-byte halo exchanges.  This example strips every `localaccess`
directive from the same program and lets the compiler's inference pass
(`repro.translator.infer`) derive the windows from the affine access
analysis instead: `b[i] = f(a[i-1], a[i], a[i+1])` proves that
iteration `i` reads `a` only through `[i - 1, i + 1]`, which is
exactly `stride(1, 1, 1)`.

The script prints the `repro.explain` placement report for the
unannotated program, then asserts the inferred configuration matches
the hand annotation -- same placement, same windows -- and that both
programs produce bit-identical results with identical halo traffic on
1 and 2 GPUs.

Run:  python examples/auto_localaccess.py [n] [steps]
"""

import re
import sys

import numpy as np

import repro
from repro.apps.stencil import SPEC, make_args
from repro.translator.array_config import Placement


def strip_localaccess(source: str) -> str:
    """The same program a programmer would write without annotations."""
    return re.sub(r"^.*#pragma acc localaccess.*\n", "", source,
                  flags=re.MULTILINE)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1 << 16
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    annotated = repro.compile(SPEC.source)
    bare_source = strip_localaccess(SPEC.source)
    assert "localaccess" not in bare_source
    inferred = repro.compile(bare_source)

    print("-- repro.explain report for the UNANNOTATED program --\n")
    print(inferred.explain().render())

    # The inference pass must reach the hand annotation exactly: every
    # (loop, array) pair distributed, with the same window span.
    for plan_i, plan_a in zip(inferred.kernels, annotated.kernels):
        for name, cfg_i in plan_i.config.arrays.items():
            cfg_a = plan_a.config.arrays[name]
            assert cfg_i.placement == Placement.DISTRIBUTED, name
            assert cfg_i.placement == cfg_a.placement, name
            assert cfg_i.window_origin == "inferred", name
            assert cfg_a.window_origin == "declared", name
            assert cfg_i.inferred_span == (1, -1, 1), name
    print("\ninferred placement matches the hand annotation "
          "(stride(1, 1, 1) on every loop/array pair)")

    print(f"\n{'GPUs':>4} {'annotated halo B':>17} {'inferred halo B':>16} "
          f"{'bit-identical':>14}")
    for g in (1, 2):
        args_a = make_args(n=n, steps=steps)
        args_i = make_args(n=n, steps=steps)
        run_a = annotated.run(SPEC.entry, args_a, machine="desktop", ngpus=g)
        run_i = inferred.run(SPEC.entry, args_i, machine="desktop", ngpus=g)
        identical = all(
            np.array_equal(args_a[k], args_i[k]) for k in args_a
            if isinstance(args_a[k], np.ndarray))
        assert identical
        comm_a, comm_i = run_a.executor.comm, run_i.executor.comm
        assert comm_i.bytes_halo == comm_a.bytes_halo
        assert comm_i.bytes_replica == 0
        print(f"{g:>4} {comm_a.bytes_halo:>17} {comm_i.bytes_halo:>16} "
              f"{str(identical):>14}")


if __name__ == "__main__":
    main()
