"""Multi-GPU coherence sanitizer (opt-in correctness layer).

The runtime keeps several GPU memories coherent with four cooperating
mechanisms -- replica dirty-chunk broadcast, distributed halo refresh,
write-miss replay, and delta migration between adaptive splits.  The
sanitizer independently checks all of them while a program runs:

* a **shadow oracle** re-executes every parallel loop single-GPU
  through the scalar reference interpreter and diffs each written
  array after the communication phase, localizing the first divergent
  element to the owning GPU, dirty chunk, and transfer mechanism;
* an **invariant checker** asserts dirty-bit soundness, halo freshness
  before each launch, replica agreement, write-miss replay
  completeness, and reload-skip validity;
* a **localaccess auditor** records actual per-iteration index spans
  and flags accesses outside the declared window -- an under-declared
  range is a user-level race the paper's model cannot express.

Enable with ``AccProgram.run(..., sanitize=True)`` or the
``REPRO_SANITIZE=1`` environment variable.  Violations raise
:class:`CoherenceViolation`.  When disabled (the default) no sanitizer
object exists and the hot paths pay a single ``is None`` test.
"""

from .audit import LocalAccessAuditor
from .core import Sanitizer
from .invariants import InvariantChecker
from .oracle import ShadowOracle, global_view
from .violations import CoherenceViolation

__all__ = [
    "CoherenceViolation",
    "InvariantChecker",
    "LocalAccessAuditor",
    "Sanitizer",
    "ShadowOracle",
    "global_view",
]
