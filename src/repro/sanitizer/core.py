"""Sanitizer facade: the hooks the executor and loader call.

One :class:`Sanitizer` is created per program run (``sanitize=True``)
and threaded through :class:`~repro.runtime.context.AccExecutor` and
:class:`~repro.runtime.data_loader.DataLoader`.  Per parallel loop:

1. ``before_kernels`` -- pre-launch invariants (halo freshness,
   replica agreement), pre-kernel snapshots of dirty-tracked buffers,
   and the single-GPU shadow run (which also feeds the localaccess
   auditor);
2. ``after_kernels`` -- dirty-bit soundness, while the bits are still
   set;
3. ``after_comm`` -- replay completeness, post-communication replica
   agreement, the localaccess span verification, and the oracle diff
   of every written array and finalized scalar.

The loader additionally calls ``check_reload_skip`` whenever its
"same access pattern" fast path fires.

All state between the three phases of one loop lives in the sanitizer
(the executor runs loops strictly sequentially).  The sanitizer never
touches the virtual clock or the bus, so enabling it cannot change
modeled time -- a property the test suite pins down.
"""

from __future__ import annotations

from typing import Any

from ..runtime.data_loader import DataLoader, ManagedArray
from ..translator.array_config import ArrayConfig
from .audit import LocalAccessAuditor
from .invariants import InvariantChecker
from .oracle import OracleExpectation, ShadowOracle


class Sanitizer:
    """Opt-in coherence checking for one program run."""

    def __init__(self, loader: DataLoader,
                 rtol: float = 2e-5, atol: float = 1e-6) -> None:
        self.loader = loader
        self.oracle = ShadowOracle(loader, rtol=rtol, atol=atol)
        self.invariants = InvariantChecker(loader)
        self.auditor = LocalAccessAuditor(loader)
        #: Engine of the real run; the executor sets it on attach so the
        #: shadow pass matches the run's intra-slice visibility
        #: semantics.
        self.engine = "vector"
        #: Loops fully checked (all three phases ran).
        self.loops_checked = 0
        self._expect: OracleExpectation | None = None
        self._snapshots: dict[str, Any] = {}
        self._spans: dict[str, Any] = {}
        self._configs: dict[str, ArrayConfig] = {}

    # -- executor hooks ---------------------------------------------------------

    def before_kernels(self, plan: Any, configs: dict[str, ArrayConfig],
                       tasks: list[tuple[int, int]],
                       host_env: dict[str, Any]) -> None:
        self.invariants.check_pre_consistency(plan, configs)
        self._snapshots = self.invariants.snapshot_dirty_arrays(configs)
        hook, self._spans = self.auditor.recorder(configs)
        self._expect = self.oracle.prepare(plan, configs, tasks,
                                           host_env, access_hook=hook,
                                           engine=self.engine)
        self._configs = configs

    def after_kernels(self, plan: Any) -> None:
        self.invariants.check_dirty_soundness(plan, self._snapshots)

    def after_comm(self, plan: Any, host_env: dict[str, Any]) -> None:
        configs = self._configs
        self.invariants.check_post_coherence(plan, configs)
        self.auditor.verify(plan, configs, self._spans, host_env)
        if self._expect is not None:
            self.oracle.check(plan, configs, self._expect, host_env)
        self._expect = None
        self._snapshots = {}
        self._spans = {}
        self._configs = {}
        self.loops_checked += 1

    # -- loader hook ------------------------------------------------------------

    def check_reload_skip(self, ma: ManagedArray) -> None:
        self.invariants.check_reload_skip(ma)
