"""Runtime coherence invariants (checked around every parallel loop).

These checks are independent of the shadow oracle: they validate the
*mechanisms* (dirty bits, halo refresh, miss replay, reload skipping)
rather than the values a loop computes, so a violation here names the
broken machinery directly even when the end result happens to be
right.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..runtime.data_loader import DataLoader, ManagedArray
from ..translator.array_config import ArrayConfig, Placement, WriteHandling
from .oracle import first_mismatch, global_view
from .violations import CoherenceViolation


def _changed_mask(actual: np.ndarray, snapshot: np.ndarray) -> np.ndarray:
    """Elements whose value differs from the pre-kernel snapshot.

    NaN-aware: an element that stayed NaN did not change (plain ``!=``
    would flag every resident NaN as an unmarked write).
    """
    if np.issubdtype(actual.dtype, np.floating):
        same = (actual == snapshot) | (np.isnan(actual) & np.isnan(snapshot))
        return ~same
    return actual != snapshot


class InvariantChecker:
    """Asserts the runtime's coherence invariants for one loader."""

    def __init__(self, loader: DataLoader) -> None:
        self.loader = loader
        #: Telemetry for tests: checks executed per family.
        self.checks = {"pre": 0, "dirty": 0, "miss": 0, "replica": 0,
                       "reload_skip": 0}

    # -- before the kernels -----------------------------------------------------

    def check_pre_consistency(self, plan: Any,
                              configs: dict[str, ArrayConfig]) -> None:
        """Every resident copy agrees with the coherent global image.

        For replica placement this is replica agreement (outside dirty
        regions -- the bits are clear between loops); for distributed
        placement it is halo freshness: the halo elements of each block
        must equal the owner's primary data before the kernel may read
        them.
        """
        for name, cfg in configs.items():
            if cfg.write_handling == WriteHandling.REDUCTION:
                continue  # buffers hold the op identity, by design
            ma = self.loader._get(name)
            if not ma.valid:
                continue
            view = global_view(ma)
            for g, buf in enumerate(ma.buffers):
                if buf is None or ma.blocks[g].size == 0:
                    continue
                blk = ma.blocks[g]
                self.checks["pre"] += 1
                bad = first_mismatch(buf.data, view[blk.lo:blk.hi])
                if bad is None:
                    continue
                e = blk.lo + bad
                prim = ma.primary[g]
                if (ma.placement == Placement.DISTRIBUTED
                        and not (prim.lo <= e < prim.hi)):
                    kind, transfer = "halo-stale", "halo-refresh"
                else:
                    kind, transfer = "replica-divergence", "replica-broadcast"
                raise CoherenceViolation(
                    kind, loop=plan.name, array=name, gpu=g, lo=e, hi=e,
                    transfer=transfer,
                    detail=(f"resident copy holds {buf.data[bad]!r} but the "
                            f"coherent image holds {view[e]!r} before "
                            "launch"))

    def snapshot_dirty_arrays(
            self, configs: dict[str, ArrayConfig],
    ) -> dict[str, list[np.ndarray | None]]:
        """Pre-kernel buffer copies of every dirty-bit tracked array."""
        snaps: dict[str, list[np.ndarray | None]] = {}
        for name, cfg in configs.items():
            if cfg.write_handling != WriteHandling.DIRTY_BITS:
                continue
            ma = self.loader._get(name)
            snaps[name] = [buf.data.copy() if buf is not None else None
                           for buf in ma.buffers]
        return snaps

    # -- between the kernels and the communication phase ------------------------

    def check_dirty_soundness(
            self, plan: Any,
            snapshots: dict[str, list[np.ndarray | None]]) -> None:
        """Every changed element is marked, and every marked element's
        chunk bit is set (the two-level structure is internally sound).

        Runs after the kernels and before the communication phase
        clears the bits.
        """
        for name, snaps in snapshots.items():
            ma = self.loader._get(name)
            for g, snap in enumerate(snaps):
                buf = ma.buffers[g]
                tracker = ma.dirty[g]
                if buf is None or snap is None or tracker is None:
                    continue
                blk = ma.blocks[g]
                self.checks["dirty"] += 1
                changed = _changed_mask(buf.data, snap)
                marked = tracker.element_bits[blk.lo:blk.hi].astype(bool)
                unmarked = changed & ~marked
                if unmarked.any():
                    e = blk.lo + int(np.argmax(unmarked))
                    raise CoherenceViolation(
                        "dirty-unmarked", loop=plan.name, array=name,
                        gpu=g, lo=e, hi=e,
                        chunk=e // tracker.elems_per_chunk,
                        transfer="replica-broadcast",
                        detail=("element changed on the device but its "
                                "dirty bit is clear; the write would never "
                                "be propagated"))
                idx = np.nonzero(tracker.element_bits)[0]
                if idx.size:
                    chunks = idx // tracker.elems_per_chunk
                    missing = ~tracker.chunk_bits[chunks].astype(bool)
                    if missing.any():
                        e = int(idx[np.argmax(missing)])
                        raise CoherenceViolation(
                            "dirty-chunk-missing", loop=plan.name,
                            array=name, gpu=g, lo=e, hi=e,
                            chunk=e // tracker.elems_per_chunk,
                            transfer="replica-broadcast",
                            detail=("element bit set without its chunk "
                                    "bit; the sender's second-level scan "
                                    "would skip this write"))

    # -- after the communication phase ------------------------------------------

    def check_post_coherence(self, plan: Any,
                             configs: dict[str, ArrayConfig]) -> None:
        """Replay completeness + replica agreement after communication.

        Miss buffers must be fully drained, dirty bits cleared, and all
        resident replica copies bit-identical (the broadcast reached
        every replica).
        """
        for name, cfg in configs.items():
            ma = self.loader._get(name)
            if cfg.write_handling == WriteHandling.MISS_CHECK:
                for g, buf in enumerate(ma.miss):
                    if buf is None:
                        continue
                    self.checks["miss"] += 1
                    if buf.count:
                        raise CoherenceViolation(
                            "miss-undrained", loop=plan.name, array=name,
                            gpu=g, transfer="miss-replay",
                            detail=(f"{buf.count} write-miss records left "
                                    "after the communication phase"))
            if cfg.write_handling != WriteHandling.DIRTY_BITS:
                continue
            for g, tracker in enumerate(ma.dirty):
                if tracker is not None and tracker.any_dirty:
                    raise CoherenceViolation(
                        "dirty-uncleared", loop=plan.name, array=name,
                        gpu=g, transfer="replica-broadcast",
                        detail="dirty bits survive the communication phase")
            if ma.placement != Placement.REPLICA:
                continue  # demoted arrays hold different blocks
            reference: np.ndarray | None = None
            ref_gpu = -1
            for g, buf in enumerate(ma.buffers):
                if buf is None or ma.blocks[g].size == 0:
                    continue
                if reference is None:
                    reference, ref_gpu = buf.data, g
                    continue
                self.checks["replica"] += 1
                bad = first_mismatch(buf.data, reference)
                if bad is not None:
                    e = ma.blocks[g].lo + bad
                    raise CoherenceViolation(
                        "replica-divergence", loop=plan.name, array=name,
                        gpu=g, lo=e, hi=e,
                        transfer="replica-broadcast",
                        detail=(f"gpu {g} holds {buf.data[bad]!r} but gpu "
                                f"{ref_gpu} holds {reference[bad]!r} after "
                                "the communication phase"))

    # -- loader fast path --------------------------------------------------------

    def check_reload_skip(self, ma: ManagedArray) -> None:
        """A skipped reload is only sound when the resident copies
        already equal the coherent global image (same placement *and*
        same data -- e.g. not stale after an adaptive placement
        switch)."""
        view = global_view(ma)
        for g, buf in enumerate(ma.buffers):
            if buf is None or ma.blocks[g].size == 0:
                continue
            blk = ma.blocks[g]
            self.checks["reload_skip"] += 1
            bad = first_mismatch(buf.data, view[blk.lo:blk.hi])
            if bad is not None:
                e = blk.lo + bad
                raise CoherenceViolation(
                    "stale-reload-skip", array=ma.name, gpu=g, lo=e, hi=e,
                    transfer="reload-skip",
                    detail=(f"the loader skipped a reload but gpu {g} "
                            f"holds {buf.data[bad]!r} where the coherent "
                            f"image holds {view[e]!r}"))
