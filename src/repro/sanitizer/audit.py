"""``localaccess`` window auditor.

The paper's distribution-based placement trusts the programmer's
``localaccess`` declaration: each GPU loads only the declared
per-iteration read window (plus halo) of a distributed array.  An
*under-declared* window is a user-level race the model cannot express
-- iteration ``i`` reads an element its GPU never loaded, and on real
hardware gets stale or unmapped memory.

The auditor rides on the shadow oracle's interpreter pass: a hook on
every scalar array access records the actual per-iteration index span,
and :meth:`LocalAccessAuditor.verify` re-evaluates the declared bounds
(``stride(s, l, r)`` -> ``s*i - l .. s*(i+1) - 1 + r``, plus the
range/bounds forms) for each recorded iteration.  Any access outside
the declared window raises :class:`CoherenceViolation` naming the
loop, array, and offending index range.
"""

from __future__ import annotations

from typing import Any, Callable

from ..runtime.data_loader import DataLoader
from ..runtime.partition import make_window_evaluator
from ..translator.array_config import ArrayConfig, Placement, WriteHandling
from .violations import CoherenceViolation

#: spans: array name -> iteration -> [min index, max index] accessed.
Spans = dict[str, dict[int, list[int]]]


def audited_windows(configs: dict[str, ArrayConfig]) -> dict[str, str]:
    """Arrays the auditor checks in one loop: name -> window origin.

    Two kinds of active window are audited, with distinct violation
    kinds so the report names the right culprit:

    * ``"declared"`` -- a user ``localaccess`` directive (other than
      ``all``, which keeps replica placement and cannot race).  A
      violation is a *user error* (``localaccess-underdeclared``).
    * ``"inferred"`` -- a window the inference pass adopted.  A
      violation is a *compiler bug* (``localaccess-inference-unsound``):
      inference promised the window covers every access.

    The adaptive advisor's replica demotion candidates
    (``cfg.inferred_window`` on REPLICA arrays) are not audited: the
    array is replicated, every GPU holds all of it, and no read can
    miss.  ``repro.explain`` uses this same predicate to report which
    placements a sanitized run cross-checks.
    """
    out: dict[str, str] = {}
    for name, cfg in configs.items():
        if cfg.placement != Placement.DISTRIBUTED or cfg.window is None:
            continue
        if cfg.window.spec is not None and cfg.window.spec.kind == "all":
            continue
        out[name] = cfg.window.origin
    return out


class LocalAccessAuditor:
    """Records and validates actual access spans per iteration."""

    def __init__(self, loader: DataLoader) -> None:
        self.loader = loader
        #: Telemetry: (loop, array) pairs audited.
        self.audited = 0

    def recorder(self, configs: dict[str, ArrayConfig],
                 ) -> tuple[Callable[..., None] | None, Spans]:
        """Build the access hook for one loop's shadow run.

        Every active distribution window is audited -- user-declared
        *and* compiler-inferred (see :func:`audited_windows`); a
        too-narrow inferred window is an inference-pass bug and must
        surface in sanitized runs, not silently read stale halo.  Write
        misses on miss-checked arrays are legal (the runtime replays
        them), so their writes are exempt; reads never are.
        """
        targets = set(audited_windows(configs))
        if not targets:
            return None, {}
        miss_exempt = {
            name for name in targets
            if configs[name].write_handling == WriteHandling.MISS_CHECK
        }
        spans: Spans = {name: {} for name in targets}

        def hook(name: str, iteration: int | None, idx: int,
                 kind: str) -> None:
            if name not in spans or iteration is None:
                return
            if kind == "w" and name in miss_exempt:
                return
            per_iter = spans[name]
            cur = per_iter.get(iteration)
            if cur is None:
                per_iter[iteration] = [idx, idx]
            elif idx < cur[0]:
                cur[0] = idx
            elif idx > cur[1]:
                cur[1] = idx

        return hook, spans

    def verify(self, plan: Any, configs: dict[str, ArrayConfig],
               spans: Spans, host_env: dict[str, Any]) -> None:
        """Check every recorded span against the declared window."""
        if not any(spans.values()):
            return
        host_arrays = {n: m.host for n, m in self.loader.arrays.items()}
        evaluate = make_window_evaluator(plan.loop_var, dict(host_env),
                                         host_arrays)
        for name, per_iter in spans.items():
            if not per_iter:
                continue
            window = configs[name].window
            assert window is not None
            self.audited += 1
            for it in sorted(per_iter):
                mn, mx = per_iter[it]
                lo = evaluate(window.lower, it)
                hi = evaluate(window.upper, it)
                if mn < lo or mx > hi:
                    if window.origin == "inferred":
                        raise CoherenceViolation(
                            "localaccess-inference-unsound", loop=plan.name,
                            array=name, lo=mn, hi=mx,
                            detail=(f"iteration {it} accessed [{mn}, {mx}] "
                                    f"but the compiler-inferred localaccess "
                                    f"window is [{lo}, {hi}]; this is an "
                                    "inference-pass bug, not a user error "
                                    "-- please report it"))
                    raise CoherenceViolation(
                        "localaccess-underdeclared", loop=plan.name,
                        array=name, lo=mn, hi=mx,
                        detail=(f"iteration {it} accessed [{mn}, {mx}] but "
                                f"the declared localaccess window is "
                                f"[{lo}, {hi}]; under-declared windows are "
                                "a race under distribution-based "
                                "placement"))
