"""Single-GPU shadow oracle.

Before the real (multi-GPU) kernels of a parallel loop run, the oracle
re-executes the loop against private full-length copies of every array
in one address space, using the scalar reference interpreter in
permissive mode -- i.e. the semantics the partitioned execution must
reproduce without any of the partitioning, dirty-bit tracking or
write-miss machinery.  After the runtime's communication phase
the oracle diffs every written array against its expectation and
localizes the first divergent element to the GPU holding it, the dirty
chunk containing it, and the transfer mechanism that should have
carried it.

The oracle re-seeds from the *actual* device state before every loop
(:func:`global_view`), so divergence never accumulates across loops:
each report points at the loop that broke coherence.

The shadow run follows the paper's BSP contract, not a fully
sequential one: each GPU's task slice executes sequentially against
its own copy of the loop-entry coherent state (writes of other slices
are invisible until the communication phase), and the per-slice
effects merge afterwards.  This matters for programs like BFS, where
an iteration's work depends on whether it already sees another
iteration's write to a shared array: a fully sequential oracle would
demand cross-slice visibility the multi-GPU model never promises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..runtime.comm import _combine
from ..runtime.data_loader import DataLoader, ManagedArray
from ..runtime.kernelctx import KernelContext
from ..runtime.partition import owner_of
from ..translator.array_config import ArrayConfig, Placement, WriteHandling
from ..translator.interpreter import InterpError
from ..translator.kernel_support import red_fold, red_identity
from .violations import CoherenceViolation


def global_view(ma: ManagedArray) -> np.ndarray:
    """Assemble the coherent full-length image of one managed array.

    When the device copies are ahead of the host, the freshest value of
    each element lives on the device: the first resident replica for
    replica placement (replicas are coherent between loops), the owner
    primaries for distributed placement.  Otherwise the staging image
    (the OpenACC region-entry snapshot, refreshed by ``update device``)
    is authoritative.
    """
    out = ma.staging.copy()
    if not ma.valid or not ma.device_ahead or ma.placement is None:
        return out
    if ma.placement == Placement.REPLICA:
        for g, buf in enumerate(ma.buffers):
            if buf is not None and ma.blocks[g].size:
                blk = ma.blocks[g]
                out[blk.lo:blk.hi] = buf.data
                break
    else:
        for g, buf in enumerate(ma.buffers):
            if buf is None:
                continue
            prim = ma.primary[g].intersect(ma.blocks[g])
            if prim.size:
                lo = prim.lo - ma.blocks[g].lo
                out[prim.lo:prim.hi] = buf.data[lo:lo + prim.size]
    return out


def _changed(after: np.ndarray, before: np.ndarray) -> np.ndarray:
    """Element mask of NaN-aware differences between two same-shape arrays."""
    if np.issubdtype(after.dtype, np.floating):
        same = (after == before) | (np.isnan(after) & np.isnan(before))
    else:
        same = after == before
    return ~same


def first_mismatch(actual: np.ndarray, expected: np.ndarray) -> int | None:
    """Index of the first exact mismatch (NaN == NaN); None when equal."""
    if actual.size == 0:
        return None
    if np.issubdtype(actual.dtype, np.floating):
        same = (actual == expected) | (np.isnan(actual) & np.isnan(expected))
    else:
        same = actual == expected
    bad = ~same
    if not bad.any():
        return None
    return int(np.argmax(bad))


def first_divergence(actual: np.ndarray, expected: np.ndarray,
                     rtol: float, atol: float) -> int | None:
    """Index of the first out-of-tolerance element; None when close.

    Floats compare with ``isclose`` (NaN matches NaN: both engines may
    legitimately produce one), everything else exactly -- integer
    arithmetic has no rounding latitude.
    """
    if actual.size == 0:
        return None
    if np.issubdtype(actual.dtype, np.floating):
        ok = np.isclose(actual, expected, rtol=rtol, atol=atol,
                        equal_nan=True)
    else:
        ok = actual == expected
    bad = ~ok
    if not bad.any():
        return None
    return int(np.argmax(bad))


def transfer_for(cfg: ArrayConfig, ma: ManagedArray, gpu: int,
                 element: int) -> str:
    """Name the mechanism that should have delivered ``element`` to
    ``gpu``'s copy -- the localization the diagnostics report."""
    prim = ma.primary[gpu] if gpu < len(ma.primary) else None
    in_primary = prim is not None and prim.lo <= element < prim.hi
    if cfg.write_handling == WriteHandling.DIRTY_BITS:
        if ma.placement == Placement.DISTRIBUTED:
            return "local-store" if in_primary else "windowed-propagation"
        return "replica-broadcast"
    if cfg.write_handling == WriteHandling.MISS_CHECK:
        if not in_primary:
            return "halo-refresh"
        owner = int(owner_of(np.array([element], dtype=np.int64),
                             ma.primary)[0])
        return "local-store" if owner == gpu else "miss-replay"
    if cfg.write_handling == WriteHandling.LOCAL_PROVEN:
        return "local-store" if in_primary else "halo-refresh"
    if cfg.write_handling == WriteHandling.REDUCTION:
        return "reduction-merge"
    return "none"


@dataclass
class OracleExpectation:
    """What one loop must have produced, per the single-GPU shadow run."""

    loop: str
    #: Expected full-length post-communication contents, written arrays.
    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    #: Expected finalized scalar-reduction values.
    scalars: dict[str, Any] = field(default_factory=dict)
    #: Recorded per-iteration access spans (attached by the auditor).
    spans: dict[str, dict[int, list[int]]] = field(default_factory=dict)


class ShadowOracle:
    """Re-executes each loop single-GPU and diffs the multi-GPU result."""

    def __init__(self, loader: DataLoader,
                 rtol: float = 2e-5, atol: float = 1e-6) -> None:
        self.loader = loader
        self.rtol = rtol
        self.atol = atol
        #: Telemetry: loops shadow-executed / elements compared.
        self.loops_run = 0
        self.elements_compared = 0

    # -- shadow execution -----------------------------------------------------

    def _shadow_context(self, plan: Any, configs: dict[str, ArrayConfig],
                        pre: dict[str, np.ndarray], host_env: dict[str, Any],
                        t0: int, t1: int) -> KernelContext:
        """One slice's shadow context: full arrays, base 0, private
        copies of everything the loop writes."""
        scalars = {n: host_env[n] for n in plan.scalar_names
                   if n in host_env}
        ctx = KernelContext(device_index=-1, i0=t0, i1=t1,
                            scalars=scalars, permissive=True)
        for name, cfg in configs.items():
            ctx.base[name] = 0
            if cfg.write_handling == WriteHandling.REDUCTION:
                identity = red_identity(cfg.reduction_op or "+")
                shadow = np.empty_like(pre[name])
                shadow.fill(identity)
                ctx.reduction_arrays[name] = shadow
                # Reads of a reduction destination see the identity-
                # filled private copy, as on the real devices.
                ctx.arrays[name] = shadow
            elif cfg.write_handling == WriteHandling.NONE:
                ctx.arrays[name] = pre[name]
            else:
                ctx.arrays[name] = pre[name].copy()
        return ctx

    def prepare(self, plan: Any, configs: dict[str, ArrayConfig],
                tasks: list[tuple[int, int]], host_env: dict[str, Any],
                access_hook: Any = None,
                engine: str = "vector") -> OracleExpectation:
        """Shadow-execute the loop, one pass per task slice.

        Each slice runs against its own copy of the loop-entry coherent
        state (BSP semantics: other slices' writes become visible only
        at the communication phase); the per-slice effects then merge in
        ascending GPU order, exactly as the runtime applies them.  The
        shadow uses the *same engine* as the real run, so the
        expectation carries the engine's intra-slice visibility
        semantics -- programs with benign races (BFS's ``changed``
        counter) would otherwise diverge spuriously.  Engine-vs-
        interpreter equivalence is the differential tests' job, not the
        sanitizer's.

        ``access_hook`` (the localaccess auditor's recorder) sees every
        scalar array access of a dedicated interpreter pass; under
        ``engine='interp'`` the expectation pass doubles as it.
        """
        interp = getattr(plan, "interp", None)
        if interp is None:
            raise CoherenceViolation(
                "oracle-unavailable", loop=plan.name,
                detail="kernel plan carries no reference interpreter")
        # Loop-entry coherent image of every array, and -- for reduction
        # destinations -- the host values the merge combines with
        # (OpenACC reduction semantics), not the staging image.
        pre: dict[str, np.ndarray] = {}
        pre_host: dict[str, np.ndarray] = {}
        for name, cfg in configs.items():
            ma = self.loader._get(name)
            pre[name] = global_view(ma)
            if cfg.write_handling == WriteHandling.REDUCTION:
                pre_host[name] = np.asarray(ma.host).copy()
        contexts: list[KernelContext] = []
        for g, (t0, t1) in enumerate(tasks):
            ctx = self._shadow_context(plan, configs, pre, host_env, t0, t1)
            try:
                if engine == "interp":
                    ctx.access_hook = access_hook
                    interp.run(ctx)
                else:
                    plan.execute(ctx, engine)
                    if access_hook is not None:
                        # Audit spans come from the scalar interpreter
                        # (the only engine with per-access attribution);
                        # its writes land in throwaway copies.
                        audit_ctx = self._shadow_context(
                            plan, configs, pre, host_env, t0, t1)
                        audit_ctx.access_hook = access_hook
                        interp.run(audit_ctx)
            except InterpError as e:
                raise CoherenceViolation(
                    "oracle-failure", loop=plan.name, gpu=g,
                    detail=f"shadow execution of slice [{t0}, {t1}) "
                           f"failed: {e}") from e
            contexts.append(ctx)
        expect = OracleExpectation(loop=plan.name)
        for name, cfg in configs.items():
            if cfg.write_handling == WriteHandling.NONE:
                continue
            ma = self.loader._get(name)
            if cfg.write_handling == WriteHandling.REDUCTION:
                merged = pre_host[name]
                for ctx in contexts:
                    merged = _combine(cfg.reduction_op or "+", merged,
                                      ctx.reduction_arrays[name])
                expect.arrays[name] = merged.astype(ma.host.dtype,
                                                    copy=False)
            else:
                expected = pre[name].copy()
                for ctx in contexts:
                    mask = _changed(ctx.arrays[name], pre[name])
                    if mask.any():
                        expected[mask] = ctx.arrays[name][mask]
                expect.arrays[name] = expected
        ops: dict[str, str] = {}
        for ctx in contexts:
            ops.update(ctx.scalar_ops)
        for name, op in ops.items():
            # Mirror finalize_scalar_reductions: fold the per-GPU
            # partials in GPU order, then fold in the host initial.
            acc: Any = red_identity(op)
            for ctx in contexts:
                if name in ctx.scalar_results:
                    acc = red_fold(op, acc,
                                   np.asarray(ctx.scalar_results[name]),
                                   None, 1)
            initial = host_env.get(name)
            if initial is None:
                continue
            final = red_fold(op, acc, np.asarray(initial), None, 1)
            if isinstance(initial, (int, np.integer)) and op not in ("max",
                                                                     "min"):
                final = int(final)
            elif isinstance(initial, (int, np.integer)):
                final = int(final) if float(final) == int(final) else final
            expect.scalars[name] = final
        self.loops_run += 1
        return expect

    # -- post-communication diff ----------------------------------------------

    def check(self, plan: Any, configs: dict[str, ArrayConfig],
              expect: OracleExpectation,
              host_env: dict[str, Any]) -> None:
        """Diff every written array (and finalized scalar) against the
        oracle; raise on the first divergent element, localized."""
        for name, expected in expect.arrays.items():
            cfg = configs[name]
            ma = self.loader._get(name)
            for g, buf in enumerate(ma.buffers):
                if buf is None or ma.blocks[g].size == 0:
                    continue
                blk = ma.blocks[g]
                exp_slice = expected[blk.lo:blk.hi]
                self.elements_compared += int(blk.size)
                bad = first_divergence(buf.data, exp_slice,
                                       self.rtol, self.atol)
                if bad is None:
                    continue
                e = blk.lo + bad
                self._raise_divergence(plan, cfg, ma, g, e,
                                       expected[e], buf.data[bad])
            if cfg.write_handling == WriteHandling.REDUCTION:
                # The merge also lands in the host copy immediately.
                bad = first_divergence(np.asarray(ma.host), expected,
                                       self.rtol, self.atol)
                if bad is not None:
                    self._raise_divergence(
                        plan, cfg, ma, None, bad, expected[bad],
                        np.asarray(ma.host)[bad])
        for name, expected in expect.scalars.items():
            actual = host_env.get(name)
            if actual is None:
                continue
            if isinstance(expected, (int, np.integer)) \
                    and isinstance(actual, (int, np.integer)):
                ok = int(actual) == int(expected)
            else:
                ok = bool(np.isclose(float(actual), float(expected),
                                     rtol=self.rtol, atol=self.atol,
                                     equal_nan=True))
            if not ok:
                raise CoherenceViolation(
                    "scalar-divergence", loop=plan.name, array=name,
                    transfer="scalar-reduction",
                    detail=f"expected {expected!r}, got {actual!r}")

    def _raise_divergence(self, plan: Any, cfg: ArrayConfig,
                          ma: ManagedArray, gpu: int | None, element: int,
                          expected: Any, actual: Any) -> None:
        elems_per_chunk = max(1, self.loader.chunk_bytes // ma.itemsize)
        owner = int(owner_of(np.array([element], dtype=np.int64),
                             ma.primary)[0]) if ma.primary else gpu
        transfer = (transfer_for(cfg, ma, gpu, element)
                    if gpu is not None else "reduction-merge")
        where = (f"on gpu {gpu}" if gpu is not None
                 else "in the host copy")
        raise CoherenceViolation(
            "result-divergence", loop=plan.name, array=cfg.name,
            gpu=gpu, lo=element, hi=element,
            chunk=element // elems_per_chunk, transfer=transfer,
            detail=(f"expected {expected!r}, got {actual!r} {where}; "
                    f"owner gpu {owner}"))
