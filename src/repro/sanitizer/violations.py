"""Structured coherence diagnostics.

Every sanitizer check reports through one exception type carrying the
full localization -- which loop, which array, which GPU, which element
range, which dirty chunk, and which transfer mechanism should have
carried the data.  Tests and users match on the attributes; the
formatted message is for humans.
"""

from __future__ import annotations


class CoherenceViolation(RuntimeError):
    """A multi-GPU coherence invariant failed.

    Attributes mirror the constructor arguments; unknown localizations
    stay ``None``.  ``kind`` is one of the stable identifiers listed in
    ``docs/SANITIZER.md`` (e.g. ``result-divergence``,
    ``dirty-unmarked``, ``localaccess-underdeclared``).
    """

    def __init__(
        self,
        kind: str,
        loop: str = "",
        array: str | None = None,
        gpu: int | None = None,
        lo: int | None = None,
        hi: int | None = None,
        chunk: int | None = None,
        transfer: str | None = None,
        detail: str = "",
    ) -> None:
        self.kind = kind
        self.loop = loop
        self.array = array
        self.gpu = gpu
        self.lo = lo
        self.hi = hi
        self.chunk = chunk
        self.transfer = transfer
        self.detail = detail
        parts = [f"[{kind}]"]
        if loop:
            parts.append(f"loop {loop!r}")
        if array is not None:
            parts.append(f"array {array!r}")
        if gpu is not None:
            parts.append(f"gpu {gpu}")
        if lo is not None:
            parts.append(f"elements [{lo}, {hi if hi is not None else lo}]")
        if chunk is not None:
            parts.append(f"chunk {chunk}")
        if transfer is not None:
            parts.append(f"via {transfer}")
        msg = "coherence violation " + " ".join(parts)
        if detail:
            msg += f": {detail}"
        super().__init__(msg)
