"""repro: a reproduction of "Integrating Multi-GPU Execution in an
OpenACC Compiler" (Komoda, Miwa, Nakamura, Maruyama -- ICPP 2013).

The package implements the paper's full stack:

* :mod:`repro.frontend` -- C-subset + OpenACC frontend, including the
  paper's ``localaccess`` and ``reductiontoarray`` directive extensions;
* :mod:`repro.translator` -- the translator: vectorized NumPy kernel
  code generation, dirty-bit/write-miss instrumentation, array
  configuration information, automatic ``localaccess`` inference,
  static cost analysis, host execution;
* :mod:`repro.runtime` -- the multi-GPU runtime: data loader with
  replica/distribution placement, two-level dirty-bit inter-GPU
  communication manager, write-miss routing, hierarchical reductions;
* :mod:`repro.vcuda` -- the virtual CUDA platform (devices, PCIe bus,
  virtual clock) standing in for the paper's 2-GPU desktop and 3-GPU
  TSUBAME2.0 node;
* :mod:`repro.cpu` -- the OpenMP baseline executor;
* :mod:`repro.apps` -- the paper's benchmarks (MD, KMEANS, BFS) in
  OpenACC C, with input generators and NumPy references;
* :mod:`repro.bench` -- the harness regenerating the paper's tables
  and figures;
* :mod:`repro.explain` -- per-loop, per-array placement reports
  (declared vs inferred vs replica; also
  ``python -m repro.explain``).
"""

from .api import (AccProgram, ProgramRun, TimelineEvent, compile,
                  compile_fortran, format_timeline)
from .sanitizer import CoherenceViolation
from .translator.compiler import CompileError, CompileOptions
from .vcuda.specs import (CLUSTERS, DESKTOP_MACHINE, MACHINES,
                          SUPERCOMPUTER_NODE, TSUBAME_CLUSTER, cluster_of)

__version__ = "1.0.0"

__all__ = [
    "compile",
    "compile_fortran",
    "AccProgram",
    "ProgramRun",
    "TimelineEvent",
    "format_timeline",
    "CompileOptions",
    "CompileError",
    "CoherenceViolation",
    "MACHINES",
    "CLUSTERS",
    "DESKTOP_MACHINE",
    "SUPERCOMPUTER_NODE",
    "TSUBAME_CLUSTER",
    "cluster_of",
    "__version__",
]
