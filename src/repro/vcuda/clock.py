"""Virtual time base for the simulated CUDA platform.

Every component of the virtual platform (devices, the PCIe bus, the
host CPU model) advances a shared :class:`VirtualClock` instead of
reading wall-clock time.  Benchmarks therefore report *modeled* time:
deterministic, hardware-independent, and directly comparable between
program versions, which is what the paper's Figures 7-9 require.

The clock supports hierarchical *categories* so the profiler can split
total time into the paper's Fig. 8 buckets (``KERNELS``, ``CPU-GPU``,
``GPU-GPU``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

#: Clock observer signature: ``(start, seconds, category, charged)``.
#: ``seconds`` is exactly the delta accumulated, so an observer summing
#: them per category reproduces :attr:`VirtualClock.categories` bit for
#: bit -- the tracing subsystem's Fig. 8 reconciliation relies on this.
ClockObserver = Callable[[float, float, "str | None", bool], None]


@dataclass
class VirtualClock:
    """A monotonically advancing simulated clock.

    Time is kept in seconds as a float.  Components call
    :meth:`advance` for serialized work and :meth:`advance_to` when an
    asynchronous operation completes at a known absolute time.
    """

    now: float = 0.0
    #: Total advanced time per category label (seconds).
    categories: dict[str, float] = field(default_factory=dict)
    #: Optional pure observer of every attribution (tracing).  Called
    #: after the accumulators update; must not touch the clock.
    observer: ClockObserver | None = field(default=None, repr=False,
                                           compare=False)

    def advance(self, seconds: float, category: str | None = None) -> float:
        """Advance the clock by ``seconds`` and return the new time.

        ``seconds`` must be non-negative; a negative advance indicates a
        bug in a cost model and raises ``ValueError``.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds!r}")
        start = self.now
        self.now += seconds
        if category is not None:
            self.categories[category] = self.categories.get(category, 0.0) + seconds
        if self.observer is not None and seconds > 0:
            self.observer(start, seconds, category, False)
        return self.now

    def advance_to(self, timestamp: float, category: str | None = None) -> float:
        """Advance the clock to ``timestamp`` if it is in the future.

        Used when waiting on asynchronous operations: waiting on an
        event that already completed costs nothing.
        """
        if timestamp > self.now:
            start = self.now
            delta = timestamp - self.now
            self.now = timestamp
            if category is not None:
                self.categories[category] = self.categories.get(category, 0.0) + delta
            if self.observer is not None:
                self.observer(start, delta, category, False)
        return self.now

    def charge(self, seconds: float, category: str) -> None:
        """Attribute ``seconds`` to ``category`` without moving the clock.

        Used for work that overlapped with already-accounted time (e.g.
        concurrent transfers whose union was charged via
        :meth:`advance_to`).
        """
        if seconds < 0:
            raise ValueError(f"cannot charge negative time {seconds!r}")
        self.categories[category] = self.categories.get(category, 0.0) + seconds
        if self.observer is not None and seconds > 0:
            self.observer(self.now, seconds, category, True)

    def elapsed_in(self, category: str) -> float:
        """Total seconds attributed to ``category`` so far."""
        return self.categories.get(category, 0.0)

    def reset(self) -> None:
        """Zero the clock and all category accumulators."""
        self.now = 0.0
        self.categories.clear()
