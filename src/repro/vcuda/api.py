"""The virtual CUDA platform facade.

:class:`Platform` bundles the devices, the PCIe bus, the clock, and the
profiler of one machine, and exposes a CUDA-flavoured API:

* ``malloc`` / ``free`` -- device allocations (byte-accounted),
* ``memcpy_h2d`` / ``memcpy_d2h`` / ``memcpy_p2p`` -- data movement that
  both performs the copy (NumPy) and reserves link time on the bus,
* ``launch`` / ``sync_devices`` -- kernel execution with inter-device
  concurrency: kernels launched on different GPUs before a sync overlap
  in virtual time, exactly like CUDA kernels issued from one host
  thread onto several devices.

Hand-written baseline programs (the paper's "CUDA" version) are written
directly against this class; the OpenACC runtime sits on top of it.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .bus import (
    Bus,
    CATEGORY_CPU_GPU,
    CATEGORY_GPU_GPU,
    CATEGORY_GPU_GPU_OVERLAPPED,
    CATEGORY_KERNELS,
    CATEGORY_NET,
    CATEGORY_NET_OVERLAPPED,
    Transfer,
)
from .clock import VirtualClock
from .device import Device, KernelWork, LaunchConfig
from .memory import DeviceBuffer
from .profiler import Profiler
from .specs import ClusterSpec, MachineSpec


class Platform:
    """One machine instance: devices + bus + clock + profiler."""

    def __init__(self, machine: MachineSpec | ClusterSpec,
                 ngpus: int | None = None) -> None:
        if ngpus is None:
            ngpus = machine.gpu_count
        if not (1 <= ngpus <= machine.gpu_count):
            raise ValueError(
                f"{machine.name} has {machine.gpu_count} GPUs; requested {ngpus}"
            )
        self.machine = machine
        self.clock = VirtualClock()
        self.devices = [Device(i, spec)
                        for i, spec in enumerate(machine.gpu_specs[:ngpus])]
        self.bus = Bus(machine, self.clock)
        self.profiler = Profiler(self.clock, ngpus=ngpus)

    @property
    def ngpus(self) -> int:
        return len(self.devices)

    @property
    def node_count(self) -> int:
        """Nodes actually holding active devices.  Device indices are a
        contiguous prefix of the machine's GPUs and ``node_of`` is
        monotone, so the last device's node bounds the active set."""
        return self.machine.node_of(self.ngpus - 1) + 1

    def node_of(self, device: int) -> int:
        return self.machine.node_of(device)

    def node_devices(self, node: int) -> range:
        """Active device indices hosted on ``node``."""
        lo, hi = self.machine.node_gpu_range(node)
        return range(lo, min(hi, self.ngpus))

    def device(self, index: int) -> Device:
        return self.devices[index]

    # -- memory ---------------------------------------------------------------

    def malloc(
        self,
        device: int,
        name: str,
        shape: int | tuple[int, ...],
        dtype: np.dtype | type = np.float32,
        purpose: str = "user",
        base: int = 0,
        fill: float | int | None = None,
    ) -> DeviceBuffer:
        return self.devices[device].memory.alloc(
            name, shape, dtype, purpose=purpose, base=base, fill=fill
        )

    def free(self, buf: DeviceBuffer) -> None:
        self.devices[buf.device_index].memory.free(buf)

    # -- data movement (copy + timed) ------------------------------------------

    def memcpy_h2d(
        self, buf: DeviceBuffer, host: np.ndarray, *, asynchronous: bool = False
    ) -> Transfer:
        """Copy ``host`` into the device buffer; reserves H2D link time."""
        buf.check_alive()
        np.copyto(buf.data, host)
        t = self.bus.h2d(buf.device_index, int(host.nbytes))
        if not asynchronous:
            self.bus.sync()
        return t

    def memcpy_d2h(
        self, host: np.ndarray, buf: DeviceBuffer, *, asynchronous: bool = False
    ) -> Transfer:
        """Copy the device buffer into ``host``; reserves D2H link time."""
        buf.check_alive()
        np.copyto(host, buf.data)
        t = self.bus.d2h(buf.device_index, int(buf.nbytes))
        if not asynchronous:
            self.bus.sync()
        return t

    def memcpy_p2p(
        self,
        dst: DeviceBuffer,
        src: DeviceBuffer,
        nbytes: int | None = None,
        *,
        dst_slice: slice | np.ndarray | None = None,
        src_slice: slice | np.ndarray | None = None,
        asynchronous: bool = True,
    ) -> Transfer:
        """Direct GPU-to-GPU copy (optionally of a sub-range)."""
        dst.check_alive()
        src.check_alive()
        src_view = src.data if src_slice is None else src.data[src_slice]
        if dst_slice is None:
            np.copyto(dst.data, src_view)
        else:
            dst.data[dst_slice] = src_view
        moved = int(src_view.nbytes) if nbytes is None else nbytes
        t = self.bus.p2p(src.device_index, dst.device_index, moved)
        if not asynchronous:
            self.bus.sync()
        return t

    # -- kernels ----------------------------------------------------------------

    def launch(
        self,
        device: int,
        kernel_name: str,
        fn: Callable[..., None],
        args: Sequence[object],
        work: KernelWork,
        config: LaunchConfig,
    ) -> float:
        """Execute ``fn(*args)`` on ``device`` and reserve compute time.

        The data effects happen immediately (NumPy executes now); the
        *time* is queued on the device so that kernels launched on other
        devices before :meth:`sync_devices` overlap.  Returns the
        modeled duration in seconds.
        """
        dev = self.devices[device]
        fn(*args)
        seconds = dev.kernel_time(work, config)
        start = max(dev.busy_until, self.clock.now)
        rec = dev.record_launch(kernel_name, work, config, seconds)
        rec.start = start
        dev.busy_until = start + seconds
        return seconds

    def sync_devices(self, category: str = CATEGORY_KERNELS) -> float:
        """Host-side ``cudaDeviceSynchronize`` over all devices.

        Advances the clock to the latest ``busy_until``; the wall time is
        attributed to ``category`` (kernels, by default).
        """
        latest = max((d.busy_until for d in self.devices), default=self.clock.now)
        before = self.clock.now
        self.clock.advance_to(latest, category)
        return self.clock.now - before

    # -- overlapped-communication accounting ------------------------------------

    def enable_overlap_accounting(self) -> None:
        """Route bus waits through :meth:`timeline_advance`.

        The async communication layer leaves GPU-GPU transfers in
        flight across synchronization points; plain ``advance_to``
        would charge whole waits to one bucket.  With this enabled,
        every wait is split into kernel / exposed-comm / hidden-comm
        segments.
        """
        self.bus.advancer = self.timeline_advance

    def timeline_advance(self, target: float,
                         idle_category: str | None = None) -> float:
        """Advance the clock to ``target``, attributing each sub-interval
        to what the platform was doing during it.

        Priority per segment: a kernel running on any device wins
        (``KERNELS``); otherwise an active transfer's bucket; otherwise
        ``idle_category``.  Peer transfers active under a kernel
        segment are additionally charged to the *hidden* bucket
        (:data:`CATEGORY_GPU_GPU_OVERLAPPED`) without moving the clock:
        that is the "overlapped vs exposed" split Fig. 8's GPU-GPU bar
        relies on.  Finished transfers are retired.  Returns the
        seconds advanced.
        """
        clock = self.clock
        now = clock.now
        if target <= now:
            self.bus.retire()
            return 0.0
        kernel_iv: list[tuple[float, float]] = []
        for d in self.devices:
            for s, e in d.busy_intervals(now):
                if s < target:
                    kernel_iv.append((max(s, now), min(e, target)))
        gpu_iv: list[tuple[float, float]] = []
        net_iv: list[tuple[float, float]] = []
        cpu_iv: list[tuple[float, float]] = []
        for t in self.bus.pending:
            if t.end > now and t.start < target:
                if t.category == CATEGORY_GPU_GPU:
                    dest = gpu_iv
                elif t.category == CATEGORY_NET:
                    dest = net_iv
                else:
                    dest = cpu_iv
                dest.append((max(t.start, now), min(t.end, target)))
        points = {now, target}
        for s, e in kernel_iv + gpu_iv + net_iv + cpu_iv:
            points.add(s)
            points.add(e)
        pts = sorted(points)
        for a, b in zip(pts, pts[1:]):
            mid = (a + b) / 2.0
            in_kernel = any(s <= mid < e for s, e in kernel_iv)
            in_gpu = any(s <= mid < e for s, e in gpu_iv)
            in_net = any(s <= mid < e for s, e in net_iv)
            if in_kernel:
                clock.advance_to(b, CATEGORY_KERNELS)
                if in_gpu:
                    clock.charge(b - a, CATEGORY_GPU_GPU_OVERLAPPED)
                if in_net:
                    clock.charge(b - a, CATEGORY_NET_OVERLAPPED)
            elif in_gpu:
                clock.advance_to(b, CATEGORY_GPU_GPU)
                if in_net:
                    clock.charge(b - a, CATEGORY_NET_OVERLAPPED)
            elif in_net:
                clock.advance_to(b, CATEGORY_NET)
            elif any(s <= mid < e for s, e in cpu_iv):
                clock.advance_to(b, CATEGORY_CPU_GPU)
            else:
                clock.advance_to(b, idle_category)
        self.bus.retire()
        return target - now

    # -- bookkeeping --------------------------------------------------------------

    def elapsed(self) -> float:
        return self.clock.now

    def memory_usage(self, purpose: str | None = None) -> int:
        """Sum of live device bytes across GPUs (optionally one purpose)."""
        if purpose is None:
            return sum(d.memory.live_bytes for d in self.devices)
        return sum(d.memory.live_bytes_of(purpose) for d in self.devices)

    def memory_high_water(self, purpose: str) -> int:
        return sum(d.memory.high_water_of(purpose) for d in self.devices)

    def reset(self) -> None:
        self.clock.reset()
        for d in self.devices:
            d.reset()
        self.bus = Bus(self.machine, self.clock)
        self.profiler = Profiler(self.clock, ngpus=self.ngpus)
