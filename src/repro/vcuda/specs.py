"""Hardware specifications for the virtual platform.

These mirror Table I of the paper: a desktop machine (one Core i7, two
Tesla C2075 GPUs) and a TSUBAME2.0 thin node (two Xeon X5670, three
Tesla M2050 GPUs).  Peak numbers come from the vendor datasheets of the
2011-era parts; the cost models in :mod:`repro.vcuda.device` and
:mod:`repro.cpu.openmp` apply efficiency factors on top of these peaks.

All bandwidths are bytes/second, frequencies in Hz, capacities in bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

GB = 1024**3
MB = 1024**2


@dataclass(frozen=True)
class GpuSpec:
    """Static description of a GPU device."""

    name: str
    #: Number of CUDA cores (Fermi: 32 per SM).
    cuda_cores: int
    #: Number of streaming multiprocessors.
    sm_count: int
    #: Shader clock in Hz.
    clock_hz: float
    #: Peak single-precision throughput in FLOP/s.
    peak_sp_flops: float
    #: Peak device-memory bandwidth in bytes/s.
    mem_bandwidth: float
    #: Device memory capacity in bytes.
    mem_capacity: int
    #: Fixed kernel-launch overhead in seconds.
    launch_overhead: float = 8e-6
    #: Fraction of peak memory bandwidth achieved by coalesced streams.
    coalesced_efficiency: float = 0.75
    #: Fraction of peak bandwidth achieved by uncoalesced/random access
    #: (applied to the cost model's already-inflated random byte counts;
    #: Fermi's L2/texture caches keep scattered gathers well above the
    #: worst case).
    random_efficiency: float = 0.50
    #: Fraction of peak FLOP/s achieved by typical compiled kernels.
    compute_efficiency: float = 0.55


@dataclass(frozen=True)
class CpuSpec:
    """Static description of one CPU socket."""

    name: str
    cores: int
    #: Hardware threads per core (Hyper-Threading = 2).
    threads_per_core: int
    clock_hz: float
    #: Single-precision FLOPs per cycle per core (SSE 4-wide, mul+add).
    flops_per_cycle: float
    #: Sustained memory bandwidth per socket in bytes/s.
    mem_bandwidth: float
    #: Parallel efficiency of the OpenMP runtime at full thread count.
    omp_efficiency: float = 0.55

    @property
    def peak_sp_flops(self) -> float:
        """Peak single-precision FLOP/s of the whole socket."""
        return self.cores * self.clock_hz * self.flops_per_cycle


@dataclass(frozen=True)
class BusSpec:
    """PCI-Express link characteristics.

    ``p2p_same_hub`` applies between GPUs under one I/O hub (desktop);
    ``p2p_cross_hub`` applies when a peer copy crosses the QPI between
    the two I/O hubs of a dual-socket node (TSUBAME thin node), where
    it is staged and noticeably slower -- this asymmetry is what makes
    BFS's inter-GPU traffic a bottleneck on the supercomputer node in
    the paper's Fig. 8.
    """

    name: str
    #: Effective host<->device bandwidth per link, bytes/s.
    h2d_bandwidth: float
    d2h_bandwidth: float
    #: Effective direct GPU<->GPU bandwidth, same I/O hub.
    p2p_same_hub: float
    #: Effective GPU<->GPU bandwidth when crossing QPI/IOH boundary.
    p2p_cross_hub: float
    #: Aggregate host<->device bandwidth through one I/O hub.  Concurrent
    #: transfers to GPUs behind the same hub share this uplink; when it is
    #: close to the per-link bandwidth they effectively serialize (the
    #: TSUBAME thin node's two hub-0 GPUs), when it is ~2x they overlap
    #: (the desktop).
    hub_uplink_bandwidth: float = 12e9
    #: Per-transfer latency in seconds (DMA setup + driver).
    latency: float = 12e-6
    #: Schedule cost hint: pipeline chunk size (bytes) for intra-node
    #: ring broadcasts (see docs/COLLECTIVES.md).
    collective_chunk_bytes: int = 1024 * 1024


# ---------------------------------------------------------------------------
# Catalogue of the parts in Table I.
# ---------------------------------------------------------------------------

TESLA_C2075 = GpuSpec(
    name="Tesla C2075",
    cuda_cores=448,
    sm_count=14,
    clock_hz=1.15e9,
    peak_sp_flops=1030e9,
    mem_bandwidth=144e9,
    mem_capacity=6 * GB,
)

TESLA_M2050 = GpuSpec(
    name="Tesla M2050",
    cuda_cores=448,
    sm_count=14,
    clock_hz=1.15e9,
    peak_sp_flops=1030e9,
    mem_bandwidth=148e9,
    mem_capacity=3 * GB,
)

TESLA_C1060 = GpuSpec(
    name="Tesla C1060",
    cuda_cores=240,
    sm_count=30,
    clock_hz=1.296e9,
    peak_sp_flops=622e9,
    mem_bandwidth=102e9,
    mem_capacity=4 * GB,
    # GT200 has no L2 cache: scattered gathers fall much closer to the
    # worst case than on Fermi parts.
    random_efficiency=0.25,
)

CORE_I7_980 = CpuSpec(
    name="Intel Core i7 (6C/12T)",
    cores=6,
    threads_per_core=2,
    clock_hz=3.33e9,
    flops_per_cycle=8.0,
    mem_bandwidth=25.6e9,
)

XEON_X5670 = CpuSpec(
    name="Intel Xeon X5670 (6C/12T)",
    cores=6,
    threads_per_core=2,
    clock_hz=2.93e9,
    flops_per_cycle=8.0,
    mem_bandwidth=32e9,
)

PCIE_GEN2_DESKTOP = BusSpec(
    name="PCIe 2.0 x16 (single IOH)",
    h2d_bandwidth=5.8e9,
    d2h_bandwidth=6.2e9,
    p2p_same_hub=5.2e9,
    p2p_cross_hub=5.2e9,  # single hub: never crossed
    hub_uplink_bandwidth=20.0e9,  # X58: 36 gen2 lanes, two full x16 links
)

PCIE_GEN2_TSUBAME = BusSpec(
    name="PCIe 2.0 x16 (dual IOH over QPI)",
    h2d_bandwidth=5.6e9,
    d2h_bandwidth=6.0e9,
    p2p_same_hub=5.0e9,
    p2p_cross_hub=2.2e9,
    hub_uplink_bandwidth=10.0e9,
    latency=16e-6,
)


@dataclass(frozen=True)
class NicSpec:
    """Network-interface / interconnect-fabric characteristics.

    One NIC port per node; ``bandwidth`` is the effective per-flow
    bytes/s between two nodes under the same leaf switch.  The cluster
    topology is a two-level tree (leaf switches grouped under one root
    switch): a flow that crosses the root pays ``hop_latency`` for each
    of the two extra switch traversals and, when the fabric is
    oversubscribed, the reduced ``cross_group_bandwidth``.
    """

    name: str
    #: Effective node-to-node bandwidth within a leaf-switch group,
    #: bytes/s per flow.
    bandwidth: float
    #: Per-message latency between nodes under one leaf switch.
    latency: float = 2e-6
    #: Additional latency per extra switch level a flow traverses.
    hop_latency: float = 0.6e-6
    #: Per-flow bandwidth when the flow crosses the root switch
    #: (``None`` = full bisection, same as ``bandwidth``).
    cross_group_bandwidth: float | None = None
    #: Schedule cost hint: pipeline chunk size (bytes) for collective
    #: broadcasts and the staged-exchange progress engine.  Payloads
    #: larger than this are split so the NIC leg of chunk *k* overlaps
    #: the PCIe legs of chunks *k±1* (see docs/COLLECTIVES.md).
    collective_chunk_bytes: int = 64 * 1024


#: TSUBAME2.0-era fabric: 4x QDR InfiniBand, ~3.2 GB/s effective per
#: port after 8b/10b encoding and transport overheads.
QDR_INFINIBAND = NicSpec(
    name="QDR InfiniBand 4x",
    bandwidth=3.2e9,
    latency=1.9e-6,
    hop_latency=0.6e-6,
)

#: Commodity fallback fabric for what-if runs: the NIC becomes the
#: bottleneck long before PCIe does.
GIGABIT_ETHERNET = NicSpec(
    name="10 Gigabit Ethernet",
    bandwidth=1.1e9,
    latency=9e-6,
    hop_latency=2e-6,
)


@dataclass(frozen=True)
class MachineSpec:
    """One evaluation platform of Table I.

    ``gpu_hub`` assigns each GPU index to an I/O hub; peer transfers
    between GPUs on different hubs use ``bus.p2p_cross_hub``.

    ``gpus`` optionally lists one spec per GPU slot for heterogeneous
    nodes (mixed device generations); when empty, every slot holds
    ``gpu``.  ``gpu`` stays the nominal part for Table I rendering and
    as the default device model.

    A single node is also the degenerate one-node cluster: the
    ``node_*`` accessors mirror :class:`ClusterSpec` so the bus, the
    communication manager and the scheduler can treat both uniformly
    (``node_of`` is constant 0 and there is no NIC).
    """

    name: str
    cpu: CpuSpec
    cpu_sockets: int
    gpu: GpuSpec
    gpu_count: int
    bus: BusSpec
    gpu_hub: tuple[int, ...] = field(default=())
    gpus: tuple[GpuSpec, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.gpu_hub and len(self.gpu_hub) != self.gpu_count:
            raise ValueError("gpu_hub must list one hub id per GPU")
        if self.gpus and len(self.gpus) != self.gpu_count:
            raise ValueError("gpus must list one spec per GPU slot")

    def hub_of(self, gpu_index: int) -> int:
        """I/O hub id hosting GPU ``gpu_index`` (default: hub 0)."""
        if not self.gpu_hub:
            return 0
        return self.gpu_hub[gpu_index]

    @property
    def gpu_specs(self) -> tuple[GpuSpec, ...]:
        """Per-slot GPU specs (uniform nodes repeat ``gpu``)."""
        if self.gpus:
            return self.gpus
        return (self.gpu,) * self.gpu_count

    @property
    def is_heterogeneous(self) -> bool:
        return len({g.name for g in self.gpu_specs}) > 1

    @property
    def gpu_mix_label(self) -> str:
        """Human-readable GPU model mix, e.g. ``2x A + 1x B``."""
        counts: dict[str, int] = {}
        for g in self.gpu_specs:
            counts[g.name] = counts.get(g.name, 0) + 1
        if len(counts) == 1:
            return next(iter(counts))
        return " + ".join(f"{n}x {name}" for name, n in counts.items())

    @property
    def total_cpu_threads(self) -> int:
        return self.cpu_sockets * self.cpu.cores * self.cpu.threads_per_core

    # -- one-node-cluster protocol (mirrors ClusterSpec) --------------------

    #: A plain node has no network tier.
    nic: "NicSpec | None" = field(default=None, init=False, repr=False)

    @property
    def node_count(self) -> int:
        return 1

    def node_of(self, gpu_index: int) -> int:
        return 0

    def node_bus(self, node: int) -> BusSpec:
        return self.bus

    def node_gpu_range(self, node: int) -> tuple[int, int]:
        return (0, self.gpu_count)

    def subset(self, slots: tuple[int, ...] | list[int]) -> "MachineSpec":
        """Carve a sub-machine out of this node's GPU slots.

        The program service packs independent programs onto disjoint
        slot subsets of one large fleet; each admitted program runs on
        the :class:`MachineSpec` this returns.  Per-slot GPU specs and
        I/O-hub assignments are preserved (renumbered contiguously), so
        a request placed across two hubs still pays the cross-hub
        peer-transfer penalty it would on the real node.  CPU and bus
        are shared-machine resources and carry over unchanged.
        """
        slots = tuple(slots)
        if not slots:
            raise ValueError("subset needs at least one GPU slot")
        if len(set(slots)) != len(slots):
            raise ValueError(f"duplicate GPU slots in subset: {slots}")
        for s in slots:
            if not (0 <= s < self.gpu_count):
                raise ValueError(
                    f"slot {s} out of range for {self.name} "
                    f"({self.gpu_count} GPUs)")
        specs = self.gpu_specs
        return MachineSpec(
            name=f"{self.name} [slots {','.join(map(str, slots))}]",
            cpu=self.cpu,
            cpu_sockets=self.cpu_sockets,
            gpu=self.gpu,
            gpu_count=len(slots),
            bus=self.bus,
            gpu_hub=tuple(self.hub_of(s) for s in slots),
            gpus=tuple(specs[s] for s in slots),
        )


@dataclass(frozen=True)
class ClusterSpec:
    """A modeled cluster: ``MachineSpec`` nodes in a tree topology.

    GPUs are flattened into one global index space (node 0's GPUs
    first, then node 1's, ...), so everything that addresses GPUs by
    index -- the platform, the data loader, the communication manager
    -- runs unchanged.  ``node_of`` recovers the node of a global GPU
    index; ``hub_of`` returns *globally unique* I/O-hub ids (each
    node's hubs are offset past the previous nodes'), so same-hub /
    cross-hub PCIe pricing keeps working per node.

    The network tier is a two-level tree: ``node_group`` assigns each
    node to a leaf switch; flows between groups cross the root switch
    (extra ``NicSpec.hop_latency`` and, if set, the oversubscribed
    ``cross_group_bandwidth``).  Host memory lives on node 0 (the home
    node): host<->device transfers for GPUs on other nodes are staged
    over the NIC by the bus.

    ``link_overrides`` pins the effective bandwidth of specific node
    pairs -- the fault-injection hook for degraded or dead links.
    """

    name: str
    nodes: tuple[MachineSpec, ...]
    nic: NicSpec = QDR_INFINIBAND
    #: Leaf-switch group per node (default: all under one leaf switch).
    node_group: tuple[int, ...] = field(default=())
    #: ``(node_a, node_b, bandwidth)`` effective-bandwidth pins, order
    #: of the node pair irrelevant.  Zero or negative bandwidth models
    #: a dead link (transfers raise a structured error).
    link_overrides: tuple[tuple[int, int, float], ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a cluster needs at least one node")
        if self.node_group and len(self.node_group) != len(self.nodes):
            raise ValueError("node_group must list one group per node")

    # -- flattened GPU space -------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def gpu_count(self) -> int:
        return sum(n.gpu_count for n in self.nodes)

    @property
    def gpu_specs(self) -> tuple[GpuSpec, ...]:
        out: tuple[GpuSpec, ...] = ()
        for n in self.nodes:
            out += n.gpu_specs
        return out

    def node_gpu_range(self, node: int) -> tuple[int, int]:
        """Global GPU index range ``[lo, hi)`` hosted by ``node``."""
        lo = sum(n.gpu_count for n in self.nodes[:node])
        return (lo, lo + self.nodes[node].gpu_count)

    def node_of(self, gpu_index: int) -> int:
        base = 0
        for i, n in enumerate(self.nodes):
            if gpu_index < base + n.gpu_count:
                return i
            base += n.gpu_count
        raise ValueError(
            f"GPU {gpu_index} out of range for {self.name} "
            f"({self.gpu_count} GPUs)")

    def local_gpu(self, gpu_index: int) -> int:
        """Node-local slot of a global GPU index."""
        node = self.node_of(gpu_index)
        return gpu_index - self.node_gpu_range(node)[0]

    def hub_of(self, gpu_index: int) -> int:
        """Globally unique I/O-hub id of a GPU (offset per node)."""
        node = self.node_of(gpu_index)
        base = sum(_hub_count(n) for n in self.nodes[:node])
        return base + self.nodes[node].hub_of(self.local_gpu(gpu_index))

    def node_bus(self, node: int) -> BusSpec:
        return self.nodes[node].bus

    # -- network tier --------------------------------------------------------

    def group_of(self, node: int) -> int:
        return self.node_group[node] if self.node_group else 0

    def link_bandwidth(self, a: int, b: int) -> float:
        """Effective NIC bandwidth between nodes ``a`` and ``b``."""
        for x, y, bw in self.link_overrides:
            if {x, y} == {a, b}:
                return bw
        if self.group_of(a) != self.group_of(b) \
                and self.nic.cross_group_bandwidth is not None:
            return self.nic.cross_group_bandwidth
        return self.nic.bandwidth

    def link_latency(self, a: int, b: int) -> float:
        """Per-message latency: one leaf hop, plus two extra switch
        traversals (up to the root and back down) across groups."""
        if self.group_of(a) == self.group_of(b):
            return self.nic.latency
        return self.nic.latency + 2 * self.nic.hop_latency

    def degrade_link(self, a: int, b: int,
                     bandwidth: float) -> "ClusterSpec":
        """Copy of this cluster with one node pair's bandwidth pinned
        (0 = dead link; transfers over it raise a structured error)."""
        return ClusterSpec(
            name=f"{self.name} [link {a}-{b} @ {bandwidth:g} B/s]",
            nodes=self.nodes, nic=self.nic, node_group=self.node_group,
            link_overrides=self.link_overrides + ((a, b, bandwidth),))

    # -- home-node host model (report/host-executor compatibility) -----------

    @property
    def cpu(self) -> CpuSpec:
        return self.nodes[0].cpu

    @property
    def cpu_sockets(self) -> int:
        return self.nodes[0].cpu_sockets

    @property
    def gpu(self) -> GpuSpec:
        return self.nodes[0].gpu

    @property
    def bus(self) -> BusSpec:
        """Home-node PCIe (node-local pricing uses ``node_bus``)."""
        return self.nodes[0].bus

    @property
    def total_cpu_threads(self) -> int:
        return self.nodes[0].total_cpu_threads

    @property
    def gpu_hub(self) -> tuple[int, ...]:
        return tuple(self.hub_of(g) for g in range(self.gpu_count))

    @property
    def is_heterogeneous(self) -> bool:
        return len({g.name for g in self.gpu_specs}) > 1

    @property
    def gpu_mix_label(self) -> str:
        counts: dict[str, int] = {}
        for g in self.gpu_specs:
            counts[g.name] = counts.get(g.name, 0) + 1
        if len(counts) == 1:
            return next(iter(counts))
        return " + ".join(f"{n}x {name}" for name, n in counts.items())

    # -- fleet carving -------------------------------------------------------

    def subset(self, slots: tuple[int, ...] | list[int]
               ) -> "MachineSpec | ClusterSpec":
        """Carve a sub-machine out of global GPU slots, preserving node
        boundaries.

        Slots within one node return that node's
        :meth:`MachineSpec.subset` (a plain node: no NIC tier to pay).
        Slots spanning nodes return a smaller :class:`ClusterSpec`
        whose surviving nodes keep their leaf-switch groups and any
        link overrides between them -- a spanning placement keeps
        paying cross-node prices, it never collapses onto one PCIe bus.
        """
        slots = tuple(slots)
        if not slots:
            raise ValueError("subset needs at least one GPU slot")
        if len(set(slots)) != len(slots):
            raise ValueError(f"duplicate GPU slots in subset: {slots}")
        for s in slots:
            if not (0 <= s < self.gpu_count):
                raise ValueError(
                    f"slot {s} out of range for {self.name} "
                    f"({self.gpu_count} GPUs)")
        by_node: dict[int, list[int]] = {}
        for s in slots:
            by_node.setdefault(self.node_of(s), []).append(self.local_gpu(s))
        if len(by_node) == 1:
            (node, local), = by_node.items()
            return self.nodes[node].subset(local)
        keep = sorted(by_node)
        renumber = {node: i for i, node in enumerate(keep)}
        overrides = tuple(
            (renumber[a], renumber[b], bw)
            for a, b, bw in self.link_overrides
            if a in renumber and b in renumber)
        return ClusterSpec(
            name=f"{self.name} [slots {','.join(map(str, slots))}]",
            nodes=tuple(self.nodes[n].subset(by_node[n]) for n in keep),
            nic=self.nic,
            node_group=tuple(self.group_of(n) for n in keep)
            if self.node_group else (),
            link_overrides=overrides,
        )


def _hub_count(node: MachineSpec) -> int:
    return 1 + max((node.hub_of(g) for g in range(node.gpu_count)),
                   default=0)


def cluster_of(nodes: int, node: MachineSpec,
               nic: NicSpec = QDR_INFINIBAND,
               nodes_per_group: int = 0,
               name: str | None = None) -> ClusterSpec:
    """Uniform cluster of ``nodes`` copies of ``node``.

    ``nodes_per_group`` packs that many nodes under each leaf switch
    (0 = one flat group: every node pair is one switch hop apart).
    """
    if nodes < 1:
        raise ValueError("a cluster needs at least one node")
    groups = tuple(n // nodes_per_group for n in range(nodes)) \
        if nodes_per_group > 0 else ()
    return ClusterSpec(
        name=name or f"{nodes}x {node.name}",
        nodes=(node,) * nodes,
        nic=nic,
        node_group=groups,
    )


DESKTOP_MACHINE = MachineSpec(
    name="Desktop Machine",
    cpu=CORE_I7_980,
    cpu_sockets=1,
    gpu=TESLA_C2075,
    gpu_count=2,
    bus=PCIE_GEN2_DESKTOP,
    gpu_hub=(0, 0),
)

SUPERCOMPUTER_NODE = MachineSpec(
    name="Supercomputer Node (TSUBAME2.0 thin node)",
    cpu=XEON_X5670,
    cpu_sockets=2,
    gpu=TESLA_M2050,
    gpu_count=3,
    bus=PCIE_GEN2_TSUBAME,
    gpu_hub=(0, 0, 1),
)

MACHINES = {
    "desktop": DESKTOP_MACHINE,
    "supercomputer": SUPERCOMPUTER_NODE,
}

#: The paper's TSUBAME2.0 thin nodes scaled out over the QDR fabric:
#: the smallest catalogue cluster with a real network tier.
TSUBAME_CLUSTER = cluster_of(
    2, SUPERCOMPUTER_NODE, nic=QDR_INFINIBAND,
    name="TSUBAME2.0 (2 thin nodes)")

CLUSTERS = {
    "tsubame2": TSUBAME_CLUSTER,
}
