"""Streams and events over virtual time.

A :class:`Stream` is an in-order queue of timed operations bound to one
device; operations on different streams may overlap.  An
:class:`Event` captures the completion timestamp of the most recent
operation in a stream, and host code can block on either.

These mirror the CUDA primitives the paper's runtime uses to make
inter-GPU exchanges asynchronous; the runtime's communication manager
issues one stream per device pair and synchronizes the batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .clock import VirtualClock


@dataclass
class Event:
    """Completion marker; ``timestamp`` is in virtual seconds."""

    timestamp: float = 0.0
    recorded: bool = False

    def query(self, clock: VirtualClock) -> bool:
        """True when the event has completed by the clock's *current* time."""
        return self.recorded and self.timestamp <= clock.now


@dataclass
class Stream:
    """An in-order operation queue on one device."""

    device_index: int
    clock: VirtualClock
    #: Virtual time at which the last queued operation finishes.
    tail: float = 0.0
    ops: list[tuple[str, float, float]] = field(default_factory=list)

    def enqueue(self, label: str, seconds: float, not_before: float = 0.0) -> float:
        """Append an operation of ``seconds`` duration; returns its end time.

        The op starts when the stream's previous op has finished, the
        host has issued it (``clock.now``), and any cross-stream
        dependency (``not_before``) is satisfied.
        """
        if seconds < 0:
            raise ValueError("operation duration must be non-negative")
        start = max(self.tail, self.clock.now, not_before)
        end = start + seconds
        self.ops.append((label, start, end))
        self.tail = end
        return end

    def enqueue_at(self, label: str, start: float, end: float) -> float:
        """Mirror an externally scheduled operation into the stream.

        The bus scheduler decides DMA start/end times from link
        availability; the communication manager mirrors each transfer
        onto the endpoint GPUs' comm streams so events recorded on a
        stream cover the device's outstanding communication.
        """
        if end < start:
            raise ValueError("operation may not end before it starts")
        self.ops.append((label, start, end))
        self.tail = max(self.tail, end)
        return end

    def record_event(self) -> Event:
        """CUDA ``cudaEventRecord``: marks the current tail of the stream."""
        return Event(timestamp=self.tail, recorded=True)

    def wait_event(self, event: Event) -> None:
        """CUDA ``cudaStreamWaitEvent``: later ops wait for ``event``."""
        if not event.recorded:
            raise RuntimeError("waiting on an unrecorded event")
        self.tail = max(self.tail, event.timestamp)

    def synchronize(self, category: str | None = None) -> float:
        """Block the host until the stream drains; advances the clock."""
        before = self.clock.now
        self.clock.advance_to(self.tail, category)
        return self.clock.now - before
