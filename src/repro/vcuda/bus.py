"""PCI-Express interconnect model.

Each GPU hangs off the host through one PCIe link; peer-to-peer copies
occupy the links of both endpoint GPUs and, on a dual-I/O-hub node,
cross the QPI at reduced bandwidth (``BusSpec.p2p_cross_hub``).

Transfers are *asynchronous*: :meth:`Bus.h2d` and friends only reserve
link time and return a :class:`Transfer` with start/end timestamps in
virtual time.  The caller (runtime data loader / communication manager)
synchronizes a batch with :meth:`Bus.sync`, which advances the shared
clock to the batch makespan -- this models the paper's "communications
are executed asynchronously" (section IV-D) where transfers to distinct
GPUs overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal

from .clock import VirtualClock
from .specs import BusSpec, MachineSpec

TransferKind = Literal["h2d", "d2h", "p2p"]

#: Profiler categories matching the paper's Fig. 8 buckets.
CATEGORY_CPU_GPU = "CPU-GPU"
CATEGORY_GPU_GPU = "GPU-GPU"
CATEGORY_KERNELS = "KERNELS"
#: Inter-GPU transfer time hidden under kernels (or other accounted
#: work) by the asynchronous communication layer.  Charged via
#: :meth:`VirtualClock.charge`, so it never moves the clock: Fig. 8's
#: ``GPU-GPU`` bucket keeps meaning *exposed* communication only.
CATEGORY_GPU_GPU_OVERLAPPED = "GPU-GPU (hidden)"


@dataclass
class Transfer:
    """One scheduled DMA transfer."""

    kind: TransferKind
    nbytes: int
    src_device: int | None
    dst_device: int | None
    start: float
    end: float
    #: Logical profiler bucket when it differs from the physical kind:
    #: host-staged replica broadcasts move over h2d/d2h links but are
    #: inter-GPU communication for Fig. 8 purposes.
    category_override: str | None = None

    @property
    def seconds(self) -> float:
        return self.end - self.start

    @property
    def category(self) -> str:
        if self.category_override is not None:
            return self.category_override
        return CATEGORY_GPU_GPU if self.kind == "p2p" else CATEGORY_CPU_GPU


class Bus:
    """Link-time scheduler for one machine's PCIe topology."""

    def __init__(self, machine: MachineSpec, clock: VirtualClock) -> None:
        self.machine = machine
        self.spec: BusSpec = machine.bus
        self.clock = clock
        #: Virtual time at which each GPU's PCIe link becomes free.
        self._link_free_at: list[float] = [0.0] * machine.gpu_count
        #: Virtual time at which each I/O hub's host uplink frees up.
        n_hubs = 1 + max((machine.hub_of(g) for g in range(machine.gpu_count)),
                         default=0)
        self._hub_free_at: list[float] = [0.0] * n_hubs
        self._pending: list[Transfer] = []
        self.completed: list[Transfer] = []
        #: Optional clock-advance hook ``(timestamp, category) -> None``.
        #: When the async communication layer is active the platform
        #: installs its timeline-attributing advance here so that waits
        #: split the advanced interval into kernel / exposed-comm /
        #: hidden-comm segments instead of charging it wholesale.
        self.advancer: Callable[[float, str | None], None] | None = None
        #: Optional pure observer of every scheduled transfer (tracing).
        #: Called right after a transfer is queued; must not touch the
        #: schedule.
        self.observer: Callable[[Transfer], None] | None = None

    # -- pricing ------------------------------------------------------------

    def _duration(self, kind: TransferKind, nbytes: int, src: int | None, dst: int | None) -> float:
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        if nbytes == 0:
            return 0.0
        if kind == "h2d":
            bw = self.spec.h2d_bandwidth
        elif kind == "d2h":
            bw = self.spec.d2h_bandwidth
        else:
            assert src is not None and dst is not None
            same_hub = self.machine.hub_of(src) == self.machine.hub_of(dst)
            bw = self.spec.p2p_same_hub if same_hub else self.spec.p2p_cross_hub
        return self.spec.latency + nbytes / bw

    def _schedule(
        self, kind: TransferKind, nbytes: int, src: int | None, dst: int | None,
        not_before: float = 0.0, category: str | None = None,
    ) -> Transfer:
        links = [d for d in (src, dst) if d is not None]
        duration = self._duration(kind, nbytes, src, dst)
        start = max([self.clock.now, not_before]
                    + [self._link_free_at[d] for d in links])
        hub = None
        hub_occupancy = 0.0
        if kind in ("h2d", "d2h") and links:
            # Host transfers also consume the shared I/O-hub uplink, for a
            # fraction of their duration equal to link/uplink bandwidth:
            # concurrent same-hub transfers serialize on that share.
            hub = self.machine.hub_of(links[0])
            link_bw = (self.spec.h2d_bandwidth if kind == "h2d"
                       else self.spec.d2h_bandwidth)
            hub_occupancy = duration * min(
                1.0, link_bw / self.spec.hub_uplink_bandwidth)
            start = max(start, self._hub_free_at[hub])
        end = start + duration
        for d in links:
            self._link_free_at[d] = end
        if hub is not None:
            self._hub_free_at[hub] = start + hub_occupancy
        t = Transfer(kind=kind, nbytes=nbytes, src_device=src, dst_device=dst,
                     start=start, end=end, category_override=category)
        self._pending.append(t)
        if self.observer is not None:
            self.observer(t)
        return t

    # -- public API ----------------------------------------------------------

    def h2d(self, device: int, nbytes: int, *, not_before: float = 0.0,
            category: str | None = None) -> Transfer:
        """Queue a host-to-device copy on ``device``'s link."""
        self._check_device(device)
        return self._schedule("h2d", nbytes, None, device,
                              not_before=not_before, category=category)

    def d2h(self, device: int, nbytes: int, *, not_before: float = 0.0,
            category: str | None = None) -> Transfer:
        """Queue a device-to-host copy on ``device``'s link."""
        self._check_device(device)
        return self._schedule("d2h", nbytes, device, None,
                              not_before=not_before, category=category)

    def p2p(self, src: int, dst: int, nbytes: int, *,
            not_before: float = 0.0, category: str | None = None) -> Transfer:
        """Queue a direct GPU-to-GPU copy occupying both links.

        ``not_before`` is an issue dependency (e.g. "after the producing
        kernel finishes"): the transfer starts no earlier, on top of the
        usual link-availability constraints.
        """
        self._check_device(src)
        self._check_device(dst)
        if src == dst:
            raise ValueError("peer copy requires distinct devices")
        return self._schedule("p2p", nbytes, src, dst, not_before=not_before,
                              category=category)

    def sync(self, category: str | None = None) -> float:
        """Wait for all queued transfers; advance the clock to the makespan.

        Returns the makespan seconds of this batch (0 if nothing was
        pending or everything already completed).  The advanced wall
        time is attributed to ``category`` (or each transfer's own
        category bucket when the batch is homogeneous and ``category``
        is None).
        """
        if not self._pending:
            return 0.0
        finish = max(t.end for t in self._pending)
        if category is None:
            cats = {t.category for t in self._pending}
            if len(cats) != 1:
                raise ValueError(
                    "mixed-category transfer batch requires an explicit category"
                )
            category = cats.pop()
        before = self.clock.now
        self._advance_to(finish, category)
        makespan = self.clock.now - before
        self.completed.extend(self._pending)
        self._pending.clear()
        return makespan

    def sync_category(self, category: str) -> float:
        """Wait only for pending transfers whose bucket is ``category``.

        Unlike :meth:`sync` this leaves transfers of other categories
        in flight (the async communication layer keeps GPU-GPU traffic
        pending across host-side CPU-GPU synchronization points).
        Transfers of *any* category that have finished by the resulting
        clock time are retired.  Returns the seconds waited.
        """
        matching = [t for t in self._pending if t.category == category]
        if not matching:
            self.retire()
            return 0.0
        finish = max(t.end for t in matching)
        before = self.clock.now
        self._advance_to(finish, category)
        waited = self.clock.now - before
        self.retire()
        return waited

    def retire(self) -> int:
        """Move transfers that finished by ``clock.now`` to ``completed``."""
        now = self.clock.now
        done = [t for t in self._pending if t.end <= now]
        if done:
            self._pending = [t for t in self._pending if t.end > now]
            self.completed.extend(done)
        return len(done)

    def _advance_to(self, timestamp: float, category: str | None) -> None:
        if self.advancer is not None:
            self.advancer(timestamp, category)
        else:
            self.clock.advance_to(timestamp, category)

    @property
    def pending(self) -> tuple[Transfer, ...]:
        """The in-flight transfers (read-only view)."""
        return tuple(self._pending)

    def pending_count(self) -> int:
        return len(self._pending)

    @staticmethod
    def coalesce_runs(runs: list[tuple[int, int]]) -> list[tuple[int, int]]:
        """Merge adjacent ``(byte_offset, nbytes)`` runs into single
        transactions, amortizing the per-transfer PCIe latency."""
        merged: list[list[int]] = []
        for off, n in sorted(runs):
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1][1] += n
            else:
                merged.append([off, n])
        return [(off, n) for off, n in merged]

    def bytes_moved(self, kind: TransferKind | None = None) -> int:
        """Total completed bytes, optionally filtered by kind."""
        return sum(t.nbytes for t in self.completed if kind is None or t.kind == kind)

    def _check_device(self, device: int) -> None:
        if not (0 <= device < self.machine.gpu_count):
            raise ValueError(
                f"device {device} out of range for {self.machine.name} "
                f"({self.machine.gpu_count} GPUs)"
            )
