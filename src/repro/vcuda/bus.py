"""PCI-Express + cluster-interconnect model.

Each GPU hangs off its node's host through one PCIe link; peer-to-peer
copies occupy the links of both endpoint GPUs and, on a dual-I/O-hub
node, cross the QPI at reduced bandwidth (``BusSpec.p2p_cross_hub``).

On a :class:`~repro.vcuda.specs.ClusterSpec` machine a second tier
exists: one NIC port per node on a switched fabric
(:class:`~repro.vcuda.specs.NicSpec`).  ``net`` transfers occupy the
NIC ports of both endpoint nodes; peer copies between GPUs on
*different* nodes route over the NIC automatically, and host<->device
transfers for GPUs away from the home node (node 0, where host memory
lives) are staged as a NIC hop chained to the node-local PCIe leg.
On a plain single-node machine none of these paths exist and the
schedule is bit-identical to the pre-cluster model.

Transfers are *asynchronous*: :meth:`Bus.h2d` and friends only reserve
link time and return a :class:`Transfer` with start/end timestamps in
virtual time.  The caller (runtime data loader / communication manager)
synchronizes a batch with :meth:`Bus.sync`, which advances the shared
clock to the batch makespan -- this models the paper's "communications
are executed asynchronously" (section IV-D) where transfers to distinct
GPUs overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal

from .clock import VirtualClock
from .specs import BusSpec, ClusterSpec, MachineSpec

TransferKind = Literal["h2d", "d2h", "p2p", "net"]

#: Profiler categories matching the paper's Fig. 8 buckets.
CATEGORY_CPU_GPU = "CPU-GPU"
CATEGORY_GPU_GPU = "GPU-GPU"
CATEGORY_KERNELS = "KERNELS"
#: Inter-GPU transfer time hidden under kernels (or other accounted
#: work) by the asynchronous communication layer.  Charged via
#: :meth:`VirtualClock.charge`, so it never moves the clock: Fig. 8's
#: ``GPU-GPU`` bucket keeps meaning *exposed* communication only.
CATEGORY_GPU_GPU_OVERLAPPED = "GPU-GPU (hidden)"
#: Inter-node (NIC) transfer time -- the new lane multi-node breakdowns
#: report next to the paper's three buckets.
CATEGORY_NET = "NET"
#: NET time hidden under kernels by the async layer (charged, never
#: advances the clock; the NET analogue of ``GPU-GPU (hidden)``).
CATEGORY_NET_OVERLAPPED = "NET (hidden)"


class NetworkError(RuntimeError):
    """A modeled NIC link cannot carry a transfer (dead or degraded to
    zero/invalid bandwidth).  Structured: carries the endpoints and the
    offending bandwidth so fault handling does not parse messages."""

    def __init__(self, src_node: int, dst_node: int,
                 bandwidth: float) -> None:
        super().__init__(
            f"NIC link between node {src_node} and node {dst_node} has "
            f"no usable bandwidth ({bandwidth!r} B/s)")
        self.src_node = src_node
        self.dst_node = dst_node
        self.bandwidth = bandwidth


@dataclass
class Transfer:
    """One scheduled DMA or NIC transfer."""

    kind: TransferKind
    nbytes: int
    src_device: int | None
    dst_device: int | None
    start: float
    end: float
    #: Logical profiler bucket when it differs from the physical kind:
    #: host-staged replica broadcasts move over h2d/d2h links but are
    #: inter-GPU communication for Fig. 8 purposes.
    category_override: str | None = None
    #: Endpoint nodes (always set for ``net`` transfers; set on every
    #: transfer scheduled on a cluster machine).
    src_node: int | None = None
    dst_node: int | None = None

    @property
    def seconds(self) -> float:
        return self.end - self.start

    @property
    def category(self) -> str:
        if self.category_override is not None:
            return self.category_override
        if self.kind == "net":
            return CATEGORY_NET
        return CATEGORY_GPU_GPU if self.kind == "p2p" else CATEGORY_CPU_GPU

    @property
    def cross_node(self) -> bool:
        return (self.src_node is not None and self.dst_node is not None
                and self.src_node != self.dst_node)


class Bus:
    """Link-time scheduler for one machine's PCIe + NIC topology."""

    def __init__(self, machine: MachineSpec | ClusterSpec,
                 clock: VirtualClock) -> None:
        self.machine = machine
        self.spec: BusSpec = machine.bus
        self.clock = clock
        #: Virtual time at which each GPU's PCIe link becomes free.
        self._link_free_at: list[float] = [0.0] * machine.gpu_count
        #: Virtual time at which each I/O hub's host uplink frees up.
        n_hubs = 1 + max((machine.hub_of(g) for g in range(machine.gpu_count)),
                         default=0)
        self._hub_free_at: list[float] = [0.0] * n_hubs
        #: Virtual time at which each node's NIC port frees up.
        self._nic_free_at: list[float] = [0.0] * machine.node_count
        #: True on a cluster with two or more nodes: the only case in
        #: which any NIC path is ever taken (one-node machines -- plain
        #: or ClusterSpec -- schedule bit-identically).
        self._multinode = machine.node_count > 1
        self._pending: list[Transfer] = []
        self.completed: list[Transfer] = []
        #: Optional clock-advance hook ``(timestamp, category) -> None``.
        #: When the async communication layer is active the platform
        #: installs its timeline-attributing advance here so that waits
        #: split the advanced interval into kernel / exposed-comm /
        #: hidden-comm segments instead of charging it wholesale.
        self.advancer: Callable[[float, str | None], None] | None = None
        #: Optional pure observer of every scheduled transfer (tracing).
        #: Called right after a transfer is queued; must not touch the
        #: schedule.
        self.observer: Callable[[Transfer], None] | None = None

    # -- pricing ------------------------------------------------------------

    def _node_of(self, device: int | None) -> int:
        return 0 if device is None else self.machine.node_of(device)

    def _bus_spec(self, device: int | None) -> BusSpec:
        """PCIe spec of the node hosting ``device`` (home node for
        host-side endpoints)."""
        if not self._multinode or device is None:
            return self.spec
        return self.machine.node_bus(self.machine.node_of(device))

    def _duration(self, kind: TransferKind, nbytes: int, src: int | None,
                  dst: int | None) -> float:
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        spec = self._bus_spec(dst if kind == "h2d" else src)
        if nbytes == 0:
            return 0.0
        if kind == "h2d":
            bw = spec.h2d_bandwidth
        elif kind == "d2h":
            bw = spec.d2h_bandwidth
        else:
            assert src is not None and dst is not None
            same_hub = self.machine.hub_of(src) == self.machine.hub_of(dst)
            bw = spec.p2p_same_hub if same_hub else spec.p2p_cross_hub
        return spec.latency + nbytes / bw

    def _net_duration(self, src_node: int, dst_node: int,
                      nbytes: int) -> float:
        machine = self.machine
        assert isinstance(machine, ClusterSpec)
        bw = machine.link_bandwidth(src_node, dst_node)
        # Validate the link before the zero-byte shortcut: a transfer
        # over a dead link must fail loudly even when empty, not stall
        # silently or ship stale data.
        if not (bw > 0.0) or bw != bw or bw == float("inf"):
            raise NetworkError(src_node, dst_node, bw)
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        if nbytes == 0:
            return 0.0
        return machine.link_latency(src_node, dst_node) + nbytes / bw

    def _schedule(
        self, kind: TransferKind, nbytes: int, src: int | None, dst: int | None,
        not_before: float = 0.0, category: str | None = None,
    ) -> Transfer:
        links = [d for d in (src, dst) if d is not None]
        duration = self._duration(kind, nbytes, src, dst)
        start = max([self.clock.now, not_before]
                    + [self._link_free_at[d] for d in links])
        hub = None
        hub_occupancy = 0.0
        if kind in ("h2d", "d2h") and links:
            # Host transfers also consume the shared I/O-hub uplink, for a
            # fraction of their duration equal to link/uplink bandwidth:
            # concurrent same-hub transfers serialize on that share.
            spec = self._bus_spec(links[0])
            hub = self.machine.hub_of(links[0])
            link_bw = (spec.h2d_bandwidth if kind == "h2d"
                       else spec.d2h_bandwidth)
            hub_occupancy = duration * min(
                1.0, link_bw / spec.hub_uplink_bandwidth)
            start = max(start, self._hub_free_at[hub])
        end = start + duration
        for d in links:
            self._link_free_at[d] = end
        if hub is not None:
            self._hub_free_at[hub] = start + hub_occupancy
        node = self._node_of(links[0]) if links else 0
        t = Transfer(kind=kind, nbytes=nbytes, src_device=src, dst_device=dst,
                     start=start, end=end, category_override=category,
                     src_node=node, dst_node=node)
        self._pending.append(t)
        if self.observer is not None:
            self.observer(t)
        return t

    def _schedule_net(
        self, src_node: int, dst_node: int, nbytes: int,
        src: int | None = None, dst: int | None = None,
        not_before: float = 0.0, category: str | None = None,
    ) -> Transfer:
        """Reserve both endpoint nodes' NIC ports (and, for a direct
        cross-node peer copy, the endpoint GPUs' PCIe links)."""
        duration = self._net_duration(src_node, dst_node, nbytes)
        links = [d for d in (src, dst) if d is not None]
        start = max([self.clock.now, not_before,
                     self._nic_free_at[src_node], self._nic_free_at[dst_node]]
                    + [self._link_free_at[d] for d in links])
        end = start + duration
        self._nic_free_at[src_node] = end
        self._nic_free_at[dst_node] = end
        for d in links:
            self._link_free_at[d] = end
        t = Transfer(kind="net", nbytes=nbytes, src_device=src,
                     dst_device=dst, start=start, end=end,
                     category_override=category,
                     src_node=src_node, dst_node=dst_node)
        self._pending.append(t)
        if self.observer is not None:
            self.observer(t)
        return t

    # -- public API ----------------------------------------------------------

    def h2d(self, device: int, nbytes: int, *, not_before: float = 0.0,
            category: str | None = None, local: bool = False) -> Transfer:
        """Queue a host-to-device copy on ``device``'s link.

        On a cluster, host memory lives on the home node: a copy to a
        GPU on another node first hops the NIC (home -> node), then
        runs the node-local PCIe leg.  ``local=True`` skips the NIC
        hop for data already staged in the target node's host memory
        (the communication manager's aggregated inter-node exchange).
        """
        self._check_device(device)
        node = self._node_of(device)
        if self._multinode and node != 0 and not local:
            hop = self._schedule_net(
                0, node, nbytes, not_before=not_before,
                category=category if category is not None
                else CATEGORY_CPU_GPU)
            not_before = hop.end
        return self._schedule("h2d", nbytes, None, device,
                              not_before=not_before, category=category)

    def d2h(self, device: int, nbytes: int, *, not_before: float = 0.0,
            category: str | None = None, local: bool = False) -> Transfer:
        """Queue a device-to-host copy on ``device``'s link (plus, for
        a remote-node GPU, the NIC hop back to the home node unless
        ``local=True``)."""
        self._check_device(device)
        node = self._node_of(device)
        pcie = self._schedule("d2h", nbytes, device, None,
                              not_before=not_before, category=category)
        if self._multinode and node != 0 and not local:
            return self._schedule_net(
                node, 0, nbytes, not_before=pcie.end,
                category=category if category is not None
                else CATEGORY_CPU_GPU)
        return pcie

    def p2p(self, src: int, dst: int, nbytes: int, *,
            not_before: float = 0.0, category: str | None = None) -> Transfer:
        """Queue a GPU-to-GPU copy occupying both links.

        ``not_before`` is an issue dependency (e.g. "after the producing
        kernel finishes"): the transfer starts no earlier, on top of the
        usual link-availability constraints.  Peers on different nodes
        route over the NIC (a ``net`` transfer occupying both GPUs'
        PCIe links and both nodes' NIC ports).
        """
        self._check_device(src)
        self._check_device(dst)
        if src == dst:
            raise ValueError("peer copy requires distinct devices")
        if self._multinode:
            a, b = self._node_of(src), self._node_of(dst)
            if a != b:
                return self._schedule_net(a, b, nbytes, src=src, dst=dst,
                                          not_before=not_before,
                                          category=category)
        return self._schedule("p2p", nbytes, src, dst, not_before=not_before,
                              category=category)

    def net(self, src_node: int, dst_node: int, nbytes: int, *,
            not_before: float = 0.0, category: str | None = None) -> Transfer:
        """Queue a host-to-host NIC transfer between two nodes (the
        aggregated leg of a staged inter-node exchange)."""
        self._check_node(src_node)
        self._check_node(dst_node)
        if src_node == dst_node:
            raise ValueError("net transfer requires distinct nodes")
        return self._schedule_net(src_node, dst_node, nbytes,
                                  not_before=not_before, category=category)

    def net_pipeline(self, path: list[int], chunks: list[int], *,
                     chunk_ready: list[float] | None = None,
                     category: str | None = None,
                     ) -> dict[int, list[Transfer]]:
        """Queue a chunked multi-leg NET pipeline along ``path`` (a
        sequence of distinct nodes).

        Chunk *k* on leg *i* depends on chunk *k* having finished leg
        *i-1*; NIC-port occupancy then serializes same-port chunks, so
        leg *i+1* of chunk *k* naturally overlaps leg *i* of chunk
        *k+1* -- the bandwidth-optimal pipelined schedule a ring
        broadcast prices.  ``chunk_ready[k]`` (optional) is the time
        chunk *k* leaves the source node (e.g. its gather D2H end).

        Returns the per-node arrival transfers: ``result[node][k]`` is
        the transfer that delivered chunk *k* to ``node``.
        """
        if len(path) < 2:
            return {}
        arrivals: dict[int, list[Transfer]] = {n: [] for n in path[1:]}
        legs = list(zip(path, path[1:]))
        # Chunk-major issue order: a chunk traverses every leg before
        # the next chunk is issued.  NIC-port occupancy is a scalar
        # free-at per node, so leg-major order would (wrongly) make a
        # relay node wait for the whole inbound leg before forwarding
        # anything.
        for k, nbytes in enumerate(chunks):
            ready = chunk_ready[k] if chunk_ready is not None else 0.0
            for a, b in legs:
                tr = self.net(a, b, nbytes, not_before=ready,
                              category=category)
                ready = tr.end
                arrivals[b].append(tr)
        return arrivals

    def sync(self, category: str | None = None) -> float:
        """Wait for all queued transfers; advance the clock to the makespan.

        Returns the makespan seconds of this batch (0 if nothing was
        pending or everything already completed).  The advanced wall
        time is attributed to ``category`` (or each transfer's own
        category bucket when the batch is homogeneous and ``category``
        is None).
        """
        if not self._pending:
            return 0.0
        finish = max(t.end for t in self._pending)
        if category is None:
            cats = {t.category for t in self._pending}
            if len(cats) != 1:
                raise ValueError(
                    "mixed-category transfer batch requires an explicit category"
                )
            category = cats.pop()
        before = self.clock.now
        self._advance_to(finish, category)
        makespan = self.clock.now - before
        self.completed.extend(self._pending)
        self._pending.clear()
        return makespan

    def sync_split(self, category: str = CATEGORY_GPU_GPU,
                   net_category: str = CATEGORY_NET) -> float:
        """Wait for all queued transfers, attributing intra-node time
        to ``category`` and any remaining NIC tail to ``net_category``.

        With no NET transfers pending this is exactly :meth:`sync`
        with an explicit category (one clock advance, bit for bit), so
        single-node runs are unchanged.  With NET pending the wait is
        walked segment by segment: intervals where an intra-node
        transfer is active land in ``category``, NIC-only intervals in
        ``net_category`` (and schedule gaps in ``category``), which is
        how Fig-8-style breakdowns reconcile per node.
        """
        if not self._pending:
            return 0.0
        before = self.clock.now
        finish = max(t.end for t in self._pending)
        if not any(t.category == net_category for t in self._pending):
            self._advance_to(finish, category)
        else:
            ivs = [(max(t.start, before), t.end,
                    t.category == net_category)
                   for t in self._pending if t.end > before]
            points = sorted({before, finish}
                            | {p for s, e, _ in ivs for p in (s, e)})
            for a, b in zip(points, points[1:]):
                mid = (a + b) / 2.0
                net_only = (any(is_net for s, e, is_net in ivs
                                if s <= mid < e)
                            and not any(not is_net for s, e, is_net in ivs
                                        if s <= mid < e))
                self._advance_to(b, net_category if net_only else category)
        makespan = self.clock.now - before
        self.completed.extend(self._pending)
        self._pending.clear()
        return makespan

    def sync_category(self, category: str) -> float:
        """Wait only for pending transfers whose bucket is ``category``.

        Unlike :meth:`sync` this leaves transfers of other categories
        in flight (the async communication layer keeps GPU-GPU traffic
        pending across host-side CPU-GPU synchronization points).
        Transfers of *any* category that have finished by the resulting
        clock time are retired.  Returns the seconds waited.
        """
        matching = [t for t in self._pending if t.category == category]
        if not matching:
            self.retire()
            return 0.0
        finish = max(t.end for t in matching)
        before = self.clock.now
        self._advance_to(finish, category)
        waited = self.clock.now - before
        self.retire()
        return waited

    def retire(self) -> int:
        """Move transfers that finished by ``clock.now`` to ``completed``."""
        now = self.clock.now
        done = [t for t in self._pending if t.end <= now]
        if done:
            self._pending = [t for t in self._pending if t.end > now]
            self.completed.extend(done)
        return len(done)

    def _advance_to(self, timestamp: float, category: str | None) -> None:
        if self.advancer is not None:
            self.advancer(timestamp, category)
        else:
            self.clock.advance_to(timestamp, category)

    @property
    def pending(self) -> tuple[Transfer, ...]:
        """The in-flight transfers (read-only view)."""
        return tuple(self._pending)

    def pending_count(self) -> int:
        return len(self._pending)

    def duration(self, kind: TransferKind, nbytes: int,
                 src: int | None = None, dst: int | None = None) -> float:
        """Unloaded duration of a PCIe transfer (latency + bytes/bw),
        ignoring link contention.  Schedule cost models (the collective
        engine, ``explain --collectives``) price candidate schedules
        with this without issuing transfers."""
        return self._duration(kind, nbytes, src, dst)

    def net_duration(self, src_node: int, dst_node: int,
                     nbytes: int) -> float:
        """Unloaded duration of a NIC transfer between two nodes.  Like
        :meth:`duration` but for the NET lane; raises
        :class:`NetworkError` on a dead link."""
        return self._net_duration(src_node, dst_node, nbytes)

    @staticmethod
    def split_chunks(nbytes: int, chunk_bytes: int) -> list[int]:
        """Split a payload into pipeline chunks of at most
        ``chunk_bytes`` (the last chunk carries the remainder).  A
        payload that fits in one chunk comes back whole -- chunking is
        only worth its per-message latency when there is something to
        overlap."""
        if nbytes <= 0:
            return []
        if chunk_bytes <= 0 or nbytes <= chunk_bytes:
            return [nbytes]
        full, rem = divmod(nbytes, chunk_bytes)
        return [chunk_bytes] * full + ([rem] if rem else [])

    @staticmethod
    def coalesce_runs(runs: list[tuple[int, int]]) -> list[tuple[int, int]]:
        """Merge adjacent ``(byte_offset, nbytes)`` runs into single
        transactions, amortizing the per-transfer PCIe latency."""
        merged: list[list[int]] = []
        for off, n in sorted(runs):
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1][1] += n
            else:
                merged.append([off, n])
        return [(off, n) for off, n in merged]

    def bytes_moved(self, kind: TransferKind | None = None) -> int:
        """Total completed bytes, optionally filtered by kind."""
        return sum(t.nbytes for t in self.completed if kind is None or t.kind == kind)

    def cross_node_bytes(self) -> int:
        """Total completed bytes that crossed a node boundary (every
        transfer that traversed the NIC, staged or direct)."""
        return sum(t.nbytes for t in self.completed if t.cross_node)

    def _check_device(self, device: int) -> None:
        if not (0 <= device < self.machine.gpu_count):
            raise ValueError(
                f"device {device} out of range for {self.machine.name} "
                f"({self.machine.gpu_count} GPUs)"
            )

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.machine.node_count):
            raise ValueError(
                f"node {node} out of range for {self.machine.name} "
                f"({self.machine.node_count} nodes)"
            )
