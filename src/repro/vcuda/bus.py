"""PCI-Express interconnect model.

Each GPU hangs off the host through one PCIe link; peer-to-peer copies
occupy the links of both endpoint GPUs and, on a dual-I/O-hub node,
cross the QPI at reduced bandwidth (``BusSpec.p2p_cross_hub``).

Transfers are *asynchronous*: :meth:`Bus.h2d` and friends only reserve
link time and return a :class:`Transfer` with start/end timestamps in
virtual time.  The caller (runtime data loader / communication manager)
synchronizes a batch with :meth:`Bus.sync`, which advances the shared
clock to the batch makespan -- this models the paper's "communications
are executed asynchronously" (section IV-D) where transfers to distinct
GPUs overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from .clock import VirtualClock
from .specs import BusSpec, MachineSpec

TransferKind = Literal["h2d", "d2h", "p2p"]

#: Profiler categories matching the paper's Fig. 8 buckets.
CATEGORY_CPU_GPU = "CPU-GPU"
CATEGORY_GPU_GPU = "GPU-GPU"
CATEGORY_KERNELS = "KERNELS"


@dataclass
class Transfer:
    """One scheduled DMA transfer."""

    kind: TransferKind
    nbytes: int
    src_device: int | None
    dst_device: int | None
    start: float
    end: float

    @property
    def seconds(self) -> float:
        return self.end - self.start

    @property
    def category(self) -> str:
        return CATEGORY_GPU_GPU if self.kind == "p2p" else CATEGORY_CPU_GPU


class Bus:
    """Link-time scheduler for one machine's PCIe topology."""

    def __init__(self, machine: MachineSpec, clock: VirtualClock) -> None:
        self.machine = machine
        self.spec: BusSpec = machine.bus
        self.clock = clock
        #: Virtual time at which each GPU's PCIe link becomes free.
        self._link_free_at: list[float] = [0.0] * machine.gpu_count
        #: Virtual time at which each I/O hub's host uplink frees up.
        n_hubs = 1 + max((machine.hub_of(g) for g in range(machine.gpu_count)),
                         default=0)
        self._hub_free_at: list[float] = [0.0] * n_hubs
        self._pending: list[Transfer] = []
        self.completed: list[Transfer] = []

    # -- pricing ------------------------------------------------------------

    def _duration(self, kind: TransferKind, nbytes: int, src: int | None, dst: int | None) -> float:
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        if nbytes == 0:
            return 0.0
        if kind == "h2d":
            bw = self.spec.h2d_bandwidth
        elif kind == "d2h":
            bw = self.spec.d2h_bandwidth
        else:
            assert src is not None and dst is not None
            same_hub = self.machine.hub_of(src) == self.machine.hub_of(dst)
            bw = self.spec.p2p_same_hub if same_hub else self.spec.p2p_cross_hub
        return self.spec.latency + nbytes / bw

    def _schedule(
        self, kind: TransferKind, nbytes: int, src: int | None, dst: int | None
    ) -> Transfer:
        links = [d for d in (src, dst) if d is not None]
        duration = self._duration(kind, nbytes, src, dst)
        start = max([self.clock.now] + [self._link_free_at[d] for d in links])
        hub = None
        hub_occupancy = 0.0
        if kind in ("h2d", "d2h") and links:
            # Host transfers also consume the shared I/O-hub uplink, for a
            # fraction of their duration equal to link/uplink bandwidth:
            # concurrent same-hub transfers serialize on that share.
            hub = self.machine.hub_of(links[0])
            link_bw = (self.spec.h2d_bandwidth if kind == "h2d"
                       else self.spec.d2h_bandwidth)
            hub_occupancy = duration * min(
                1.0, link_bw / self.spec.hub_uplink_bandwidth)
            start = max(start, self._hub_free_at[hub])
        end = start + duration
        for d in links:
            self._link_free_at[d] = end
        if hub is not None:
            self._hub_free_at[hub] = start + hub_occupancy
        t = Transfer(kind=kind, nbytes=nbytes, src_device=src, dst_device=dst, start=start, end=end)
        self._pending.append(t)
        return t

    # -- public API ----------------------------------------------------------

    def h2d(self, device: int, nbytes: int) -> Transfer:
        """Queue a host-to-device copy on ``device``'s link."""
        self._check_device(device)
        return self._schedule("h2d", nbytes, None, device)

    def d2h(self, device: int, nbytes: int) -> Transfer:
        """Queue a device-to-host copy on ``device``'s link."""
        self._check_device(device)
        return self._schedule("d2h", nbytes, device, None)

    def p2p(self, src: int, dst: int, nbytes: int) -> Transfer:
        """Queue a direct GPU-to-GPU copy occupying both links."""
        self._check_device(src)
        self._check_device(dst)
        if src == dst:
            raise ValueError("peer copy requires distinct devices")
        return self._schedule("p2p", nbytes, src, dst)

    def sync(self, category: str | None = None) -> float:
        """Wait for all queued transfers; advance the clock to the makespan.

        Returns the makespan seconds of this batch (0 if nothing was
        pending or everything already completed).  The advanced wall
        time is attributed to ``category`` (or each transfer's own
        category bucket when the batch is homogeneous and ``category``
        is None).
        """
        if not self._pending:
            return 0.0
        finish = max(t.end for t in self._pending)
        if category is None:
            cats = {t.category for t in self._pending}
            if len(cats) != 1:
                raise ValueError(
                    "mixed-category transfer batch requires an explicit category"
                )
            category = cats.pop()
        before = self.clock.now
        self.clock.advance_to(finish, category)
        makespan = self.clock.now - before
        self.completed.extend(self._pending)
        self._pending.clear()
        return makespan

    def pending_count(self) -> int:
        return len(self._pending)

    def bytes_moved(self, kind: TransferKind | None = None) -> int:
        """Total completed bytes, optionally filtered by kind."""
        return sum(t.nbytes for t in self.completed if kind is None or t.kind == kind)

    def _check_device(self, device: int) -> None:
        if not (0 <= device < self.machine.gpu_count):
            raise ValueError(
                f"device {device} out of range for {self.machine.name} "
                f"({self.machine.gpu_count} GPUs)"
            )
