"""Device memory: buffers and a byte-accounted allocator.

The paper's Fig. 9 reports, per application and per GPU count, how much
device memory holds *user* data (the program's arrays, including
replicas) versus *system* data (dirty-bit arrays, write-miss buffers,
reduction scratch).  The allocator therefore tags every allocation with
a purpose and keeps running and high-water totals per purpose.

Buffers are plain NumPy arrays underneath -- the hpc-parallel guides'
advice to keep data in contiguous vectorizable storage applies to the
simulated device memory exactly as it would to real pinned host memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

#: Allocation purposes recognized by the accounting (Fig. 9 buckets).
PURPOSE_USER = "user"
PURPOSE_SYSTEM = "system"
_PURPOSES = (PURPOSE_USER, PURPOSE_SYSTEM)


class OutOfDeviceMemory(MemoryError):
    """Raised when an allocation exceeds the device's capacity."""


@dataclass
class DeviceBuffer:
    """A contiguous allocation in one GPU's memory.

    ``data`` is the backing NumPy array.  ``base`` records which global
    index of the source host array element 0 of this buffer corresponds
    to; the translator's index rewriting (paper section IV-B3) subtracts
    it when a kernel accesses a partially-loaded array.
    """

    name: str
    data: np.ndarray
    device_index: int
    purpose: str = PURPOSE_USER
    base: int = 0
    #: True once freed; guards use-after-free in tests.
    freed: bool = False

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def check_alive(self) -> None:
        if self.freed:
            raise RuntimeError(f"use of freed device buffer {self.name!r}")

    def view(self) -> np.ndarray:
        """The live array contents (a view, per the guides: not a copy)."""
        self.check_alive()
        return self.data


@dataclass
class MemoryAccountant:
    """Tracks live and high-water bytes per purpose for one device."""

    capacity: int
    live: dict[str, int] = field(default_factory=lambda: {p: 0 for p in _PURPOSES})
    high_water: dict[str, int] = field(default_factory=lambda: {p: 0 for p in _PURPOSES})

    @property
    def live_total(self) -> int:
        return sum(self.live.values())

    @property
    def high_water_total(self) -> int:
        """Peak of the *sum*, tracked at allocation time."""
        return self._peak_total

    _peak_total: int = 0

    def allocate(self, nbytes: int, purpose: str) -> None:
        if purpose not in _PURPOSES:
            raise ValueError(f"unknown allocation purpose {purpose!r}")
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if self.live_total + nbytes > self.capacity:
            raise OutOfDeviceMemory(
                f"allocation of {nbytes} bytes exceeds device capacity "
                f"({self.live_total} of {self.capacity} in use)"
            )
        self.live[purpose] += nbytes
        self.high_water[purpose] = max(self.high_water[purpose], self.live[purpose])
        self._peak_total = max(self._peak_total, self.live_total)

    def free(self, nbytes: int, purpose: str) -> None:
        if purpose not in _PURPOSES:
            raise ValueError(f"unknown allocation purpose {purpose!r}")
        if nbytes > self.live[purpose]:
            raise RuntimeError(
                f"double free: releasing {nbytes} {purpose} bytes with only "
                f"{self.live[purpose]} live"
            )
        self.live[purpose] -= nbytes


class DeviceMemory:
    """Allocator facade for one device.

    Allocations return :class:`DeviceBuffer`; all byte accounting flows
    through a :class:`MemoryAccountant` so Fig. 9 can be regenerated
    from high-water marks.
    """

    def __init__(self, device_index: int, capacity: int) -> None:
        self.device_index = device_index
        self.accountant = MemoryAccountant(capacity=capacity)
        self._buffers: list[DeviceBuffer] = []
        #: Sanitizer support: overwrite freed buffers with a poison
        #: pattern (NaN for floats, a large sentinel for integers) so a
        #: stale reference that survives the free produces loudly wrong
        #: values instead of silently reading the old contents.
        self.poison_on_free = False

    def alloc(
        self,
        name: str,
        shape: int | tuple[int, ...],
        dtype: np.dtype | type = np.float32,
        purpose: str = PURPOSE_USER,
        base: int = 0,
        fill: float | int | None = None,
    ) -> DeviceBuffer:
        """Allocate a buffer; optionally fill it with a constant."""
        arr = np.empty(shape, dtype=dtype)
        if fill is not None:
            arr.fill(fill)
        self.accountant.allocate(int(arr.nbytes), purpose)
        buf = DeviceBuffer(
            name=name,
            data=arr,
            device_index=self.device_index,
            purpose=purpose,
            base=base,
        )
        self._buffers.append(buf)
        return buf

    def alloc_like(
        self, name: str, host_array: np.ndarray, purpose: str = PURPOSE_USER
    ) -> DeviceBuffer:
        """Allocate a buffer shaped like ``host_array`` and copy it in.

        This is a pure allocation primitive -- transfer *time* is the
        bus's job, so callers that care about timing must route the copy
        through :class:`repro.vcuda.bus.Bus`.
        """
        buf = self.alloc(name, host_array.shape, host_array.dtype, purpose=purpose)
        np.copyto(buf.data, host_array)
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        if buf.device_index != self.device_index:
            raise ValueError("buffer belongs to a different device")
        buf.check_alive()
        self.accountant.free(buf.nbytes, buf.purpose)
        buf.freed = True
        if self.poison_on_free and buf.data.size:
            if np.issubdtype(buf.data.dtype, np.floating):
                buf.data.fill(np.nan)
            elif np.issubdtype(buf.data.dtype, np.integer):
                buf.data.fill(np.iinfo(buf.data.dtype).max)
        self._buffers.remove(buf)

    def free_all(self) -> None:
        """Release every live buffer (device reset)."""
        for buf in list(self._buffers):
            self.free(buf)

    def live_buffers(self) -> Iterator[DeviceBuffer]:
        return iter(self._buffers)

    @property
    def live_bytes(self) -> int:
        return self.accountant.live_total

    def live_bytes_of(self, purpose: str) -> int:
        return self.accountant.live[purpose]

    def high_water_of(self, purpose: str) -> int:
        return self.accountant.high_water[purpose]
