"""Virtual CUDA platform: devices, memory, PCIe bus, streams, profiler.

This package stands in for the CUDA 4.0 platform the paper's prototype
was built on.  Kernels really execute (on NumPy-backed device buffers);
time is modeled by analytic cost models over the Table I hardware
specifications, so benchmark results are deterministic and reproduce
the paper's *relative* performance structure.
"""

from .api import Platform
from .bus import (
    Bus,
    CATEGORY_CPU_GPU,
    CATEGORY_GPU_GPU,
    CATEGORY_GPU_GPU_OVERLAPPED,
    CATEGORY_KERNELS,
    Transfer,
)
from .clock import VirtualClock
from .device import Device, KernelLaunchRecord, KernelWork, LaunchConfig
from .memory import (
    DeviceBuffer,
    DeviceMemory,
    MemoryAccountant,
    OutOfDeviceMemory,
    PURPOSE_SYSTEM,
    PURPOSE_USER,
)
from .profiler import Profiler, TimeBreakdown
from .specs import (
    BusSpec,
    CpuSpec,
    DESKTOP_MACHINE,
    GpuSpec,
    MACHINES,
    MachineSpec,
    SUPERCOMPUTER_NODE,
    TESLA_C2075,
    TESLA_M2050,
)
from .stream import Event, Stream

__all__ = [
    "Platform",
    "Bus",
    "Transfer",
    "CATEGORY_CPU_GPU",
    "CATEGORY_GPU_GPU",
    "CATEGORY_GPU_GPU_OVERLAPPED",
    "CATEGORY_KERNELS",
    "VirtualClock",
    "Device",
    "KernelLaunchRecord",
    "KernelWork",
    "LaunchConfig",
    "DeviceBuffer",
    "DeviceMemory",
    "MemoryAccountant",
    "OutOfDeviceMemory",
    "PURPOSE_USER",
    "PURPOSE_SYSTEM",
    "Profiler",
    "TimeBreakdown",
    "GpuSpec",
    "CpuSpec",
    "BusSpec",
    "MachineSpec",
    "MACHINES",
    "DESKTOP_MACHINE",
    "SUPERCOMPUTER_NODE",
    "TESLA_C2075",
    "TESLA_M2050",
    "Event",
    "Stream",
]
