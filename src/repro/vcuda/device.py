"""Virtual GPU device: memory, launch configuration, kernel timing.

A :class:`Device` owns a :class:`~repro.vcuda.memory.DeviceMemory` and
prices kernel executions with a roofline-style model::

    t = launch_overhead + max(compute_time, memory_time)

where compute time is total FLOPs over derated peak throughput and
memory time is the sum of coalesced and random traffic over their
respective effective bandwidths.  The translator's static cost analysis
(:mod:`repro.translator.cost`) produces the per-iteration
:class:`KernelWork`; the runtime fills in dynamic totals (actual inner
trip counts) before launching.
"""

from __future__ import annotations

from dataclasses import dataclass

from .memory import DeviceMemory
from .specs import GpuSpec


@dataclass
class KernelWork:
    """Work volume of one kernel launch, used for pricing only.

    All values are *totals* over the launch's iteration slice.  The
    static analyzer produces per-iteration figures and multiplies by the
    slice length; data-dependent inner loops contribute their measured
    dynamic totals instead (paper apps: BFS edge visits).
    """

    #: Total floating-point operations.
    flops: float = 0.0
    #: Integer/address ALU operations (priced at the same unit as flops
    #: but Fermi issues them on the same pipes, so they just add in).
    int_ops: float = 0.0
    #: Bytes moved with unit-stride (coalesced) access.
    coalesced_bytes: float = 0.0
    #: Bytes moved with data-dependent/strided (uncoalesced) access.
    random_bytes: float = 0.0
    #: Extra serialization factor >= 1 (e.g. atomics, divergence).
    serialization: float = 1.0

    def scaled(self, factor: float) -> "KernelWork":
        """Work scaled by ``factor`` iterations (static -> launch total)."""
        return KernelWork(
            flops=self.flops * factor,
            int_ops=self.int_ops * factor,
            coalesced_bytes=self.coalesced_bytes * factor,
            random_bytes=self.random_bytes * factor,
            serialization=self.serialization,
        )

    def __add__(self, other: "KernelWork") -> "KernelWork":
        return KernelWork(
            flops=self.flops + other.flops,
            int_ops=self.int_ops + other.int_ops,
            coalesced_bytes=self.coalesced_bytes + other.coalesced_bytes,
            random_bytes=self.random_bytes + other.random_bytes,
            serialization=max(self.serialization, other.serialization),
        )


@dataclass
class LaunchConfig:
    """CUDA-style launch geometry chosen by the generated host code.

    The translator sizes the grid from the number of tasks assigned to
    this GPU (paper section IV-B2: tasks equally divided, thread count
    derived per GPU).
    """

    grid_dim: int
    block_dim: int = 256

    @property
    def total_threads(self) -> int:
        return self.grid_dim * self.block_dim

    @classmethod
    def for_tasks(cls, n_tasks: int, block_dim: int = 256) -> "LaunchConfig":
        if n_tasks < 0:
            raise ValueError("task count must be non-negative")
        grid = max(1, -(-n_tasks // block_dim))
        return cls(grid_dim=grid, block_dim=block_dim)


@dataclass
class KernelLaunchRecord:
    """One priced kernel launch (kept for profiling/tests)."""

    kernel_name: str
    device_index: int
    config: LaunchConfig
    work: KernelWork
    seconds: float
    #: Virtual-time start of the launch (set by the scheduler).
    start: float = 0.0

    @property
    def end(self) -> float:
        return self.start + self.seconds


class Device:
    """One virtual GPU."""

    def __init__(self, index: int, spec: GpuSpec) -> None:
        self.index = index
        self.spec = spec
        self.memory = DeviceMemory(index, spec.mem_capacity)
        self.launches: list[KernelLaunchRecord] = []
        #: Absolute virtual time at which this device's queued work ends;
        #: lets kernels on different devices run concurrently.
        self.busy_until: float = 0.0

    # -- timing ------------------------------------------------------------

    def kernel_time(self, work: KernelWork, config: LaunchConfig) -> float:
        """Price a launch with the roofline model (seconds)."""
        spec = self.spec
        ops = work.flops + 0.5 * work.int_ops
        compute_t = ops / (spec.peak_sp_flops * spec.compute_efficiency)
        mem_t = work.coalesced_bytes / (
            spec.mem_bandwidth * spec.coalesced_efficiency
        ) + work.random_bytes / (spec.mem_bandwidth * spec.random_efficiency)
        occupancy = self._occupancy(config)
        body = max(compute_t, mem_t) * work.serialization / occupancy
        return spec.launch_overhead + body

    def _occupancy(self, config: LaunchConfig) -> float:
        """Throughput derating for undersized grids.

        A launch needs roughly ``2 * sm_count`` resident blocks to cover
        latency; smaller grids run proportionally slower.
        """
        needed = 2 * self.spec.sm_count
        if config.grid_dim >= needed:
            return 1.0
        return max(config.grid_dim / needed, 1.0 / needed)

    def record_launch(
        self, kernel_name: str, work: KernelWork, config: LaunchConfig, seconds: float
    ) -> KernelLaunchRecord:
        rec = KernelLaunchRecord(
            kernel_name=kernel_name,
            device_index=self.index,
            config=config,
            work=work,
            seconds=seconds,
        )
        self.launches.append(rec)
        return rec

    def busy_intervals(self, since: float) -> list[tuple[float, float]]:
        """``(start, end)`` of recorded launches still running at ``since``.

        The timeline-attributing clock advance uses these to decide
        which parts of a waited interval were covered by kernel work.
        """
        return [(l.start, l.end) for l in self.launches if l.end > since]

    def reset(self) -> None:
        self.memory.free_all()
        self.launches.clear()
        self.busy_until = 0.0
