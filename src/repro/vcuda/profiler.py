"""Execution-time profiler with the paper's Fig. 8 categories.

The paper breaks parallel-region time into three buckets: time in GPU
kernels (``KERNELS``), host-device transfer time (``CPU-GPU``), and
inter-GPU transfer time (``GPU-GPU``).  The profiler reads these from
the shared :class:`~repro.vcuda.clock.VirtualClock` category
accumulators and can snapshot/diff them around a region of interest.
"""

from __future__ import annotations

from dataclasses import dataclass

from .bus import (
    CATEGORY_CPU_GPU,
    CATEGORY_GPU_GPU,
    CATEGORY_GPU_GPU_OVERLAPPED,
    CATEGORY_KERNELS,
)
from .clock import VirtualClock

ALL_CATEGORIES = (CATEGORY_KERNELS, CATEGORY_CPU_GPU, CATEGORY_GPU_GPU)


@dataclass(frozen=True)
class TimeBreakdown:
    """Seconds per category plus anything uncategorized."""

    kernels: float
    cpu_gpu: float
    gpu_gpu: float
    other: float = 0.0
    #: Inter-GPU transfer seconds hidden under kernels by the async
    #: communication layer.  Not part of ``total``: the clock never
    #: advanced for it, so ``gpu_gpu`` stays *exposed* comm (Fig. 8)
    #: and this field reports how much the overlap machinery hid.
    gpu_gpu_overlapped: float = 0.0

    @property
    def total(self) -> float:
        return self.kernels + self.cpu_gpu + self.gpu_gpu + self.other

    def normalized_to(self, denom: float) -> "TimeBreakdown":
        """Breakdown scaled by ``1/denom`` (Fig. 8 normalizes to the
        single-GPU total)."""
        if denom <= 0:
            raise ValueError("normalization denominator must be positive")
        return TimeBreakdown(
            kernels=self.kernels / denom,
            cpu_gpu=self.cpu_gpu / denom,
            gpu_gpu=self.gpu_gpu / denom,
            other=self.other / denom,
            gpu_gpu_overlapped=self.gpu_gpu_overlapped / denom,
        )

    def __sub__(self, other: "TimeBreakdown") -> "TimeBreakdown":
        return TimeBreakdown(
            kernels=self.kernels - other.kernels,
            cpu_gpu=self.cpu_gpu - other.cpu_gpu,
            gpu_gpu=self.gpu_gpu - other.gpu_gpu,
            other=self.other - other.other,
            gpu_gpu_overlapped=self.gpu_gpu_overlapped - other.gpu_gpu_overlapped,
        )


class Profiler:
    """Snapshots the clock's category accumulators around regions."""

    def __init__(self, clock: VirtualClock) -> None:
        self.clock = clock
        self._region_start: tuple[float, TimeBreakdown] | None = None

    def snapshot(self) -> TimeBreakdown:
        c = self.clock
        kernels = c.elapsed_in(CATEGORY_KERNELS)
        cpu_gpu = c.elapsed_in(CATEGORY_CPU_GPU)
        gpu_gpu = c.elapsed_in(CATEGORY_GPU_GPU)
        other = c.now - kernels - cpu_gpu - gpu_gpu
        return TimeBreakdown(kernels=kernels, cpu_gpu=cpu_gpu, gpu_gpu=gpu_gpu,
                             other=other,
                             gpu_gpu_overlapped=c.elapsed_in(
                                 CATEGORY_GPU_GPU_OVERLAPPED))

    def begin_region(self) -> None:
        self._region_start = (self.clock.now, self.snapshot())

    def end_region(self) -> TimeBreakdown:
        if self._region_start is None:
            raise RuntimeError("end_region without begin_region")
        _, start = self._region_start
        self._region_start = None
        return self.snapshot() - start
