"""Execution-time profiler with the paper's Fig. 8 categories.

The paper breaks parallel-region time into three buckets: time in GPU
kernels (``KERNELS``), host-device transfer time (``CPU-GPU``), and
inter-GPU transfer time (``GPU-GPU``).  The profiler reads these from
the shared :class:`~repro.vcuda.clock.VirtualClock` category
accumulators and can snapshot/diff them around a region of interest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .bus import (
    CATEGORY_CPU_GPU,
    CATEGORY_GPU_GPU,
    CATEGORY_GPU_GPU_OVERLAPPED,
    CATEGORY_KERNELS,
    CATEGORY_NET,
    CATEGORY_NET_OVERLAPPED,
)
from .clock import VirtualClock

ALL_CATEGORIES = (CATEGORY_KERNELS, CATEGORY_CPU_GPU, CATEGORY_GPU_GPU,
                  CATEGORY_NET)


@dataclass(frozen=True)
class TimeBreakdown:
    """Seconds per category plus anything uncategorized."""

    kernels: float
    cpu_gpu: float
    gpu_gpu: float
    other: float = 0.0
    #: Inter-GPU transfer seconds hidden under kernels by the async
    #: communication layer.  Not part of ``total``: the clock never
    #: advanced for it, so ``gpu_gpu`` stays *exposed* comm (Fig. 8)
    #: and this field reports how much the overlap machinery hid.
    gpu_gpu_overlapped: float = 0.0
    #: Exposed inter-node (NIC) transfer seconds -- the fourth lane
    #: multi-node breakdowns report next to Fig. 8's three buckets.
    #: Always zero on a single-node machine.
    net: float = 0.0
    #: NET seconds hidden under accounted work (NET analogue of
    #: ``gpu_gpu_overlapped``; not part of ``total``).
    net_overlapped: float = 0.0

    @property
    def total(self) -> float:
        return self.kernels + self.cpu_gpu + self.gpu_gpu + self.net \
            + self.other

    def normalized_to(self, denom: float) -> "TimeBreakdown":
        """Breakdown scaled by ``1/denom`` (Fig. 8 normalizes to the
        single-GPU total)."""
        if denom <= 0:
            raise ValueError("normalization denominator must be positive")
        return TimeBreakdown(
            kernels=self.kernels / denom,
            cpu_gpu=self.cpu_gpu / denom,
            gpu_gpu=self.gpu_gpu / denom,
            other=self.other / denom,
            gpu_gpu_overlapped=self.gpu_gpu_overlapped / denom,
            net=self.net / denom,
            net_overlapped=self.net_overlapped / denom,
        )

    def __sub__(self, other: "TimeBreakdown") -> "TimeBreakdown":
        return TimeBreakdown(
            kernels=self.kernels - other.kernels,
            cpu_gpu=self.cpu_gpu - other.cpu_gpu,
            gpu_gpu=self.gpu_gpu - other.gpu_gpu,
            other=self.other - other.other,
            gpu_gpu_overlapped=self.gpu_gpu_overlapped - other.gpu_gpu_overlapped,
            net=self.net - other.net,
            net_overlapped=self.net_overlapped - other.net_overlapped,
        )


@dataclass
class LoopKernelStats:
    """Per-GPU kernel accounting of one parallel loop (by loop id).

    Accumulated across every execution of the loop: launch counts,
    busy seconds, and iterations assigned.  The adaptive balancer
    consumes these to derive measured per-GPU throughput; the Fig. 8
    machinery can report them standalone.
    """

    loop_id: str
    launches: list[int] = field(default_factory=list)
    busy_seconds: list[float] = field(default_factory=list)
    iterations: list[int] = field(default_factory=list)
    calls: int = 0

    def _grow(self, gpu: int) -> None:
        while len(self.launches) <= gpu:
            self.launches.append(0)
            self.busy_seconds.append(0.0)
            self.iterations.append(0)

    @property
    def total_launches(self) -> int:
        return sum(self.launches)

    @property
    def total_busy_seconds(self) -> float:
        return sum(self.busy_seconds)


class Profiler:
    """Snapshots the clock's category accumulators around regions.

    Also keeps per-loop-id, per-GPU kernel accumulators
    (:class:`LoopKernelStats`) fed by the executor at every launch.
    """

    def __init__(self, clock: VirtualClock, ngpus: int = 0) -> None:
        self.clock = clock
        self.ngpus = ngpus
        self._region_start: tuple[float, TimeBreakdown] | None = None
        self.loop_kernels: dict[str, LoopKernelStats] = {}

    # -- per-loop kernel accounting ----------------------------------------

    def record_kernel(self, loop_id: str, gpu: int, seconds: float,
                      launches: int = 1, iterations: int = 0) -> None:
        """Accumulate one (or more) kernel launches of ``loop_id`` on
        GPU ``gpu``: busy time and iteration count."""
        st = self.loop_kernels.get(loop_id)
        if st is None:
            st = LoopKernelStats(loop_id=loop_id)
            st._grow(max(self.ngpus - 1, gpu))
            self.loop_kernels[loop_id] = st
        st._grow(gpu)
        st.launches[gpu] += launches
        st.busy_seconds[gpu] += seconds
        st.iterations[gpu] += iterations

    def note_loop_call(self, loop_id: str) -> None:
        """Count one execution of the parallel loop ``loop_id``."""
        st = self.loop_kernels.get(loop_id)
        if st is None:
            st = LoopKernelStats(loop_id=loop_id)
            st._grow(self.ngpus - 1)
            self.loop_kernels[loop_id] = st
        st.calls += 1

    def kernel_stats(self, loop_id: str) -> LoopKernelStats | None:
        return self.loop_kernels.get(loop_id)

    def snapshot(self) -> TimeBreakdown:
        c = self.clock
        kernels = c.elapsed_in(CATEGORY_KERNELS)
        cpu_gpu = c.elapsed_in(CATEGORY_CPU_GPU)
        gpu_gpu = c.elapsed_in(CATEGORY_GPU_GPU)
        net = c.elapsed_in(CATEGORY_NET)
        other = c.now - kernels - cpu_gpu - gpu_gpu - net
        return TimeBreakdown(kernels=kernels, cpu_gpu=cpu_gpu, gpu_gpu=gpu_gpu,
                             other=other,
                             gpu_gpu_overlapped=c.elapsed_in(
                                 CATEGORY_GPU_GPU_OVERLAPPED),
                             net=net,
                             net_overlapped=c.elapsed_in(
                                 CATEGORY_NET_OVERLAPPED))

    def begin_region(self) -> None:
        self._region_start = (self.clock.now, self.snapshot())

    def end_region(self) -> TimeBreakdown:
        if self._region_start is None:
            raise RuntimeError("end_region without begin_region")
        _, start = self._region_start
        self._region_start = None
        return self.snapshot() - start
