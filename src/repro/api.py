"""Public API of the reproduction library.

Typical use::

    import repro

    prog = repro.compile(SOURCE)               # OpenACC C with extensions
    run = prog.run("main_fn", args={...},      # execute on a virtual machine
                   machine="desktop", ngpus=2)
    run.result.env["y"]                        # output arrays (in place)
    run.elapsed                                # modeled seconds
    run.breakdown                              # KERNELS / CPU-GPU / GPU-GPU

``machine`` is one of :data:`repro.vcuda.MACHINES` (the paper's Table I
platforms) or any :class:`~repro.vcuda.specs.MachineSpec`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from .explain import ExplainReport

from .runtime.context import AccExecutor, LoopRunStats
from .runtime.data_loader import DataLoader
from .runtime.dirty import DEFAULT_CHUNK_BYTES
from .frontend.fortran import parse_fortran
from .translator.compiler import (
    CompiledProgram,
    CompileOptions,
    compile_program,
    compile_source,
)
from .translator.host import HostExecutor, RunResult
from .vcuda.api import Platform
from .vcuda.memory import PURPOSE_SYSTEM, PURPOSE_USER
from .vcuda.profiler import TimeBreakdown
from .vcuda.specs import CLUSTERS, MACHINES, ClusterSpec, MachineSpec


@dataclass(frozen=True)
class TimelineEvent:
    """One scheduled operation in virtual time."""

    kind: str  # 'kernel' | 'h2d' | 'd2h' | 'p2p' | 'net'
    label: str
    resource: str
    start: float
    end: float

    @property
    def seconds(self) -> float:
        return self.end - self.start


@dataclass
class ProgramRun:
    """Everything observable about one program execution."""

    result: RunResult
    platform: Platform
    executor: AccExecutor
    breakdown: TimeBreakdown
    loop_stats: list[LoopRunStats] = field(default_factory=list)
    #: The coherence sanitizer, when the run was sanitized (else None).
    sanitizer: Any | None = None
    #: The structured tracer, when the run was traced (else None).
    #: Export with :func:`repro.trace.chrome_trace` /
    #: :func:`repro.trace.jsonl`.
    tracer: Any | None = None

    @property
    def elapsed(self) -> float:
        """Modeled wall time (virtual seconds)."""
        return self.platform.elapsed()

    @property
    def value(self) -> Any:
        return self.result.value

    def memory_high_water(self, purpose: str | None = None) -> int:
        """Peak device bytes across all GPUs (Fig. 9 numbers)."""
        if purpose is None:
            return (self.platform.memory_high_water(PURPOSE_USER)
                    + self.platform.memory_high_water(PURPOSE_SYSTEM))
        return self.platform.memory_high_water(purpose)

    @property
    def kernel_launches(self) -> int:
        return sum(len(d.launches) for d in self.platform.devices)

    def timeline(self) -> list["TimelineEvent"]:
        """Chronological event list: kernel launches and DMA transfers.

        Events from different devices/links overlap in virtual time;
        sorting by start shows exactly how the scheduler interleaved
        them -- useful to see why multi-GPU scaling plateaus.
        """
        events: list[TimelineEvent] = []
        for d in self.platform.devices:
            for l in d.launches:
                events.append(TimelineEvent(
                    kind="kernel", label=l.kernel_name,
                    resource=f"gpu{d.index}", start=l.start, end=l.end))
        for t in self.platform.bus.completed:
            if t.kind == "h2d":
                resource = f"pcie->gpu{t.dst_device}"
            elif t.kind == "d2h":
                resource = f"pcie<-gpu{t.src_device}"
            elif t.kind == "net":
                resource = f"nic node{t.src_node}->node{t.dst_node}"
            else:
                resource = f"p2p gpu{t.src_device}->gpu{t.dst_device}"
            events.append(TimelineEvent(
                kind=t.kind, label=f"{t.nbytes}B", resource=resource,
                start=t.start, end=t.end))
        events.sort(key=lambda e: (e.start, e.end))
        return events


class AccProgram:
    """A compiled OpenACC program bound to no particular machine."""

    def __init__(self, compiled: CompiledProgram) -> None:
        self.compiled = compiled

    @property
    def kernels(self):
        return self.compiled.plans

    def kernel(self, name: str):
        return self.compiled.plan(name)

    def kernel_source(self, name: str) -> str:
        """The generated vectorized NumPy source for one kernel."""
        return self.compiled.plan(name).source

    def explain(self) -> "ExplainReport":
        """Per-loop, per-array placement report (``repro.explain``).

        Shows, for every parallel loop and array, whether placement is
        replica or distributed, whether the window was declared by a
        ``localaccess`` directive or inferred by the compiler, the
        window formula, and why inference bailed where it did.
        """
        from .explain import explain
        return explain(self.compiled)

    def run(
        self,
        entry: str,
        args: dict[str, Any],
        machine: str | MachineSpec | ClusterSpec = "desktop",
        ngpus: int = 1,
        engine: str = "vector",
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        reload_skipping: bool = True,
        tree_reduction: bool = True,
        overlap: bool = False,
        coalesce: bool = False,
        adaptive: bool = False,
        sanitize: bool | None = None,
        trace: bool | None = None,
        fastpath: bool = True,
        internode: str = "staged",
        collective: str = "none",
    ) -> ProgramRun:
        """Execute ``entry`` with ``args`` on a virtual machine.

        Arrays in ``args`` are modified in place (C pointer semantics).
        ``engine='interp'`` forces the scalar reference interpreter for
        every kernel (slow; used by differential tests).
        ``overlap=True`` pipelines inter-GPU communication with later
        kernels; ``coalesce=True`` merges adjacent dirty chunks into one
        bus transaction.  ``adaptive=True`` enables profile-guided task
        mapping and placement switching (delta migration between
        splits).  All three change only *timing*, never results.

        ``sanitize=True`` (or ``REPRO_SANITIZE=1`` in the environment)
        enables the multi-GPU coherence sanitizer: every parallel loop
        is shadow-executed single-GPU and diffed, runtime coherence
        invariants are asserted, and ``localaccess`` declarations are
        audited (:mod:`repro.sanitizer`).  Checks work purely in data
        space and never touch the virtual clock, so modeled time is
        unchanged; wall-clock cost is roughly one interpreter pass per
        loop.  Violations raise
        :class:`~repro.sanitizer.CoherenceViolation`.

        ``trace=True`` (or ``REPRO_TRACE=1``) enables the structured
        tracing subsystem (:mod:`repro.trace`): every kernel launch,
        DMA transfer (tagged with its coherence mechanism), reload-skip
        hit, balancer resplit and placement switch is recorded with its
        modeled start/duration, and a metrics registry aggregates
        per-loop/per-GPU counters.  The tracer is a pure observer:
        modeled times and result arrays are bit-identical with tracing
        on or off.  The recorded :class:`repro.trace.Tracer` is on
        :attr:`ProgramRun.tracer`.

        ``fastpath=False`` disables the runtime's wall-clock fast paths
        (packed dirty bitsets, span codegen branches, launch-context
        caching, batched miss replay) and runs the straightforward
        reference implementations instead.  Purely a host-side speed
        knob: results, modeled time and transfer bytes are bit-identical
        either way (the determinism matrix pins this); the wall-clock
        benchmarks use it as the "before" baseline.

        ``machine`` may also be a :class:`~repro.vcuda.specs.ClusterSpec`
        (or a name from :data:`repro.vcuda.specs.CLUSTERS`): GPUs across
        all nodes flatten into one index space and every flag above runs
        unmodified.  ``internode`` selects the cross-node transport on
        clusters: ``"staged"`` (default) aggregates coherence traffic
        per node pair -- gather to the node host, one NIC transfer,
        scatter on arrival -- while ``"naive"`` ships one NIC transfer
        per GPU pair.  Both are timing-only knobs; single-node runs
        never touch the NIC and ignore the choice.

        ``collective`` upgrades the staged transport's broadcast and
        exchange schedules (docs/COLLECTIVES.md): ``"ring"`` pipelines
        chunked broadcasts around a group-contiguous node ring (and a
        hub-local GPU ring inside a node), ``"tree"`` uses a binomial
        tree, and ``"auto"`` prices both per transfer against the
        modeled topology and takes the cheaper.  Any value other than
        the default ``"none"`` also enables the staged-exchange
        progress engine, which overlaps the gather/NIC/scatter legs in
        NIC-sized chunks.  Timing-only like ``internode``: results are
        bit-identical across all four modes, and one-GPU or
        ``"none"``-mode runs reproduce the legacy schedule exactly.
        """
        if sanitize is None:
            sanitize = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
        if trace is None:
            trace = os.environ.get("REPRO_TRACE", "") not in ("", "0")
        if isinstance(machine, str):
            spec = (CLUSTERS[machine] if machine in CLUSTERS
                    else MACHINES[machine])
        else:
            spec = machine
        platform = Platform(spec, ngpus)
        loader = DataLoader(platform, chunk_bytes=chunk_bytes,
                            reload_skipping=reload_skipping,
                            migrate_deltas=adaptive, fastpath=fastpath)
        sanitizer = None
        if sanitize:
            from .sanitizer import Sanitizer

            sanitizer = Sanitizer(loader)
            for dev in platform.devices:
                dev.memory.poison_on_free = True
        tracer = None
        if trace:
            from .trace import Tracer

            tracer = Tracer(ngpus=ngpus, machine=spec.name)
        executor = AccExecutor(platform, loader, engine=engine,
                               tree_reduction=tree_reduction,
                               overlap=overlap, coalesce=coalesce,
                               adaptive=adaptive, sanitizer=sanitizer,
                               tracer=tracer, fastpath=fastpath,
                               internode=internode, collective=collective)
        host = HostExecutor(self.compiled, executor)
        result = host.call(entry, args)
        return ProgramRun(
            result=result,
            platform=platform,
            executor=executor,
            breakdown=platform.profiler.snapshot(),
            loop_stats=list(executor.history),
            sanitizer=sanitizer,
            tracer=tracer,
        )


def compile(source: str, options: CompileOptions | None = None,
            registry: Any | None = None) -> AccProgram:  # noqa: A001
    """Compile OpenACC C source (with the multi-GPU extensions).

    ``registry`` may name a :class:`repro.serve.ProgramRegistry` (or a
    directory path for one): compilation then consults the persistent
    on-disk compiled-program store first and persists fresh
    translations, so a second process compiling the same source with
    the same options loads it from disk instead of re-translating.
    """
    if registry is not None:
        from .serve.registry import ProgramRegistry

        if not isinstance(registry, ProgramRegistry):
            registry = ProgramRegistry(registry)
        compiled, _ = registry.load_or_compile(source, options)
        return AccProgram(compiled)
    return AccProgram(compile_source(source, options))


def compile_fortran(source: str,
                    options: CompileOptions | None = None) -> AccProgram:
    """Compile OpenACC Fortran source (same extensions, same pipeline).

    The Fortran frontend lowers to the shared AST (1-based subscripts
    become 0-based, ``do`` loops become canonical ``for`` loops,
    ``localaccess`` windows are re-based), so analysis, code generation
    and the runtime are identical to the C path.
    """
    return AccProgram(compile_program(parse_fortran(source), options))


def format_timeline(events: list[TimelineEvent], width: int = 60) -> str:
    """ASCII Gantt chart of a run's timeline, one row per resource.

    Each row shows when its device or link was busy; overlap between
    rows is the concurrency the virtual scheduler found.
    """
    if not events:
        return "(empty timeline)"
    t1 = max(e.end for e in events)
    if t1 <= 0:
        return "(zero-length timeline)"
    by_resource: dict[str, list[TimelineEvent]] = {}
    for e in events:
        by_resource.setdefault(e.resource, []).append(e)
    label_w = max(len(r) for r in by_resource)
    lines = [f"{'':{label_w}}  0{'.' * (width - 8)}{t1 * 1e3:.3f}ms"]
    for resource in sorted(by_resource):
        row = [" "] * width
        for e in by_resource[resource]:
            a = int(e.start / t1 * (width - 1))
            b = max(a + 1, int(e.end / t1 * (width - 1)) + 1)
            ch = {"kernel": "#", "h2d": ">", "d2h": "<", "p2p": "=",
                  "net": "~"}[e.kind]
            for c in range(a, min(b, width)):
                row[c] = ch
        lines.append(f"{resource:{label_w}}  {''.join(row)}")
    lines.append(
        f"{'':{label_w}}  # kernel   > h2d   < d2h   = p2p   ~ net")
    return "\n".join(lines)
