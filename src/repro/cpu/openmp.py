"""Simulated OpenMP CPU baseline (the denominator of Fig. 7).

Executes the same compiled program with every parallel loop run on the
host CPU: one single-address-space "device" covering the whole
iteration space, no data transfers, and a multicore cost model.

The cost model mirrors the GPU one (roofline over the statically
counted work), with CPU characteristics:

* compute throughput = sockets x cores x SIMD FLOPs/cycle x clock,
  derated by the OpenMP parallel efficiency;
* memory throughput = aggregate socket bandwidth; random traffic is
  rescaled from the GPU cost model's inflation to the CPU's own
  penalty (a latency-bound multicore pays ~10x raw bytes on dependent
  random access, vs the model's 4x GPU inflation).

Functionally the kernels run in permissive mode: stores go straight to
the host arrays, reductions accumulate onto the host initial values --
exactly OpenMP shared-memory semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..runtime.kernelctx import KernelContext
from ..translator.compiler import CompiledProgram, KernelPlan
from ..translator.host import HostExecutor, RunResult
from ..vcuda.clock import VirtualClock
from ..vcuda.device import KernelWork
from ..vcuda.specs import MachineSpec

CATEGORY_CPU = "CPU"

#: Ratio applied to the cost collector's (GPU-inflated) random bytes to
#: get the CPU-equivalent traffic: ~12x raw over the collector's 4x GPU
#: inflation -- dependent random gathers on a Westmere-class core are
#: latency-bound at ~2 GB/s, far below streaming bandwidth.
_CPU_RANDOM_RESCALE = 12.0 / 4.0
#: Parallel-region entry/exit overhead (fork/join + barrier).
_OMP_REGION_OVERHEAD = 4e-6


@dataclass
class CpuLoopStats:
    kernel_name: str
    n_iterations: int
    seconds: float
    dyn_counts: dict[str, int] = field(default_factory=dict)


class CpuPlatform:
    """Minimal platform: a clock and the CPU spec."""

    def __init__(self, machine: MachineSpec, threads: int | None = None) -> None:
        self.machine = machine
        self.clock = VirtualClock()
        self.threads = threads if threads is not None \
            else machine.total_cpu_threads

    def loop_time(self, work: KernelWork) -> float:
        cpu = self.machine.cpu
        sockets = self.machine.cpu_sockets
        # Hyper-threads add little FLOP throughput; cores are the resource.
        peak = cpu.peak_sp_flops * sockets * cpu.omp_efficiency
        ops = work.flops + 0.5 * work.int_ops
        compute_t = ops / peak
        bw = cpu.mem_bandwidth * sockets
        mem_t = (work.coalesced_bytes
                 + work.random_bytes * _CPU_RANDOM_RESCALE) / bw
        return _OMP_REGION_OVERHEAD + max(compute_t, mem_t) * work.serialization

    def elapsed(self) -> float:
        return self.clock.now


class OpenMPExecutor:
    """Executor with the AccExecutor run_loop interface, CPU-backed."""

    def __init__(self, platform: CpuPlatform, engine: str = "vector") -> None:
        self.platform = platform
        self.engine = engine
        self.history: list[CpuLoopStats] = []
        self.loader = _NullLoader()

    def run_loop(self, plan: KernelPlan, lower: int, upper: int,
                 host_env: dict[str, Any]) -> CpuLoopStats:
        scalars = {n: host_env[n] for n in plan.scalar_names}
        ctx = KernelContext(device_index=0, i0=lower, i1=upper,
                            scalars=scalars, permissive=True)
        for name in plan.config.arrays:
            arr = host_env.get(name)
            if not isinstance(arr, np.ndarray):
                raise KeyError(
                    f"loop {plan.name!r} uses array {name!r} which is not in "
                    "the host environment")
            ctx.arrays[name] = arr
            ctx.base[name] = 0
        plan.execute(ctx, self.engine)
        n = max(0, upper - lower)
        work = plan.cost.total(n, ctx.dyn_counts)
        seconds = self.platform.loop_time(work) if n else 0.0
        self.platform.clock.advance(seconds, CATEGORY_CPU)
        # Scalar reductions fold straight into the host variables.
        for name, partial in ctx.scalar_results.items():
            op = ctx.scalar_ops[name]
            from ..translator.kernel_support import red_fold

            initial = host_env[name]
            final = red_fold(op, partial, np.asarray(initial), None, 1)
            if isinstance(initial, (int, np.integer)):
                final = int(final)
            host_env[name] = final
        stats = CpuLoopStats(kernel_name=plan.name, n_iterations=n,
                             seconds=seconds, dyn_counts=dict(ctx.dyn_counts))
        self.history.append(stats)
        return stats


class _NullLoader:
    """Data-region no-op: the CPU shares the host address space."""

    def __init__(self) -> None:
        self.arrays: dict[str, Any] = {}
        self._stack: list[list[str]] = []

    def enter_region(self, sections) -> None:
        names = []
        for name, arr, _kind in sections:
            self.arrays[name] = arr
            names.append(name)
        self._stack.append(names)

    def exit_region(self) -> None:
        for name in self._stack.pop():
            self.arrays.pop(name, None)

    def update_host(self, names) -> None:
        pass

    def update_device(self, names) -> None:
        pass


@dataclass
class OpenMPRun:
    """Outcome of an OpenMP-baseline execution."""

    result: RunResult
    platform: CpuPlatform
    loop_stats: list[CpuLoopStats]

    @property
    def elapsed(self) -> float:
        return self.platform.elapsed()

    @property
    def value(self) -> Any:
        return self.result.value


def run_openmp(
    compiled: CompiledProgram,
    entry: str,
    args: dict[str, Any],
    machine: MachineSpec,
    engine: str = "vector",
    threads: int | None = None,
) -> OpenMPRun:
    """Run the program as its OpenMP version on ``machine``'s CPUs."""
    platform = CpuPlatform(machine, threads)
    executor = OpenMPExecutor(platform, engine=engine)
    host = HostExecutor(compiled, executor)  # type: ignore[arg-type]
    result = host.call(entry, args)
    return OpenMPRun(result=result, platform=platform,
                     loop_stats=list(executor.history))
