"""Simulated OpenMP CPU baseline."""

from .openmp import (
    CpuLoopStats,
    CpuPlatform,
    OpenMPExecutor,
    OpenMPRun,
    run_openmp,
)

__all__ = ["CpuPlatform", "OpenMPExecutor", "OpenMPRun", "CpuLoopStats",
           "run_openmp"]
