"""Topology-aware collective communication engine (docs/COLLECTIVES.md).

The PR 9 cluster tier ships inter-node replica broadcasts as one NIC
transfer per destination node and staged exchanges as a serialized
gather -> NIC -> scatter per node pair.  This module replaces both with
structured collectives chosen from the modeled topology:

* **ring** -- a chunked pipeline around a group-contiguous node ring
  (PCIe-hub-local ring inside a node).  Bandwidth-optimal for large
  payloads: the slowest link is loaded once per chunk instead of once
  per destination, and chunk *k* on leg *i+1* overlaps chunk *k+1* on
  leg *i*.
* **tree** -- a binomial tree, ``ceil(log2 N)`` rounds of concurrent
  full-payload sends.  Latency-optimal for small payloads.
* **auto** -- price both against the modeled per-edge bandwidth and
  latency (:func:`node_schedule_costs`) and take the cheaper one; the
  oversubscribed cross-group bandwidth of a two-level fabric enters the
  edge costs directly and acts as the tiebreak.

A *progress engine* (:meth:`CollectiveEngine.exchange`) reschedules the
staged node-pair exchange as a chunked pipeline so the NIC leg of chunk
*k* hides behind the PCIe gather/scatter legs of chunks *k±1*.

Everything here only re-prices *when* modeled transfers happen; array
data is applied eagerly by the comm manager before any schedule runs,
so results are bit-identical across ``collective`` modes by
construction (the determinism matrix pins it).
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Callable

from ..vcuda.bus import CATEGORY_GPU_GPU, Bus, Transfer
from ..vcuda.specs import ClusterSpec
from ..trace.events import (
    MECH_COLLECTIVE_PIPELINE,
    MECH_COLLECTIVE_RING,
    MECH_COLLECTIVE_TREE,
)

__all__ = [
    "COLLECTIVE_MODES",
    "CollectiveEngine",
    "node_schedule_costs",
    "ring_order",
    "select_node_schedule",
    "tree_rounds",
]

#: Valid values of the ``collective`` run flag.
COLLECTIVE_MODES = ("none", "auto", "ring", "tree")

#: ``note(transfer, src_gpu, dst_gpu)`` -- the comm manager's overlap
#: bookkeeping hook (stream mirroring + event dependences).
NoteFn = Callable[[Transfer, int | None, int | None], None]
#: ``floor(*gpus)`` -- earliest issue time for a transfer touching the
#: given GPUs (their queued kernels still own the buffers).
FloorFn = Callable[..., float]


# ---------------------------------------------------------------------------
# Pure cost model (no platform required -- `explain --collectives` uses
# these directly on a spec).
# ---------------------------------------------------------------------------

def ring_order(cluster: ClusterSpec, src_node: int,
               nodes: list[int]) -> list[int]:
    """Order ``nodes`` (which must include ``src_node``) into a
    broadcast path starting at the source with each leaf-switch group
    contiguous: the path crosses the root switch once per extra group
    -- the minimum for a connected path -- instead of once per hop."""
    src_group = cluster.group_of(src_node)
    rest = sorted(n for n in nodes if n != src_node)
    rest.sort(key=lambda n: (cluster.group_of(n) != src_group,
                             cluster.group_of(n), n))
    return [src_node] + rest


def tree_rounds(count: int) -> list[list[tuple[int, int]]]:
    """Binomial broadcast rounds over ``count`` participants (index 0
    is the root): round *r* doubles the set of holders, so ``ceil(log2
    count)`` rounds total.  Returns ``(sender_index, receiver_index)``
    pairs per round."""
    rounds: list[list[tuple[int, int]]] = []
    have = 1
    while have < count:
        senders = min(have, count - have)
        rounds.append([(s, have + s) for s in range(senders)])
        have += senders
    return rounds


def _edge_cost(cluster: ClusterSpec, a: int, b: int, nbytes: int) -> float:
    """Unloaded cost of one NIC message between nodes ``a`` and ``b``;
    ``inf`` for a dead/degraded-to-zero link so ``auto`` never picks a
    schedule across it when an alternative exists."""
    bw = cluster.link_bandwidth(a, b)
    if not (bw > 0.0) or bw != bw or bw == float("inf"):
        return float("inf")
    return cluster.link_latency(a, b) + nbytes / bw


def node_schedule_costs(cluster: ClusterSpec, src_node: int,
                        dst_nodes: list[int], nbytes: int,
                        chunk_bytes: int | None = None) -> dict[str, float]:
    """Modeled cost of broadcasting ``nbytes`` from ``src_node`` to
    ``dst_nodes`` under each schedule.

    ring: ``K`` chunks pipeline over ``H`` hops.  One hop degenerates
    to ``K`` serialized messages; with relays every interior NIC port
    is half-duplex (it cannot receive chunk *k+1* while forwarding
    chunk *k*), so the steady-state period is two steps per chunk:
    ``(H + 2*(K-1)) * max_edge_step``.

    tree: ``ceil(log2 N)`` rounds, each costing its slowest edge's
    full-payload message.
    """
    participants = [src_node] + sorted(set(dst_nodes) - {src_node})
    if len(participants) < 2 or nbytes <= 0:
        return {"ring": 0.0, "tree": 0.0}
    if chunk_bytes is None:
        chunk_bytes = cluster.nic.collective_chunk_bytes
    path = ring_order(cluster, src_node, participants)
    chunks = Bus.split_chunks(nbytes, chunk_bytes)
    hops = len(path) - 1
    step = max(_edge_cost(cluster, a, b, chunks[0])
               for a, b in zip(path, path[1:]))
    if hops == 1:
        ring = len(chunks) * step
    else:
        ring = (hops + 2 * (len(chunks) - 1)) * step
    tree = 0.0
    for rnd in tree_rounds(len(path)):
        tree += max(_edge_cost(cluster, path[s], path[d], nbytes)
                    for s, d in rnd)
    return {"ring": ring, "tree": tree}


def select_node_schedule(cluster: ClusterSpec, src_node: int,
                         dst_nodes: list[int], nbytes: int,
                         chunk_bytes: int | None = None) -> str:
    """The ``auto`` rule: cheaper modeled schedule, ties to ``tree``
    (fewer messages on the wire for the same modeled time)."""
    costs = node_schedule_costs(cluster, src_node, dst_nodes, nbytes,
                                chunk_bytes)
    return "ring" if costs["ring"] < costs["tree"] else "tree"


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------

class CollectiveEngine:
    """Schedules collective broadcasts and pipelined staged exchanges
    on behalf of the comm manager.

    The engine owns *pricing only*: it issues the modeled transfers
    (and their dependences) on the bus and records per-schedule
    telemetry; the comm manager has already applied the array data with
    NumPy before calling in, and keeps all byte accounting
    (``bytes_replica`` / ``bytes_internode``) so ablation comparisons
    stay apples-to-apples across transports.
    """

    def __init__(self, platform: Any, mode: str,
                 tracer: Any | None = None) -> None:
        if mode not in COLLECTIVE_MODES or mode == "none":
            raise ValueError(
                f"collective engine mode must be one of "
                f"{COLLECTIVE_MODES[1:]}, got {mode!r}")
        self.platform = platform
        self.bus: Bus = platform.bus
        self.machine = self.bus.machine
        self.mode = mode
        self.tracer = tracer
        nic = getattr(self.machine, "nic", None)
        #: NIC pipeline chunk (0 on single-node machines: no NIC).
        self.net_chunk = nic.collective_chunk_bytes if nic is not None else 0
        #: Telemetry: collective broadcasts issued per schedule.
        self.broadcasts = {"ring": 0, "tree": 0}
        #: Telemetry: pipelined staged exchanges (progress engine).
        self.exchanges = 0
        #: Telemetry: total pipeline steps (one modeled transfer on the
        #: critical structure: a NET chunk hop or a p2p ring hop).
        self.steps = 0
        #: Telemetry: wire bytes scheduled per schedule (every hop
        #: counted -- a relayed chunk pays each leg it traverses).
        self.bytes_scheduled = {"ring": 0, "tree": 0, "pipeline": 0}

    # -- helpers ---------------------------------------------------------------

    def _tag(self, mechanism: str, array: str | None):
        if self.tracer is None:
            return nullcontext()
        return self.tracer.tag(mechanism, array)

    def _record(self, schedule: str, scope: str, steps: int,
                nbytes: int) -> None:
        self.steps += steps
        self.bytes_scheduled[schedule] = (
            self.bytes_scheduled.get(schedule, 0) + nbytes)
        if self.tracer is not None:
            self.tracer.metrics.count("collective_steps", steps,
                                      schedule=schedule, scope=scope)
            self.tracer.metrics.count("collective_bytes", nbytes,
                                      schedule=schedule, scope=scope)

    def _pcie_chunk(self, g: int) -> int:
        return self.machine.node_bus(
            self.machine.node_of(g)).collective_chunk_bytes

    def select(self, src_node: int, dst_nodes: list[int],
               nbytes: int) -> str:
        if self.mode != "auto":
            return self.mode
        return select_node_schedule(self.machine, src_node, dst_nodes,
                                    nbytes, self.net_chunk)

    # -- inter-node broadcast ---------------------------------------------------

    def node_broadcast(self, array: str | None, g: int,
                       members_by_node: dict[int, list[int]], total: int,
                       floor: FloorFn, note: NoteFn) -> str:
        """Broadcast one source GPU's ``total`` shared dirty bytes to
        replica members on other nodes: chunked D2H gather on the
        source, ring or tree NIC schedule between the node hosts, then
        a per-member H2D scatter chained on each chunk's arrival."""
        bus = self.bus
        src_node = self.machine.node_of(g)
        dst_nodes = sorted(members_by_node)
        schedule = self.select(src_node, dst_nodes, total)
        mech = (MECH_COLLECTIVE_RING if schedule == "ring"
                else MECH_COLLECTIVE_TREE)
        path = ring_order(self.machine, src_node, [src_node] + dst_nodes)
        with self._tag(mech, array):
            if schedule == "ring":
                chunks = Bus.split_chunks(total, self.net_chunk)
                gather_floor = floor(g)
                ready = []
                for c in chunks:
                    d = bus.d2h(g, c, not_before=gather_floor,
                                category=CATEGORY_GPU_GPU, local=True)
                    note(d, g, None)
                    ready.append(d.end)
                arrivals = bus.net_pipeline(path, chunks, chunk_ready=ready)
                for tr in (t for ts in arrivals.values() for t in ts):
                    note(tr, None, None)
                for dn in dst_nodes:
                    for t in sorted(members_by_node[dn]):
                        t_floor = floor(t)
                        for tr in arrivals[dn]:
                            h = bus.h2d(t, tr.nbytes,
                                        not_before=max(tr.end, t_floor),
                                        category=CATEGORY_GPU_GPU,
                                        local=True)
                            note(h, None, t)
                steps = len(chunks) * (len(path) - 1)
                wire = total * (len(path) - 1)
            else:
                d = bus.d2h(g, total, not_before=floor(g),
                            category=CATEGORY_GPU_GPU, local=True)
                note(d, g, None)
                done = {src_node: d.end}
                steps = 0
                for rnd in tree_rounds(len(path)):
                    for s, r in rnd:
                        tr = bus.net(path[s], path[r], total,
                                     not_before=done[path[s]])
                        note(tr, None, None)
                        done[path[r]] = tr.end
                        steps += 1
                for dn in dst_nodes:
                    for t in sorted(members_by_node[dn]):
                        h = bus.h2d(t, total,
                                    not_before=max(done[dn], floor(t)),
                                    category=CATEGORY_GPU_GPU, local=True)
                        note(h, None, t)
                wire = total * (len(path) - 1)
        self.broadcasts[schedule] += 1
        self._record(schedule, "internode", steps, wire)
        return schedule

    # -- staged-exchange progress engine ---------------------------------------

    def exchange(self, array: str | None, src_node: int, dst_node: int,
                 outbound: dict[int, int], inbound: dict[int, int],
                 floor: FloorFn, note: NoteFn) -> int:
        """Pipelined staged exchange for one node pair: split each
        source GPU's payload into NIC-sized chunks and chain D2H ->
        NET -> H2D per chunk, so the NIC leg of chunk *k* overlaps the
        gather of chunk *k+1* and the scatter of chunk *k-1* -- NIC
        time hides behind intra-node PCIe time instead of serializing
        after it.  Returns the number of pipeline steps (NET chunks)."""
        bus = self.bus
        stream: list[tuple[int, float]] = []
        with self._tag(MECH_COLLECTIVE_PIPELINE, array):
            for g in sorted(outbound):
                g_floor = floor(g)
                for c in Bus.split_chunks(outbound[g], self.net_chunk):
                    d = bus.d2h(g, c, not_before=g_floor,
                                category=CATEGORY_GPU_GPU, local=True)
                    note(d, g, None)
                    net = bus.net(src_node, dst_node, c, not_before=d.end)
                    note(net, None, None)
                    stream.append((c, net.end))
            # Scatter consumes the chunk stream in order: destination
            # bytes map onto whichever NET chunks delivered them, and
            # each H2D piece waits only for *its* chunk, not the last.
            i = 0
            rem = stream[0][0] if stream else 0
            for t in sorted(inbound):
                need = inbound[t]
                t_floor = floor(t)
                while need > 0:
                    take = min(need, rem)
                    h = bus.h2d(t, take,
                                not_before=max(stream[i][1], t_floor),
                                category=CATEGORY_GPU_GPU, local=True)
                    note(h, None, t)
                    need -= take
                    rem -= take
                    if rem == 0 and i + 1 < len(stream):
                        i += 1
                        rem = stream[i][0]
        self.exchanges += 1
        total = sum(outbound.values())
        self._record("pipeline", "internode", len(stream), total)
        return len(stream)

    # -- intra-node broadcast ---------------------------------------------------

    def _gpu_order(self, g: int, targets: list[int]) -> list[int]:
        """PCIe-hub-local ring: same-hub peers first so the chain
        crosses the QPI/IOH boundary once per extra hub, not per hop."""
        src_hub = self.machine.hub_of(g)
        rest = sorted(targets)
        rest.sort(key=lambda t: (self.machine.hub_of(t) != src_hub,
                                 self.machine.hub_of(t), t))
        return [g] + rest

    def gpu_broadcast(self, array: str | None, g: int, targets: list[int],
                      runs: list[tuple[int, int]], total: int,
                      floor: FloorFn, note: NoteFn) -> str | None:
        """Intra-node replica broadcast as a hub-local ring chain or a
        binomial p2p tree.  Returns the schedule used, or ``None`` when
        the engine declines (fewer than two targets, or ``auto`` prices
        the existing direct fan-out cheaper) -- the caller then falls
        back to the legacy path unchanged."""
        if total <= 0 or len(targets) < 2:
            return None
        bus = self.bus
        order = self._gpu_order(g, targets)
        chunk = self._pcie_chunk(g)
        chunks = Bus.split_chunks(total, chunk)
        edges = list(zip(order, order[1:]))
        hop = max(bus.duration("p2p", chunks[0], a, b) for a, b in edges)
        if len(edges) == 1:
            ring_cost = len(chunks) * hop
        else:
            ring_cost = (len(edges) + 2 * (len(chunks) - 1)) * hop
        rounds = tree_rounds(len(order))
        tree_cost = sum(
            max(bus.duration("p2p", total, order[s], order[r])
                for s, r in rnd)
            for rnd in rounds)
        if self.mode == "auto":
            direct = sum(bus.duration("p2p", n, g, t)
                         for t in targets for _, n in runs)
            if direct <= min(ring_cost, tree_cost):
                return None
            schedule = "ring" if ring_cost < tree_cost else "tree"
        else:
            schedule = self.mode
        mech = (MECH_COLLECTIVE_RING if schedule == "ring"
                else MECH_COLLECTIVE_TREE)
        with self._tag(mech, array):
            if schedule == "ring":
                # Chunk-major issue order, mirroring Bus.net_pipeline:
                # GPU-link occupancy is a scalar free-at, so leg-major
                # order would stall relays on the whole inbound leg.
                for c in chunks:
                    ready = 0.0
                    for a, b in edges:
                        tr = bus.p2p(a, b, c,
                                     not_before=max(ready, floor(a, b)))
                        note(tr, a, b)
                        ready = tr.end
                steps = len(chunks) * len(edges)
            else:
                done = {g: 0.0}
                steps = 0
                for rnd in rounds:
                    for s, r in rnd:
                        a, b = order[s], order[r]
                        tr = bus.p2p(a, b, total,
                                     not_before=max(done[a], floor(a, b)))
                        note(tr, a, b)
                        done[b] = tr.end
                        steps += 1
        self.broadcasts[schedule] += 1
        self._record(schedule, "intranode", steps, total * len(edges))
        return schedule
