"""The data loader (paper section IV-C).

Guarantees OpenACC data semantics while transparently managing several
GPU memories.  Two placement policies:

* **replica-based** (default, arrays without ``localaccess``): the full
  array is copied to every GPU;
* **distribution-based** (arrays with ``localaccess``): each GPU gets
  only the block its task slice can read -- the evaluated read window,
  which includes any halo the directive declares.

The loader is invoked at data-region boundaries, at ``update``
directives, and before *every* kernel call.  It skips the reload when
the required placement equals what is already resident and valid --
the paper's optimization for iterative algorithms, where the same
parallel loop runs many times over unchanged windows.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any

import numpy as np

from ..trace.events import (
    EVENT_LOAD,
    EVENT_MIGRATION,
    EVENT_RELOAD_SKIP,
    EVENT_WRITEBACK,
    MECH_LOAD,
    MECH_MIGRATION,
    MECH_UPDATE,
    MECH_WRITEBACK,
)
from ..translator.array_config import ArrayConfig, Placement, WriteHandling
from ..translator.kernel_support import red_identity
from ..vcuda.api import Platform
from ..vcuda.bus import CATEGORY_CPU_GPU
from ..vcuda.memory import DeviceBuffer, PURPOSE_USER
from .dirty import DEFAULT_CHUNK_BYTES, ReferenceTwoLevelDirty, TwoLevelDirty
from .partition import (
    Block,
    make_window_evaluator,
    primary_blocks,
    window_for_tasks,
)
from .writemiss import WriteMissBuffer


class DataEnvironmentError(RuntimeError):
    pass


@lru_cache(maxsize=512)
def _uniform_signature(placement: Placement, length: int, ngpus: int,
                       has_identity: bool) -> tuple:
    """Load signature of a full-replica layout, memoized.

    The common iterative-app case rebuilds the identical
    tuple-of-block-tuples before every launch just to compare it against
    the resident one; caching by ``(placement, length, ngpus)`` makes
    the signature a dictionary probe.  The value is identical (``==``)
    to the generically built tuple, so mixed producers still compare
    equal -- :meth:`CommunicationManager._merge_reduction` stamps the
    post-reduction replica layout through this same helper.
    """
    return (placement, tuple((0, length) for _ in range(ngpus)),
            has_identity)


def _subtract(block: Block, covered: list[Block]) -> list[Block]:
    """Segments of ``block`` not covered by any block in ``covered``."""
    out = [block] if block.size else []
    for c in covered:
        if c.size == 0:
            continue
        nxt: list[Block] = []
        for seg in out:
            inter = seg.intersect(c)
            if inter.size <= 0:
                nxt.append(seg)
                continue
            if seg.lo < inter.lo:
                nxt.append(Block(seg.lo, inter.lo))
            if inter.hi < seg.hi:
                nxt.append(Block(inter.hi, seg.hi))
        out = nxt
    return out


@dataclass
class ManagedArray:
    """Device-side state of one host array inside a data region."""

    name: str
    host: np.ndarray
    #: Device-visible image of the host array, captured at region entry
    #: (OpenACC transfers at the region boundary; loads are deferred to
    #: kernel time here, so the image preserves entry-time snapshot
    #: semantics against later host writes).  ``update device`` refreshes
    #: it; writebacks keep it coherent with the host copy.
    staging: np.ndarray = None  # type: ignore[assignment]
    #: Transfer on region entry / before first use (copy, copyin).
    transfer_in: bool = True
    #: Transfer back on region exit (copy, copyout).
    transfer_out: bool = True
    placement: Placement | None = None
    buffers: list[DeviceBuffer | None] = field(default_factory=list)
    blocks: list[Block] = field(default_factory=list)
    primary: list[Block] = field(default_factory=list)
    valid: bool = False
    #: Device copies hold newer data than the host copy.
    device_ahead: bool = False
    #: Load signature for reload skipping.
    signature: tuple | None = None
    dirty: list[TwoLevelDirty | None] = field(default_factory=list)
    miss: list[WriteMissBuffer | None] = field(default_factory=list)
    #: Set while the array is a reductiontoarray destination.
    reduction_identity: Any | None = None
    #: True once device-side writes were gathered back to the host: from
    #: then on the host copy is meaningful data even for 'create' arrays,
    #: so reloads must be priced as real transfers.
    materialized: bool = False
    #: Set when an external placement decision (the adaptive advisor's
    #: demote/promote) made the resident layout suspect: the reload-skip
    #: fast path must not fire until the next load/migration rebuilds
    #: the layout, even if the signature happens to match again.
    skip_invalidated: bool = False
    #: Bumped whenever the device-side state a kernel binds to changes
    #: (buffers reallocated, trackers/miss buffers created).  The
    #: executor's launch fast path caches argument bindings per
    #: (plan, GPU) and revalidates against this counter.
    version: int = 0

    @property
    def itemsize(self) -> int:
        return int(self.host.dtype.itemsize)

    @property
    def length(self) -> int:
        return int(self.host.shape[0])


class DataLoader:
    """Owns all :class:`ManagedArray` state for one execution context."""

    def __init__(self, platform: Platform,
                 chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                 reload_skipping: bool = True,
                 migrate_deltas: bool = False,
                 fastpath: bool = True) -> None:
        self.platform = platform
        self.chunk_bytes = chunk_bytes
        self.reload_skipping = reload_skipping
        #: Wall-clock fast paths: packed-bitset dirty trackers and
        #: memoized load signatures.  ``fastpath=False`` selects the
        #: reference ``uint8`` tracker -- observable behavior (transfer
        #: bytes, scan results, modeled time) is identical either way.
        self.fastpath = fastpath
        #: Adaptive mode: when the required blocks differ from what is
        #: resident, move only the deltas between old and new blocks
        #: (device-local keeps, peer fetches from old owners, host
        #: fills) instead of writing everything back and reloading.
        self.migrate_deltas = migrate_deltas
        self.arrays: dict[str, ManagedArray] = {}
        self._region_stack: list[list[str]] = []
        #: Called with the array name before any host-path access to its
        #: device buffers (writeback, reload, update).  The overlap-mode
        #: executor installs a barrier here: queued kernels and in-flight
        #: communication on the array must land first.
        self.pre_access_hook = None
        #: Opt-in coherence sanitizer; when set, every reload-skip is
        #: verified against the coherent global image.
        self.sanitizer = None
        #: Opt-in tracer; when set, loads / migrations / writebacks /
        #: reload-skips emit decision events and the transfers they
        #: issue carry mechanism tags.
        self.tracer = None
        #: Loader telemetry (ablation benchmarks read these).
        self.loads = 0
        self.reloads_skipped = 0
        self.migrations = 0
        self.bytes_migrated_local = 0
        self.bytes_migrated_p2p = 0
        self.bytes_migrated_h2d = 0

    # -- region management -------------------------------------------------------

    def enter_region(self, sections: list[tuple[str, np.ndarray, str]]) -> None:
        """Open a data region; ``sections`` = (name, host array, clause kind)."""
        names: list[str] = []
        for name, host, kind in sections:
            if name in self.arrays:
                raise DataEnvironmentError(
                    f"array {name!r} is already present in an enclosing data "
                    "region")
            if host.ndim != 1:
                raise DataEnvironmentError(
                    f"device array {name!r} must be 1-D (linearize "
                    "multi-dimensional data; paper section VI)")
            ma = ManagedArray(
                name=name,
                host=host,
                staging=host.copy(),
                transfer_in=kind in ("copy", "copyin"),
                transfer_out=kind in ("copy", "copyout"),
            )
            ngpus = self.platform.ngpus
            ma.buffers = [None] * ngpus
            ma.blocks = [Block(0, 0)] * ngpus
            ma.primary = [Block(0, 0)] * ngpus
            ma.dirty = [None] * ngpus
            ma.miss = [None] * ngpus
            self.arrays[name] = ma
            names.append(name)
        self._region_stack.append(names)

    def exit_region(self) -> None:
        if not self._region_stack:
            raise DataEnvironmentError("data region exit without entry")
        names = self._region_stack.pop()
        for name in names:
            ma = self.arrays.pop(name)
            if ma.transfer_out and ma.device_ahead:
                self._writeback(ma)
            self._release(ma)
        if self.platform.bus.pending_count():
            self.platform.bus.sync_category(CATEGORY_CPU_GPU)

    def update_host(self, names: list[str]) -> None:
        """``#pragma acc update host(...)``: device -> host now."""
        for name in names:
            ma = self._get(name)
            if ma.device_ahead:
                self._writeback(ma)
        if self.platform.bus.pending_count():
            self.platform.bus.sync_category(CATEGORY_CPU_GPU)

    def update_device(self, names: list[str]) -> None:
        """``#pragma acc update device(...)``: host -> device now."""
        for name in names:
            ma = self._get(name)
            if self.pre_access_hook is not None:
                self.pre_access_hook(name)
            ma.device_ahead = False
            np.copyto(ma.staging, ma.host)
            if ma.valid and ma.placement is not None:
                # Eagerly refresh the resident blocks.
                with self._tag(MECH_UPDATE, name):
                    for g, buf in enumerate(ma.buffers):
                        if buf is not None and ma.blocks[g].size:
                            blk = ma.blocks[g]
                            np.copyto(buf.data, ma.staging[blk.lo:blk.hi])
                            self.platform.bus.h2d(g, blk.size * ma.itemsize)
            else:
                ma.valid = False
        if self.platform.bus.pending_count():
            self.platform.bus.sync_category(CATEGORY_CPU_GPU)

    def _tag(self, mechanism: str, array: str | None):
        """Mechanism/array annotation for bus transfers issued inside."""
        if self.tracer is None:
            return nullcontext()
        return self.tracer.tag(mechanism, array)

    def _get(self, name: str) -> ManagedArray:
        ma = self.arrays.get(name)
        if ma is None:
            raise DataEnvironmentError(
                f"array {name!r} is not present in any data region")
        return ma

    def note_placement_switch(self, name: str) -> None:
        """The adaptive advisor demoted or promoted ``name``: the
        resident layout no longer matches the placement the next loop
        will request, so the reload-skip fast path must not fire until
        a load or delta migration rebuilds it.  (The signature alone is
        not a safe guard across a demote/promote pair.)"""
        ma = self.arrays.get(name)
        if ma is not None:
            ma.skip_invalidated = True

    # -- per-kernel loading --------------------------------------------------------

    def ensure_for_loop(
        self,
        configs: dict[str, ArrayConfig],
        tasks: list[tuple[int, int]],
        loop_var: str,
        host_scalars: dict[str, Any],
    ) -> None:
        """Make every array of the loop resident with the right placement.

        Called before every kernel launch set.  All H2D transfers are
        queued asynchronously and synchronized once (``CPU-GPU`` time).
        """
        evaluate = None
        # Adaptive mode: GPUs the balancer starved (empty task slice)
        # hold no replica blocks either -- they read nothing, and every
        # resident replica is one more target of each dirty broadcast.
        idle = ([t1 <= t0 for t0, t1 in tasks]
                if self.migrate_deltas else None)
        for name, cfg in configs.items():
            ma = self._get(name)
            ngpus = self.platform.ngpus
            signature = None
            if cfg.write_handling == WriteHandling.REDUCTION:
                placement = Placement.REPLICA
                blocks = [Block(0, ma.length)] * ngpus
                identity = red_identity(cfg.reduction_op or "+")
                signature = _uniform_signature(placement, ma.length,
                                               ngpus, True)
            else:
                identity = None
                placement = cfg.placement
                if placement == Placement.DISTRIBUTED:
                    assert cfg.window is not None
                    if evaluate is None:
                        # Built on demand: only window expressions read
                        # host scalars/arrays, and most loops have none.
                        host_arrays = {n: m.host
                                       for n, m in self.arrays.items()}
                        evaluate = make_window_evaluator(
                            loop_var, host_scalars, host_arrays)
                    blocks = [
                        window_for_tasks(cfg.window, t, ma.length, evaluate)
                        for t in tasks
                    ]
                elif idle is not None:
                    blocks = [Block(0, 0) if idle[g] else Block(0, ma.length)
                              for g in range(ngpus)]
                else:
                    blocks = [Block(0, ma.length)] * ngpus
                    signature = _uniform_signature(placement, ma.length,
                                                   ngpus, False)
            if signature is None:
                signature = (placement, tuple((b.lo, b.hi) for b in blocks),
                             identity is not None)
            if (self.reload_skipping and ma.valid and ma.signature == signature
                    and identity is None and not ma.skip_invalidated):
                self.reloads_skipped += 1
                if self.sanitizer is not None:
                    self.sanitizer.check_reload_skip(ma)
                if self.tracer is not None:
                    self.tracer.emit(EVENT_RELOAD_SKIP, name,
                                     start=self.platform.clock.now,
                                     array=name)
                    self.tracer.metrics.count(
                        "reload_skip_hits", 1, array=name,
                        loop=self.tracer.current_loop)
            elif (self.migrate_deltas and ma.valid and identity is None
                    and ma.signature is not None and not ma.signature[2]
                    and self._migrate(ma, placement, blocks, signature)):
                if self.tracer is not None:
                    self.tracer.metrics.count(
                        "reload_skip_misses", 1, array=name,
                        loop=self.tracer.current_loop)
            else:
                self._load(ma, placement, blocks, signature, identity)
                if self.tracer is not None:
                    self.tracer.metrics.count(
                        "reload_skip_misses", 1, array=name,
                        loop=self.tracer.current_loop)
            # (Re)wire write-side system structures for this loop.
            self._prepare_write_side(ma, cfg)

    def _load(self, ma: ManagedArray, placement: Placement,
              blocks: list[Block], signature: tuple, identity: Any) -> None:
        if self.pre_access_hook is not None:
            self.pre_access_hook(ma.name)
        if ma.device_ahead:
            # The device holds the newest data under a different layout:
            # gather it home before re-placing (costs D2H on the bus).
            self._writeback(ma)
            self.platform.bus.sync_category(CATEGORY_CPU_GPU)
        self._release_buffers(ma)
        ngpus = self.platform.ngpus
        loaded_bytes = 0
        with self._tag(MECH_LOAD, ma.name):
            for g in range(ngpus):
                blk = blocks[g]
                if blk.size == 0:
                    ma.buffers[g] = None
                    continue
                buf = self.platform.malloc(
                    g, ma.name, blk.size, ma.host.dtype,
                    purpose=PURPOSE_USER, base=blk.lo)
                if identity is not None:
                    # Reduction destinations start at the operator
                    # identity on the device: no H2D transfer at all.
                    buf.data.fill(identity)
                else:
                    np.copyto(buf.data, ma.staging[blk.lo:blk.hi])
                    if ma.transfer_in or ma.materialized:
                        self.platform.bus.h2d(g, blk.size * ma.itemsize)
                        loaded_bytes += blk.size * ma.itemsize
                ma.buffers[g] = buf
        ma.blocks = list(blocks)
        ma.primary = primary_blocks(blocks, ma.length)
        ma.placement = placement
        ma.signature = signature
        ma.valid = True
        ma.skip_invalidated = False
        ma.version += 1
        self.loads += 1
        if self.tracer is not None:
            self.tracer.emit(EVENT_LOAD, ma.name,
                             start=self.platform.clock.now, array=ma.name,
                             nbytes=loaded_bytes,
                             placement=placement.name
                             if placement is not None else None)

    def _migrate(self, ma: ManagedArray, placement: Placement,
                 blocks: list[Block], signature: tuple) -> bool:
        """Re-place ``ma`` by moving only the old/new block deltas.

        Data already resident on a GPU is kept with a free device-local
        copy; when the device holds the freshest data, segments now
        needed elsewhere are fetched from their old owners over the
        peer bus; only segments no device copy can provide come from
        the host (priced H2D like a normal load).  Returns ``False``
        when freshness cannot be preserved (the caller then falls back
        to writeback + full reload).
        """
        ngpus = self.platform.ngpus
        old_blocks = list(ma.blocks)
        old_buffers = list(ma.buffers)
        # Per-GPU regions whose freshest copy is device-resident.
        fresh = [Block(0, 0)] * ngpus
        if ma.device_ahead:
            if ma.placement == Placement.REPLICA:
                # Replicas are coherent after the communication step:
                # the first resident copy is authoritative.
                for g, buf in enumerate(old_buffers):
                    if buf is not None and old_blocks[g].size:
                        fresh[g] = old_blocks[g]
                        break
            else:
                for g, buf in enumerate(old_buffers):
                    if buf is not None:
                        fresh[g] = ma.primary[g].intersect(old_blocks[g])
            # Every device-fresh element must land in some new buffer,
            # or its value would be lost to later writebacks (which
            # gather the new primary blocks only).
            for fr in fresh:
                if any(seg.size for seg in _subtract(fr, blocks)):
                    return False
        if self.pre_access_hook is not None:
            self.pre_access_hook(ma.name)
        new_buffers: list[DeviceBuffer | None] = [None] * ngpus
        for g in range(ngpus):
            blk = blocks[g]
            if blk.size == 0:
                continue
            buf = self.platform.malloc(
                g, ma.name, blk.size, ma.host.dtype,
                purpose=PURPOSE_USER, base=blk.lo)
            # Baseline fill from the staging image; only the segments no
            # device copy provides are priced as transfers below.
            np.copyto(buf.data, ma.staging[blk.lo:blk.hi])
            covered: list[Block] = []
            # 1. Device-local keep: free (no bus traffic).
            if old_buffers[g] is not None:
                local_src = fresh[g] if ma.device_ahead else old_blocks[g]
                keep = blk.intersect(local_src)
                if keep.size > 0:
                    src = old_buffers[g].data
                    np.copyto(
                        buf.data[keep.lo - blk.lo:keep.hi - blk.lo],
                        src[keep.lo - old_blocks[g].lo:
                            keep.hi - old_blocks[g].lo])
                    self.bytes_migrated_local += keep.size * ma.itemsize
                    covered.append(keep)
            # 2. Peer fetch of segments whose freshest copy lives on
            #    another GPU.
            if ma.device_ahead:
                for t in range(ngpus):
                    if t == g or old_buffers[t] is None:
                        continue
                    want = blk.intersect(fresh[t])
                    for seg in _subtract(want, covered):
                        src = old_buffers[t].data
                        np.copyto(
                            buf.data[seg.lo - blk.lo:seg.hi - blk.lo],
                            src[seg.lo - old_blocks[t].lo:
                                seg.hi - old_blocks[t].lo])
                        nbytes = seg.size * ma.itemsize
                        # Load-phase traffic: attribute to CPU-GPU time
                        # so the per-loop load sync waits for it.
                        with self._tag(MECH_MIGRATION, ma.name):
                            self.platform.bus.p2p(
                                t, g, nbytes, category=CATEGORY_CPU_GPU)
                        self.bytes_migrated_p2p += nbytes
                        covered.append(seg)
            # 3. Host fills for the rest (already copied from staging).
            if ma.transfer_in or ma.materialized:
                for seg in _subtract(blk, covered):
                    nbytes = seg.size * ma.itemsize
                    with self._tag(MECH_MIGRATION, ma.name):
                        self.platform.bus.h2d(g, nbytes)
                    self.bytes_migrated_h2d += nbytes
            new_buffers[g] = buf
        for g, buf in enumerate(old_buffers):
            if buf is not None:
                self.platform.devices[g].memory.free(buf)
        ma.buffers = new_buffers
        ma.blocks = list(blocks)
        ma.primary = primary_blocks(blocks, ma.length)
        ma.placement = placement
        ma.signature = signature
        ma.valid = True
        ma.skip_invalidated = False
        ma.version += 1
        self.migrations += 1
        if self.tracer is not None:
            self.tracer.emit(EVENT_MIGRATION, ma.name,
                             start=self.platform.clock.now, array=ma.name,
                             placement=placement.name
                             if placement is not None else None)
        return True

    def _prepare_write_side(self, ma: ManagedArray, cfg: ArrayConfig) -> None:
        ngpus = self.platform.ngpus
        ma.reduction_identity = None
        if cfg.write_handling == WriteHandling.DIRTY_BITS:
            tracker_cls = TwoLevelDirty if self.fastpath \
                else ReferenceTwoLevelDirty
            for g in range(ngpus):
                if ma.dirty[g] is None:
                    ma.dirty[g] = tracker_cls(
                        ma.name, ma.length, ma.itemsize,
                        memory=self.platform.devices[g].memory,
                        chunk_bytes=self.chunk_bytes)
                    ma.version += 1
        elif cfg.write_handling == WriteHandling.MISS_CHECK:
            capacity = max(1024, ma.length // 10)
            for g in range(ngpus):
                if ma.miss[g] is None:
                    ma.miss[g] = WriteMissBuffer(
                        ma.name, capacity,
                        memory=self.platform.devices[g].memory)
                    ma.miss[g].tracer = self.tracer
                    ma.version += 1
        elif cfg.write_handling == WriteHandling.REDUCTION:
            ma.reduction_identity = red_identity(cfg.reduction_op or "+")

    # -- data movement helpers ---------------------------------------------------------

    def _writeback(self, ma: ManagedArray) -> None:
        """Device -> host for the freshest copy of each element."""
        if self.pre_access_hook is not None:
            self.pre_access_hook(ma.name)
        if not ma.valid or ma.placement is None:
            ma.device_ahead = False
            return
        with self._tag(MECH_WRITEBACK, ma.name):
            if ma.placement == Placement.REPLICA:
                # Replicas are coherent after the communication step;
                # GPU 0 (or the first resident copy) is authoritative.
                for g, buf in enumerate(ma.buffers):
                    if buf is not None:
                        blk = ma.blocks[g]
                        np.copyto(ma.host[blk.lo:blk.hi], buf.data)
                        np.copyto(ma.staging[blk.lo:blk.hi], buf.data)
                        self.platform.bus.d2h(g, blk.size * ma.itemsize)
                        break
            else:
                for g, buf in enumerate(ma.buffers):
                    if buf is None:
                        continue
                    prim = ma.primary[g].intersect(ma.blocks[g])
                    if prim.size == 0:
                        continue
                    lo = prim.lo - ma.blocks[g].lo
                    np.copyto(ma.host[prim.lo:prim.hi],
                              buf.data[lo:lo + prim.size])
                    np.copyto(ma.staging[prim.lo:prim.hi],
                              buf.data[lo:lo + prim.size])
                    self.platform.bus.d2h(g, prim.size * ma.itemsize)
        ma.device_ahead = False
        ma.materialized = True
        if self.tracer is not None:
            self.tracer.emit(EVENT_WRITEBACK, ma.name,
                             start=self.platform.clock.now, array=ma.name)

    def _release_buffers(self, ma: ManagedArray) -> None:
        for g, buf in enumerate(ma.buffers):
            if buf is not None:
                self.platform.devices[g].memory.free(buf)
                ma.buffers[g] = None
        ma.valid = False
        ma.signature = None
        ma.version += 1

    def _release(self, ma: ManagedArray) -> None:
        self._release_buffers(ma)
        for g in range(self.platform.ngpus):
            if ma.dirty[g] is not None:
                ma.dirty[g].release(self.platform.devices[g].memory)
                ma.dirty[g] = None
            if ma.miss[g] is not None:
                ma.miss[g].release()
                ma.miss[g] = None
