"""Profile-guided adaptive task mapping and placement switching.

The static executor follows the paper exactly: equal iteration-space
splits (section IV-B2) and compile-time placement policies (IV-C).
Both decisions are blind to the machine actually running the program --
a mixed-generation node leaves the fast GPUs idle while the slow ones
finish, and a replica array whose dirty broadcasts dwarf its halo
traffic keeps paying the full all-to-all price.

:class:`AdaptiveBalancer` closes both loops:

* **Task mapping.**  Per parallel loop it keeps an estimated
  *iteration rate* (iterations/second) for every GPU.  The prior comes
  from the translator's static :class:`~repro.translator.cost.KernelCostInfo`
  priced through each device's roofline model -- so even a loop that
  runs *once* (MD's force kernel) gets a weighted split on its first
  call.  Measured per-GPU kernel times then refine the rates with an
  exponential moving average.  New weights are applied only when they
  move past a hysteresis band, and :func:`split_tasks_weighted`
  enforces a minimum chunk per GPU; otherwise the split from the
  previous call is reused so the data loader's reload skipping keeps
  firing.

* **Placement advisory.**  For replica arrays written under dirty-bit
  tracking whose every access the compiler proved affine in the loop
  variable (``ArrayConfig.inferred_window``), the advisor compares the
  observed dirty-broadcast volume against a model of the windowed
  (distributed) propagation volume.  When broadcasts exceed the model
  by ``demote_factor`` the array is demoted to distribution for that
  loop; when observed halo/windowed traffic later dominates the
  remembered broadcast volume the array is promoted back.  A cooldown
  keeps the policy from thrashing.  The switch is sound because both
  kernel engines address arrays relative to ``ctx.base``: placement is
  purely a data-loader decision.

Everything here is advisory: the executor consults the balancer only
when constructed with ``adaptive=True``, and the static path is
untouched.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from ..translator.array_config import ArrayConfig, Placement, WriteHandling
from ..vcuda.device import LaunchConfig
from .partition import split_tasks_hierarchical, split_tasks_weighted

if TYPE_CHECKING:
    from ..vcuda.api import Platform
    from .data_loader import DataLoader


@dataclass
class LoopBalanceState:
    """Balancing history of one parallel loop."""

    #: Weights last *applied* to a split (normalized, one per GPU).
    weights: list[float]
    #: Estimated iteration rate per GPU (iterations/second); starts at
    #: the roofline prior, refined by measurement.
    rates: list[float]
    #: Whether ``rates[g]`` has absorbed at least one measurement.
    measured: list[bool] = field(default_factory=list)
    calls: int = 0
    #: Number of times the applied weights actually changed.
    resplits: int = 0
    #: Split-consistency group this loop belongs to (loops sharing
    #: distributed arrays use one weight vector).
    group: int = -1


@dataclass
class ArrayPolicyState:
    """Placement advisory state of one (loop, array) pair."""

    demoted: bool = False
    #: Calls remaining before the next switch is allowed.
    cooldown: int = 0
    calls: int = 0
    #: EMA of observed replica dirty-broadcast bytes per call.
    replica_bytes_avg: float = 0.0
    #: EMA of observed windowed/halo propagation bytes per call.
    windowed_bytes_avg: float = 0.0
    switches: int = 0


class AdaptiveBalancer:
    """Keeps per-loop rate estimates and per-array placement advice."""

    def __init__(
        self,
        platform: "Platform",
        loader: "DataLoader | None" = None,
        *,
        alpha: float = 0.5,
        hysteresis: float = 0.05,
        min_chunk: int = 1,
        demote_factor: float = 1.5,
        promote_factor: float = 1.25,
        min_calls: int = 2,
        cooldown: int = 3,
        min_traffic_bytes: int = 4096,
        model_iters: int = 40,
        starve_threshold: float = 0.01,
    ) -> None:
        self.platform = platform
        self.loader = loader
        #: Opt-in tracer: resplits and placement switches emit decision
        #: events.  Set by the executor when tracing is enabled.
        self.tracer: Any | None = None
        #: EMA smoothing for measured rates (1.0 = trust only the last).
        self.alpha = alpha
        #: Re-split only when some GPU's target weight moved by more
        #: than this fraction of the iteration space.
        self.hysteresis = hysteresis
        self.min_chunk = min_chunk
        self.demote_factor = demote_factor
        self.promote_factor = promote_factor
        #: Observations required before the advisor may switch.
        self.min_calls = min_calls
        #: Calls between placement switches of the same array.
        self.cooldown = cooldown
        #: Broadcast volume below this never triggers a demotion (the
        #: per-transfer latency floor makes tiny windowed transfers a
        #: wash).
        self.min_traffic_bytes = min_traffic_bytes
        #: Fixed-point iterations of the roofline prior.  The per-task
        #: speed of a GPU depends on its slice size (occupancy), so the
        #: balanced split is a fixed point, not a single evaluation:
        #: under-occupied devices get slower as their slice shrinks,
        #: which can legitimately drive their share toward zero.
        self.model_iters = model_iters
        #: A GPU whose converged weight falls below this is starved
        #: entirely (zero tasks): its kernel contribution is noise, but
        #: keeping it active costs real fixed overheads -- a launch, a
        #: distributed-block load, and membership in every replica
        #: broadcast (one latency-bound transfer per source per level).
        self.starve_threshold = starve_threshold
        self.loops: dict[str, LoopBalanceState] = {}
        self.arrays: dict[tuple[str, str], ArrayPolicyState] = {}
        #: Applied weight vectors shared across loops: a loop whose
        #: target lands within the hysteresis band of a vector another
        #: loop already uses adopts that exact vector, so loops with
        #: near-identical balance produce *identical* splits and the
        #: data loader's reload skipping keeps firing across them.
        self._applied_vectors: list[list[float]] = []
        #: Split-consistency groups: loops that touch the same
        #: distributed array must split identically, or every call
        #: alternation re-places that array (reload/migration churn
        #: that dwarfs any kernel-balance gain).  Maps group id ->
        #: shared weight vector; the group's vector is set by its
        #: first-seen (typically dominant) loop.
        self._group_weights: dict[int, list[float]] = {}
        self._group_owner: dict[int, str] = {}
        self._array_group: dict[str, int] = {}
        self._next_group = 0
        #: Loops observed touching each array name (placement advisor
        #: guard: never demote an array several loops share).
        self._array_loops: dict[str, set[str]] = {}

    # -- task mapping ----------------------------------------------------------

    def plan_tasks(self, plan: Any, lower: int,
                   upper: int) -> list[tuple[int, int]]:
        """Weighted contiguous split of ``[lower, upper)`` for ``plan``."""
        ngpus = self.platform.ngpus
        total = max(0, upper - lower)
        st = self.loops.get(plan.name)
        if st is None:
            gid = self._group_for(plan)
            weights, rates = self._model_split(plan, total)
            weights = self._starve(weights)
            if gid in self._group_weights:
                # A loop sharing distributed arrays already fixed the
                # group's split: adopt it verbatim so those arrays are
                # not re-placed on every loop alternation.
                weights = self._group_weights[gid]
            else:
                weights = self._canonical(weights)
                self._group_weights[gid] = weights
                self._group_owner[gid] = plan.name
            st = LoopBalanceState(weights=weights, rates=rates,
                                  measured=[False] * ngpus, group=gid)
            self.loops[plan.name] = st
        else:
            applied = self._group_weights.get(st.group, st.weights)
            if self._group_owner.get(st.group) == plan.name:
                # Only the group's first (dominant) loop may move the
                # shared vector -- members following their own targets
                # would make the group oscillate.
                target = self._starve(self._normalize(st.rates))
                if max(abs(t - w)
                       for t, w in zip(target, applied)) > self.hysteresis:
                    new = self._canonical(target)
                    if new != applied:
                        self._group_weights[st.group] = new
                        st.resplits += 1
                        if self.tracer is not None:
                            from ..trace.events import EVENT_RESPLIT

                            self.tracer.emit(
                                EVENT_RESPLIT, plan.name,
                                start=self.platform.clock.now,
                                weights=list(new), previous=list(applied))
                            self.tracer.metrics.count(
                                "resplits", 1, loop=plan.name)
            st.weights = self._group_weights.get(st.group, st.weights)
        st.calls += 1
        if self.platform.node_count > 1:
            # Two-level mapping on a cluster: split across nodes by
            # aggregate node weight (throughput), then across each
            # node's GPUs by its members' weights.  Single-node
            # machines keep the flat splitter verbatim.
            node_ranges = [
                (r.start, r.stop)
                for r in (self.platform.node_devices(n)
                          for n in range(self.platform.node_count))
            ]
            return split_tasks_hierarchical(lower, upper, st.weights,
                                            node_ranges, self.min_chunk)
        return split_tasks_weighted(lower, upper, st.weights, self.min_chunk)

    def _group_for(self, plan: Any) -> int:
        """Split-consistency group of ``plan``: loops sharing an array
        that is (or may become) distributed must split identically."""
        names = [n for n, c in plan.config.arrays.items()
                 if c.placement == Placement.DISTRIBUTED
                 or c.inferred_span is not None]
        gid = None
        for n in names:
            if n in self._array_group:
                gid = self._array_group[n]
                break
        if gid is None:
            gid = self._next_group
            self._next_group += 1
        for n in names:
            self._array_group.setdefault(n, gid)
        return gid

    def _model_split(self, plan: Any,
                     total: int) -> tuple[list[float], list[float]]:
        """Fixed point of the roofline prior: weights and final rates.

        Starts from the equal split and alternates "rate the devices at
        the current slice sizes" with "re-split by those rates".  Rates
        use a neutral dynamic guess of one inner trip per outer
        iteration; only the ratio between devices matters.  Because an
        under-occupied device's time is flat in its slice size, its
        rate falls as its share shrinks -- the iteration then correctly
        starves devices that cannot pull their weight at any size.
        """
        ngpus = self.platform.ngpus
        cost = getattr(plan, "cost", None)
        if cost is None or total <= 0:
            eq = [1.0 / ngpus] * ngpus
            return eq, [1.0] * ngpus
        block = getattr(plan, "block_dim", None) or 256
        sizes = [max(total // ngpus, 1)] * ngpus
        weights = [1.0 / ngpus] * ngpus
        rates = [1.0] * ngpus
        for _ in range(self.model_iters):
            rates = []
            for g, dev in enumerate(self.platform.devices):
                n = max(sizes[g], 1)
                dyn = {label: n for label in cost.inner_labels()}
                work = cost.total(n, dyn)
                seconds = dev.kernel_time(
                    work, LaunchConfig.for_tasks(n, block_dim=block))
                rates.append(n / seconds if seconds > 0 else 1.0)
            new = self._normalize(rates)
            if max(abs(a - b) for a, b in zip(new, weights)) < 1e-3:
                weights = new
                break
            weights = new
            sizes = [int(total * w) for w in weights]
        return weights, rates

    def _starve(self, weights: list[float]) -> list[float]:
        """Zero out GPUs below the starvation threshold and renormalize.

        A weight this small means the device cannot do useful work at
        any slice size (its time is flat in the slice, so the fixed
        point starved it); dropping it to zero tasks removes its fixed
        per-call overheads entirely.
        """
        w = [0.0 if x < self.starve_threshold else x for x in weights]
        s = sum(w)
        if s <= 0.0:
            return weights
        return [x / s for x in w]

    def _canonical(self, target: list[float]) -> list[float]:
        """Reuse an already-applied weight vector within the hysteresis
        band of ``target``, so near-identical loops split identically."""
        for vec in self._applied_vectors:
            if max(abs(a - b) for a, b in zip(vec, target)) <= self.hysteresis:
                return vec
        vec = list(target)
        self._applied_vectors.append(vec)
        return vec

    @staticmethod
    def _normalize(rates: list[float]) -> list[float]:
        w = [max(0.0, float(r)) for r in rates]
        s = sum(w)
        if s <= 0.0 or not all(np.isfinite(x) for x in w):
            return [1.0 / len(rates)] * len(rates)
        return [x / s for x in w]

    # -- measurement feedback ---------------------------------------------------

    def observe(
        self,
        plan: Any,
        tasks: list[tuple[int, int]],
        per_gpu_seconds: list[float],
        comm_bytes: dict[str, dict[str, int]] | None = None,
    ) -> None:
        """Fold one execution's measurements into the loop state.

        ``per_gpu_seconds`` are the measured kernel seconds per GPU
        (0 for GPUs with empty slices); ``comm_bytes`` is the
        communication manager's per-array byte accounting of the call
        just finished (``CommunicationManager.last_call_bytes``).
        """
        st = self.loops.get(plan.name)
        if st is not None:
            for g, (t0, t1) in enumerate(tasks):
                n = max(0, t1 - t0)
                secs = per_gpu_seconds[g] if g < len(per_gpu_seconds) else 0.0
                if n <= 0 or secs <= 0.0:
                    continue
                rate = n / secs
                if st.measured[g]:
                    st.rates[g] = ((1.0 - self.alpha) * st.rates[g]
                                   + self.alpha * rate)
                else:
                    st.rates[g] = rate
                    st.measured[g] = True
        self._advise_placement(plan, tasks, comm_bytes or {})

    # -- placement advisory -----------------------------------------------------

    def _advise_placement(
        self,
        plan: Any,
        tasks: list[tuple[int, int]],
        comm_bytes: dict[str, dict[str, int]],
    ) -> None:
        for name in plan.config.arrays:
            self._array_loops.setdefault(name, set()).add(plan.name)
        for name, cfg in plan.config.arrays.items():
            if cfg.write_handling != WriteHandling.DIRTY_BITS:
                continue
            if cfg.placement != Placement.REPLICA or cfg.inferred_span is None:
                continue
            if len(self._array_loops.get(name, ())) > 1:
                # Another loop touches this array under its own (likely
                # replica) policy: demoting it here would re-place the
                # array on every loop alternation.
                continue
            st = self.arrays.setdefault((plan.name, name), ArrayPolicyState())
            st.calls += 1
            if st.cooldown > 0:
                st.cooldown -= 1
            stats = comm_bytes.get(name, {})
            if "replica" in stats:
                st.replica_bytes_avg = self._ema(
                    st.replica_bytes_avg, stats["replica"], st)
            if "windowed" in stats:
                st.windowed_bytes_avg = self._ema(
                    st.windowed_bytes_avg, stats["windowed"], st)
            if "halo" in stats:
                st.windowed_bytes_avg = self._ema(
                    st.windowed_bytes_avg, stats["halo"], st)
            if st.cooldown > 0 or st.calls < self.min_calls:
                continue
            if not st.demoted:
                est = self._windowed_estimate(cfg, tasks, name)
                if (st.replica_bytes_avg > self.min_traffic_bytes
                        and st.replica_bytes_avg
                        > self.demote_factor * est):
                    st.demoted = True
                    st.cooldown = self.cooldown
                    st.switches += 1
                    self._note_switch(name, "demote")
            else:
                if (st.windowed_bytes_avg * self.promote_factor
                        >= st.replica_bytes_avg
                        and st.replica_bytes_avg > 0.0):
                    st.demoted = False
                    st.cooldown = self.cooldown
                    st.switches += 1
                    self._note_switch(name, "promote")

    def _note_switch(self, name: str, direction: str) -> None:
        """Placement switch decided: the loader's reload-skip fast path
        for this array is stale until the next load/migration (the old
        layout no longer matches what the switched placement will
        request, even where the signature tuple still compares equal)."""
        if self.loader is not None:
            self.loader.note_placement_switch(name)
        if self.tracer is not None:
            from ..trace.events import EVENT_PLACEMENT_SWITCH

            self.tracer.emit(EVENT_PLACEMENT_SWITCH, name,
                             start=self.platform.clock.now, array=name,
                             direction=direction)
            self.tracer.metrics.count("placement_switches", 1, array=name,
                                      direction=direction)

    def _ema(self, avg: float, value: float, st: ArrayPolicyState) -> float:
        if avg <= 0.0:
            return float(value)
        return (1.0 - self.alpha) * avg + self.alpha * float(value)

    def _windowed_estimate(self, cfg: ArrayConfig,
                           tasks: list[tuple[int, int]], name: str) -> float:
        """Modeled windowed-propagation bytes per call after demotion.

        With the inferred span ``[coeff*i + lo, coeff*i + hi]`` and a
        contiguous split, adjacent slices' windows overlap by at most
        ``hi - lo + 1 - coeff`` elements per boundary; only dirty
        elements inside an overlap travel, in both directions.
        """
        assert cfg.inferred_span is not None
        coeff, lo_c, hi_c = cfg.inferred_span
        overlap = max(0, hi_c - lo_c + 1 - coeff)
        active = sum(1 for t0, t1 in tasks if t1 > t0)
        itemsize = 8
        if self.loader is not None:
            ma = self.loader.arrays.get(name)
            if ma is not None:
                itemsize = ma.itemsize
        return 2.0 * max(0, active - 1) * overlap * itemsize

    # -- config rewriting -------------------------------------------------------

    def effective_configs(self, plan: Any) -> dict[str, ArrayConfig]:
        """Array configs of ``plan`` with the advisor's demotions applied."""
        configs: dict[str, ArrayConfig] = plan.config.arrays
        out: dict[str, ArrayConfig] | None = None
        for name, cfg in configs.items():
            st = self.arrays.get((plan.name, name))
            if st is None or not st.demoted:
                continue
            if cfg.inferred_window is None or cfg.placement != Placement.REPLICA:
                continue
            if out is None:
                out = dict(configs)
            out[name] = dataclasses.replace(
                cfg,
                placement=Placement.DISTRIBUTED,
                window=cfg.inferred_window)
        return out if out is not None else configs

    # -- introspection ----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Telemetry for tests and benchmark reports."""
        return {
            "loops": {
                name: {
                    "weights": list(st.weights),
                    "rates": list(st.rates),
                    "calls": st.calls,
                    "resplits": st.resplits,
                }
                for name, st in self.loops.items()
            },
            "arrays": {
                f"{loop}:{arr}": {
                    "demoted": st.demoted,
                    "switches": st.switches,
                    "replica_bytes_avg": st.replica_bytes_avg,
                    "windowed_bytes_avg": st.windowed_bytes_avg,
                }
                for (loop, arr), st in self.arrays.items()
            },
        }
