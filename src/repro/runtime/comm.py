"""Inter-GPU communication manager (paper section IV-D).

Runs immediately after the kernels of one parallel loop and performs,
with direct asynchronous GPU-to-GPU transfers:

1. **Replicated arrays**: propagate writes to the other replicas.  The
   sender scans only the second-level dirty bits and ships whole dirty
   chunks (pricing); the values applied are the dirty *elements*
   (functional), so disjoint writers on different GPUs merge correctly.
2. **Distributed arrays**: route buffered write-miss records to the
   owner GPU of each destination element and replay them there; then
   refresh any halo copies that overlap a written primary block.
3. **reductiontoarray destinations**: merge the per-GPU private copies
   (tree reduction across GPUs) with the host's initial values and
   broadcast the result.

Two execution modes:

* **synchronous** (default; the paper's behavior): all queued transfers
  are synchronized once per phase and the elapsed time lands in the
  ``GPU-GPU`` profiler bucket that Fig. 8 reports;
* **pipelined** (``overlap=True``): transfers are issued with
  dependencies -- ``not_before`` the producing/consuming kernels'
  completion -- and mirrored onto one comm stream per GPU, and the
  *next* loop's kernels gate only on the arrays they actually touch
  (:meth:`CommunicationManager.ready_time`).  Replica broadcasts to two
  or more peers may be staged through host memory (one D2H chained to
  per-replica H2Ds) when the model prices that below fanning the source
  link out with peer copies.  Reduction merges always fall back to a
  synchronous barrier because the host consumes the values immediately.
  Exposed vs hidden time is split by
  :meth:`~repro.vcuda.api.Platform.timeline_advance`.

Either way the *data* effects stay eager NumPy copies, which is why app
results are bit-identical with overlap on or off.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..trace.events import (
    MECH_HALO,
    MECH_INTERNODE_STAGED,
    MECH_MISS_REPLAY,
    MECH_REDUCTION_BCAST,
    MECH_REDUCTION_MERGE,
    MECH_REPLICA,
    MECH_REPLICA_STAGED,
    MECH_WINDOWED,
)
from ..translator import kernel_support as ks
from ..translator.array_config import ArrayConfig, Placement, WriteHandling
from ..vcuda.api import Platform
from ..vcuda.bus import Bus, CATEGORY_GPU_GPU, Transfer
from ..vcuda.stream import Event, Stream
from .collectives import COLLECTIVE_MODES, CollectiveEngine
from .data_loader import DataLoader, ManagedArray, _uniform_signature
from .partition import owner_of
from .writemiss import RECORD_BYTES


class CommError(RuntimeError):
    pass


@dataclass
class PendingComm:
    """In-flight coherence traffic of one array (overlap mode)."""

    name: str
    #: Per GPU: when every inbound update to its copy has landed.
    inbound_ready: list[float]
    #: Per GPU: when every transfer touching its link/buffers is done.
    #: Kernels *overwriting* the array must wait for outbound copies
    #: too, since those read the pre-kernel buffer contents.
    involved_ready: list[float]
    #: Completion of the whole propagation.
    finish: float = 0.0
    #: Only halo slabs moved: interior iterations of a follow-up kernel
    #: never read them and may launch before they land.
    halo_only: bool = True
    #: Per GPU: comm-stream event covering this array's transfers.
    events: list[Event | None] = field(default_factory=list)


class CommunicationManager:
    """Executes the post-kernel coherence step for one loop."""

    def __init__(self, platform: Platform, loader: DataLoader,
                 tree_reduction: bool = True,
                 overlap: bool = False,
                 coalesce: bool = False,
                 tracer: Any | None = None,
                 fastpath: bool = True,
                 internode: str = "staged",
                 collective: str = "none") -> None:
        if internode not in ("staged", "naive"):
            raise ValueError(
                f"internode must be 'staged' or 'naive', got {internode!r}")
        if collective not in COLLECTIVE_MODES:
            raise ValueError(
                f"collective must be one of {COLLECTIVE_MODES}, "
                f"got {collective!r}")
        self.platform = platform
        self.loader = loader
        #: Cross-node transport for halo/miss/windowed/replica traffic:
        #: ``staged`` aggregates per node pair (gather the boundary
        #: chunks to the source node's host, one NIC transfer, scatter
        #: on arrival); ``naive`` ships one NIC transfer per GPU pair.
        #: Irrelevant (and unused) on single-node machines.
        self.internode = internode
        #: Collective schedule for replica broadcasts and staged
        #: exchanges: ``none`` keeps the legacy per-destination /
        #: per-node-pair schedule exactly; ``ring``/``tree`` force one
        #: structured schedule; ``auto`` selects per transfer from the
        #: modeled topology (docs/COLLECTIVES.md).  Timing-only: array
        #: results are bit-identical across modes.  Only applies on the
        #: ``staged`` transport -- ``naive`` stays naive so the
        #: ablation baseline is undisturbed.
        self.collective = collective
        self.collectives = (
            CollectiveEngine(platform, collective, tracer=tracer)
            if collective != "none" else None)
        #: Wall-clock fast paths (slice-based dirty propagation, batched
        #: miss replay).  Pure host-side implementation detail: modeled
        #: time, transfer bytes and array contents are bit-identical
        #: either way -- the determinism matrix pins that.
        self.fastpath = fastpath
        #: Opt-in tracer: transfers issued inside a :meth:`_tag` block
        #: carry the coherence mechanism and array that produced them.
        self.tracer = tracer
        #: Merge reduction partials with a binary tree (log G rounds of
        #: concurrent pairwise transfers) rather than a flat gather to
        #: GPU 0 -- the inter-GPU level of the paper's hierarchical
        #: reduction.  The flat variant is kept for the ablation.
        self.tree_reduction = tree_reduction
        #: Issue coherence traffic asynchronously and let later kernels
        #: overlap with it (event-gated launches).
        self.overlap = overlap
        #: Merge adjacent dirty chunks into one transaction per run.
        self.coalesce = coalesce
        #: One comm stream per GPU; every bus transfer is mirrored onto
        #: its endpoint streams, so recorded events carry per-device
        #: communication completion times.
        self.streams = [Stream(g, platform.clock)
                        for g in range(platform.ngpus)]
        #: In-flight traffic per array name (overlap mode only).
        self.pending: dict[str, PendingComm] = {}
        self._active: PendingComm | None = None
        #: Telemetry: bytes shipped per mechanism (tests/benchmarks).
        self.bytes_replica = 0
        self.bytes_miss = 0
        self.bytes_halo = 0
        self.bytes_reduction = 0
        #: Dirty-element propagation of runtime-demoted (distributed)
        #: replica arrays: only copies whose block overlaps the writes
        #: are updated.
        self.bytes_windowed = 0
        #: Per-array cumulative bytes by mechanism, and the same for the
        #: most recent :meth:`after_kernels` call only.  The adaptive
        #: placement advisor reads the per-call numbers.
        self.per_array_bytes: dict[str, dict[str, int]] = {}
        self.last_call_bytes: dict[str, dict[str, int]] = {}
        #: Telemetry: bus transactions issued / saved by coalescing.
        self.transactions = 0
        self.transactions_coalesced_away = 0
        self.staged_broadcasts = 0
        #: Telemetry: bytes that crossed a node boundary (NIC bytes --
        #: aggregated totals under ``staged``, per-pair sums under
        #: ``naive``) and staged node-pair exchanges performed.
        self.bytes_internode = 0
        self.staged_exchanges = 0

    # -- collective telemetry (0 when the engine is off) ---------------------------

    @property
    def collective_broadcasts(self) -> int:
        """Collective (ring/tree) broadcasts scheduled by the engine."""
        if self.collectives is None:
            return 0
        return sum(self.collectives.broadcasts.values())

    @property
    def collective_steps(self) -> int:
        """Pipeline steps (chunk hops) scheduled by the engine."""
        return 0 if self.collectives is None else self.collectives.steps

    @property
    def bytes_collective(self) -> int:
        """Wire bytes moved under collective schedules (each hop a
        relayed chunk traverses counts once)."""
        if self.collectives is None:
            return 0
        return sum(self.collectives.bytes_scheduled.values())

    # -- top level -----------------------------------------------------------------

    def after_kernels(self, configs: dict[str, ArrayConfig],
                      host_env: dict[str, Any] | None = None) -> float:
        """Run the full coherence step; returns GPU-GPU seconds elapsed.

        Synchronous mode returns the batch makespan.  Overlap mode
        returns only the *exposed* GPU-GPU seconds that surfaced during
        this call (reduction fallbacks); everything else stays in
        flight, gated by :meth:`ready_time` / retired by :meth:`drain`.
        """
        clock = self.platform.clock
        gg0 = clock.elapsed_in(CATEGORY_GPU_GPU)
        self.last_call_bytes = {}
        for name, cfg in configs.items():
            ma = self.loader._get(name)
            if cfg.write_handling == WriteHandling.DIRTY_BITS:
                self._begin(ma)
                if ma.placement == Placement.DISTRIBUTED:
                    # Runtime-demoted replica array: writes stay inside
                    # the per-GPU blocks, so only overlapping resident
                    # copies (halos) need the dirty elements.
                    self._propagate_dirty_windowed(ma)
                    self._commit(halo_only=True)
                else:
                    self._propagate_replica(ma)
                    self._commit(halo_only=False)
            elif cfg.write_handling in (WriteHandling.MISS_CHECK,
                                        WriteHandling.LOCAL_PROVEN):
                self._begin(ma)
                halo_only = True
                if cfg.write_handling == WriteHandling.MISS_CHECK:
                    self._route_misses(ma)
                    halo_only = False
                self._refresh_halos(ma)
                self._commit(halo_only=halo_only)
            elif cfg.write_handling == WriteHandling.REDUCTION:
                if self.overlap:
                    # Conservative synchronous fallback: the merged
                    # values are consumed right away (host readback,
                    # placement flip), so barrier on the producing
                    # kernels and expose the merge traffic.
                    self._kernel_barrier()
                self._merge_reduction(ma, cfg)
                if self.overlap and self.platform.bus.pending_count():
                    self.platform.bus.sync_split()
            if cfg.written:
                ma.device_ahead = cfg.write_handling != WriteHandling.REDUCTION
        if not self.overlap:
            if self.platform.bus.pending_count():
                # sync_split == sync(CATEGORY_GPU_GPU) when nothing NET
                # is pending; on a cluster the NIC tail past the last
                # intra-node completion lands in the NET lane.
                return self.platform.bus.sync_split()
            return 0.0
        return clock.elapsed_in(CATEGORY_GPU_GPU) - gg0

    def _tag(self, mechanism: str, array: str | None):
        """Mechanism/array annotation for bus transfers issued inside."""
        if self.tracer is None:
            return nullcontext()
        return self.tracer.tag(mechanism, array)

    # -- overlap bookkeeping -----------------------------------------------------

    def _begin(self, ma: ManagedArray) -> None:
        if not self.overlap:
            return
        ngpus = self.platform.ngpus
        prev = self.pending.pop(ma.name, None)
        pc = PendingComm(name=ma.name,
                         inbound_ready=[0.0] * ngpus,
                         involved_ready=[0.0] * ngpus,
                         events=[None] * ngpus)
        if prev is not None and prev.finish > self.platform.clock.now:
            # Unfinished older traffic on the same array still gates.
            pc.inbound_ready = list(prev.inbound_ready)
            pc.involved_ready = list(prev.involved_ready)
            pc.finish = prev.finish
            pc.halo_only = prev.halo_only
        self._active = pc

    def _commit(self, halo_only: bool) -> None:
        if not self.overlap:
            return
        pc = self._active
        self._active = None
        assert pc is not None
        if pc.finish <= self.platform.clock.now:
            return  # nothing (still) in flight
        pc.halo_only = pc.halo_only and halo_only
        for g in range(self.platform.ngpus):
            pc.events[g] = self.streams[g].record_event()
        self.pending[pc.name] = pc

    def _note(self, tr: Transfer, src: int | None, dst: int | None) -> None:
        """Record one scheduled transfer: stream mirror + dependences."""
        self.transactions += 1
        if not self.overlap:
            return
        pc = self._active
        label = f"{pc.name}:{tr.kind}" if pc is not None else tr.kind
        for g in (src, dst):
            if g is not None:
                self.streams[g].enqueue_at(label, tr.start, tr.end)
        if pc is None:
            return
        pc.finish = max(pc.finish, tr.end)
        for g in (src, dst):
            if g is not None:
                pc.involved_ready[g] = max(pc.involved_ready[g], tr.end)
        if dst is not None:
            pc.inbound_ready[dst] = max(pc.inbound_ready[dst], tr.end)

    def _floor(self, *gpus: int | None) -> float:
        """Issue dependency of a transfer: the endpoint GPUs' queued
        kernels produce (source) or still read (destination) the
        buffers, so the copy may not start before they finish."""
        if not self.overlap:
            return 0.0
        devs = self.platform.devices
        return max([devs[g].busy_until for g in gpus if g is not None],
                   default=0.0)

    def _kernel_barrier(self) -> None:
        target = max([d.busy_until for d in self.platform.devices]
                     + [self.platform.clock.now])
        self.platform.timeline_advance(target)

    def ready_time(self, g: int, configs: dict[str, ArrayConfig], *,
                   interior: bool = False) -> float:
        """Event gate: earliest virtual time GPU ``g`` may launch a
        kernel with the given array usage (overlap mode).

        Reads wait for inbound updates; writes wait for every transfer
        touching the array (outbound copies read the old buffer).
        ``interior=True`` asks for the gate of an interior sub-launch
        that provably reads no in-flight halo element.
        """
        now = self.platform.clock.now
        for name in [n for n, pc in self.pending.items()
                     if pc.finish <= now]:
            del self.pending[name]
        ready = 0.0
        for name, cfg in configs.items():
            pc = self.pending.get(name)
            if pc is None:
                continue
            if cfg.written:
                ready = max(ready, pc.involved_ready[g])
            elif cfg.read:
                if interior and pc.halo_only:
                    continue
                ready = max(ready, pc.inbound_ready[g])
        return ready

    def drain(self) -> float:
        """Barrier on every in-flight transfer and queued kernel."""
        bus = self.platform.bus
        targets = [pc.finish for pc in self.pending.values()]
        targets += [t.end for t in bus.pending]
        targets += [d.busy_until for d in self.platform.devices]
        target = max(targets, default=self.platform.clock.now)
        advanced = self.platform.timeline_advance(target)
        self.pending.clear()
        return advanced

    def _account(self, name: str, kind: str, nbytes: int,
                 transfers: int = 0) -> None:
        """Per-array telemetry: cumulative and most-recent-call bytes."""
        d = self.last_call_bytes.setdefault(name, {})
        d[kind] = d.get(kind, 0) + nbytes
        if transfers:
            k = kind + "_transfers"
            d[k] = d.get(k, 0) + transfers
        t = self.per_array_bytes.setdefault(name, {})
        t[kind] = t.get(kind, 0) + nbytes

    # -- inter-node transport -----------------------------------------------------

    def _node(self, g: int) -> int:
        return self.platform.node_of(g)

    def _flush_internode(self, ma: ManagedArray, mech: str,
                         pairs: list[tuple[int, int, int]]) -> None:
        """Ship cross-node ``(src_gpu, dst_gpu, nbytes)`` pairs whose
        data copies already happened (pairwise-distinct payloads:
        halo slabs, windowed dirty overlaps, miss records).

        ``staged``: per (source node, destination node) pair, gather
        each source GPU's bytes to the node host (D2H), one aggregated
        NIC transfer, scatter per destination GPU (H2D) -- one NIC
        message per node pair instead of one per GPU pair, which is
        what amortizes the NIC latency and is the measured win of the
        multinode ablation.  ``naive``: one NIC transfer per GPU pair
        (the bus routes cross-node peer copies over the NIC itself).
        """
        if not pairs:
            return
        bus = self.platform.bus
        if self.internode == "naive":
            with self._tag(mech, ma.name):
                for g, t, nbytes in pairs:
                    tr = bus.p2p(g, t, nbytes, not_before=self._floor(g, t))
                    self._note(tr, g, t)
                    self.bytes_internode += nbytes
            return
        groups: dict[tuple[int, int], list[tuple[int, int, int]]] = {}
        for g, t, nbytes in pairs:
            groups.setdefault((self._node(g), self._node(t)), []) \
                .append((g, t, nbytes))
        if self.collectives is not None:
            # Progress engine: same per-node-pair aggregation, but the
            # gather/NIC/scatter legs pipeline in NIC-sized chunks so
            # NET time hides behind the PCIe legs (docs/COLLECTIVES.md).
            for sn, dn in sorted(groups):
                outbound = {}
                inbound = {}
                for g, t, nbytes in groups[(sn, dn)]:
                    outbound[g] = outbound.get(g, 0) + nbytes
                    inbound[t] = inbound.get(t, 0) + nbytes
                self.collectives.exchange(ma.name, sn, dn, outbound,
                                          inbound, self._floor, self._note)
                self.bytes_internode += sum(outbound.values())
                self.staged_exchanges += 1
            return
        with self._tag(MECH_INTERNODE_STAGED, ma.name):
            for sn, dn in sorted(groups):
                outbound: dict[int, int] = {}
                inbound: dict[int, int] = {}
                for g, t, nbytes in groups[(sn, dn)]:
                    outbound[g] = outbound.get(g, 0) + nbytes
                    inbound[t] = inbound.get(t, 0) + nbytes
                gather_end = 0.0
                for g in sorted(outbound):
                    d = bus.d2h(g, outbound[g], not_before=self._floor(g),
                                category=CATEGORY_GPU_GPU, local=True)
                    self._note(d, g, None)
                    gather_end = max(gather_end, d.end)
                total = sum(outbound.values())
                net = bus.net(sn, dn, total, not_before=gather_end)
                self._note(net, None, None)
                self.bytes_internode += total
                self.staged_exchanges += 1
                for t in sorted(inbound):
                    h = bus.h2d(t, inbound[t],
                                not_before=max(net.end, self._floor(t)),
                                category=CATEGORY_GPU_GPU, local=True)
                    self._note(h, None, t)

    def _replica_internode(self, ma: ManagedArray, g: int, far: list[int],
                           runs: list[tuple[int, int]], total: int) -> None:
        """Propagate one source GPU's dirty bytes to replicas on other
        nodes.  Unlike :meth:`_flush_internode` the payload is *shared*
        (every replica receives the same dirty elements), so staging
        dedups: one D2H gather on the source node, one NIC transfer of
        ``total`` per destination node -- not per member -- then a
        per-member H2D scatter."""
        bus = self.platform.bus
        if self.internode == "naive":
            with self._tag(MECH_REPLICA, ma.name):
                for t in far:
                    nb = self._floor(g, t)
                    for _, nbytes in runs:
                        tr = bus.p2p(g, t, nbytes, not_before=nb)
                        self._note(tr, g, t)
                        self.bytes_replica += nbytes
                        self.bytes_internode += nbytes
                        self._account(ma.name, "replica", nbytes, transfers=1)
            return
        by_node: dict[int, list[int]] = {}
        for t in far:
            by_node.setdefault(self._node(t), []).append(t)
        if self.collectives is not None:
            # Ring/tree broadcast between the destination node hosts
            # instead of one NIC transfer per destination node from the
            # source: same dedup (each node receives ``total`` once),
            # but the source NIC port is loaded once and the hops
            # pipeline (docs/COLLECTIVES.md).
            self.collectives.node_broadcast(ma.name, g, by_node, total,
                                            self._floor, self._note)
            for dn in sorted(by_node):
                self.bytes_internode += total
                for t in by_node[dn]:
                    self.bytes_replica += total
                    self._account(ma.name, "replica", total, transfers=1)
            return
        with self._tag(MECH_INTERNODE_STAGED, ma.name):
            d = bus.d2h(g, total, not_before=self._floor(g),
                        category=CATEGORY_GPU_GPU, local=True)
            self._note(d, g, None)
            src_node = self._node(g)
            for dn in sorted(by_node):
                net = bus.net(src_node, dn, total, not_before=d.end)
                self._note(net, None, None)
                self.bytes_internode += total
                self.staged_exchanges += 1
                for t in by_node[dn]:
                    h = bus.h2d(t, total,
                                not_before=max(net.end, self._floor(t)),
                                category=CATEGORY_GPU_GPU, local=True)
                    self._note(h, None, t)
                    self.bytes_replica += total
                    self._account(ma.name, "replica", total, transfers=1)

    # -- replicated arrays ------------------------------------------------------------

    def _propagate_replica(self, ma: ManagedArray) -> None:
        ngpus = self.platform.ngpus
        if ngpus == 1:
            tracker = ma.dirty[0]
            if tracker is not None:
                tracker.clear()
            return
        bus = self.platform.bus
        updates = []
        for g in range(ngpus):
            tracker = ma.dirty[g]
            if tracker is None or not tracker.any_dirty:
                continue
            buf = ma.buffers[g]
            assert buf is not None
            # Contiguous-writes fast path: when the tracker proves the
            # dirty set is one interval, gather/scatter with a slice
            # instead of an index vector -- the same elements, the same
            # values, no index array.
            sl = tracker.dirty_slice() if self.fastpath else None
            if sl is not None:
                idx: Any = slice(sl[0], sl[1])
            else:
                idx = tracker.dirty_elements()
            vals = buf.data[idx].copy()
            # One DMA per dirty chunk (the sender scans only the
            # second-level bits, so the transfer unit is the chunk): the
            # per-transfer latency is what makes very small chunks lose
            # and very large chunks ship mostly-clean data -- the
            # trade-off behind the paper's experimentally-chosen 1 MB.
            # With coalescing, adjacent dirty chunks merge into one
            # transaction per contiguous run.
            runs = tracker.dirty_chunk_runs()
            if self.coalesce:
                merged = Bus.coalesce_runs(runs)
                self.transactions_coalesced_away += len(runs) - len(merged)
                runs = merged
            updates.append((g, idx, vals, runs))
        for g, idx, vals, runs in updates:
            targets = [t for t in range(ngpus)
                       if t != g and ma.buffers[t] is not None]
            for t in targets:
                ma.buffers[t].data[idx] = vals
            if not targets:
                continue
            total = sum(n for _, n in runs)
            # Node-local replicas ride the PCIe paths below unchanged;
            # replicas on other nodes go through the NIC transport (on
            # a single-node machine ``far`` is always empty and this
            # split is the identity).
            near = [t for t in targets if self._node(t) == self._node(g)]
            far = [t for t in targets if self._node(t) != self._node(g)]
            if far:
                self._replica_internode(ma, g, far, runs, total)
            targets = near
            if not targets:
                continue
            if (self.collectives is not None
                    and self.collectives.gpu_broadcast(
                        ma.name, g, targets, runs, total,
                        self._floor, self._note) is not None):
                # Hub-local ring chain or binomial p2p tree between the
                # node's replicas; ``auto`` returns None when the
                # direct fan-out prices cheaper and we fall through to
                # the legacy paths unchanged.
                for t in targets:
                    self.bytes_replica += total
                    self._account(ma.name, "replica", total, transfers=1)
            elif self._stage_broadcast(g, targets, runs, total):
                # Host-staged broadcast: one D2H of the dirty bytes,
                # then one H2D per replica chained on its completion.
                # For a fan-out of two or more this loads each link
                # once instead of occupying the source link per peer
                # (and avoids repeated QPI crossings on dual-hub
                # nodes); it needs async transfers with dependencies,
                # so it only runs in overlap mode.  Logically it is
                # inter-GPU traffic: the pieces carry a GPU-GPU
                # category override.
                with self._tag(MECH_REPLICA_STAGED, ma.name):
                    d = bus.d2h(g, total, not_before=self._floor(g),
                                category=CATEGORY_GPU_GPU)
                    self._note(d, g, None)
                    self.staged_broadcasts += 1
                    for t in targets:
                        h = bus.h2d(t, total,
                                    not_before=max(d.end, self._floor(t)),
                                    category=CATEGORY_GPU_GPU)
                        self._note(h, None, t)
                        self.bytes_replica += total
                        self._account(ma.name, "replica", total, transfers=1)
            else:
                with self._tag(MECH_REPLICA, ma.name):
                    for t in targets:
                        nb = self._floor(g, t)
                        for _, nbytes in runs:
                            tr = bus.p2p(g, t, nbytes, not_before=nb)
                            self._note(tr, g, t)
                            self.bytes_replica += nbytes
                            self._account(ma.name, "replica", nbytes,
                                          transfers=1)
        for g in range(ngpus):
            if ma.dirty[g] is not None:
                ma.dirty[g].clear()

    def _stage_broadcast(self, g: int, targets: list[int],
                         runs: list[tuple[int, int]], total: int) -> bool:
        """Price direct fan-out vs host staging for one source GPU."""
        if not self.overlap or len(targets) < 2 or total == 0:
            return False
        bus = self.platform.bus
        direct = sum(bus._duration("p2p", n, g, t)
                     for t in targets for _, n in runs)
        staged = (bus._duration("d2h", total, g, None)
                  + bus._duration("h2d", total, None, g))
        return staged < direct

    def _propagate_dirty_windowed(self, ma: ManagedArray) -> None:
        """Dirty propagation for a runtime-demoted replica array.

        The array carries dirty-bit instrumentation (the generated code
        is unchanged) but its copies are now blocks from the advisor's
        inferred window.  Every write of GPU ``g`` lands inside its own
        block; other GPUs only need the dirty elements that fall inside
        *their* blocks -- the halo overlap -- instead of the full
        replica broadcast.  One transfer per (source, target) pair of
        just the overlapping bytes.
        """
        ngpus = self.platform.ngpus
        if ngpus == 1:
            if ma.dirty[0] is not None:
                ma.dirty[0].clear()
            return
        bus = self.platform.bus
        cross: list[tuple[int, int, int]] = []
        for g in range(ngpus):
            tracker = ma.dirty[g]
            if tracker is None or not tracker.any_dirty:
                continue
            buf = ma.buffers[g]
            assert buf is not None
            # Contiguous-writes fast path: a dense dirty interval
            # intersects each target block as an interval, so both the
            # gather and the scatter become slice copies.
            sl = tracker.dirty_slice() if self.fastpath else None
            if sl is None:
                idx = tracker.dirty_elements()
                vals = buf.data[idx - ma.blocks[g].lo].copy()
            for t in range(ngpus):
                if t == g or ma.buffers[t] is None:
                    continue
                tb = ma.blocks[t]
                if sl is not None:
                    ov_lo = max(sl[0], tb.lo)
                    ov_hi = min(sl[1], tb.hi)
                    n = max(0, ov_hi - ov_lo)
                    if n == 0:
                        continue
                    slo = ov_lo - ma.blocks[g].lo
                    ma.buffers[t].data[ov_lo - tb.lo:ov_hi - tb.lo] = \
                        buf.data[slo:slo + n]
                else:
                    sel = (idx >= tb.lo) & (idx < tb.hi)
                    n = int(sel.sum())
                    if n == 0:
                        continue
                    ma.buffers[t].data[idx[sel] - tb.lo] = vals[sel]
                nbytes = n * ma.itemsize
                if self._node(t) != self._node(g):
                    cross.append((g, t, nbytes))
                else:
                    with self._tag(MECH_WINDOWED, ma.name):
                        tr = bus.p2p(g, t, nbytes,
                                     not_before=self._floor(g, t))
                    self._note(tr, g, t)
                self.bytes_windowed += nbytes
                self._account(ma.name, "windowed", nbytes, transfers=1)
        self._flush_internode(ma, MECH_WINDOWED, cross)
        for g in range(ngpus):
            if ma.dirty[g] is not None:
                ma.dirty[g].clear()

    # -- distributed arrays --------------------------------------------------------------

    def _route_misses(self, ma: ManagedArray) -> None:
        ngpus = self.platform.ngpus
        cross: list[tuple[int, int, int]] = []
        for g in range(ngpus):
            buf = ma.miss[g]
            if buf is None or buf.count == 0:
                continue
            per_target_bytes = [0] * ngpus
            # Batched replay: adjacent same-op record groups collapse
            # into one ownership partition + one scatter per owner
            # instead of per-record-group work.  Replay order within
            # each op is preserved, so results match drain() exactly.
            groups = buf.drain_batched() if self.fastpath else buf.drain()
            for addrs, vals, op in groups:
                owners = owner_of(addrs, ma.primary)
                for t in np.unique(owners):
                    t = int(t)
                    sel = owners == t
                    if t == g:
                        raise CommError(
                            f"write miss on {ma.name!r} routed to its own "
                            "GPU: window/ownership inconsistency")
                    tgt = ma.buffers[t]
                    if tgt is None:
                        raise CommError(
                            f"no resident block for {ma.name!r} on GPU {t}")
                    local = addrs[sel] - ma.blocks[t].lo
                    v = vals[sel] if isinstance(vals, np.ndarray) and vals.shape else vals
                    ks.store(tgt.data, local, v, op)
                    per_target_bytes[t] += int(sel.sum()) * RECORD_BYTES
            for t, nbytes in enumerate(per_target_bytes):
                if nbytes:
                    if self._node(t) != self._node(g):
                        cross.append((g, t, nbytes))
                    else:
                        with self._tag(MECH_MISS_REPLAY, ma.name):
                            tr = self.platform.bus.p2p(
                                g, t, nbytes, not_before=self._floor(g, t))
                        self._note(tr, g, t)
                    self.bytes_miss += nbytes
                    self._account(ma.name, "miss", nbytes, transfers=1)
            # Release any overflow growth steps: the buffer returns to
            # its up-front capacity for the next loop (high_water keeps
            # the peak for the Fig. 9 accounting).
            buf.reset()
        self._flush_internode(ma, MECH_MISS_REPLAY, cross)

    def _refresh_halos(self, ma: ManagedArray) -> None:
        """Owner blocks changed: update overlapping copies on other GPUs."""
        ngpus = self.platform.ngpus
        cross: list[tuple[int, int, int]] = []
        for g in range(ngpus):
            src = ma.buffers[g]
            if src is None:
                continue
            prim = ma.primary[g].intersect(ma.blocks[g])
            if prim.size == 0:
                continue
            for t in range(ngpus):
                if t == g or ma.buffers[t] is None:
                    continue
                ov = prim.intersect(ma.blocks[t])
                if ov.size == 0:
                    continue
                src_lo = ov.lo - ma.blocks[g].lo
                dst_lo = ov.lo - ma.blocks[t].lo
                np.copyto(ma.buffers[t].data[dst_lo:dst_lo + ov.size],
                          src.data[src_lo:src_lo + ov.size])
                nbytes = ov.size * ma.itemsize
                if self._node(t) != self._node(g):
                    cross.append((g, t, nbytes))
                else:
                    with self._tag(MECH_HALO, ma.name):
                        tr = self.platform.bus.p2p(
                            g, t, nbytes, not_before=self._floor(g, t))
                    self._note(tr, g, t)
                self.bytes_halo += nbytes
                self._account(ma.name, "halo", nbytes, transfers=1)
        self._flush_internode(ma, MECH_HALO, cross)

    # -- reduction destinations ------------------------------------------------------------

    def _note_reduction(self, tr: Transfer, src: int, dst: int,
                        nbytes: int) -> None:
        self._note(tr, src, dst)
        self.bytes_reduction += nbytes
        if tr.cross_node:
            self.bytes_internode += nbytes

    def _merge_reduction(self, ma: ManagedArray, cfg: ArrayConfig) -> None:
        """Hierarchical reduction, final (inter-GPU) level (section IV-B4).

        Partial results live in each GPU's private copy.  With
        ``tree_reduction`` (the default) they merge in ``log2(G)``
        rounds of *concurrent* pairwise transfers (disjoint GPU pairs
        use disjoint links); the flat variant gathers everything to
        GPU 0 through its single link.  Either way the combined result
        (including the host's initial values) is broadcast back.
        """
        op = cfg.reduction_op or "+"
        ngpus = self.platform.ngpus
        alive = [g for g in range(ngpus) if ma.buffers[g] is not None]
        nbytes = ma.length * ma.itemsize
        if len(alive) > 1:
            if self.tree_reduction:
                stride = 1
                while stride < len(alive):
                    for k in range(0, len(alive) - stride, 2 * stride):
                        src = alive[k + stride]
                        dst = alive[k]
                        with self._tag(MECH_REDUCTION_MERGE, ma.name):
                            tr = self.platform.bus.p2p(src, dst, nbytes)
                        self._note_reduction(tr, src, dst, nbytes)
                        np.copyto(
                            ma.buffers[dst].data,
                            _combine(op, ma.buffers[dst].data,
                                     ma.buffers[src].data))
                    stride *= 2
            else:
                root = alive[0]
                for g in alive[1:]:
                    with self._tag(MECH_REDUCTION_MERGE, ma.name):
                        tr = self.platform.bus.p2p(g, root, nbytes)
                    self._note_reduction(tr, g, root, nbytes)
                    np.copyto(
                        ma.buffers[root].data,
                        _combine(op, ma.buffers[root].data,
                                 ma.buffers[g].data))
        merged = _combine(op, np.asarray(ma.host).copy(),
                          ma.buffers[alive[0]].data) if alive else \
            np.asarray(ma.host).copy()
        np.copyto(ma.host, merged.astype(ma.host.dtype, copy=False))
        np.copyto(ma.staging, ma.host)
        # Broadcast the final values back (reverse tree / flat fan-out).
        for g in alive:
            np.copyto(ma.buffers[g].data, ma.host)
        if len(alive) > 1:
            if self.tree_reduction:
                stride = 1
                levels: list[list[tuple[int, int]]] = []
                while stride < len(alive):
                    level = []
                    for k in range(0, len(alive) - stride, 2 * stride):
                        level.append((alive[k], alive[k + stride]))
                    levels.append(level)
                    stride *= 2
                for level in reversed(levels):
                    for src, dst in level:
                        with self._tag(MECH_REDUCTION_BCAST, ma.name):
                            tr = self.platform.bus.p2p(src, dst, nbytes)
                        self._note_reduction(tr, src, dst, nbytes)
            else:
                root = alive[0]
                for g in alive[1:]:
                    with self._tag(MECH_REDUCTION_BCAST, ma.name):
                        tr = self.platform.bus.p2p(root, g, nbytes)
                    self._note_reduction(tr, root, g, nbytes)
        ma.device_ahead = False
        ma.materialized = True
        # The buffers now hold a coherent full replica of the merged data,
        # so a follow-up loop reading this array replica-placed skips the
        # reload entirely.
        ma.placement = Placement.REPLICA
        ma.signature = _uniform_signature(Placement.REPLICA, ma.length,
                                          ngpus, False)


def _combine(op: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if op == "+":
        return a + b
    if op == "*":
        return a * b
    if op == "max":
        return np.maximum(a, b)
    if op == "min":
        return np.minimum(a, b)
    if op == "&":
        return a & b
    if op == "|":
        return a | b
    if op == "^":
        return a ^ b
    raise CommError(f"unsupported reduction combine op {op!r}")
