"""Inter-GPU communication manager (paper section IV-D).

Runs immediately after the kernels of one parallel loop and performs,
with direct asynchronous GPU-to-GPU transfers:

1. **Replicated arrays**: propagate writes to the other replicas.  The
   sender scans only the second-level dirty bits and ships whole dirty
   chunks (pricing); the values applied are the dirty *elements*
   (functional), so disjoint writers on different GPUs merge correctly.
2. **Distributed arrays**: route buffered write-miss records to the
   owner GPU of each destination element and replay them there; then
   refresh any halo copies that overlap a written primary block.
3. **reductiontoarray destinations**: merge the per-GPU private copies
   (tree reduction across GPUs) with the host's initial values and
   broadcast the result.

All queued transfers are synchronized once per phase; the elapsed time
lands in the ``GPU-GPU`` profiler bucket that Fig. 8 reports.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..translator import kernel_support as ks
from ..translator.array_config import ArrayConfig, Placement, WriteHandling
from ..vcuda.api import Platform
from ..vcuda.bus import CATEGORY_GPU_GPU
from .data_loader import DataLoader, ManagedArray
from .partition import owner_of
from .writemiss import RECORD_BYTES


class CommError(RuntimeError):
    pass


class CommunicationManager:
    """Executes the post-kernel coherence step for one loop."""

    def __init__(self, platform: Platform, loader: DataLoader,
                 tree_reduction: bool = True) -> None:
        self.platform = platform
        self.loader = loader
        #: Merge reduction partials with a binary tree (log G rounds of
        #: concurrent pairwise transfers) rather than a flat gather to
        #: GPU 0 -- the inter-GPU level of the paper's hierarchical
        #: reduction.  The flat variant is kept for the ablation.
        self.tree_reduction = tree_reduction
        #: Telemetry: bytes shipped per mechanism (tests/benchmarks).
        self.bytes_replica = 0
        self.bytes_miss = 0
        self.bytes_halo = 0
        self.bytes_reduction = 0

    # -- top level -----------------------------------------------------------------

    def after_kernels(self, configs: dict[str, ArrayConfig],
                      host_env: dict[str, Any] | None = None) -> float:
        """Run the full coherence step; returns GPU-GPU seconds elapsed."""
        for name, cfg in configs.items():
            ma = self.loader._get(name)
            if cfg.write_handling == WriteHandling.DIRTY_BITS:
                self._propagate_replica(ma)
            elif cfg.write_handling in (WriteHandling.MISS_CHECK,
                                        WriteHandling.LOCAL_PROVEN):
                if cfg.write_handling == WriteHandling.MISS_CHECK:
                    self._route_misses(ma)
                self._refresh_halos(ma)
            elif cfg.write_handling == WriteHandling.REDUCTION:
                self._merge_reduction(ma, cfg)
            if cfg.written:
                ma.device_ahead = cfg.write_handling != WriteHandling.REDUCTION
        if self.platform.bus.pending_count():
            return self.platform.bus.sync(CATEGORY_GPU_GPU)
        return 0.0

    # -- replicated arrays ------------------------------------------------------------

    def _propagate_replica(self, ma: ManagedArray) -> None:
        ngpus = self.platform.ngpus
        if ngpus == 1:
            tracker = ma.dirty[0]
            if tracker is not None:
                tracker.clear()
            return
        updates = []
        for g in range(ngpus):
            tracker = ma.dirty[g]
            if tracker is None or not tracker.any_dirty:
                continue
            idx = tracker.dirty_elements()
            buf = ma.buffers[g]
            assert buf is not None
            vals = buf.data[idx].copy()
            # One DMA per dirty chunk (the sender scans only the
            # second-level bits, so the transfer unit is the chunk): the
            # per-transfer latency is what makes very small chunks lose
            # and very large chunks ship mostly-clean data -- the
            # trade-off behind the paper's experimentally-chosen 1 MB.
            chunk_sizes = []
            epc = tracker.elems_per_chunk
            for c in tracker.dirty_chunks():
                lo = int(c) * epc
                hi = min(lo + epc, tracker.n_elements)
                chunk_sizes.append((hi - lo) * tracker.itemsize)
            updates.append((g, idx, vals, chunk_sizes))
        for g, idx, vals, chunk_sizes in updates:
            for t in range(ngpus):
                if t == g or ma.buffers[t] is None:
                    continue
                ma.buffers[t].data[idx] = vals
                for nbytes in chunk_sizes:
                    self.platform.bus.p2p(g, t, nbytes)
                    self.bytes_replica += nbytes
        for g in range(ngpus):
            if ma.dirty[g] is not None:
                ma.dirty[g].clear()

    # -- distributed arrays --------------------------------------------------------------

    def _route_misses(self, ma: ManagedArray) -> None:
        ngpus = self.platform.ngpus
        for g in range(ngpus):
            buf = ma.miss[g]
            if buf is None or buf.count == 0:
                continue
            per_target_bytes = [0] * ngpus
            for addrs, vals, op in buf.drain():
                owners = owner_of(addrs, ma.primary)
                for t in np.unique(owners):
                    t = int(t)
                    sel = owners == t
                    if t == g:
                        raise CommError(
                            f"write miss on {ma.name!r} routed to its own "
                            "GPU: window/ownership inconsistency")
                    tgt = ma.buffers[t]
                    if tgt is None:
                        raise CommError(
                            f"no resident block for {ma.name!r} on GPU {t}")
                    local = addrs[sel] - ma.blocks[t].lo
                    v = vals[sel] if isinstance(vals, np.ndarray) and vals.shape else vals
                    ks.store(tgt.data, local, v, op)
                    per_target_bytes[t] += int(sel.sum()) * RECORD_BYTES
            for t, nbytes in enumerate(per_target_bytes):
                if nbytes:
                    self.platform.bus.p2p(g, t, nbytes)
                    self.bytes_miss += nbytes

    def _refresh_halos(self, ma: ManagedArray) -> None:
        """Owner blocks changed: update overlapping copies on other GPUs."""
        ngpus = self.platform.ngpus
        for g in range(ngpus):
            src = ma.buffers[g]
            if src is None:
                continue
            prim = ma.primary[g].intersect(ma.blocks[g])
            if prim.size == 0:
                continue
            for t in range(ngpus):
                if t == g or ma.buffers[t] is None:
                    continue
                ov = prim.intersect(ma.blocks[t])
                if ov.size == 0:
                    continue
                src_lo = ov.lo - ma.blocks[g].lo
                dst_lo = ov.lo - ma.blocks[t].lo
                np.copyto(ma.buffers[t].data[dst_lo:dst_lo + ov.size],
                          src.data[src_lo:src_lo + ov.size])
                nbytes = ov.size * ma.itemsize
                self.platform.bus.p2p(g, t, nbytes)
                self.bytes_halo += nbytes

    # -- reduction destinations ------------------------------------------------------------

    def _merge_reduction(self, ma: ManagedArray, cfg: ArrayConfig) -> None:
        """Hierarchical reduction, final (inter-GPU) level (section IV-B4).

        Partial results live in each GPU's private copy.  With
        ``tree_reduction`` (the default) they merge in ``log2(G)``
        rounds of *concurrent* pairwise transfers (disjoint GPU pairs
        use disjoint links); the flat variant gathers everything to
        GPU 0 through its single link.  Either way the combined result
        (including the host's initial values) is broadcast back.
        """
        op = cfg.reduction_op or "+"
        ngpus = self.platform.ngpus
        alive = [g for g in range(ngpus) if ma.buffers[g] is not None]
        nbytes = ma.length * ma.itemsize
        if len(alive) > 1:
            if self.tree_reduction:
                stride = 1
                while stride < len(alive):
                    for k in range(0, len(alive) - stride, 2 * stride):
                        src = alive[k + stride]
                        dst = alive[k]
                        self.platform.bus.p2p(src, dst, nbytes)
                        self.bytes_reduction += nbytes
                        np.copyto(
                            ma.buffers[dst].data,
                            _combine(op, ma.buffers[dst].data,
                                     ma.buffers[src].data))
                    stride *= 2
            else:
                root = alive[0]
                for g in alive[1:]:
                    self.platform.bus.p2p(g, root, nbytes)
                    self.bytes_reduction += nbytes
                    np.copyto(
                        ma.buffers[root].data,
                        _combine(op, ma.buffers[root].data,
                                 ma.buffers[g].data))
        merged = _combine(op, np.asarray(ma.host).copy(),
                          ma.buffers[alive[0]].data) if alive else \
            np.asarray(ma.host).copy()
        np.copyto(ma.host, merged.astype(ma.host.dtype, copy=False))
        np.copyto(ma.staging, ma.host)
        # Broadcast the final values back (reverse tree / flat fan-out).
        for g in alive:
            np.copyto(ma.buffers[g].data, ma.host)
        if len(alive) > 1:
            if self.tree_reduction:
                stride = 1
                levels: list[list[tuple[int, int]]] = []
                while stride < len(alive):
                    level = []
                    for k in range(0, len(alive) - stride, 2 * stride):
                        level.append((alive[k], alive[k + stride]))
                    levels.append(level)
                    stride *= 2
                for level in reversed(levels):
                    for src, dst in level:
                        self.platform.bus.p2p(src, dst, nbytes)
                        self.bytes_reduction += nbytes
            else:
                root = alive[0]
                for g in alive[1:]:
                    self.platform.bus.p2p(root, g, nbytes)
                    self.bytes_reduction += nbytes
        ma.device_ahead = False
        ma.materialized = True
        # The buffers now hold a coherent full replica of the merged data,
        # so a follow-up loop reading this array replica-placed skips the
        # reload entirely.
        ma.placement = Placement.REPLICA
        ma.signature = (Placement.REPLICA,
                        tuple((0, ma.length) for _ in range(ngpus)), False)


def _combine(op: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if op == "+":
        return a + b
    if op == "*":
        return a * b
    if op == "max":
        return np.maximum(a, b)
    if op == "min":
        return np.minimum(a, b)
    if op == "&":
        return a & b
    if op == "|":
        return a | b
    if op == "^":
        return a ^ b
    raise CommError(f"unsupported reduction combine op {op!r}")
