"""Multi-GPU OpenACC runtime: data loader, communication manager, executor."""

from .comm import CommError, CommunicationManager
from .context import AccExecutor, LoopRunStats
from .data_loader import DataEnvironmentError, DataLoader, ManagedArray
from .dirty import DEFAULT_CHUNK_BYTES, TwoLevelDirty
from .kernelctx import KernelContext
from .partition import (
    Block,
    PartitionError,
    make_window_evaluator,
    owner_of,
    primary_blocks,
    split_tasks,
    window_for_tasks,
)
from .reduction_rt import finalize_scalar_reductions
from .writemiss import MissBufferOverflow, RECORD_BYTES, WriteMissBuffer

__all__ = [
    "AccExecutor",
    "LoopRunStats",
    "CommunicationManager",
    "CommError",
    "DataLoader",
    "ManagedArray",
    "DataEnvironmentError",
    "TwoLevelDirty",
    "DEFAULT_CHUNK_BYTES",
    "KernelContext",
    "Block",
    "PartitionError",
    "split_tasks",
    "window_for_tasks",
    "make_window_evaluator",
    "primary_blocks",
    "owner_of",
    "finalize_scalar_reductions",
    "WriteMissBuffer",
    "MissBufferOverflow",
    "RECORD_BYTES",
]
