"""Task and array partitioning across GPUs.

Section IV-B2: "the tasks in the parallel loop are equally divided
among the GPUs".  :func:`split_tasks` produces the per-GPU iteration
slices; :func:`window_for_tasks` evaluates a ``localaccess`` read
window over a task slice, giving the array block (plus halo) the data
loader must place on that GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..frontend import cast as C
from ..translator.array_config import ReadWindow
from ..translator.interpreter import ExprEvaluator


class PartitionError(ValueError):
    pass


def split_tasks(lower: int, upper: int, ngpus: int) -> list[tuple[int, int]]:
    """Equal block split of ``[lower, upper)`` into ``ngpus`` slices.

    The first ``r`` slices get one extra task when the count does not
    divide evenly; empty slices are legal (more GPUs than tasks).
    """
    if ngpus < 1:
        raise PartitionError("need at least one GPU")
    total = max(0, upper - lower)
    base = total // ngpus
    extra = total % ngpus
    out: list[tuple[int, int]] = []
    start = lower
    for g in range(ngpus):
        size = base + (1 if g < extra else 0)
        out.append((start, start + size))
        start += size
    return out


def split_tasks_weighted(
    lower: int,
    upper: int,
    weights: list[float],
    min_chunk: int = 0,
) -> list[tuple[int, int]]:
    """Contiguous split of ``[lower, upper)`` proportional to ``weights``.

    The adaptive balancer's mapping primitive: slice ``g`` gets
    ``total * weights[g] / sum(weights)`` tasks.  Sizes are floored and
    the remainder is distributed one task at a time to the slices with
    the largest fractional parts (ties broken by lowest GPU index), so
    the split is deterministic and the remainder never piles onto one
    GPU.

    ``min_chunk`` raises undersized slices with *positive* weight to at
    least ``min_chunk`` tasks (taking from the largest slices) so tiny
    slices don't degenerate; zero-weight GPUs legitimately receive
    empty slices (the balancer starves devices that cannot pull their
    weight at any size).  When the range cannot give every active GPU
    ``min_chunk`` tasks -- or the weights are degenerate -- the split
    falls back to the equal block split.
    """
    ngpus = len(weights)
    if ngpus < 1:
        raise PartitionError("need at least one GPU")
    total = max(0, upper - lower)
    # NaN (a garbage measurement) clamps to zero weight -- explicitly,
    # not via comparison-order luck; negative weights clamp the same
    # way.  An all-zero vector or an infinite weight degenerates to the
    # equal split: both carry no usable proportion information.
    w = [0.0 if x != x else max(0.0, float(x)) for x in weights]
    s = sum(w)
    if total == 0 or s <= 0.0 or not all(np.isfinite(x) for x in w):
        return split_tasks(lower, upper, ngpus)
    active = [g for g in range(ngpus) if w[g] > 0.0]
    if min_chunk > 0 and total < len(active) * min_chunk:
        return split_tasks(lower, upper, ngpus)
    raw = [total * x / s for x in w]
    sizes = [int(r) for r in raw]
    rem = total - sum(sizes)
    order = sorted(active, key=lambda g: (-(raw[g] - sizes[g]), g))
    # rem == sum of the active slices' fractional parts, so rem < len(active).
    for g in order[:rem]:
        sizes[g] += 1
    if min_chunk > 0:
        for g in active:
            while sizes[g] < min_chunk:
                donor = max(range(ngpus), key=lambda d: sizes[d])
                take = min(min_chunk - sizes[g], sizes[donor] - min_chunk)
                if take <= 0:
                    return split_tasks(lower, upper, ngpus)
                sizes[g] += take
                sizes[donor] -= take
    out: list[tuple[int, int]] = []
    start = lower
    for g in range(ngpus):
        out.append((start, start + sizes[g]))
        start += sizes[g]
    # Defense in depth: a weighted split that is not an exact
    # contiguous cover of [lower, upper) (negative slice, gap, or
    # overlap) would silently drop or duplicate iterations downstream.
    if start != upper or any(b < a for a, b in out):
        raise PartitionError(
            f"weighted split produced an invalid cover of "
            f"[{lower}, {upper}): {out}")
    return out


def split_tasks_hierarchical(
    lower: int,
    upper: int,
    weights: list[float],
    node_ranges: list[tuple[int, int]],
    min_chunk: int = 0,
) -> list[tuple[int, int]]:
    """Two-level contiguous split: nodes first, then GPUs within each.

    ``node_ranges`` lists each node's ``[gpu_lo, gpu_hi)`` slice of the
    weight vector (contiguous, in order, covering it exactly).  Level
    one splits ``[lower, upper)`` across nodes proportional to each
    node's *aggregate* weight; level two hands each node's sub-range to
    :func:`split_tasks_weighted` with the node's own GPU weights.  The
    result is indexed per GPU, exactly like the flat splitter, and is
    an exact contiguous cover (each level already guarantees its own).

    A node's ``min_chunk`` at level one is ``min_chunk`` per
    positive-weight GPU it hosts, so the inner splits retain enough
    tasks to honour the per-GPU floor.  Degenerate weights degrade the
    same way the flat splitter does, level by level.
    """
    ngpus = len(weights)
    if ngpus < 1:
        raise PartitionError("need at least one GPU")
    if not node_ranges or node_ranges[0][0] != 0 \
            or node_ranges[-1][1] != ngpus \
            or any(node_ranges[i][1] != node_ranges[i + 1][0]
                   for i in range(len(node_ranges) - 1)) \
            or any(hi <= lo for lo, hi in node_ranges):
        raise PartitionError(
            f"node_ranges {node_ranges} is not a contiguous non-empty "
            f"cover of [0, {ngpus})")
    # Clamp exactly like the flat splitter so node aggregates see the
    # same sanitized weights their members will.
    w = [0.0 if x != x else max(0.0, float(x)) for x in weights]
    node_weights = [sum(w[lo:hi]) for lo, hi in node_ranges]
    node_min = [
        min_chunk * sum(1 for g in range(lo, hi) if w[g] > 0.0)
        for lo, hi in node_ranges
    ]
    node_tasks = split_tasks_weighted(lower, upper, node_weights,
                                      min_chunk=max(node_min, default=0))
    out: list[tuple[int, int]] = []
    for (glo, ghi), (tlo, thi) in zip(node_ranges, node_tasks):
        out.extend(split_tasks_weighted(tlo, thi, w[glo:ghi],
                                        min_chunk=min_chunk))
    if out[0][0] != lower or out[-1][1] != upper \
            or any(out[i][1] != out[i + 1][0] for i in range(len(out) - 1)):
        raise PartitionError(
            f"hierarchical split produced an invalid cover of "
            f"[{lower}, {upper}): {out}")
    return out


@dataclass(frozen=True)
class Block:
    """A loaded array block: global element range [lo, hi)."""

    lo: int
    hi: int

    @property
    def size(self) -> int:
        return max(0, self.hi - self.lo)

    def clamp(self, length: int) -> "Block":
        return Block(max(0, min(self.lo, length)), max(0, min(self.hi, length)))

    def intersect(self, other: "Block") -> "Block":
        return Block(max(self.lo, other.lo), min(self.hi, other.hi))

    def contains(self, other: "Block") -> bool:
        return other.size == 0 or (self.lo <= other.lo and other.hi <= self.hi)


def make_window_evaluator(
    loop_var: str,
    host_scalars: dict[str, Any],
    host_arrays: dict[str, np.ndarray],
) -> Callable[[C.Expr, int], int]:
    """Evaluator for window-bound expressions at a given iteration.

    Bounds may read *host-resident* arrays (the BFS
    ``col[bounds(row[i], row[i+1]-1)]`` case): the data loader runs on
    the host where those arrays are available, exactly as in the paper.
    """

    def evaluate(expr: C.Expr, i: int) -> int:
        def load_var(name: str) -> Any:
            if name == loop_var:
                return i
            if name in host_scalars:
                return host_scalars[name]
            raise PartitionError(f"unknown name {name!r} in localaccess bounds")

        def load_elem(name: str, idx: int) -> Any:
            arr = host_arrays.get(name)
            if arr is None:
                raise PartitionError(
                    f"localaccess bounds read array {name!r} which is not "
                    "host-resident")
            if not (0 <= idx < arr.shape[0]):
                raise PartitionError(
                    f"localaccess bounds read {name}[{idx}] out of range")
            return arr[idx]

        return int(ExprEvaluator(load_var, load_elem).eval(expr))

    return evaluate


def window_for_tasks(
    window: ReadWindow,
    tasks: tuple[int, int],
    array_length: int,
    evaluate: Callable[[C.Expr, int], int],
) -> Block:
    """Array block a GPU with task slice ``tasks`` may read.

    The window bounds are inclusive and must be monotone non-decreasing
    in the loop variable (validated at the slice endpoints): the block
    is then ``[lower(t0), upper(t1-1) + 1)`` clamped to the array.
    """
    t0, t1 = tasks
    if t1 <= t0:
        return Block(0, 0)
    lo_first = evaluate(window.lower, t0)
    lo_last = evaluate(window.lower, t1 - 1)
    up_first = evaluate(window.upper, t0)
    up_last = evaluate(window.upper, t1 - 1)
    if lo_last < lo_first or up_last < up_first:
        raise PartitionError(
            "localaccess window bounds must be monotone non-decreasing in "
            "the loop variable")
    return Block(lo_first, up_last + 1).clamp(array_length)


def primary_blocks(windows: list[Block], length: int) -> list[Block]:
    """Disjoint ownership blocks derived from per-GPU (halo'd) windows.

    Owner of element x = the GPU whose window midpoint region covers it;
    computed by splitting at the midpoints of consecutive windows'
    overlap.  With zero halo this returns the windows themselves.
    Elements outside every window are assigned to the nearest block so
    that ownership always covers ``[0, length)``.
    """
    n = len(windows)
    if n == 0:
        return []
    cuts = [0]
    for g in range(1, n):
        left = windows[g - 1]
        right = windows[g]
        if right.size == 0:
            cuts.append(min(max(left.hi, cuts[-1]), length))
            continue
        if left.size == 0:
            cuts.append(right.lo)
            continue
        mid = (min(left.hi, length) + max(right.lo, 0) + 1) // 2
        cuts.append(max(cuts[-1], min(mid, length)))
    cuts.append(length)
    out = []
    for g in range(n):
        lo = min(cuts[g], length)
        hi = min(max(cuts[g + 1], lo), length)
        out.append(Block(lo, hi))
    return out


def owner_of(indices: np.ndarray, blocks: list[Block]) -> np.ndarray:
    """Vectorized ownership lookup: GPU index per global element index."""
    bounds = np.array([b.lo for b in blocks[1:]], dtype=np.int64)
    return np.searchsorted(bounds, indices, side="right")
