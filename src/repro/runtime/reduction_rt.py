"""Multi-GPU finalization of scalar reductions.

The generated kernels fold their lanes into one partial per GPU (the
first two levels of the paper's hierarchical reduction: shared-memory
within a block, then across blocks of one GPU -- both subsumed by the
vectorized lane fold).  This module performs the final level: combine
the per-GPU partials with the host's initial value and charge the tiny
device-to-host readbacks.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..translator.kernel_support import red_fold, red_identity
from ..vcuda.api import Platform
from ..vcuda.bus import CATEGORY_CPU_GPU


def finalize_scalar_reductions(
    platform: Platform,
    per_gpu_results: list[dict[str, Any]],
    per_gpu_ops: list[dict[str, str]],
    host_env: dict[str, Any],
) -> dict[str, Any]:
    """Combine partials across GPUs into the host variables.

    ``host_env`` is updated in place (OpenACC reduction semantics: the
    final value is the host's initial value combined with every
    iteration's contribution).  Returns the finalized values.
    """
    names: dict[str, str] = {}
    for ops in per_gpu_ops:
        names.update(ops)
    finalized: dict[str, Any] = {}
    for name, op in names.items():
        acc = red_identity(op)
        for g, results in enumerate(per_gpu_results):
            if name not in results:
                continue
            acc = red_fold(op, acc, np.asarray(results[name]), None, 1)
            platform.bus.d2h(g, 8)  # one scalar per GPU
        initial = host_env.get(name)
        if initial is None:
            raise KeyError(
                f"reduction variable {name!r} is not a live host variable")
        final = red_fold(op, acc, np.asarray(initial), None, 1)
        if isinstance(initial, (int, np.integer)) and op not in ("max", "min"):
            final = int(final)
        elif isinstance(initial, (int, np.integer)):
            final = int(final) if float(final) == int(final) else final
        host_env[name] = final
        finalized[name] = final
    if platform.bus.pending_count():
        # Only the scalar readbacks queued above belong to this step;
        # in-flight GPU-GPU traffic from the async communication layer
        # stays pending.
        platform.bus.sync_category(CATEGORY_CPU_GPU)
    return finalized
