"""Execution context: runs one compiled parallel loop on the platform.

Implements the paper's three BSP steps (section III-A) for every
parallel loop:

1. **Map**: split the iteration space into equal blocks, one per GPU,
   and have the data loader make every array resident under its
   placement policy (``CPU-GPU`` time).
2. **Compute**: run the kernel on each GPU's slice; launches on
   different GPUs overlap, and each launch is priced by the static cost
   model combined with the dynamic trip counts the kernel reported
   (``KERNELS`` time).
3. **Communicate**: the inter-GPU communication manager propagates
   replica writes, routes write misses, refreshes halos and merges
   reductions (``GPU-GPU`` time); scalar reductions finalize into the
   host environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

import numpy as np

from ..frontend.analysis import const_value
from ..translator.array_config import LoopConfig, Placement, WriteHandling
from ..translator.cost import KernelCostInfo
from ..vcuda.api import Platform
from ..vcuda.bus import CATEGORY_CPU_GPU, CATEGORY_KERNELS
from ..vcuda.device import LaunchConfig
from .balancer import AdaptiveBalancer
from .comm import CommunicationManager
from .data_loader import DataLoader
from .kernelctx import KernelContext
from .reduction_rt import finalize_scalar_reductions


class KernelPlanLike(Protocol):
    """What the executor needs from a compiled kernel plan."""

    name: str
    config: LoopConfig
    loop_var: str
    scalar_names: list[str]
    cost: KernelCostInfo
    block_dim: int | None
    max_gangs: int | None

    def execute(self, ctx: KernelContext, engine: str) -> None: ...


@dataclass
class LoopRunStats:
    """Telemetry of one parallel-loop execution (tests/benchmarks)."""

    kernel_name: str = ""
    tasks: list[tuple[int, int]] = field(default_factory=list)
    kernel_seconds: float = 0.0
    load_seconds: float = 0.0
    comm_seconds: float = 0.0
    dyn_counts: list[dict[str, int]] = field(default_factory=list)


class AccExecutor:
    """Multi-GPU executor bound to one platform."""

    def __init__(
        self,
        platform: Platform,
        loader: DataLoader | None = None,
        engine: str = "vector",
        tree_reduction: bool = True,
        overlap: bool = False,
        coalesce: bool = False,
        adaptive: bool = False,
        balancer: AdaptiveBalancer | None = None,
        sanitizer: Any | None = None,
        tracer: Any | None = None,
        fastpath: bool = True,
        internode: str = "staged",
        collective: str = "none",
    ) -> None:
        if engine not in ("vector", "interp"):
            raise ValueError("engine must be 'vector' or 'interp'")
        self.platform = platform
        #: Wall-clock fast paths: span codegen branches, launch-context
        #: caching, slice dirty propagation.  Results and modeled time
        #: are bit-identical with the flag off (the determinism matrix
        #: pins this); off is the measured "before" baseline.
        self.fastpath = fastpath
        self.loader = loader or DataLoader(platform, fastpath=fastpath)
        #: Opt-in coherence sanitizer (:mod:`repro.sanitizer`).  None by
        #: default: the hot path pays a single ``is None`` test per loop.
        self.sanitizer = sanitizer
        if sanitizer is not None:
            self.loader.sanitizer = sanitizer
            sanitizer.engine = engine
        #: Opt-in structured tracer (:mod:`repro.trace`), a pure
        #: observer like the sanitizer.
        self.tracer = tracer
        if tracer is not None:
            self.loader.tracer = tracer
            platform.clock.observer = tracer.on_clock
            platform.bus.observer = tracer.on_transfer
        self.comm = CommunicationManager(platform, self.loader,
                                         tree_reduction=tree_reduction,
                                         overlap=overlap, coalesce=coalesce,
                                         tracer=tracer, fastpath=fastpath,
                                         internode=internode,
                                         collective=collective)
        #: Launch fast path: per-(plan, GPU) kernel contexts with their
        #: argument bindings, revalidated against each array's version
        #: counter.  Values pin the plan/config objects they were built
        #: from so identity comparisons stay sound.
        self._ctx_cache: dict[tuple[int, int], tuple] = {}
        #: Halo-split stride qualification per array config (overlap
        #: mode re-derives it every launch otherwise).
        self._stride_qual: dict[int, tuple[Any, Any]] = {}
        #: Asynchronous communication pipelining: kernels of the next
        #: loop gate on per-array comm completion instead of a global
        #: barrier, and waits are attributed by the platform timeline.
        self.overlap = overlap
        self.engine = engine
        #: Profile-guided adaptive mapping + placement switching.
        self.adaptive = adaptive
        self.balancer = balancer
        if adaptive and self.balancer is None:
            self.balancer = AdaptiveBalancer(platform, self.loader)
        if self.tracer is not None and self.balancer is not None:
            self.balancer.tracer = self.tracer
        self.history: list[LoopRunStats] = []
        if overlap:
            platform.enable_overlap_accounting()
            self.loader.pre_access_hook = self._host_access_barrier

    # -- main entry ------------------------------------------------------------

    def run_loop(
        self,
        plan: KernelPlanLike,
        lower: int,
        upper: int,
        host_env: dict[str, Any],
    ) -> LoopRunStats:
        from ..runtime.partition import split_tasks

        stats = LoopRunStats(kernel_name=plan.name)
        if self.tracer is not None:
            # Before planning, so balancer decisions (resplits,
            # placement switches) attribute to this loop.
            self.tracer.enter_loop(plan.name)
        if self.adaptive and self.balancer is not None:
            tasks = self.balancer.plan_tasks(plan, lower, upper)
            configs = self.balancer.effective_configs(plan)
        else:
            tasks = split_tasks(lower, upper, self.platform.ngpus)
            configs = plan.config.arrays
        stats.tasks = tasks
        if self.tracer is not None:
            self.tracer.loop_started(self.platform.clock.now, tasks)

        scalars = {}
        for n in plan.scalar_names:
            if n not in host_env:
                raise KeyError(
                    f"kernel {plan.name!r} needs host scalar {n!r} which is "
                    "not defined")
            scalars[n] = host_env[n]

        # Step 1: mapping + loading.  (The window evaluator only reads
        # host_env, so no defensive copy per launch.)
        self.loader.ensure_for_loop(configs, tasks,
                                    plan.loop_var, host_env)
        if self.platform.bus.pending_count():
            if self.overlap:
                # GPU-GPU traffic from earlier loops may still be in
                # flight; wait only for this loop's host transfers.
                stats.load_seconds = self.platform.bus.sync_category(
                    CATEGORY_CPU_GPU)
            else:
                stats.load_seconds = self.platform.bus.sync()
        if self.sanitizer is not None:
            # Pre-launch invariants + shadow run (oracle).
            self.sanitizer.before_kernels(plan, configs, tasks, host_env)

        # Step 2: compute.
        kern0 = self.platform.clock.elapsed_in(CATEGORY_KERNELS)
        profiler = self.platform.profiler
        profiler.note_loop_call(plan.name)
        per_gpu_seconds = [0.0] * self.platform.ngpus
        contexts: list[KernelContext] = []
        for g, (t0, t1) in enumerate(tasks):
            ctx = self._make_context(g, t0, t1, plan, scalars, configs)
            contexts.append(ctx)
            plan.execute(ctx, self.engine)
            n = max(0, t1 - t0)
            if n == 0:
                continue
            work = plan.cost.total(n, ctx.dyn_counts)
            dev = self.platform.devices[g]
            n_recs = len(dev.launches)
            if self.overlap:
                seconds, launches = self._launch_async(
                    plan, g, t0, t1, work, dev, configs)
            else:
                cfg = self._launch_cfg(plan, n)
                seconds = dev.kernel_time(work, cfg)
                launches = 1
                start = max(dev.busy_until, self.platform.clock.now)
                rec = dev.record_launch(plan.name, work, cfg, seconds)
                rec.start = start
                dev.busy_until = start + seconds
            per_gpu_seconds[g] = seconds
            profiler.record_kernel(plan.name, g, seconds,
                                   launches=launches, iterations=n)
            if self.tracer is not None:
                fusion = getattr(plan, "fusion_members", None)
                for rec in dev.launches[n_recs:]:
                    self.tracer.kernel_event(rec, iterations=n,
                                             fusion=fusion)
        if not self.overlap:
            stats.kernel_seconds = self.platform.sync_devices()
        stats.dyn_counts = [dict(c.dyn_counts) for c in contexts]
        if self.sanitizer is not None:
            # Dirty-bit soundness, while the bits are still set.
            self.sanitizer.after_kernels(plan)

        # Step 3: communicate.
        stats.comm_seconds = self.comm.after_kernels(configs)
        if self.overlap:
            if any(c.scalar_ops for c in contexts):
                # The host consumes the reduction values right after this
                # loop: conservative synchronous fallback (barrier on
                # every queued kernel before the tiny readbacks).
                self.comm._kernel_barrier()
            stats.kernel_seconds = (
                self.platform.clock.elapsed_in(CATEGORY_KERNELS) - kern0)
        finalize_scalar_reductions(
            self.platform,
            [c.scalar_results for c in contexts],
            [c.scalar_ops for c in contexts],
            host_env,
        )
        if self.sanitizer is not None:
            # Replay completeness, replica agreement, localaccess spans,
            # and the oracle diff of every written array and scalar.
            self.sanitizer.after_comm(plan, host_env)
        if self.adaptive and self.balancer is not None:
            self.balancer.observe(plan, tasks, per_gpu_seconds,
                                  self.comm.last_call_bytes)
        if self.tracer is not None:
            self.tracer.end_loop(self.platform.clock.now)
        self.history.append(stats)
        return stats

    # -- launch helpers -----------------------------------------------------------

    def _launch_cfg(self, plan: KernelPlanLike, n: int) -> LaunchConfig:
        block = getattr(plan, "block_dim", None) or 256
        cfg = LaunchConfig.for_tasks(n, block_dim=block)
        max_gangs = getattr(plan, "max_gangs", None)
        if max_gangs is not None:
            cfg = LaunchConfig(grid_dim=min(cfg.grid_dim, max_gangs),
                               block_dim=cfg.block_dim)
        return cfg

    def _launch_async(self, plan: KernelPlanLike, g: int, t0: int, t1: int,
                      work, dev, configs: dict | None = None,
                      ) -> tuple[float, int]:
        """Event-gated launch: wait only for the arrays this kernel
        touches; split off the halo boundary when that lets the interior
        start before inbound halos land (overlap mode).  Returns the
        launched kernel seconds and launch count (profiler feedback)."""
        clock = self.platform.clock
        n = t1 - t0
        arrays = configs if configs is not None else plan.config.arrays
        ready_full = self.comm.ready_time(g, arrays)
        ready_int = self.comm.ready_time(g, arrays, interior=True)
        if ready_full > ready_int + 1e-15:
            split = self._split_geometry(plan, g, arrays)
            if split is not None:
                before, after = split
                n_bnd = min(n, before + after)
                n_int = n - n_bnd
                if n_int > 0 and n_bnd > 0:
                    # Interior/boundary split: the interior sub-launch
                    # reads no in-flight halo element and starts as soon
                    # as the device is free; the boundary sub-launch
                    # waits for the halos.  Two launches pay extra
                    # launch overhead and reduced occupancy -- the
                    # honest cost of the overlap.
                    w_int = work.scaled(n_int / n)
                    w_bnd = work.scaled(n_bnd / n)
                    cfg_i = self._launch_cfg(plan, n_int)
                    s_i = dev.kernel_time(w_int, cfg_i)
                    start = max(dev.busy_until, clock.now, ready_int)
                    rec = dev.record_launch(plan.name + "[int]", w_int,
                                            cfg_i, s_i)
                    rec.start = start
                    dev.busy_until = start + s_i
                    cfg_b = self._launch_cfg(plan, n_bnd)
                    s_b = dev.kernel_time(w_bnd, cfg_b)
                    start = max(dev.busy_until, clock.now, ready_full)
                    rec = dev.record_launch(plan.name + "[bnd]", w_bnd,
                                            cfg_b, s_b)
                    rec.start = start
                    dev.busy_until = start + s_b
                    return s_i + s_b, 2
        cfg = self._launch_cfg(plan, n)
        seconds = dev.kernel_time(work, cfg)
        start = max(dev.busy_until, clock.now, ready_full)
        rec = dev.record_launch(plan.name, work, cfg, seconds)
        rec.start = start
        dev.busy_until = start + seconds
        return seconds, 1

    def _split_geometry(self, plan: KernelPlanLike, g: int,
                        configs: dict | None = None) -> tuple[int, int] | None:
        """Boundary iteration counts ``(before, after)`` of a halo split.

        Only valid when every pending read of this kernel is a
        unit-stride halo'd distributed array: then iteration ``i`` reads
        elements ``[i - left, i + right]`` and exactly the first
        ``primary.lo - blocks.lo`` / last ``blocks.hi - primary.hi``
        iterations of the slice touch in-flight halo elements.
        """
        now = self.platform.clock.now
        before = after = 0
        found = False
        arrays = configs if configs is not None else plan.config.arrays
        for name, cfg in arrays.items():
            pc = self.comm.pending.get(name)
            if pc is None or pc.finish <= now:
                continue
            if cfg.written or not cfg.read:
                continue  # gated via ready_time; no split benefit
            if not pc.halo_only or cfg.placement != Placement.DISTRIBUTED:
                return None
            ent = self._stride_qual.get(id(cfg))
            if ent is not None and ent[0] is cfg:
                stride = ent[1]
            else:
                # Qualify once per config object: the window spec is
                # static, so the evaluated stride cannot change between
                # launches.  ``None`` records a disqualified config.
                spec = cfg.window.spec if cfg.window is not None else None
                if spec is not None:
                    if spec.kind != "stride":
                        stride = None
                    else:
                        stride = (const_value(spec.stride)
                                  if spec.stride is not None else 1)
                elif (cfg.window is not None
                        and cfg.window.origin == "inferred"
                        and cfg.inferred_span is not None):
                    # Compiler-inferred windows carry their static span
                    # directly; they qualify for the halo split exactly
                    # as a declared stride form does.
                    stride = cfg.inferred_span[0]
                else:
                    stride = None
                self._stride_qual[id(cfg)] = (cfg, stride)
            if stride != 1:
                return None
            ma = self.loader._get(name)
            blk, prim = ma.blocks[g], ma.primary[g]
            before = max(before, prim.lo - blk.lo)
            after = max(after, blk.hi - prim.hi)
            found = True
        if not found or before + after <= 0:
            return None
        return before, after

    def _host_access_barrier(self, name: str) -> None:
        """The loader is about to read or replace device buffers of
        ``name`` on the host path: wait for every queued kernel and any
        in-flight communication on that array (overlap mode)."""
        pc = self.comm.pending.pop(name, None)
        target = max([d.busy_until for d in self.platform.devices]
                     + [self.platform.clock.now])
        if pc is not None:
            target = max(target, pc.finish)
        self.platform.timeline_advance(target)

    def finish(self) -> float:
        """End-of-program drain: retire in-flight communication and
        outstanding kernel time so the profiler snapshot is complete."""
        return self.comm.drain()

    # -- context construction ------------------------------------------------------

    def _make_context(self, g: int, t0: int, t1: int,
                      plan: KernelPlanLike, scalars: dict[str, Any],
                      configs: dict | None = None) -> KernelContext:
        arrays = configs if configs is not None else plan.config.arrays
        key = (id(plan), g)
        if self.fastpath:
            hit = self._ctx_cache.get(key)
            if hit is not None:
                ctx, c_plan, c_arrays, deps = hit
                if c_plan is plan and c_arrays is arrays and all(
                        ma.version == v for ma, v in deps):
                    # Steady-state launch: every binding (buffer views,
                    # base offsets, trackers, miss buffers, windows) is
                    # unchanged -- refresh only the per-launch slice,
                    # scalars and result slots.
                    ctx.i0 = t0
                    ctx.i1 = t1
                    ctx.scalars = dict(scalars)
                    ctx.trace = self.tracer
                    ctx.dyn_counts = {}
                    ctx.scalar_results = {}
                    ctx.scalar_ops = {}
                    return ctx
        ctx = KernelContext(device_index=g, i0=t0, i1=t1,
                            scalars=dict(scalars), trace=self.tracer,
                            fastpath=self.fastpath)
        deps = []
        for name, cfg in arrays.items():
            ma = self.loader._get(name)
            deps.append((ma, ma.version))
            buf = ma.buffers[g]
            if buf is None:
                ctx.arrays[name] = np.empty(0, dtype=ma.host.dtype)
                ctx.base[name] = 0
            else:
                ctx.arrays[name] = buf.data
                ctx.base[name] = ma.blocks[g].lo
            if cfg.write_handling == WriteHandling.DIRTY_BITS:
                tracker = ma.dirty[g]
                assert tracker is not None
                ctx.dirty[name] = tracker
            elif cfg.write_handling == WriteHandling.MISS_CHECK:
                ctx.windows[name] = ma.blocks[g]
                buf_m = ma.miss[g]
                assert buf_m is not None
                ctx.miss[name] = buf_m
            if cfg.write_handling == WriteHandling.REDUCTION:
                ctx.reduction_arrays[name] = ctx.arrays[name]
        if self.fastpath:
            self._ctx_cache[key] = (ctx, plan, arrays, deps)
        return ctx
