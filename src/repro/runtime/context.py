"""Execution context: runs one compiled parallel loop on the platform.

Implements the paper's three BSP steps (section III-A) for every
parallel loop:

1. **Map**: split the iteration space into equal blocks, one per GPU,
   and have the data loader make every array resident under its
   placement policy (``CPU-GPU`` time).
2. **Compute**: run the kernel on each GPU's slice; launches on
   different GPUs overlap, and each launch is priced by the static cost
   model combined with the dynamic trip counts the kernel reported
   (``KERNELS`` time).
3. **Communicate**: the inter-GPU communication manager propagates
   replica writes, routes write misses, refreshes halos and merges
   reductions (``GPU-GPU`` time); scalar reductions finalize into the
   host environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

import numpy as np

from ..translator.array_config import LoopConfig, WriteHandling
from ..translator.cost import KernelCostInfo
from ..vcuda.api import Platform
from ..vcuda.device import LaunchConfig
from .comm import CommunicationManager
from .data_loader import DataLoader
from .kernelctx import KernelContext
from .reduction_rt import finalize_scalar_reductions


class KernelPlanLike(Protocol):
    """What the executor needs from a compiled kernel plan."""

    name: str
    config: LoopConfig
    loop_var: str
    scalar_names: list[str]
    cost: KernelCostInfo
    block_dim: int | None
    max_gangs: int | None

    def execute(self, ctx: KernelContext, engine: str) -> None: ...


@dataclass
class LoopRunStats:
    """Telemetry of one parallel-loop execution (tests/benchmarks)."""

    kernel_name: str = ""
    tasks: list[tuple[int, int]] = field(default_factory=list)
    kernel_seconds: float = 0.0
    load_seconds: float = 0.0
    comm_seconds: float = 0.0
    dyn_counts: list[dict[str, int]] = field(default_factory=list)


class AccExecutor:
    """Multi-GPU executor bound to one platform."""

    def __init__(
        self,
        platform: Platform,
        loader: DataLoader | None = None,
        engine: str = "vector",
        tree_reduction: bool = True,
    ) -> None:
        if engine not in ("vector", "interp"):
            raise ValueError("engine must be 'vector' or 'interp'")
        self.platform = platform
        self.loader = loader or DataLoader(platform)
        self.comm = CommunicationManager(platform, self.loader,
                                         tree_reduction=tree_reduction)
        self.engine = engine
        self.history: list[LoopRunStats] = []

    # -- main entry ------------------------------------------------------------

    def run_loop(
        self,
        plan: KernelPlanLike,
        lower: int,
        upper: int,
        host_env: dict[str, Any],
    ) -> LoopRunStats:
        from ..runtime.partition import split_tasks

        stats = LoopRunStats(kernel_name=plan.name)
        tasks = split_tasks(lower, upper, self.platform.ngpus)
        stats.tasks = tasks

        scalars = {}
        for n in plan.scalar_names:
            if n not in host_env:
                raise KeyError(
                    f"kernel {plan.name!r} needs host scalar {n!r} which is "
                    "not defined")
            scalars[n] = host_env[n]

        # Step 1: mapping + loading.
        self.loader.ensure_for_loop(plan.config.arrays, tasks,
                                    plan.loop_var, dict(host_env))
        if self.platform.bus.pending_count():
            stats.load_seconds = self.platform.bus.sync()

        # Step 2: compute.
        contexts: list[KernelContext] = []
        for g, (t0, t1) in enumerate(tasks):
            ctx = self._make_context(g, t0, t1, plan, scalars)
            contexts.append(ctx)
            plan.execute(ctx, self.engine)
            n = max(0, t1 - t0)
            work = plan.cost.total(n, ctx.dyn_counts)
            block = getattr(plan, "block_dim", None) or 256
            cfg = LaunchConfig.for_tasks(n, block_dim=block)
            max_gangs = getattr(plan, "max_gangs", None)
            if max_gangs is not None:
                cfg = LaunchConfig(grid_dim=min(cfg.grid_dim, max_gangs),
                                   block_dim=cfg.block_dim)
            dev = self.platform.devices[g]
            seconds = dev.kernel_time(work, cfg) if n > 0 else 0.0
            if n > 0:
                start = max(dev.busy_until, self.platform.clock.now)
                rec = dev.record_launch(plan.name, work, cfg, seconds)
                rec.start = start
                dev.busy_until = start + seconds
        stats.kernel_seconds = self.platform.sync_devices()
        stats.dyn_counts = [dict(c.dyn_counts) for c in contexts]

        # Step 3: communicate.
        stats.comm_seconds = self.comm.after_kernels(plan.config.arrays)
        finalize_scalar_reductions(
            self.platform,
            [c.scalar_results for c in contexts],
            [c.scalar_ops for c in contexts],
            host_env,
        )
        self.history.append(stats)
        return stats

    # -- context construction ------------------------------------------------------

    def _make_context(self, g: int, t0: int, t1: int,
                      plan: KernelPlanLike, scalars: dict[str, Any]) -> KernelContext:
        ctx = KernelContext(device_index=g, i0=t0, i1=t1, scalars=dict(scalars))
        for name, cfg in plan.config.arrays.items():
            ma = self.loader._get(name)
            buf = ma.buffers[g]
            if buf is None:
                ctx.arrays[name] = np.empty(0, dtype=ma.host.dtype)
                ctx.base[name] = 0
            else:
                ctx.arrays[name] = buf.data
                ctx.base[name] = ma.blocks[g].lo
            if cfg.write_handling == WriteHandling.DIRTY_BITS:
                tracker = ma.dirty[g]
                assert tracker is not None
                ctx.dirty[name] = tracker
            elif cfg.write_handling == WriteHandling.MISS_CHECK:
                ctx.windows[name] = ma.blocks[g]
                buf_m = ma.miss[g]
                assert buf_m is not None
                ctx.miss[name] = buf_m
            if cfg.write_handling == WriteHandling.REDUCTION:
                ctx.reduction_arrays[name] = ctx.arrays[name]
        return ctx
