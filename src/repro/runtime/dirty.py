"""Two-level dirty-bit tracking for replicated arrays (section IV-D1).

Each GPU keeps, per written replicated array, one dirty flag per
element plus a second-level flag per fixed-size *chunk*.  The kernel
instrumentation sets both on every store; after the kernel the
communication manager transfers only the chunks whose second-level bit
is set -- with a clean single-level scheme it would have to ship the
whole array because scanning the element bits on the sender is itself
expensive, which is exactly the problem the paper's two-level design
avoids.

The paper picks 1 MB chunks experimentally; :data:`DEFAULT_CHUNK_BYTES`
matches, and the ablation benchmark sweeps it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..vcuda.memory import DeviceMemory, PURPOSE_SYSTEM

DEFAULT_CHUNK_BYTES = 1 << 20


@dataclass
class DirtyStats:
    """Telemetry for tests and the chunk-size ablation."""

    marks: int = 0
    elements_dirty: int = 0


class TwoLevelDirty:
    """Dirty bits for one replicated array on one GPU."""

    def __init__(
        self,
        name: str,
        n_elements: int,
        itemsize: int,
        memory: DeviceMemory | None = None,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> None:
        if n_elements < 0:
            raise ValueError("element count must be non-negative")
        if chunk_bytes < itemsize:
            raise ValueError("chunk must hold at least one element")
        self.name = name
        self.n_elements = n_elements
        self.itemsize = itemsize
        self.chunk_bytes = chunk_bytes
        self.elems_per_chunk = max(1, chunk_bytes // itemsize)
        self.n_chunks = max(1, -(-n_elements // self.elems_per_chunk)) if n_elements else 0
        self.stats = DirtyStats()
        self._bufs = []
        # Both bit arrays are sized exactly (an empty array gets empty
        # bitmaps): a phantom chunk 0 for zero-length arrays would make
        # the element and chunk levels disagree about what exists.
        if memory is not None:
            # Account the bit arrays as runtime ("System") device memory.
            self._bufs.append(memory.alloc(
                f"dirty:{name}", n_elements, np.uint8,
                purpose=PURPOSE_SYSTEM, fill=0))
            self._bufs.append(memory.alloc(
                f"dirty2:{name}", self.n_chunks, np.uint8,
                purpose=PURPOSE_SYSTEM, fill=0))
            self.element_bits = self._bufs[0].data
            self.chunk_bits = self._bufs[1].data
        else:
            self.element_bits = np.zeros(n_elements, dtype=np.uint8)
            self.chunk_bits = np.zeros(self.n_chunks, dtype=np.uint8)

    # -- kernel-side operations ------------------------------------------------

    def mark(self, indices: np.ndarray) -> None:
        """Set element + chunk bits for ``indices`` (global positions)."""
        if np.ndim(indices) == 0:
            indices = np.array([indices], dtype=np.int64)
        if indices.size == 0:
            return
        if indices.min() < 0 or indices.max() >= self.n_elements:
            raise IndexError(
                f"dirty mark outside array {self.name!r}: "
                f"[{indices.min()}, {indices.max()}] vs {self.n_elements}")
        self.element_bits[indices] = 1
        self.chunk_bits[indices // self.elems_per_chunk] = 1
        self.stats.marks += int(indices.size)

    # -- manager-side operations ------------------------------------------------

    @property
    def any_dirty(self) -> bool:
        return bool(self.chunk_bits.any())

    def dirty_chunks(self) -> np.ndarray:
        """Second-level scan: indices of chunks holding any dirty element."""
        return np.nonzero(self.chunk_bits)[0]

    def dirty_elements(self) -> np.ndarray:
        """Global indices of dirty elements (scans only dirty chunks)."""
        chunks = self.dirty_chunks()
        if chunks.size == 0:
            return np.empty(0, dtype=np.int64)
        out = []
        for c in chunks:
            lo = int(c) * self.elems_per_chunk
            hi = min(lo + self.elems_per_chunk, self.n_elements)
            local = np.nonzero(self.element_bits[lo:hi])[0]
            if local.size:
                out.append(local + lo)
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(out)

    def dirty_chunk_runs(self) -> list[tuple[int, int]]:
        """``(byte_offset, nbytes)`` of each dirty chunk, ascending.

        The communication manager ships these one transaction per chunk
        by default, or merged per contiguous run when transfer
        coalescing is enabled (:meth:`Bus.coalesce_runs`).
        """
        runs: list[tuple[int, int]] = []
        for c in self.dirty_chunks():
            lo = int(c) * self.elems_per_chunk
            hi = min(lo + self.elems_per_chunk, self.n_elements)
            runs.append((lo * self.itemsize, (hi - lo) * self.itemsize))
        return runs

    def transfer_bytes(self) -> int:
        """Bytes the communication manager ships: whole dirty chunks.

        The paper transfers at chunk granularity (scanning element bits
        on the sender GPU is what the second level exists to avoid).
        """
        chunks = self.dirty_chunks()
        if chunks.size == 0:
            return 0
        total = 0
        for c in chunks:
            lo = int(c) * self.elems_per_chunk
            hi = min(lo + self.elems_per_chunk, self.n_elements)
            total += (hi - lo) * self.itemsize
        return total

    def clear(self) -> None:
        self.element_bits[:] = 0
        self.chunk_bits[:] = 0

    def release(self, memory: DeviceMemory) -> None:
        """Free the device-resident bit arrays."""
        for b in self._bufs:
            memory.free(b)
        self._bufs = []
