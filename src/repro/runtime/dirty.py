"""Two-level dirty-bit tracking for replicated arrays (section IV-D1).

Each GPU keeps, per written replicated array, one dirty flag per
element plus a second-level flag per fixed-size *chunk*.  The kernel
instrumentation sets both on every store; after the kernel the
communication manager transfers only the chunks whose second-level bit
is set -- with a clean single-level scheme it would have to ship the
whole array because scanning the element bits on the sender is itself
expensive, which is exactly the problem the paper's two-level design
avoids.

The paper picks 1 MB chunks experimentally; :data:`DEFAULT_CHUNK_BYTES`
matches, and the ablation benchmark sweeps it.

Two implementations share one interface:

* :class:`TwoLevelDirty` -- the production engine.  Both bit levels are
  packed ``np.uint64`` bitsets (64 flags per word: 8x less memory than
  one byte per flag, and ``any_dirty`` tests a word at a time).  Scans
  are vectorized -- ``np.flatnonzero`` over the nonzero words plus bit
  arithmetic instead of per-chunk Python loops -- and contiguous marks
  (the common kernel write pattern) take an O(words) span fast path
  that never builds an index array.  While every mark since the last
  clear has been a contiguous span and the union of those spans is
  itself contiguous, the tracker also remembers the exact dirty
  interval (:meth:`dirty_slice`), which lets the communication manager
  propagate with slice copies instead of gather/scatter.
* :class:`ReferenceTwoLevelDirty` -- the original ``uint8``-per-flag
  engine, kept in-tree as the differential-testing oracle and as the
  ``fastpath=False`` baseline the wall-clock benchmarks compare
  against.  Its observable behavior (scan results, transfer bytes,
  error cases, memory accounting shape) defines the contract the
  packed engine must match bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..vcuda.memory import DeviceMemory, PURPOSE_SYSTEM

DEFAULT_CHUNK_BYTES = 1 << 20

#: All 64 bits of one bitset word.
_FULL_WORD = (1 << 64) - 1


@dataclass
class DirtyStats:
    """Telemetry for tests and the chunk-size ablation."""

    marks: int = 0
    elements_dirty: int = 0


def _n_words(bits: int) -> int:
    return (bits + 63) >> 6


def _unpack_bits(words: np.ndarray, count: int) -> np.ndarray:
    """Expand a packed word array to ``count`` uint8 0/1 flags."""
    if count == 0:
        return np.empty(0, dtype=np.uint8)
    return np.unpackbits(words.view(np.uint8), count=count,
                         bitorder="little")


def _set_span(words: np.ndarray, lo: int, hi: int) -> None:
    """Set bits [lo, hi) of a packed bitset; O(words touched)."""
    w0 = lo >> 6
    w1 = (hi - 1) >> 6
    first = (_FULL_WORD << (lo & 63)) & _FULL_WORD
    last = _FULL_WORD >> (63 - ((hi - 1) & 63))
    if w0 == w1:
        words[w0] |= np.uint64(first & last)
    else:
        words[w0] |= np.uint64(first)
        words[w0 + 1:w1] = np.uint64(_FULL_WORD)
        words[w1] |= np.uint64(last)


def _set_indices(words: np.ndarray, idx: np.ndarray) -> None:
    """Set bits at ``idx`` (may contain duplicates) of a packed bitset."""
    bits = np.left_shift(np.uint64(1), (idx & np.int64(63)).astype(np.uint64))
    np.bitwise_or.at(words, idx >> np.int64(6), bits)


def _nonzero_bits(words: np.ndarray) -> np.ndarray:
    """Ascending positions of the set bits of a packed bitset.

    Gathers only the nonzero words, unpacks those, and rebuilds global
    positions with shifts -- no per-word Python loop.
    """
    nz = np.flatnonzero(words)
    if nz.size == 0:
        return np.empty(0, dtype=np.int64)
    local = np.flatnonzero(np.unpackbits(
        words[nz].view(np.uint8), bitorder="little"))
    return (nz[local >> 6] << np.int64(6)) + (local & np.int64(63))


class TwoLevelDirty:
    """Dirty bits for one replicated array on one GPU (packed bitsets)."""

    def __init__(
        self,
        name: str,
        n_elements: int,
        itemsize: int,
        memory: DeviceMemory | None = None,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> None:
        if n_elements < 0:
            raise ValueError("element count must be non-negative")
        if chunk_bytes < itemsize:
            raise ValueError("chunk must hold at least one element")
        self.name = name
        self.n_elements = n_elements
        self.itemsize = itemsize
        self.chunk_bytes = chunk_bytes
        self.elems_per_chunk = max(1, chunk_bytes // itemsize)
        self.n_chunks = max(1, -(-n_elements // self.elems_per_chunk)) if n_elements else 0
        self.stats = DirtyStats()
        self._bufs = []
        # Both bitsets are sized exactly (an empty array gets empty
        # bitmaps): a phantom chunk 0 for zero-length arrays would make
        # the element and chunk levels disagree about what exists.
        ewords = _n_words(n_elements)
        cwords = _n_words(self.n_chunks)
        if memory is not None:
            # Account the bitsets as runtime ("System") device memory:
            # ceil(n/64) words of 8 bytes per level.
            self._bufs.append(memory.alloc(
                f"dirty:{name}", ewords, np.uint64,
                purpose=PURPOSE_SYSTEM, fill=0))
            self._bufs.append(memory.alloc(
                f"dirty2:{name}", cwords, np.uint64,
                purpose=PURPOSE_SYSTEM, fill=0))
            self._ewords = self._bufs[0].data
            self._cwords = self._bufs[1].data
        else:
            self._ewords = np.zeros(ewords, dtype=np.uint64)
            self._cwords = np.zeros(cwords, dtype=np.uint64)
        # Dense-interval hint: while every mark has been a contiguous
        # span and their union is contiguous, the dirty set is exactly
        # [_dense_lo, _dense_hi).  Any random-index mark drops the hint
        # (the bitsets stay authoritative either way).
        self._dense = True
        self._dense_lo = 0
        self._dense_hi = 0

    # -- kernel-side operations ------------------------------------------------

    def mark(self, indices: np.ndarray) -> None:
        """Set element + chunk bits for ``indices`` (global positions)."""
        if np.ndim(indices) == 0:
            indices = np.array([indices], dtype=np.int64)
        if indices.size == 0:
            return
        # Bounds are computed once and reused in the error message --
        # the seed implementation scanned the array twice for the check
        # and twice more to format the failure.
        mn = int(indices.min())
        mx = int(indices.max())
        if mn < 0 or mx >= self.n_elements:
            raise IndexError(
                f"dirty mark outside array {self.name!r}: "
                f"[{mn}, {mx}] vs {self.n_elements}")
        idx = np.asarray(indices, dtype=np.int64)
        _set_indices(self._ewords, idx)
        _set_indices(self._cwords, idx // self.elems_per_chunk)
        self._dense = False
        self.stats.marks += int(indices.size)

    def mark_span(self, lo: int, hi: int) -> None:
        """Contiguous-slice fast path: mark elements [lo, hi).

        The common kernel write pattern (unit-stride stores over the
        iteration slice) marks a contiguous span; setting whole words
        plus two edge masks skips the index-array round trip entirely.
        """
        lo = int(lo)
        hi = int(hi)
        if hi <= lo:
            return
        if lo < 0 or hi > self.n_elements:
            raise IndexError(
                f"dirty mark outside array {self.name!r}: "
                f"[{lo}, {hi - 1}] vs {self.n_elements}")
        _set_span(self._ewords, lo, hi)
        _set_span(self._cwords, lo // self.elems_per_chunk,
                  (hi - 1) // self.elems_per_chunk + 1)
        if self._dense:
            if self._dense_lo == self._dense_hi:
                self._dense_lo, self._dense_hi = lo, hi
            elif lo <= self._dense_hi and hi >= self._dense_lo:
                # Overlapping or adjacent: the union stays an exactly
                # covered interval.
                self._dense_lo = min(self._dense_lo, lo)
                self._dense_hi = max(self._dense_hi, hi)
            else:
                self._dense = False
        self.stats.marks += hi - lo

    # -- manager-side operations ------------------------------------------------

    @property
    def any_dirty(self) -> bool:
        return bool(self._cwords.any())

    def dirty_slice(self) -> tuple[int, int] | None:
        """``(lo, hi)`` when the dirty set is exactly one contiguous
        interval built from span marks, else None.  Lets the sender
        gather values with a slice instead of an index vector."""
        if self._dense and self._dense_hi > self._dense_lo:
            return (self._dense_lo, self._dense_hi)
        return None

    def dirty_chunks(self) -> np.ndarray:
        """Second-level scan: indices of chunks holding any dirty element."""
        return _nonzero_bits(self._cwords)

    def dirty_elements(self) -> np.ndarray:
        """Global indices of dirty elements (scans only dirty words)."""
        sl = self.dirty_slice()
        if sl is not None:
            return np.arange(sl[0], sl[1], dtype=np.int64)
        return _nonzero_bits(self._ewords)

    def dirty_chunk_runs(self) -> list[tuple[int, int]]:
        """``(byte_offset, nbytes)`` of each dirty chunk, ascending.

        The communication manager ships these one transaction per chunk
        by default, or merged per contiguous run when transfer
        coalescing is enabled (:meth:`Bus.coalesce_runs`).
        """
        chunks = self.dirty_chunks()
        if chunks.size == 0:
            return []
        epc = self.elems_per_chunk
        lo = chunks * epc
        hi = np.minimum(lo + epc, self.n_elements)
        return list(zip((lo * self.itemsize).tolist(),
                        ((hi - lo) * self.itemsize).tolist()))

    def transfer_bytes(self) -> int:
        """Bytes the communication manager ships: whole dirty chunks.

        The paper transfers at chunk granularity (scanning element bits
        on the sender GPU is what the second level exists to avoid).
        Closed-form byte math over the second-level popcount: every
        dirty chunk is full-size except a dirty *last* chunk, which
        sheds the tail overshoot -- no per-chunk loop, no re-derived
        lo/hi spans.
        """
        n_dirty = int(np.bitwise_count(self._cwords).sum())
        if n_dirty == 0:
            return 0
        elems = n_dirty * self.elems_per_chunk
        last = self.n_chunks - 1
        if self._cwords[last >> 6] >> np.uint64(last & 63) & np.uint64(1):
            elems -= self.n_chunks * self.elems_per_chunk - self.n_elements
        return elems * self.itemsize

    def clear(self) -> None:
        self._ewords[:] = 0
        self._cwords[:] = 0
        self._dense = True
        self._dense_lo = self._dense_hi = 0

    # -- compatibility views -----------------------------------------------------

    @property
    def element_bits(self) -> np.ndarray:
        """Unpacked per-element flags (sanitizer / test compatibility).

        A fresh uint8 array of 0/1 flags; read-only in spirit -- writes
        to it do not reach the packed bitset.
        """
        return _unpack_bits(self._ewords, self.n_elements)

    @property
    def chunk_bits(self) -> np.ndarray:
        """Unpacked per-chunk flags (sanitizer / test compatibility)."""
        return _unpack_bits(self._cwords, self.n_chunks)

    def release(self, memory: DeviceMemory) -> None:
        """Free the device-resident bitsets."""
        for b in self._bufs:
            memory.free(b)
        self._bufs = []


class ReferenceTwoLevelDirty:
    """The seed ``uint8``-per-flag engine: differential-test oracle and
    the ``fastpath=False`` baseline.  One byte per element flag, one
    per chunk flag, per-chunk Python scan loops -- intentionally kept
    byte-for-byte faithful to the original behavior."""

    def __init__(
        self,
        name: str,
        n_elements: int,
        itemsize: int,
        memory: DeviceMemory | None = None,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> None:
        if n_elements < 0:
            raise ValueError("element count must be non-negative")
        if chunk_bytes < itemsize:
            raise ValueError("chunk must hold at least one element")
        self.name = name
        self.n_elements = n_elements
        self.itemsize = itemsize
        self.chunk_bytes = chunk_bytes
        self.elems_per_chunk = max(1, chunk_bytes // itemsize)
        self.n_chunks = max(1, -(-n_elements // self.elems_per_chunk)) if n_elements else 0
        self.stats = DirtyStats()
        self._bufs = []
        if memory is not None:
            self._bufs.append(memory.alloc(
                f"dirty:{name}", n_elements, np.uint8,
                purpose=PURPOSE_SYSTEM, fill=0))
            self._bufs.append(memory.alloc(
                f"dirty2:{name}", self.n_chunks, np.uint8,
                purpose=PURPOSE_SYSTEM, fill=0))
            self.element_bits = self._bufs[0].data
            self.chunk_bits = self._bufs[1].data
        else:
            self.element_bits = np.zeros(n_elements, dtype=np.uint8)
            self.chunk_bits = np.zeros(self.n_chunks, dtype=np.uint8)

    def mark(self, indices: np.ndarray) -> None:
        if np.ndim(indices) == 0:
            indices = np.array([indices], dtype=np.int64)
        if indices.size == 0:
            return
        mn = int(indices.min())
        mx = int(indices.max())
        if mn < 0 or mx >= self.n_elements:
            raise IndexError(
                f"dirty mark outside array {self.name!r}: "
                f"[{mn}, {mx}] vs {self.n_elements}")
        self.element_bits[indices] = 1
        self.chunk_bits[indices // self.elems_per_chunk] = 1
        self.stats.marks += int(indices.size)

    def mark_span(self, lo: int, hi: int) -> None:
        """Interface parity with the packed engine: a span mark is just
        a mark of the contiguous index range."""
        if hi <= lo:
            return
        self.mark(np.arange(lo, hi, dtype=np.int64))

    @property
    def any_dirty(self) -> bool:
        return bool(self.chunk_bits.any())

    def dirty_slice(self) -> None:
        return None  # the baseline never shortcuts the element scan

    def dirty_chunks(self) -> np.ndarray:
        return np.nonzero(self.chunk_bits)[0]

    def dirty_elements(self) -> np.ndarray:
        chunks = self.dirty_chunks()
        if chunks.size == 0:
            return np.empty(0, dtype=np.int64)
        out = []
        for c in chunks:
            lo = int(c) * self.elems_per_chunk
            hi = min(lo + self.elems_per_chunk, self.n_elements)
            local = np.nonzero(self.element_bits[lo:hi])[0]
            if local.size:
                out.append(local + lo)
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(out)

    def dirty_chunk_runs(self) -> list[tuple[int, int]]:
        runs: list[tuple[int, int]] = []
        for c in self.dirty_chunks():
            lo = int(c) * self.elems_per_chunk
            hi = min(lo + self.elems_per_chunk, self.n_elements)
            runs.append((lo * self.itemsize, (hi - lo) * self.itemsize))
        return runs

    def transfer_bytes(self) -> int:
        chunks = self.dirty_chunks()
        if chunks.size == 0:
            return 0
        total = 0
        for c in chunks:
            lo = int(c) * self.elems_per_chunk
            hi = min(lo + self.elems_per_chunk, self.n_elements)
            total += (hi - lo) * self.itemsize
        return total

    def clear(self) -> None:
        self.element_bits[:] = 0
        self.chunk_bits[:] = 0

    def release(self, memory: DeviceMemory) -> None:
        for b in self._bufs:
            memory.free(b)
        self._bufs = []
