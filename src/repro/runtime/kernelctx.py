"""Per-launch kernel execution context.

One :class:`KernelContext` is built per (kernel, GPU) launch.  It gives
the kernel its iteration slice, buffer-local array views with their
global base offsets (the translator's index rewriting target), host
scalar values, and the instrumentation endpoints the generated code
calls: dirty-bit marking, checked distributed writes with miss
buffering, reduction-to-array accumulation, scalar-reduction partials,
and dynamic trip-count reporting for the cost model.

Both engines -- the vectorized generated kernels and the scalar
reference interpreter -- run against this same interface, which is what
makes differential testing of the translator possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..translator import kernel_support as ks
from .dirty import TwoLevelDirty
from .partition import Block
from .writemiss import WriteMissBuffer


@dataclass
class KernelContext:
    """Execution context of one kernel launch on one GPU."""

    device_index: int
    i0: int
    i1: int
    #: Buffer-local views of each array's loaded block.
    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    #: Global index of element 0 of each local view.
    base: dict[str, int] = field(default_factory=dict)
    scalars: dict[str, Any] = field(default_factory=dict)
    #: Dirty trackers for written replicated arrays.
    dirty: dict[str, TwoLevelDirty] = field(default_factory=dict)
    #: Local windows of distributed arrays needing write checks.
    windows: dict[str, Block] = field(default_factory=dict)
    miss: dict[str, WriteMissBuffer] = field(default_factory=dict)
    #: Private reduction destinations (initialized to the op identity).
    reduction_arrays: dict[str, np.ndarray] = field(default_factory=dict)
    #: Scalar-reduction partial results, set once per kernel run.
    scalar_results: dict[str, Any] = field(default_factory=dict)
    scalar_ops: dict[str, str] = field(default_factory=dict)
    #: Dynamic inner-loop trip totals, keyed by the codegen's labels.
    dyn_counts: dict[str, int] = field(default_factory=dict)
    #: Permissive mode (single-address-space executors, e.g. the OpenMP
    #: baseline): missing dirty trackers / windows / reduction copies are
    #: not errors -- writes go straight to the full arrays.
    permissive: bool = False
    #: Sanitizer instrumentation: called by the scalar interpreter as
    #: ``access_hook(name, iteration, index, kind)`` for every array
    #: access (kind 'r' or 'w').  None (the default) costs one branch.
    access_hook: Any = None
    #: Tracing instrumentation (:class:`repro.trace.Tracer`): write-miss
    #: and dirty-mark volumes are counted per (loop, GPU, array).  None
    #: (the default) costs one branch per instrumentation call.
    trace: Any = None
    #: Wall-clock fast paths in the generated code: kernels emit both a
    #: contiguous-span path (slice loads/stores, O(words) dirty marks)
    #: and the original gather/scatter path, branching on this flag at
    #: run time.  Same compiled kernel, bit-identical results and
    #: modeled cost either way -- only the host-side Python work
    #: differs.
    fastpath: bool = True
    #: Memoized lane-index vector (``_iota_key`` is its (i0, i1)).
    _iota: np.ndarray | None = None
    _iota_key: tuple[int, int] | None = None

    #: Modules exposed to generated code.
    np = np
    ks = ks

    def iota(self) -> np.ndarray:
        """The launch's global lane indices ``arange(i0, i1)``, memoized
        across launches with the same geometry (the dominant case once
        contexts are cached).  Returned read-only so a stale launch can
        never corrupt it; ``ks.bcv`` copies non-writeable inputs."""
        key = (self.i0, self.i1)
        if self._iota is None or self._iota_key != key:
            v = np.arange(self.i0, self.i1, dtype=np.int64)
            v.setflags(write=False)
            self._iota = v
            self._iota_key = key
        return self._iota

    # -- instrumentation endpoints -------------------------------------------------

    def mark_dirty(self, name: str, global_indices: np.ndarray) -> None:
        """Record writes to a replicated array (two-level dirty bits)."""
        tracker = self.dirty.get(name)
        if tracker is None:
            if self.permissive:
                return
            raise RuntimeError(
                f"kernel marked {name!r} dirty but no tracker was configured")
        gi = np.asarray(global_indices, dtype=np.int64)
        tracker.mark(gi)
        if self.trace is not None:
            self.trace.count_dirty(name, self.device_index, int(gi.size))

    def mark_dirty_span(self, name: str, lo: int, n: int) -> None:
        """Span form of :meth:`mark_dirty`: the writes covered global
        indices [lo, lo+n) contiguously, so the tracker sets whole
        bitset words instead of scattering an index array."""
        tracker = self.dirty.get(name)
        if tracker is None:
            if self.permissive:
                return
            raise RuntimeError(
                f"kernel marked {name!r} dirty but no tracker was configured")
        tracker.mark_span(lo, lo + n)
        if self.trace is not None:
            self.trace.count_dirty(name, self.device_index, int(n))

    def write_checked(self, name: str, global_indices: np.ndarray,
                      values: Any, op: str = "") -> None:
        """Distributed-array store with per-write window check.

        In-window writes land in the local view; misses are buffered as
        (address, value) records for the communication manager
        (section IV-D2).
        """
        win = self.windows.get(name)
        if win is None:
            if self.permissive:
                gi = np.asarray(global_indices, dtype=np.int64)
                ks.store(self.arrays[name], gi - self.base[name], values, op)
                return
            raise RuntimeError(
                f"kernel issued checked write to {name!r} without a window")
        gi = np.asarray(global_indices, dtype=np.int64)
        if gi.size == 0:
            return
        vals = values
        hit = (gi >= win.lo) & (gi < win.hi)
        local = gi[hit] - self.base[name]
        hit_vals = vals[hit] if isinstance(vals, np.ndarray) and vals.shape else vals
        if local.size:
            ks.store(self.arrays[name], local, hit_vals, op)
        if not hit.all():
            missed = ~hit
            miss_vals = (vals[missed] if isinstance(vals, np.ndarray) and vals.shape
                         else np.broadcast_to(vals, (int(missed.sum()),)))
            buf = self.miss.get(name)
            if buf is None:
                raise RuntimeError(
                    f"write miss on {name!r} but no miss buffer configured")
            buf.record(gi[missed], np.asarray(miss_vals), op)
            if self.trace is not None:
                self.trace.count_miss(name, self.device_index,
                                      int(missed.sum()))

    def write_checked_span(self, name: str, s0: int, s1: int,
                           values: Any, op: str = "") -> None:
        """Span form of :meth:`write_checked` for a contiguous global
        index range [s0, s1).

        The window intersection becomes interval arithmetic: the hit
        part is one slice store, and the out-of-window edges (left
        and/or right) are buffered as one ascending miss record --
        exactly the addresses, values and record grouping the
        index-vector path would produce for ``arange(s0, s1)``.
        """
        s0 = int(s0)
        s1 = int(s1)
        n = s1 - s0
        if n <= 0:
            return
        win = self.windows.get(name)
        is_vec = isinstance(values, np.ndarray) and values.shape
        if win is None:
            if self.permissive:
                ks.store_span(self.arrays[name], s0 - self.base[name], n,
                              values, op)
                return
            raise RuntimeError(
                f"kernel issued checked write to {name!r} without a window")
        lo_hit = min(max(s0, win.lo), s1)
        hi_hit = max(min(s1, win.hi), lo_hit)
        if hi_hit > lo_hit:
            hit_vals = values[lo_hit - s0:hi_hit - s0] if is_vec else values
            ks.store_span(self.arrays[name], lo_hit - self.base[name],
                          hi_hit - lo_hit, hit_vals, op)
        n_miss = n - (hi_hit - lo_hit)
        if n_miss:
            addrs = np.concatenate([
                np.arange(s0, lo_hit, dtype=np.int64),
                np.arange(hi_hit, s1, dtype=np.int64)])
            if is_vec:
                miss_vals = np.concatenate([
                    values[:lo_hit - s0], values[hi_hit - s0:]])
            else:
                miss_vals = np.broadcast_to(values, (n_miss,))
            buf = self.miss.get(name)
            if buf is None:
                raise RuntimeError(
                    f"write miss on {name!r} but no miss buffer configured")
            buf.record(addrs, np.asarray(miss_vals), op)
            if self.trace is not None:
                self.trace.count_miss(name, self.device_index, n_miss)

    def reduce_to_array(self, name: str, global_indices: np.ndarray,
                        values: Any, op: str) -> None:
        """Accumulate into this GPU's private reduction copy."""
        dest = self.reduction_arrays.get(name)
        if dest is None:
            if self.permissive:
                dest = self.arrays[name]
            else:
                raise RuntimeError(
                    f"reduce_to_array on {name!r} without a private copy")
        gi = np.asarray(global_indices, dtype=np.int64)
        if gi.size == 0:
            return
        if gi.min() < 0 or gi.max() >= dest.shape[0]:
            raise IndexError(
                f"reductiontoarray index out of range for {name!r}")
        ks.store(dest, gi, values, op if op else "+")

    def reduce_scalar(self, op: str, name: str, value: Any) -> None:
        """Report a scalar-reduction partial (folded if called twice)."""
        if name in self.scalar_results:
            value = ks.red_fold(op, self.scalar_results[name],
                                np.asarray(value), None, 1)
        self.scalar_results[name] = value
        self.scalar_ops[name] = op

    def dyn_count(self, label: str, total: int) -> None:
        self.dyn_counts[label] = self.dyn_counts.get(label, 0) + int(total)

    # -- conveniences ----------------------------------------------------------------

    @property
    def n_tasks(self) -> int:
        return max(0, self.i1 - self.i0)
