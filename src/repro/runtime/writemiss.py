"""Write-miss buffers for distributed arrays (section IV-D2).

When a kernel's write to a distributed array falls outside the GPU's
loaded window, the instrumented store buffers the (address, value)
pair in a device-resident system buffer.  After the kernel, the
communication manager routes each record to the GPU that owns the
destination element and replays the write there.

The buffer has a fixed capacity (allocated up front, like the paper's
"system buffers"); overflowing it is handled by growing in capacity
steps, each step charged as additional system memory.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..vcuda.memory import DeviceMemory, PURPOSE_SYSTEM

#: Bytes per record: 8-byte global address + up-to-8-byte value.
RECORD_BYTES = 16


class MissBufferOverflow(RuntimeError):
    pass


class WriteMissBuffer:
    """Miss records for one distributed array on one GPU."""

    def __init__(
        self,
        name: str,
        capacity: int,
        memory: DeviceMemory | None = None,
        allow_growth: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError("miss buffer capacity must be positive")
        self.name = name
        self.capacity = capacity
        #: Optional tracer (pure observer); growth steps are worth
        #: surfacing because each one charges extra system memory.
        self.tracer: Any | None = None
        #: Up-front allocation size; :meth:`reset` shrinks back to it.
        self.base_capacity = capacity
        self.allow_growth = allow_growth
        self.memory = memory
        self._bufs = []
        if memory is not None:
            self._bufs.append(memory.alloc(
                f"miss:{name}", capacity * RECORD_BYTES, np.uint8,
                purpose=PURPOSE_SYSTEM))
        self.addresses: list[np.ndarray] = []
        self.values: list[np.ndarray] = []
        self.ops: list[str] = []
        self.count = 0
        #: Peak record count, for Fig. 9 accounting and tests.
        self.high_water = 0

    def record(self, addresses: np.ndarray, values: np.ndarray, op: str) -> None:
        if addresses.size == 0:
            return
        if addresses.shape[0] != np.broadcast_shapes(addresses.shape,
                                                     np.shape(values) or (1,))[0]:
            raise ValueError("address/value length mismatch")
        new_count = self.count + int(addresses.size)
        while new_count > self.capacity:
            if not self.allow_growth:
                raise MissBufferOverflow(
                    f"write-miss buffer for {self.name!r} exceeded "
                    f"{self.capacity} records")
            self._grow()
        self.addresses.append(np.asarray(addresses, dtype=np.int64))
        self.values.append(np.broadcast_to(values, addresses.shape).copy()
                           if np.ndim(values) == 0 else np.asarray(values))
        self.ops.append(op)
        self.count = new_count
        self.high_water = max(self.high_water, self.count)

    def _grow(self) -> None:
        step = self.capacity
        if self.memory is not None:
            self._bufs.append(self.memory.alloc(
                f"miss:{self.name}:+{len(self._bufs)}", step * RECORD_BYTES,
                np.uint8, purpose=PURPOSE_SYSTEM))
        self.capacity += step
        if self.tracer is not None:
            self.tracer.metrics.count("miss_buffer_growths", 1,
                                      array=self.name)

    def drain(self) -> list[tuple[np.ndarray, np.ndarray, str]]:
        """Take all records, grouped by the op they were written with."""
        out = list(zip(self.addresses, self.values, self.ops))
        self.addresses = []
        self.values = []
        self.ops = []
        self.count = 0
        return out

    def drain_batched(self) -> list[tuple[np.ndarray, np.ndarray, str]]:
        """Like :meth:`drain`, but consecutive groups recorded with the
        same op are concatenated into one record group.

        Replay semantics are unchanged: ``""`` (plain store) applies
        records in order, so last-writer-wins is preserved by keeping
        the concatenation in recording order, and compound ops replay
        through ``np.add.at``-style unbuffered ufuncs, for which one
        call over the concatenated records equals per-group calls.
        Only *adjacent* same-op groups merge -- merging across a
        different op in between would reorder a plain store relative to
        an accumulate on the same address.
        """
        groups = self.drain()
        if len(groups) < 2:
            return groups
        out: list[tuple[np.ndarray, np.ndarray, str]] = []
        run_a: list[np.ndarray] = []
        run_v: list[np.ndarray] = []
        run_op = groups[0][2]
        for addrs, vals, op in groups:
            if op != run_op:
                out.append((np.concatenate(run_a), np.concatenate(run_v),
                            run_op))
                run_a, run_v, run_op = [], [], op
            run_a.append(addrs)
            run_v.append(vals)
        out.append((np.concatenate(run_a), np.concatenate(run_v), run_op))
        return out

    def reset(self) -> None:
        """Drop any leftover records and release growth allocations.

        Growth steps are a per-loop overflow response; keeping them
        alive forever would ratchet the system-memory footprint up to
        the worst loop's miss count (``high_water`` already records the
        peak for Fig. 9).  The communication manager calls this after
        replaying a loop's misses, restoring the up-front
        ``base_capacity`` so the accountant's live bytes return to the
        steady state.
        """
        self.addresses = []
        self.values = []
        self.ops = []
        self.count = 0
        if self.memory is not None:
            for b in self._bufs[1:]:
                self.memory.free(b)
            self._bufs = self._bufs[:1]
        self.capacity = self.base_capacity

    @property
    def record_bytes(self) -> int:
        return self.count * RECORD_BYTES

    def release(self) -> None:
        if self.memory is not None:
            for b in self._bufs:
                self.memory.free(b)
        self._bufs = []
