"""Collective-schedule ablation sweep (docs/COLLECTIVES.md).

Runs the monitored stencil of :mod:`repro.bench.multinode` -- the
workload whose replica-placed recording array broadcasts from every
writer GPU after each sweep -- under the collective engine's schedules
and the two legacy transports:

* ``naive`` -- one NIC transfer per communicating GPU pair (the
  baseline the paper's halo-exchange analysis warns against);
* ``staged`` -- per-node-pair aggregation, serialized
  gather -> NIC -> scatter (PR 9's transport, ``collective="none"``);
* ``ring`` / ``tree`` / ``auto`` -- the staged transport with the
  collective engine's broadcast schedules and the chunked
  staged-exchange progress engine.

Every metric is modeled or counted (never wall-clock), so the
checked-in ``BENCH_collectives.json`` artifact is bit-reproducible;
the benchmark gate regenerates it and byte-compares.
"""

from __future__ import annotations

import numpy as np

from ..vcuda.specs import ClusterSpec, cluster_of
from .machines import hypothetical_cluster, hypothetical_node
from .multinode import ENTRY, STENCIL_PROBES_SOURCE, probe_args

#: Sweep columns: ``collective`` mode per named variant ("naive" is the
#: naive transport; everything else rides ``internode="staged"``).
VARIANTS = ("naive", "staged", "ring", "tree", "auto")


def grouped_cluster(nodes: int, gpus_per_node: int,
                    nodes_per_group: int = 0) -> ClusterSpec:
    """A TSUBAME-class cluster with an optionally oversubscribed
    two-level fabric (``nodes_per_group`` > 0 groups the leaf
    switches, so cross-group flows pay extra hops)."""
    if nodes_per_group <= 0:
        return hypothetical_cluster(nodes, gpus_per_node)
    return cluster_of(nodes, hypothetical_node(gpus_per_node),
                      nodes_per_group=nodes_per_group,
                      name=f"Hypothetical {nodes}x{gpus_per_node} "
                           f"cluster ({nodes_per_group}/group)")


def collective_sweep(nodes: int = 2, gpus_per_node: int = 4,
                     cluster: ClusterSpec | None = None) -> dict:
    """Run the monitored stencil under every schedule variant.

    Asserts inside that every variant's arrays are bit-identical to the
    single-GPU reference (the engine re-prices transfers, never changes
    data), then reports the modeled byte/time/step metrics per variant.
    """
    import repro

    prog = repro.compile(STENCIL_PROBES_SOURCE)
    if cluster is None:
        cluster = grouped_cluster(nodes, gpus_per_node,
                                  nodes_per_group=2 if nodes > 2 else 0)
    ngpus = cluster.gpu_count

    ref = probe_args()
    prog.run(ENTRY, ref, machine="desktop", ngpus=1)

    out: dict = {"cluster": cluster.name, "ngpus": ngpus, "nodes": nodes}
    for variant in VARIANTS:
        internode = "naive" if variant == "naive" else "staged"
        collective = variant if variant in ("ring", "tree", "auto") \
            else "none"
        args = probe_args()
        run = prog.run(ENTRY, args, machine=cluster, ngpus=ngpus,
                       internode=internode, collective=collective)
        for name in ("a", "record"):
            np.testing.assert_array_equal(
                args[name], ref[name],
                err_msg=f"{name} perturbed by collective={variant}")
        bus = run.platform.bus
        comm = run.executor.comm
        out[variant] = {
            "cross_node_bytes": bus.cross_node_bytes(),
            "internode_bytes": comm.bytes_internode,
            "nic_transfers": sum(
                1 for t in bus.completed if t.kind == "net"),
            "collective_broadcasts": comm.collective_broadcasts,
            "collective_steps": comm.collective_steps,
            "modeled_seconds": run.breakdown.total,
            "net_seconds": run.breakdown.net,
        }
    for variant in ("ring", "tree", "auto"):
        out[variant]["cross_node_bytes_saved_vs_naive"] = (
            out["naive"]["cross_node_bytes"]
            - out[variant]["cross_node_bytes"])
    return out
