"""Multi-node internode-exchange ablation workload and sweep.

The cluster platform routes coherence traffic that crosses a node
boundary over the modeled NIC.  Two transports exist
(:mod:`repro.runtime.comm`):

* ``naive`` -- one NIC transfer per communicating GPU pair, exactly the
  single-node peer-to-peer pattern lifted onto the network.
* ``staged`` -- traffic is aggregated per node pair: boundary chunks
  gather into the source node's host staging buffer over PCIe, cross
  the NIC once, and scatter to the destination GPUs on arrival.
  Replica broadcasts additionally dedup per destination *node* instead
  of per destination *member*.

For pairwise-distinct halo payloads the two move the same bytes (fewer,
larger NIC messages); the byte win comes from replica dedup.  The
ablation workload is therefore a *monitored stencil*: a 1-D relaxation
sweep (halo exchange at every partition boundary) that records the
field at scattered probe sites after each step, the classic
seismic-receiver pattern.  The scattered ``record[slot[p]]`` writes
defeat affine placement, so the recording array is replica-placed and
every sweep ends with a dirty broadcast from each writer GPU to all
others -- on a 2x4 cluster, four remote members per writer that the
staged transport serves with one NIC transfer instead of four.
"""

from __future__ import annotations

import numpy as np

from ..vcuda.specs import ClusterSpec
from .machines import hypothetical_cluster

STENCIL_PROBES_SOURCE = """
void stencil_probes(int n, int nprobes, int steps, float alpha,
                    float *a, float *b, int *site, int *slot,
                    float *record) {
  #pragma acc data copy(a[0:n], record[0:nprobes]) create(b[0:n]) copyin(site[0:nprobes], slot[0:nprobes])
  {
    for (int s = 0; s < steps; s++) {
      #pragma acc parallel
      {
        #pragma acc localaccess a[stride(1, 1, 1)] b[stride(1, 1, 1)]
        #pragma acc loop gang
        for (int i = 0; i < n; i++) {
          if (i > 0 && i < n - 1) {
            b[i] = (1.0f - alpha) * a[i]
                 + alpha * 0.5f * (a[i - 1] + a[i + 1]);
          } else {
            b[i] = a[i];
          }
        }
      }
      #pragma acc parallel
      {
        #pragma acc loop gang
        for (int p = 0; p < nprobes; p++) {
          record[slot[p]] = fmax(record[slot[p]], b[site[p]]);
        }
      }
      #pragma acc parallel
      {
        #pragma acc localaccess b[stride(1)] a[stride(1)]
        #pragma acc loop gang
        for (int i = 0; i < n; i++) {
          a[i] = b[i];
        }
      }
    }
  }
}
"""

ENTRY = "stencil_probes"


def probe_args(n: int = 512, nprobes: int = 64, steps: int = 6,
               seed: int = 7) -> dict:
    """Deterministic workload for the monitored stencil."""
    rng = np.random.default_rng(seed)
    return dict(
        n=n, nprobes=nprobes, steps=steps, alpha=np.float32(0.4),
        a=rng.random(n, dtype=np.float32),
        b=np.zeros(n, np.float32),
        site=rng.choice(n, size=nprobes, replace=False).astype(np.int32),
        slot=rng.permutation(nprobes).astype(np.int32),
        record=np.zeros(nprobes, np.float32),
    )


def internode_sweep(nodes: int = 2, gpus_per_node: int = 4,
                    cluster: ClusterSpec | None = None) -> dict:
    """Run the monitored stencil under both internode transports.

    Returns one metrics dict per transport plus the single-GPU
    reference outputs' fingerprint; every number is modeled or counted
    (never wall-clock), so the checked-in artifact is bit-reproducible.
    """
    import repro

    prog = repro.compile(STENCIL_PROBES_SOURCE)
    if cluster is None:
        cluster = hypothetical_cluster(nodes, gpus_per_node)
    ngpus = cluster.gpu_count

    ref = probe_args()
    prog.run(ENTRY, ref, machine="desktop", ngpus=1)

    out: dict = {"cluster": cluster.name, "ngpus": ngpus, "nodes": nodes}
    for mode in ("staged", "naive"):
        args = probe_args()
        run = prog.run(ENTRY, args, machine=cluster, ngpus=ngpus,
                       internode=mode)
        bus = run.platform.bus
        comm = run.executor.comm
        for name in ("a", "record"):
            np.testing.assert_array_equal(
                args[name], ref[name],
                err_msg=f"{name} perturbed by internode={mode}")
        out[mode] = {
            "cross_node_bytes": bus.cross_node_bytes(),
            "internode_bytes": comm.bytes_internode,
            "replica_bytes": comm.bytes_replica,
            "halo_bytes": comm.bytes_halo,
            "nic_transfers": sum(
                1 for t in bus.completed if t.kind == "net"),
            "staged_exchanges": comm.staged_exchanges,
            "modeled_seconds": run.breakdown.total,
            "net_seconds": run.breakdown.net,
        }
    s, n = out["staged"], out["naive"]
    s["cross_node_bytes_saved"] = (
        n["cross_node_bytes"] - s["cross_node_bytes"])
    return out
