"""Wall-clock scaling benchmark: real seconds, not modeled time.

Every other benchmark in this package regenerates a figure of the
*paper* in modeled (virtual) seconds.  This module instead measures how
long the simulator itself takes to run -- host-side Python wall-clock
-- and how much the runtime's fast paths (packed dirty bitsets, span
codegen branches, launch-context caching, batched miss replay; see
``docs/PERFORMANCE.md``) buy at realistic array sizes.

Each measurement runs one app twice per configuration: once with
``fastpath=False`` (the straightforward reference implementations, the
"before" of the raw-speed pass) and once with the default
``fastpath=True``.  Results, modeled time and transfer bytes are
bit-identical between the two (the determinism matrix pins this), so
the ratio is a pure host-speed speedup.

The checked-in ``BENCH_scaling.json`` at the repository root is this
module's artifact; regenerate it with::

    python -m repro.bench scaling --out BENCH_scaling.json

``benchmarks/test_scaling_wallclock.py`` gates regressions on it.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from typing import Any

from .. import api
from ..apps import ALL_APPS, EXTRA_APPS
from ..vcuda.specs import MACHINES, MachineSpec
from .machines import hypothetical_node

APPS = {**ALL_APPS, **EXTRA_APPS}

#: Apps whose hot loops are dirty/communication-bound, one entry per
#: benchmarked app: the size parameter name, the non-size arguments
#: (iteration counts kept small -- throughput per sweep is what
#: matters, not convergence), and the element counts swept.  ``jacobi``
#: and ``stencil`` exercise the span load/store and dirty-span paths
#: (halo exchange every sweep); ``shift_scale`` is write-miss bound and
#: exercises the batched replay path.
CASES: dict[str, dict[str, Any]] = {
    "jacobi": {"param": "n", "fixed": {"maxiter": 8},
               "sizes": (1 << 16, 1 << 19, 1 << 22)},
    "stencil": {"param": "n", "fixed": {"steps": 4},
                "sizes": (1 << 16, 1 << 19, 1 << 22)},
    "shift_scale": {"param": "n", "fixed": {},
                    "sizes": (1 << 16, 1 << 19, 1 << 22)},
}

#: Extra sweepable apps that are *not* part of the checked-in
#: ``BENCH_scaling.json`` artifact (its schema test pins the artifact
#: to exactly ``CASES``).  These are reachable through ``--apps`` for
#: ad-hoc and CI quick runs -- notably the fusion pipelines, whose
#: fused-vs-unfused wall clock the CI perf gate spot-checks.
EXTRA_CASES: dict[str, dict[str, Any]] = {
    "gradpipe": {"param": "n", "fixed": {"steps": 4},
                 "sizes": (1 << 14, 1 << 17, 1 << 20)},
    "phasepipe": {"param": "n", "fixed": {"off": 4, "steps": 4},
                  "sizes": (1 << 14, 1 << 17, 1 << 20)},
}


def case_for(app: str) -> dict[str, Any]:
    """Benchmark case for ``app``, artifact cases first."""
    try:
        return CASES[app]
    except KeyError:
        return EXTRA_CASES[app]


GPU_COUNTS = (1, 2, 4, 8)

#: Artifact schema identifier (bump when the JSON layout changes).
SCHEMA = "repro-scaling/1"


def machine_for(ngpus: int) -> MachineSpec:
    """Desktop while it has enough GPUs, else a hypothetical node."""
    spec = MACHINES["desktop"]
    return spec if ngpus <= spec.gpu_count else hypothetical_node(ngpus)


@dataclass(frozen=True)
class ScalingPoint:
    """One (app, size, GPU count) wall-clock measurement pair."""

    app: str
    n: int
    ngpus: int
    #: Best-of-``repeats`` real seconds with fastpath off / on.
    seconds_before: float
    seconds_after: float

    @property
    def speedup(self) -> float:
        return self.seconds_before / self.seconds_after

    @property
    def throughput_before(self) -> float:
        """Elements processed per real second, fast paths off."""
        return self.n / self.seconds_before

    @property
    def throughput_after(self) -> float:
        return self.n / self.seconds_after


def measure_seconds(app: str, n: int, ngpus: int, fastpath: bool,
                    repeats: int = 1, fuse: bool = False) -> float:
    """Best-of-``repeats`` wall-clock seconds for one configuration.

    Compilation happens outside the timed region (the artifact tracks
    runtime speed; translator speed is a separate concern), argument
    construction too.  Fresh arguments per repeat: apps mutate their
    arrays in place.
    """
    case = case_for(app)
    spec = APPS[app]
    options = api.CompileOptions(fuse=True) if fuse else None
    prog = api.compile(spec.source, options)
    machine = machine_for(ngpus)
    best = float("inf")
    for _ in range(max(1, repeats)):
        args = spec.make_args(**{case["param"]: n}, **case["fixed"])
        t0 = time.perf_counter()
        prog.run(spec.entry, args, machine=machine, ngpus=ngpus,
                 fastpath=fastpath)
        best = min(best, time.perf_counter() - t0)
    return best


def measure_point(app: str, n: int, ngpus: int,
                  repeats: int = 1, fuse: bool = False) -> ScalingPoint:
    """One measurement pair.

    Default mode compares fastpath off/on.  With ``fuse=True`` both
    runs keep the default fast paths and the pair instead compares
    ``fuse=False`` ("before") against ``fuse=True`` ("after") -- the
    quick fused-vs-unfused wall-clock check CI runs on the pipeline
    apps.
    """
    if fuse:
        return ScalingPoint(
            app=app, n=n, ngpus=ngpus,
            seconds_before=measure_seconds(app, n, ngpus, True, repeats),
            seconds_after=measure_seconds(app, n, ngpus, True, repeats,
                                          fuse=True),
        )
    return ScalingPoint(
        app=app, n=n, ngpus=ngpus,
        seconds_before=measure_seconds(app, n, ngpus, False, repeats),
        seconds_after=measure_seconds(app, n, ngpus, True, repeats),
    )


def sweep(apps: list[str] | None = None,
          gpu_counts: tuple[int, ...] = GPU_COUNTS,
          repeats: int = 1,
          sizes: tuple[int, ...] | None = None,
          progress: Any = None,
          fuse: bool = False) -> list[ScalingPoint]:
    """The full apps x sizes x GPU-counts wall-clock sweep."""
    points = []
    for app in (apps or list(CASES)):
        for n in (sizes or case_for(app)["sizes"]):
            for g in gpu_counts:
                p = measure_point(app, n, g, repeats, fuse=fuse)
                if progress is not None:
                    progress(p)
                points.append(p)
    return points


def artifact(points: list[ScalingPoint]) -> dict:
    """JSON-able artifact with per-point and largest-size summaries."""
    largest: dict[str, int] = {}
    for p in points:
        largest[p.app] = max(largest.get(p.app, 0), p.n)
    summary = {}
    for app, n_max in sorted(largest.items()):
        at_max = [p for p in points if p.app == app and p.n == n_max]
        summary[app] = {
            "n": n_max,
            "min_speedup": min(p.speedup for p in at_max),
            "max_speedup": max(p.speedup for p in at_max),
        }
    return {
        "schema": SCHEMA,
        "gpu_counts": sorted({p.ngpus for p in points}),
        "speedup_at_largest_size": summary,
        "points": [
            {**asdict(p),
             "speedup": p.speedup,
             "throughput_before": p.throughput_before,
             "throughput_after": p.throughput_after}
            for p in points
        ],
    }


def render(points: list[ScalingPoint]) -> str:
    """Text table of the sweep (one row per point)."""
    lines = [f"{'app':12s} {'n':>9s} {'gpus':>4s} "
             f"{'before[s]':>10s} {'after[s]':>10s} {'speedup':>8s}"]
    for p in points:
        lines.append(f"{p.app:12s} {p.n:9d} {p.ngpus:4d} "
                     f"{p.seconds_before:10.3f} {p.seconds_after:10.3f} "
                     f"{p.speedup:7.2f}x")
    return "\n".join(lines)


def write_artifact(path: str, points: list[ScalingPoint]) -> dict:
    art = artifact(points)
    with open(path, "w") as f:
        json.dump(art, f, indent=2, sort_keys=True)
        f.write("\n")
    return art
