"""Table I machine configurations, benchmark-facing helpers.

The specs themselves live in :mod:`repro.vcuda.specs`; this module adds
the lookup and hypothetical-machine helpers the harness and the
projection benchmarks use.
"""

from __future__ import annotations

from ..vcuda.specs import (
    CLUSTERS,
    DESKTOP_MACHINE,
    MACHINES,
    ClusterSpec,
    MachineSpec,
    NicSpec,
    PCIE_GEN2_TSUBAME,
    SUPERCOMPUTER_NODE,
    TESLA_C1060,
    TESLA_M2050,
    XEON_X5670,
    cluster_of,
)


def machine(name: str | MachineSpec | ClusterSpec) -> MachineSpec | ClusterSpec:
    """Resolve a machine by Table I / cluster key or pass a spec through."""
    if isinstance(name, (MachineSpec, ClusterSpec)):
        return name
    if name in CLUSTERS:
        return CLUSTERS[name]
    try:
        return MACHINES[name]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; known: "
            f"{sorted(MACHINES) + sorted(CLUSTERS)}") from None


def hypothetical_cluster(nodes: int, gpus_per_node: int,
                         nic: NicSpec | None = None) -> ClusterSpec:
    """A what-if cluster of identical :func:`hypothetical_node` nodes.

    The multi-node scaling and internode-ablation benchmarks use this
    to sweep node x GPU topologies that the paper's single node cannot
    express.
    """
    if nodes < 1:
        raise ValueError("need at least one node")
    node = hypothetical_node(gpus_per_node)
    kwargs = {} if nic is None else {"nic": nic}
    return cluster_of(nodes, node,
                      name=f"Hypothetical {nodes}x{gpus_per_node} cluster",
                      **kwargs)


def hypothetical_node(gpu_count: int, gpus_per_hub: int = 4) -> MachineSpec:
    """A what-if node with TSUBAME-class parts and ``gpu_count`` GPUs.

    GPUs are packed onto I/O hubs ``gpus_per_hub`` at a time; peer
    transfers between hubs cross the QPI.  Used by the scaling
    projection to ask where each application's curve bends beyond the
    paper's 3-GPU hardware.
    """
    if gpu_count < 1:
        raise ValueError("need at least one GPU")
    hubs = tuple(g // gpus_per_hub for g in range(gpu_count))
    return MachineSpec(
        name=f"Hypothetical {gpu_count}-GPU node",
        cpu=XEON_X5670,
        cpu_sockets=2,
        gpu=TESLA_M2050,
        gpu_count=gpu_count,
        bus=PCIE_GEN2_TSUBAME,
        gpu_hub=hubs,
    )


def mixed_node(fast: int = 2, slow: int = 2,
               gpus_per_hub: int = 2) -> MachineSpec:
    """A mixed-generation node: Fermi M2050s next to GT200 C1060s.

    The specs alternate (fast, slow, fast, slow, ...) so each I/O hub
    carries a balanced share of whatever split the runtime chooses.
    This is the adaptive ablation's stress machine: the static equal
    split leaves the M2050s waiting on the C1060s every kernel.
    """
    count = fast + slow
    if count < 1:
        raise ValueError("need at least one GPU")
    order: list = []
    f, s = fast, slow
    while f > 0 or s > 0:
        if f > 0:
            order.append(TESLA_M2050)
            f -= 1
        if s > 0:
            order.append(TESLA_C1060)
            s -= 1
    hubs = tuple(g // gpus_per_hub for g in range(count))
    return MachineSpec(
        name=f"Mixed {fast}+{slow}-GPU node",
        cpu=XEON_X5670,
        cpu_sockets=2,
        gpu=TESLA_M2050,
        gpu_count=count,
        bus=PCIE_GEN2_TSUBAME,
        gpu_hub=hubs,
        gpus=tuple(order),
    )


__all__ = ["machine", "hypothetical_node", "hypothetical_cluster",
           "mixed_node", "MACHINES", "CLUSTERS", "DESKTOP_MACHINE",
           "SUPERCOMPUTER_NODE"]
