"""Benchmark harness: regenerates the paper's tables and figures."""

from .harness import (
    Fig7Row,
    Fig8Row,
    Fig9Row,
    Table1Row,
    Table2Row,
    fig7,
    fig8,
    fig9,
    table1,
    table2,
)
from .machines import hypothetical_node, machine, mixed_node
from .report import (
    fig7_json,
    fig8_json,
    machine_info,
    render_fig7,
    render_fig8,
    render_fig9,
    render_table1,
    render_table2,
    write_bench_json,
)
from .versions import VERSIONS, VersionResult, run_version

__all__ = [
    "fig7", "fig8", "fig9", "table1", "table2",
    "Fig7Row", "Fig8Row", "Fig9Row", "Table1Row", "Table2Row",
    "render_fig7", "render_fig8", "render_fig9", "render_table1",
    "render_table2",
    "fig7_json", "fig8_json", "machine_info", "write_bench_json",
    "machine", "hypothetical_node", "mixed_node",
    "run_version", "VersionResult", "VERSIONS",
]
