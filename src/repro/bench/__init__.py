"""Benchmark harness: regenerates the paper's tables and figures."""

from .harness import (
    Fig7Row,
    Fig8Row,
    Fig9Row,
    Table1Row,
    Table2Row,
    fig7,
    fig8,
    fig9,
    table1,
    table2,
)
from .report import (
    fig7_json,
    fig8_json,
    render_fig7,
    render_fig8,
    render_fig9,
    render_table1,
    render_table2,
    write_bench_json,
)
from .versions import VERSIONS, VersionResult, run_version

__all__ = [
    "fig7", "fig8", "fig9", "table1", "table2",
    "Fig7Row", "Fig8Row", "Fig9Row", "Table1Row", "Table2Row",
    "render_fig7", "render_fig8", "render_fig9", "render_table1",
    "render_table2",
    "fig7_json", "fig8_json", "write_bench_json",
    "run_version", "VersionResult", "VERSIONS",
]
