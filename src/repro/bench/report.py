"""Text rendering of the regenerated tables and figures.

The benchmark suite prints these; EXPERIMENTS.md embeds them.  Keeping
the renderer separate from the harness lets tests assert on the data
while humans read the tables.
"""

from __future__ import annotations

from .harness import Fig7Row, Fig8Row, Fig9Row, Table1Row, Table2Row


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for r in rows:
        for i, cell in enumerate(r):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def render_fig7(rows: list[Fig7Row], title: str = "") -> str:
    labels: list[str] = []
    for r in rows:
        for k in r.relative:
            if k not in labels:
                labels.append(k)
    body = [[r.app] + [f"{r.relative.get(l, float('nan')):.2f}"
                       for l in labels] for r in rows]
    head = title or "Fig. 7 -- relative performance (normalized to OpenMP)"
    return f"{head}\n" + _table(["app"] + labels, body)


def render_fig8(rows: list[Fig8Row], title: str = "") -> str:
    body = [[r.app, str(r.ngpus), f"{r.kernels:.3f}", f"{r.cpu_gpu:.3f}",
             f"{r.gpu_gpu:.3f}", f"{r.total:.3f}"] for r in rows]
    head = title or ("Fig. 8 -- execution-time breakdown "
                     "(normalized to 1-GPU total)")
    return f"{head}\n" + _table(
        ["app", "GPUs", "KERNELS", "CPU-GPU", "GPU-GPU", "total"], body)


def render_fig9(rows: list[Fig9Row], title: str = "") -> str:
    body = [[r.app, str(r.ngpus), f"{r.user:.3f}", f"{r.system:.3f}",
             f"{r.total:.3f}"] for r in rows]
    head = title or ("Fig. 9 -- device memory usage "
                     "(normalized to 1-GPU total)")
    return f"{head}\n" + _table(["app", "GPUs", "User", "System", "total"],
                                body)


def render_table1(rows: list[Table1Row]) -> str:
    body = [[r.machine, f"{r.cpu} x{r.cpu_sockets}",
             f"{r.gpus} x{r.gpu_count}", r.bus] for r in rows]
    return "Table I -- machine settings\n" + _table(
        ["machine", "CPU", "GPUs", "bus"], body)


def render_table2(rows: list[Table2Row]) -> str:
    body = [[r.app, r.source_suite, r.input_label,
             f"{r.paper_mb:.1f}", f"{r.computed_paper_mb:.1f}",
             f"{r.measured_bench_mb:.1f}",
             f"{r.parallel_loops} ({r.paper_parallel_loops})",
             f"{r.kernel_executions} ({r.paper_kernel_executions})",
             f"{r.localaccess} ({r.paper_localaccess})"] for r in rows]
    return ("Table II -- application characteristics "
            "(ours, paper values in parentheses)\n" + _table(
                ["app", "suite", "input", "A:paper MB", "A:computed MB",
                 "A:bench MB", "B:loops", "C:kernel execs", "D:localaccess"],
                body))
