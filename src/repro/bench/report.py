"""Text rendering of the regenerated tables and figures.

The benchmark suite prints these; EXPERIMENTS.md embeds them.  Keeping
the renderer separate from the harness lets tests assert on the data
while humans read the tables.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

from ..vcuda.specs import MachineSpec
from .harness import Fig7Row, Fig8Row, Fig9Row, Table1Row, Table2Row


def machine_info(spec: MachineSpec) -> dict:
    """Machine identification embedded in every benchmark artifact.

    Numbers without the machine that produced them are unreproducible;
    each ``BENCH_*.json`` section carries the GPU model mix, CPU and
    bus model of the (virtual) node it was measured on.
    """
    gpu_counts: dict[str, int] = {}
    for g in spec.gpu_specs:
        gpu_counts[g.name] = gpu_counts.get(g.name, 0) + 1
    return {
        "name": spec.name,
        "cpu": spec.cpu.name,
        "cpu_sockets": spec.cpu_sockets,
        "gpu_count": spec.gpu_count,
        "gpus": gpu_counts,
        "gpu_mix": spec.gpu_mix_label,
        "heterogeneous": spec.is_heterogeneous,
        "bus": spec.bus.name,
        "gpu_hub": list(spec.gpu_hub) if spec.gpu_hub else None,
    }


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for r in rows:
        for i, cell in enumerate(r):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def render_fig7(rows: list[Fig7Row], title: str = "") -> str:
    labels: list[str] = []
    for r in rows:
        for k in r.relative:
            if k not in labels:
                labels.append(k)
    body = [[r.app] + [f"{r.relative.get(l, float('nan')):.2f}"
                       for l in labels] for r in rows]
    head = title or "Fig. 7 -- relative performance (normalized to OpenMP)"
    return f"{head}\n" + _table(["app"] + labels, body)


def render_fig8(rows: list[Fig8Row], title: str = "") -> str:
    hidden = any(r.gpu_gpu_overlapped for r in rows)
    body = [[r.app, str(r.ngpus), f"{r.kernels:.3f}", f"{r.cpu_gpu:.3f}",
             f"{r.gpu_gpu:.3f}"]
            + ([f"{r.gpu_gpu_overlapped:.3f}"] if hidden else [])
            + [f"{r.total:.3f}"] for r in rows]
    head = title or ("Fig. 8 -- execution-time breakdown "
                     "(normalized to 1-GPU total)")
    cols = ["app", "GPUs", "KERNELS", "CPU-GPU", "GPU-GPU"]
    if hidden:
        cols.append("GG-hidden")
    return f"{head}\n" + _table(cols + ["total"], body)


def render_fig9(rows: list[Fig9Row], title: str = "") -> str:
    body = [[r.app, str(r.ngpus), f"{r.user:.3f}", f"{r.system:.3f}",
             f"{r.total:.3f}"] for r in rows]
    head = title or ("Fig. 9 -- device memory usage "
                     "(normalized to 1-GPU total)")
    return f"{head}\n" + _table(["app", "GPUs", "User", "System", "total"],
                                body)


def fig7_json(rows: list[Fig7Row]) -> list[dict]:
    """Fig. 7 rows as plain dicts (machine-readable artifact)."""
    return [dataclasses.asdict(r) for r in rows]


def fig8_json(rows: list[Fig8Row]) -> list[dict]:
    """Fig. 8 rows as plain dicts, with the derived total included."""
    out = []
    for r in rows:
        d = dataclasses.asdict(r)
        d["total"] = r.total
        out.append(d)
    return out


def write_bench_json(filename: str, section: str, payload: object,
                     machine: MachineSpec | None = None) -> Path:
    """Merge one section into a benchmark artifact JSON file.

    Artifacts land in ``$REPRO_BENCH_DIR`` (default: the current
    directory).  Each benchmark writes its own section -- e.g. one
    machine's rows -- so partial suite runs update only what they
    measured and re-runs are idempotent.  Pass ``machine`` to record
    the producing node under the artifact's ``machines`` map, keyed by
    the same section name.
    """
    out_dir = Path(os.environ.get("REPRO_BENCH_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / filename
    data: dict = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (ValueError, OSError):
            data = {}
    if not isinstance(data, dict):
        data = {}
    data[section] = payload
    if machine is not None:
        machines = data.setdefault("machines", {})
        if not isinstance(machines, dict):
            machines = data["machines"] = {}
        machines[section] = machine_info(machine)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def render_table1(rows: list[Table1Row]) -> str:
    body = [[r.machine, f"{r.cpu} x{r.cpu_sockets}",
             f"{r.gpus} x{r.gpu_count}", r.bus] for r in rows]
    return "Table I -- machine settings\n" + _table(
        ["machine", "CPU", "GPUs", "bus"], body)


def render_table2(rows: list[Table2Row]) -> str:
    body = [[r.app, r.source_suite, r.input_label,
             f"{r.paper_mb:.1f}", f"{r.computed_paper_mb:.1f}",
             f"{r.measured_bench_mb:.1f}",
             f"{r.parallel_loops} ({r.paper_parallel_loops})",
             f"{r.kernel_executions} ({r.paper_kernel_executions})",
             f"{r.localaccess} ({r.paper_localaccess})"] for r in rows]
    return ("Table II -- application characteristics "
            "(ours, paper values in parentheses)\n" + _table(
                ["app", "suite", "input", "A:paper MB", "A:computed MB",
                 "A:bench MB", "B:loops", "C:kernel execs", "D:localaccess"],
                body))
