"""The four program versions of the paper's evaluation (section V-A).

* **OpenMP** -- the multicore baseline, all Fig. 7 numbers are relative
  to it;
* **PGI OpenACC** -- a single-GPU commercial OpenACC compile: our
  translator restricted to one GPU with the multi-GPU-oriented
  optimizations (layout transformation, check elision) disabled;
* **CUDA** -- hand-written single-GPU programs against the raw virtual
  CUDA API (:mod:`repro.apps.cuda_baselines`);
* **Proposal** -- the full system on 1..3 GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..api import compile as compile_acc
from ..apps.base import AppSpec
from ..apps.cuda_baselines import bfs_cuda, kmeans_cuda, md_cuda
from ..cpu.openmp import run_openmp
from ..translator.compiler import CompileOptions
from ..vcuda.memory import PURPOSE_SYSTEM, PURPOSE_USER
from ..vcuda.profiler import TimeBreakdown
from ..vcuda.specs import MACHINES, MachineSpec

VERSIONS = ("openmp", "pgi", "cuda", "proposal")

_CUDA_BASELINES = {"md": md_cuda, "kmeans": kmeans_cuda, "bfs": bfs_cuda}


@dataclass
class VersionResult:
    """One (app, version, machine, ngpus) measurement."""

    app: str
    version: str
    machine: str
    ngpus: int
    elapsed: float
    breakdown: TimeBreakdown | None = None
    mem_user: int = 0
    mem_system: int = 0
    kernel_executions: int = 0
    #: The run's :class:`repro.trace.Tracer` when tracing was requested
    #: (proposal/pgi versions only; else None).
    tracer: Any | None = None

    @property
    def label(self) -> str:
        if self.version in ("openmp",):
            return "OpenMP"
        if self.version == "pgi":
            return "PGI(1)"
        if self.version == "cuda":
            return "CUDA(1)"
        return f"Proposal({self.ngpus})"


def _resolve_machine(machine: str | MachineSpec) -> tuple[str, MachineSpec]:
    if isinstance(machine, str):
        return machine, MACHINES[machine]
    return machine.name, machine


def run_version(
    app: AppSpec,
    version: str,
    machine: str | MachineSpec,
    ngpus: int = 1,
    workload: str = "bench",
    check: bool = False,
    overlap: bool = False,
    coalesce: bool = False,
    trace: bool = False,
) -> VersionResult:
    """Run one version of one app and collect its measurements."""
    mname, spec = _resolve_machine(machine)
    args = app.args_for(workload)
    snap = app.snapshot(args) if check else None

    if version == "openmp":
        r = run_openmp(compile_acc(app.source).compiled, app.entry, args, spec)
        result = VersionResult(app=app.name, version=version, machine=mname,
                               ngpus=0, elapsed=r.elapsed,
                               kernel_executions=len(r.loop_stats))
    elif version == "cuda":
        if app.name not in _CUDA_BASELINES:
            raise KeyError(f"no hand-CUDA baseline for app {app.name!r}")
        r = _CUDA_BASELINES[app.name](spec, args)
        result = VersionResult(app=app.name, version=version, machine=mname,
                               ngpus=1, elapsed=r.elapsed,
                               kernel_executions=r.kernel_launches)
    elif version in ("pgi", "proposal"):
        if version == "pgi":
            options = CompileOptions(layout_transform=False,
                                     elide_write_checks=False)
            ngpus = 1
        else:
            options = CompileOptions()
        prog = compile_acc(app.source, options)
        run = prog.run(app.entry, args, machine=spec, ngpus=ngpus,
                       overlap=overlap, coalesce=coalesce,
                       trace=trace or None)
        result = VersionResult(
            app=app.name, version=version, machine=mname, ngpus=ngpus,
            elapsed=run.elapsed, breakdown=run.breakdown,
            mem_user=run.memory_high_water(PURPOSE_USER),
            mem_system=run.memory_high_water(PURPOSE_SYSTEM),
            kernel_executions=len(run.loop_stats),
            tracer=run.tracer,
        )
    else:
        raise ValueError(f"unknown version {version!r}; pick from {VERSIONS}")

    if check:
        assert snap is not None
        app.check(args, snap)
    return result
