"""Print every regenerated table and figure: ``python -m repro.bench``.

Options:
    --workload {tiny,test,bench}   input scale (default: bench)
    --machine {desktop,supercomputer,both}
"""

from __future__ import annotations

import argparse

from .harness import fig7, fig8, fig9, table1, table2
from .report import (
    render_fig7,
    render_fig8,
    render_fig9,
    render_table1,
    render_table2,
)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog="python -m repro.bench",
                                 description=__doc__)
    ap.add_argument("--workload", default="bench",
                    choices=["tiny", "test", "bench"])
    ap.add_argument("--machine", default="both",
                    choices=["desktop", "supercomputer", "both"])
    args = ap.parse_args(argv)
    machines = (["desktop", "supercomputer"] if args.machine == "both"
                else [args.machine])

    print(render_table1(table1()))
    print()
    print(render_table2(table2(workload=args.workload)))
    for m in machines:
        print()
        print(render_fig7(fig7(m, workload=args.workload), f"Fig. 7 ({m})"))
        print()
        print(render_fig8(fig8(m, workload=args.workload), f"Fig. 8 ({m})"))
        print()
        print(render_fig9(fig9(m, workload=args.workload), f"Fig. 9 ({m})"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
