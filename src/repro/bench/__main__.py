"""Benchmark CLI: ``python -m repro.bench [mode]``.

Modes:
    paper     (default) print every regenerated paper table and figure
    scaling   run the wall-clock scaling sweep and write its artifact

Paper options:
    --workload {tiny,test,bench}   input scale (default: bench)
    --machine {desktop,supercomputer,both}

Scaling options:
    --out PATH        write BENCH_scaling.json-style artifact here
    --repeats N       best-of-N timing per configuration (default: 1)
    --quick           smallest sizes and 1/2 GPUs only (smoke run)
    --apps A,B        subset of apps (artifact apps plus gradpipe,
                      phasepipe)
    --sizes N1,N2     explicit element counts instead of the per-app
                      sweep sizes
    --fuse            time fuse=False vs fuse=True (both with default
                      fast paths) instead of fastpath off/on
"""

from __future__ import annotations

import argparse

from .harness import fig7, fig8, fig9, table1, table2
from .report import (
    render_fig7,
    render_fig8,
    render_fig9,
    render_table1,
    render_table2,
)


def _paper(args) -> int:
    machines = (["desktop", "supercomputer"] if args.machine == "both"
                else [args.machine])

    print(render_table1(table1()))
    print()
    print(render_table2(table2(workload=args.workload)))
    for m in machines:
        print()
        print(render_fig7(fig7(m, workload=args.workload), f"Fig. 7 ({m})"))
        print()
        print(render_fig8(fig8(m, workload=args.workload), f"Fig. 8 ({m})"))
        print()
        print(render_fig9(fig9(m, workload=args.workload), f"Fig. 9 ({m})"))
    return 0


def _scaling(args) -> int:
    from . import scaling

    apps = args.apps.split(",") if args.apps else None
    known = set(scaling.CASES) | set(scaling.EXTRA_CASES)
    for app in (apps or []):
        if app not in known:
            print(f"unknown app {app!r}; choose from "
                  f"{', '.join(sorted(known))}")
            return 2

    gpu_counts = (1, 2) if args.quick else scaling.GPU_COUNTS
    if args.sizes:
        sizes = tuple(int(s) for s in args.sizes.split(","))
    elif args.quick:
        cases = [scaling.case_for(a) for a in (apps or list(scaling.CASES))]
        sizes = (min(min(c["sizes"]) for c in cases),)
    else:
        sizes = None

    label = "fused" if args.fuse else "fastpath"

    def progress(p):
        print(f"  {p.app} n={p.n} ngpus={p.ngpus}: "
              f"{p.seconds_before:.3f}s -> {p.seconds_after:.3f}s "
              f"({label} {p.speedup:.2f}x)", flush=True)

    points = scaling.sweep(apps=apps, gpu_counts=gpu_counts,
                           repeats=args.repeats, sizes=sizes,
                           progress=progress, fuse=args.fuse)
    print()
    print(scaling.render(points))
    if args.out:
        art = scaling.write_artifact(args.out, points)
        print(f"\nwrote {args.out} "
              f"({len(art['points'])} points)")
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog="python -m repro.bench",
                                 description=__doc__)
    ap.add_argument("mode", nargs="?", default="paper",
                    choices=["paper", "scaling"])
    ap.add_argument("--workload", default="bench",
                    choices=["tiny", "test", "bench"])
    ap.add_argument("--machine", default="both",
                    choices=["desktop", "supercomputer", "both"])
    ap.add_argument("--out", default=None,
                    help="scaling: artifact output path")
    ap.add_argument("--repeats", type=int, default=1,
                    help="scaling: best-of-N timing")
    ap.add_argument("--quick", action="store_true",
                    help="scaling: smallest sizes, 1/2 GPUs only")
    ap.add_argument("--apps", default=None,
                    help="scaling: comma-separated app subset "
                         "(default: artifact apps)")
    ap.add_argument("--sizes", default=None,
                    help="scaling: comma-separated element counts "
                         "(default: per-app sweep sizes)")
    ap.add_argument("--fuse", action="store_true",
                    help="scaling: compare fuse=False vs fuse=True "
                         "instead of fastpath off/on")
    args = ap.parse_args(argv)
    if args.mode == "scaling":
        return _scaling(args)
    return _paper(args)


if __name__ == "__main__":
    raise SystemExit(main())
