"""Experiment harness: regenerates the paper's tables and figures.

Each public function computes the data behind one artifact of the
evaluation section; :mod:`repro.bench.report` renders them as the text
tables the benchmark suite prints and EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..api import compile as compile_acc
from ..apps import ALL_APPS
from ..apps.base import AppSpec
from ..vcuda.profiler import TimeBreakdown
from ..vcuda.specs import MACHINES
from .versions import VersionResult, run_version

MB = 1024.0 * 1024.0


# ---------------------------------------------------------------------------
# Fig. 7: relative performance vs OpenMP
# ---------------------------------------------------------------------------


@dataclass
class Fig7Row:
    app: str
    machine: str
    #: label -> relative performance (OpenMP time / version time).
    relative: dict[str, float] = field(default_factory=dict)
    openmp_seconds: float = 0.0


def fig7(machine: str = "desktop", apps: dict[str, AppSpec] | None = None,
         workload: str = "bench", check: bool = False) -> list[Fig7Row]:
    """Relative performance of every version, per app (paper Fig. 7)."""
    apps = apps or ALL_APPS
    spec = MACHINES[machine]
    gpu_counts = list(range(1, spec.gpu_count + 1))
    rows: list[Fig7Row] = []
    for name, app in apps.items():
        base = run_version(app, "openmp", machine, workload=workload,
                           check=check)
        row = Fig7Row(app=name, machine=machine,
                      openmp_seconds=base.elapsed)
        row.relative["OpenMP"] = 1.0
        for version, counts in (("pgi", [1]), ("cuda", [1]),
                                ("proposal", gpu_counts)):
            for g in counts:
                r = run_version(app, version, machine, ngpus=g,
                                workload=workload, check=check)
                row.relative[r.label] = base.elapsed / r.elapsed
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Fig. 8: execution-time breakdown
# ---------------------------------------------------------------------------


@dataclass
class Fig8Row:
    app: str
    machine: str
    ngpus: int
    #: Normalized to the single-GPU total of the same app/machine.
    kernels: float
    cpu_gpu: float
    gpu_gpu: float
    #: Inter-GPU time hidden under kernels by the async communication
    #: layer (zero in the paper's synchronous mode).  Not part of
    #: ``total``: the three exposed buckets are what Fig. 8 stacks.
    gpu_gpu_overlapped: float = 0.0

    @property
    def total(self) -> float:
        return self.kernels + self.cpu_gpu + self.gpu_gpu


def fig8(machine: str = "desktop", apps: dict[str, AppSpec] | None = None,
         workload: str = "bench", overlap: bool = False,
         coalesce: bool = False) -> list[Fig8Row]:
    """Breakdown of proposal time into the paper's three buckets.

    With ``overlap=True`` the GPU-GPU column reports only *exposed*
    communication; the hidden remainder lands in
    :attr:`Fig8Row.gpu_gpu_overlapped`.
    """
    apps = apps or ALL_APPS
    spec = MACHINES[machine]
    rows: list[Fig8Row] = []
    for name, app in apps.items():
        results: list[VersionResult] = []
        for g in range(1, spec.gpu_count + 1):
            results.append(run_version(app, "proposal", machine, ngpus=g,
                                       workload=workload, overlap=overlap,
                                       coalesce=coalesce))
        denom = results[0].breakdown.total if results[0].breakdown else 1.0
        for r in results:
            bd: TimeBreakdown = r.breakdown  # type: ignore[assignment]
            nb = bd.normalized_to(denom)
            rows.append(Fig8Row(app=name, machine=machine, ngpus=r.ngpus,
                                kernels=nb.kernels, cpu_gpu=nb.cpu_gpu,
                                gpu_gpu=nb.gpu_gpu,
                                gpu_gpu_overlapped=nb.gpu_gpu_overlapped))
    return rows


@dataclass
class Fig8Reconciliation:
    """Traced vs reported seconds for one (app, ngpus) Fig. 8 row."""

    app: str
    machine: str
    ngpus: int
    #: Per bucket: {"traced": s, "reported": s, "residual": s}.
    buckets: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def max_residual(self) -> float:
        return max((abs(b["residual"]) for b in self.buckets.values()),
                   default=0.0)


def fig8_reconciliation(
    machine: str = "desktop", apps: dict[str, AppSpec] | None = None,
    workload: str = "bench", overlap: bool = False,
    coalesce: bool = False,
) -> list[Fig8Reconciliation]:
    """Fig. 8 accounting identity: traced per-category seconds vs the
    profiler's reported breakdown, per app and GPU count.

    The tracer accumulates exactly the deltas the virtual clock
    accumulates, in the same order, so the residual of every
    categorized bucket is identically zero; ``other`` is a profiler
    subtraction and its residual is float rounding only.  The trace
    tests pin both down.
    """
    from ..trace import reconcile

    apps = apps or ALL_APPS
    spec = MACHINES[machine]
    rows: list[Fig8Reconciliation] = []
    for name, app in apps.items():
        for g in range(1, spec.gpu_count + 1):
            r = run_version(app, "proposal", machine, ngpus=g,
                            workload=workload, overlap=overlap,
                            coalesce=coalesce, trace=True)
            assert r.tracer is not None and r.breakdown is not None
            rows.append(Fig8Reconciliation(
                app=name, machine=machine, ngpus=g,
                buckets=reconcile(r.tracer, r.breakdown)))
    return rows


# ---------------------------------------------------------------------------
# Fig. 9: device memory usage
# ---------------------------------------------------------------------------


@dataclass
class Fig9Row:
    app: str
    machine: str
    ngpus: int
    #: Normalized to the single-GPU total (user+system) of the same app.
    user: float
    system: float

    @property
    def total(self) -> float:
        return self.user + self.system


def fig9(machine: str = "desktop", apps: dict[str, AppSpec] | None = None,
         workload: str = "bench") -> list[Fig9Row]:
    """Device memory split into User and System (paper Fig. 9)."""
    apps = apps or ALL_APPS
    spec = MACHINES[machine]
    rows: list[Fig9Row] = []
    for name, app in apps.items():
        results = [run_version(app, "proposal", machine, ngpus=g,
                               workload=workload)
                   for g in range(1, spec.gpu_count + 1)]
        denom = float(results[0].mem_user + results[0].mem_system)
        for r in results:
            rows.append(Fig9Row(app=name, machine=machine, ngpus=r.ngpus,
                                user=r.mem_user / denom,
                                system=r.mem_system / denom))
    return rows


# ---------------------------------------------------------------------------
# Table I / Table II
# ---------------------------------------------------------------------------


@dataclass
class Table1Row:
    machine: str
    cpu: str
    cpu_sockets: int
    gpus: str
    gpu_count: int
    bus: str


def table1() -> list[Table1Row]:
    rows = []
    for key, spec in MACHINES.items():
        rows.append(Table1Row(
            machine=spec.name,
            cpu=spec.cpu.name,
            cpu_sockets=spec.cpu_sockets,
            gpus=spec.gpu_mix_label,
            gpu_count=spec.gpu_count,
            bus=spec.bus.name,
        ))
    return rows


@dataclass
class Table2Row:
    app: str
    source_suite: str
    input_label: str
    #: Column A at paper scale (computed from the paper's array shapes).
    paper_mb: float
    computed_paper_mb: float
    #: Column A at our bench workload (measured on a 1-GPU run).
    measured_bench_mb: float
    #: Column B: number of parallel loops.
    parallel_loops: int
    paper_parallel_loops: int
    #: Column C: kernel executions in one bench run.
    kernel_executions: int
    paper_kernel_executions: int
    #: Column D: localaccess arrays / arrays used in parallel loops.
    localaccess: str
    paper_localaccess: str


def table2(apps: dict[str, AppSpec] | None = None,
           workload: str = "bench") -> list[Table2Row]:
    """App characteristics, paper values vs this reproduction's."""
    apps = apps or ALL_APPS
    rows = []
    for name, app in apps.items():
        assert app.table2_paper is not None
        suite, input_label, paper_mb, paper_b, paper_c, paper_d = \
            app.table2_paper
        prog = compile_acc(app.source)
        n_loops = len(prog.compiled.plans)
        # Column D: union over loops of (localaccess arrays, used arrays).
        used: set[str] = set()
        with_la: set[str] = set()
        for plan in prog.compiled.plans:
            for aname, cfg in plan.config.arrays.items():
                used.add(aname)
                if cfg.has_localaccess:
                    with_la.add(aname)
        run = run_version(app, "proposal", "desktop", ngpus=1,
                          workload=workload)
        computed = (app.paper_scale_bytes() / MB
                    if app.paper_scale_bytes else 0.0)
        rows.append(Table2Row(
            app=name,
            source_suite=suite,
            input_label=input_label,
            paper_mb=paper_mb,
            computed_paper_mb=computed,
            measured_bench_mb=(run.mem_user + run.mem_system) / MB,
            parallel_loops=n_loops,
            paper_parallel_loops=paper_b,
            kernel_executions=run.kernel_executions,
            paper_kernel_executions=paper_c,
            localaccess=f"{len(with_la)}/{len(used)}",
            paper_localaccess=paper_d,
        ))
    return rows
