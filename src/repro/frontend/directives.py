"""OpenACC directive parsing, including the paper's two extensions.

Standard directives supported (the subset the paper's apps use):

* ``#pragma acc data copy(a[0:n]) copyin(...) copyout(...) create(...)``
* ``#pragma acc parallel [loop] [clauses]`` / ``#pragma acc kernels``
* ``#pragma acc loop [gang] [worker] [vector] [independent]
  [reduction(op:var)] [private(x,...)]``
* ``#pragma acc update host(...) device(...)``
* ``#pragma acc cache(...)`` (accepted; advisory on this platform)

Extensions from section III-C of the paper:

* ``#pragma acc localaccess a[stride(s, left, right)] b[range(lo, hi)]
  c[all]`` -- declares the consecutive index window each iteration
  ``i`` may *read*: ``s*i - left .. s*(i+1) - 1 + right`` for
  ``stride``; a fixed window for ``range``; the whole array for
  ``all`` (which still permits distribution-free placement decisions).
  Bare ``a[i]``-style identity access may be written ``a[stride(1)]``.
* ``#pragma acc reductiontoarray(op: dest[lo:len])`` -- placed
  immediately before a single statement of the form
  ``dest[idx] op= value``, marking it as a reduction whose destination
  index is dynamically computed.

Clause sub-expressions (bounds, strides) are parsed with the same C
expression parser as the program text, so host variables are allowed
anywhere a constant is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import cast as C
from .lexer import EOF, ID, PUNCT, Token, tokenize
from .parser import Parser

#: Reduction operators accepted by ``reduction`` / ``reductiontoarray``.
REDUCTION_OPS = {"+", "*", "max", "min", "&", "|", "^", "&&", "||"}


class DirectiveError(SyntaxError):
    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"directive error at line {line}: {message}")
        self.line = line


# ---------------------------------------------------------------------------
# Clause payloads
# ---------------------------------------------------------------------------


@dataclass
class ArraySection:
    """OpenACC array section ``name[start:length]`` (whole array if bare)."""

    name: str
    start: C.Expr | None = None
    length: C.Expr | None = None


@dataclass
class DataClause:
    """One data-movement clause: kind in copy/copyin/copyout/create/present."""

    kind: str
    sections: list[ArraySection] = field(default_factory=list)


@dataclass
class ReductionClause:
    op: str
    variables: list[str] = field(default_factory=list)


@dataclass
class LocalAccessSpec:
    """Per-array read-window declaration of the ``localaccess`` directive.

    ``kind``:
      * ``"stride"`` -- iteration ``i`` reads ``stride*i - left`` ..
        ``stride*(i+1) - 1 + right`` (the paper's stride clause),
      * ``"range"`` -- every iteration reads the fixed window
        ``[lo, hi)``,
      * ``"bounds"`` -- iteration ``i`` reads the inclusive window
        ``[lo(i), hi(i)]`` where the bound expressions may reference the
        loop variable and host-resident arrays (the paper's general
        lower/upper-bound pair form),
      * ``"all"`` -- every iteration may read the whole array.
    """

    kind: str
    stride: C.Expr | None = None
    left: C.Expr | None = None
    right: C.Expr | None = None
    lo: C.Expr | None = None
    hi: C.Expr | None = None


# ---------------------------------------------------------------------------
# Directive nodes
# ---------------------------------------------------------------------------


@dataclass
class Directive:
    line: int = 0


@dataclass
class AccData(Directive):
    clauses: list[DataClause] = field(default_factory=list)


@dataclass
class AccParallel(Directive):
    """``parallel`` or ``kernels`` construct (+ optional fused ``loop``)."""

    construct: str = "parallel"  # or "kernels"
    clauses: list[DataClause] = field(default_factory=list)
    fused_loop: "AccLoop | None" = None
    num_gangs: C.Expr | None = None
    vector_length: C.Expr | None = None
    is_async: bool = False


@dataclass
class AccLoop(Directive):
    gang: bool = False
    worker: bool = False
    vector: bool = False
    independent: bool = False
    seq: bool = False
    reductions: list[ReductionClause] = field(default_factory=list)
    private: list[str] = field(default_factory=list)


@dataclass
class AccUpdate(Directive):
    host: list[ArraySection] = field(default_factory=list)
    device: list[ArraySection] = field(default_factory=list)


@dataclass
class AccCache(Directive):
    sections: list[ArraySection] = field(default_factory=list)


@dataclass
class AccLocalAccess(Directive):
    """The paper's first extension: per-iteration read windows."""

    entries: dict[str, LocalAccessSpec] = field(default_factory=dict)


@dataclass
class AccReductionToArray(Directive):
    """The paper's second extension: reduction into an array element."""

    op: str = "+"
    array: str = ""
    start: C.Expr | None = None
    length: C.Expr | None = None


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


class _ClauseParser(Parser):
    """Token cursor over one pragma line with section helpers."""

    def __init__(self, text: str, line: int) -> None:
        toks = [Token(t.kind, t.value, line, t.col) for t in tokenize(text)]
        super().__init__(toks)
        self.line = line

    def err(self, msg: str) -> DirectiveError:
        return DirectiveError(msg, self.line)

    def parse_section(self) -> ArraySection:
        name = self.expect(ID).value
        start = length = None
        if self.accept(PUNCT, "["):
            start = self.parse_expression()
            self.expect(PUNCT, ":")
            length = self.parse_expression()
            self.expect(PUNCT, "]")
        return ArraySection(name=name, start=start, length=length)

    def parse_section_list(self) -> list[ArraySection]:
        self.expect(PUNCT, "(")
        out = [self.parse_section()]
        while self.accept(PUNCT, ","):
            out.append(self.parse_section())
        self.expect(PUNCT, ")")
        return out

    def parse_name_list(self) -> list[str]:
        self.expect(PUNCT, "(")
        names = [self.expect(ID).value]
        while self.accept(PUNCT, ","):
            names.append(self.expect(ID).value)
        self.expect(PUNCT, ")")
        return names

    def parse_reduction_clause(self) -> ReductionClause:
        self.expect(PUNCT, "(")
        op = self._parse_reduction_op()
        self.expect(PUNCT, ":")
        variables = [self.expect(ID).value]
        while self.accept(PUNCT, ","):
            variables.append(self.expect(ID).value)
        self.expect(PUNCT, ")")
        return ReductionClause(op=op, variables=variables)

    def _parse_reduction_op(self) -> str:
        t = self.advance()
        op = t.value
        # '&&' / '||' lex as single tokens already; 'max'/'min' are IDs.
        if op not in REDUCTION_OPS:
            raise self.err(f"unsupported reduction operator {op!r}")
        return op


_DATA_CLAUSE_KINDS = ("copyin", "copyout", "copy", "create", "present",
                      "pcopyin", "pcopyout", "pcopy", "pcreate")


def _parse_data_clauses(p: _ClauseParser, target: list[DataClause],
                        parallel: AccParallel | None = None,
                        loop: AccLoop | None = None) -> None:
    """Parse trailing clauses shared by data/parallel/kernels constructs."""
    while not p.at(EOF):
        word = p.expect(ID).value
        if word in _DATA_CLAUSE_KINDS:
            # pcopy/pcopyin/... are the "present_or_" aliases of OpenACC 1.0.
            kind = word[1:] if word.startswith("pc") else word
            target.append(DataClause(kind=kind, sections=p.parse_section_list()))
        elif parallel is not None and word == "num_gangs":
            p.expect(PUNCT, "(")
            parallel.num_gangs = p.parse_expression()
            p.expect(PUNCT, ")")
        elif parallel is not None and word == "vector_length":
            p.expect(PUNCT, "(")
            parallel.vector_length = p.parse_expression()
            p.expect(PUNCT, ")")
        elif parallel is not None and word == "async":
            parallel.is_async = True
        elif loop is not None and word in ("gang", "worker", "vector",
                                           "independent", "seq", "reduction",
                                           "private"):
            _apply_loop_clause(p, loop, word)
        else:
            raise p.err(f"unknown clause {word!r}")


def _apply_loop_clause(p: _ClauseParser, loop: AccLoop, word: str) -> None:
    if word == "gang":
        loop.gang = True
    elif word == "worker":
        loop.worker = True
    elif word == "vector":
        loop.vector = True
    elif word == "independent":
        loop.independent = True
    elif word == "seq":
        loop.seq = True
    elif word == "reduction":
        loop.reductions.append(p.parse_reduction_clause())
    elif word == "private":
        loop.private.extend(p.parse_name_list())


def _parse_localaccess(p: _ClauseParser, line: int) -> AccLocalAccess:
    d = AccLocalAccess(line=line)
    # Entries may be parenthesized as a list or given bare, separated by
    # whitespace/commas:  localaccess(a[...], b[...])  or  localaccess a[...]
    parenthesized = bool(p.accept(PUNCT, "("))
    if parenthesized and p.at(PUNCT, ")"):
        raise p.err("localaccess requires at least one array entry")
    while True:
        name = p.expect(ID).value
        p.expect(PUNCT, "[")
        spec = _parse_localaccess_spec(p)
        p.expect(PUNCT, "]")
        if name in d.entries:
            raise p.err(f"duplicate localaccess entry for {name!r}")
        d.entries[name] = spec
        if p.accept(PUNCT, ","):
            continue
        if parenthesized and p.at(PUNCT, ")"):
            p.advance()
            break
        if p.at(EOF):
            if parenthesized:
                raise p.err("unterminated localaccess clause list")
            break
        if not p.at(ID):
            raise p.err("expected array entry in localaccess")
    if not d.entries:
        raise p.err("localaccess requires at least one array entry")
    return d


def _parse_localaccess_spec(p: _ClauseParser) -> LocalAccessSpec:
    if p.at(ID, "all"):
        p.advance()
        return LocalAccessSpec(kind="all")
    if p.at(ID, "stride"):
        p.advance()
        p.expect(PUNCT, "(")
        args = [p.parse_expression()]
        while p.accept(PUNCT, ","):
            args.append(p.parse_expression())
        p.expect(PUNCT, ")")
        if len(args) > 3:
            raise p.err("stride() takes (stride[, left[, right]])")
        while len(args) < 3:
            args.append(C.IntLit(0))
        return LocalAccessSpec(kind="stride", stride=args[0],
                               left=args[1], right=args[2])
    if p.at(ID, "range"):
        p.advance()
        p.expect(PUNCT, "(")
        lo = p.parse_expression()
        p.expect(PUNCT, ",")
        hi = p.parse_expression()
        p.expect(PUNCT, ")")
        return LocalAccessSpec(kind="range", lo=lo, hi=hi)
    if p.at(ID, "bounds"):
        # General inclusive-bounds form of the paper: per-iteration window
        # [lb(i), ub(i)], monotone in i; the expressions may read
        # host-resident arrays (e.g. CSR row pointers).
        p.advance()
        p.expect(PUNCT, "(")
        lb = p.parse_expression()
        p.expect(PUNCT, ",")
        ub = p.parse_expression()
        p.expect(PUNCT, ")")
        return LocalAccessSpec(kind="bounds", lo=lb, hi=ub)
    raise p.err(
        "localaccess spec must be all, stride(...), range(...) or bounds(...)"
    )


def _parse_reductiontoarray(p: _ClauseParser, line: int) -> AccReductionToArray:
    p.expect(PUNCT, "(")
    op_tok = p.advance()
    op = op_tok.value
    if op not in REDUCTION_OPS:
        raise p.err(f"unsupported reduction operator {op!r}")
    p.expect(PUNCT, ":")
    section = p.parse_section()
    p.expect(PUNCT, ")")
    return AccReductionToArray(op=op, array=section.name,
                               start=section.start, length=section.length,
                               line=line)


def parse_pragma(text: str, line: int) -> Directive | None:
    """Parse the text after ``#pragma``; returns None for non-acc pragmas.

    Non-``acc`` pragmas (``omp``, ``once``, ...) are ignored so that the
    same source file can carry an OpenMP fallback annotation, as the
    paper's benchmark sources do.
    """
    p = _ClauseParser(text, line)
    if not p.accept(ID, "acc"):
        return None
    head = p.expect(ID).value

    if head == "data":
        d = AccData(line=line)
        _parse_data_clauses(p, d.clauses)
        if not d.clauses:
            raise p.err("data construct requires at least one clause")
        return d

    if head in ("parallel", "kernels"):
        d = AccParallel(construct=head, line=line)
        if p.at(ID, "loop"):
            p.advance()
            d.fused_loop = AccLoop(line=line, gang=True)
            _parse_data_clauses(p, d.clauses, parallel=d, loop=d.fused_loop)
        else:
            _parse_data_clauses(p, d.clauses, parallel=d)
        return d

    if head == "loop":
        d = AccLoop(line=line)
        while not p.at(EOF):
            word = p.expect(ID).value
            if word not in ("gang", "worker", "vector", "independent", "seq",
                            "reduction", "private"):
                raise p.err(f"unknown loop clause {word!r}")
            _apply_loop_clause(p, d, word)
        return d

    if head == "update":
        d = AccUpdate(line=line)
        while not p.at(EOF):
            word = p.expect(ID).value
            if word in ("host", "self"):
                d.host.extend(p.parse_section_list())
            elif word == "device":
                d.device.extend(p.parse_section_list())
            else:
                raise p.err(f"unknown update clause {word!r}")
        if not d.host and not d.device:
            raise p.err("update requires host(...) or device(...)")
        return d

    if head == "cache":
        # Rewind one token: section list starts at '('.
        d = AccCache(line=line)
        d.sections = p.parse_section_list()
        return d

    if head == "localaccess":
        return _parse_localaccess(p, line)

    if head == "reductiontoarray":
        return _parse_reductiontoarray(p, line)

    if head in ("wait", "enter", "exit", "host_data", "declare", "routine"):
        raise DirectiveError(f"acc {head} is not supported by this subset", line)
    raise DirectiveError(f"unknown acc directive {head!r}", line)
