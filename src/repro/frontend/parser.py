"""Recursive-descent parser for the C subset + OpenACC pragmas.

The grammar covers the language the paper's benchmark programs need:
scalar and array declarations (1-D/2-D), functions, ``for``/``while``/
``if``/``return``/``break``/``continue``, the full C expression
precedence ladder (assignment through primary, incl. ternary, casts,
calls and multi-dimensional subscripts), and ``#pragma acc`` lines.

Pragmas are attached to the statement that follows them, matching
OpenACC's line-oriented association rules.
"""

from __future__ import annotations

from . import cast as C
from .lexer import (
    CHAR_LIT,
    EOF,
    FLOAT_LIT,
    ID,
    INT_LIT,
    KEYWORD,
    PRAGMA,
    PUNCT,
    STRING_LIT,
    Token,
    tokenize,
)

_TYPE_KEYWORDS = {"void", "char", "short", "int", "long", "float", "double",
                  "signed", "unsigned", "const", "restrict", "static"}

_ASSIGN_OPS = {"=": "", "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
               "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>"}

# Binary precedence (higher binds tighter).
_BINARY_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class ParseError(SyntaxError):
    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"parse error at {token.line}:{token.col}: {message} "
                         f"(near {token.value!r})")
        self.token = token


class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        t = self.cur
        if t.kind != EOF:
            self.pos += 1
        return t

    def at(self, kind: str, value: str | None = None) -> bool:
        t = self.cur
        return t.kind == kind and (value is None or t.value == value)

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        if self.at(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        if not self.at(kind, value):
            want = value if value is not None else kind
            raise ParseError(f"expected {want!r}", self.cur)
        return self.advance()

    # -- top level -------------------------------------------------------------

    def parse_program(self) -> C.Program:
        prog = C.Program()
        while not self.at(EOF):
            if self.at(PRAGMA):
                # Stray global pragma (e.g. once) -- not meaningful here.
                self.advance()
                continue
            if not self._at_type():
                raise ParseError("expected declaration or function", self.cur)
            mark = self.pos
            ctype = self._parse_type_specifiers()
            name_tok = self.expect(ID)
            if self.at(PUNCT, "("):
                self.pos = mark
                prog.functions.append(self._parse_function())
            else:
                self.pos = mark
                for d in self._parse_declaration():
                    prog.globals.append(d)
        return prog

    def _at_type(self) -> bool:
        return self.cur.kind == KEYWORD and self.cur.value in _TYPE_KEYWORDS

    def _parse_type_specifiers(self) -> C.CType:
        """Base type + qualifiers (no declarator part)."""
        const = False
        unsigned = False
        parts: list[str] = []
        line = self.cur.line
        while self.cur.kind == KEYWORD and self.cur.value in _TYPE_KEYWORDS:
            w = self.advance().value
            if w == "const":
                const = True
            elif w in ("restrict", "signed", "static"):
                pass
            elif w == "unsigned":
                unsigned = True
            else:
                parts.append(w)
        if not parts and not unsigned:
            raise ParseError("expected type name", self.cur)
        if not parts:
            base = "int"
        elif parts == ["long", "long"]:
            base = "long"
        elif parts == ["short"]:
            base = "int"
        else:
            base = parts[0]
        if unsigned:
            base = {"int": "unsigned int", "long": "unsigned long",
                    "char": "char"}.get(base, base)
        return C.CType(base, const=const)

    def _parse_declarator(self, base: C.CType) -> tuple[str, C.CType, int]:
        """Pointer stars + name + array dims; returns (name, type, line)."""
        pointers = 0
        while self.accept(PUNCT, "*"):
            pointers += 1
            self.accept(KEYWORD, "restrict")
            self.accept(KEYWORD, "const")
        name_tok = self.expect(ID)
        dims: list[C.Expr | None] = []
        while self.accept(PUNCT, "["):
            if self.at(PUNCT, "]"):
                dims.append(None)
            else:
                dims.append(self.parse_expression())
            self.expect(PUNCT, "]")
        ctype = C.CType(base.base, pointers, tuple(dims), base.const)
        return name_tok.value, ctype, name_tok.line

    def _parse_declaration(self) -> list[C.Decl]:
        """``type declarator (= init)? (, declarator (= init)?)* ;``"""
        base = self._parse_type_specifiers()
        decls: list[C.Decl] = []
        while True:
            name, ctype, line = self._parse_declarator(base)
            init = None
            if self.accept(PUNCT, "="):
                init = self.parse_assignment()
            decls.append(C.Decl(name=name, ctype=ctype, init=init, line=line))
            if not self.accept(PUNCT, ","):
                break
        self.expect(PUNCT, ";")
        return decls

    def _parse_function(self) -> C.FunctionDef:
        rtype = self._parse_type_specifiers()
        # Return-type pointers.
        pointers = 0
        while self.accept(PUNCT, "*"):
            pointers += 1
        rtype = C.CType(rtype.base, pointers, (), rtype.const)
        name_tok = self.expect(ID)
        self.expect(PUNCT, "(")
        params: list[C.Param] = []
        if not self.at(PUNCT, ")"):
            if self.at(KEYWORD, "void") and self.peek().value == ")":
                self.advance()
            else:
                while True:
                    pbase = self._parse_type_specifiers()
                    pname, ptype, pline = self._parse_declarator(pbase)
                    params.append(C.Param(pname, ptype, pline))
                    if not self.accept(PUNCT, ","):
                        break
        self.expect(PUNCT, ")")
        body = self.parse_compound()
        return C.FunctionDef(
            name=name_tok.value, return_type=rtype, params=params, body=body,
            line=name_tok.line,
        )

    # -- statements ----------------------------------------------------------------

    def _collect_pragmas(self) -> list:
        """Consume consecutive pragma tokens, parsing ``acc`` ones."""
        from .directives import parse_pragma  # late import: avoids cycle

        directives = []
        while self.at(PRAGMA):
            tok = self.advance()
            d = parse_pragma(tok.value, tok.line)
            if d is not None:
                directives.append(d)
        return directives

    def parse_statement(self) -> C.Stmt:
        directives = self._collect_pragmas()
        stmt = self._parse_statement_inner()
        if directives:
            stmt.directives = directives + stmt.directives
        return stmt

    def _parse_statement_inner(self) -> C.Stmt:
        t = self.cur
        if self.at(PUNCT, "{"):
            return self.parse_compound()
        if self._at_type():
            decls = self._parse_declaration()
            if len(decls) == 1:
                return decls[0]
            return C.Compound(body=list(decls), line=t.line)
        if self.at(KEYWORD, "if"):
            return self._parse_if()
        if self.at(KEYWORD, "for"):
            return self._parse_for()
        if self.at(KEYWORD, "while"):
            return self._parse_while()
        if self.accept(KEYWORD, "return"):
            value = None if self.at(PUNCT, ";") else self.parse_expression()
            self.expect(PUNCT, ";")
            return C.Return(value=value, line=t.line)
        if self.accept(KEYWORD, "break"):
            self.expect(PUNCT, ";")
            return C.Break(line=t.line)
        if self.accept(KEYWORD, "continue"):
            self.expect(PUNCT, ";")
            return C.Continue(line=t.line)
        if self.accept(PUNCT, ";"):
            return C.ExprStmt(expr=None, line=t.line)
        expr = self.parse_expression()
        self.expect(PUNCT, ";")
        return C.ExprStmt(expr=expr, line=t.line)

    def parse_compound(self) -> C.Compound:
        open_tok = self.expect(PUNCT, "{")
        body: list[C.Stmt] = []
        while not self.at(PUNCT, "}"):
            if self.at(EOF):
                raise ParseError("unterminated block", self.cur)
            body.append(self.parse_statement())
        self.expect(PUNCT, "}")
        return C.Compound(body=body, line=open_tok.line)

    def _parse_if(self) -> C.If:
        tok = self.expect(KEYWORD, "if")
        self.expect(PUNCT, "(")
        cond = self.parse_expression()
        self.expect(PUNCT, ")")
        then = self.parse_statement()
        orelse = None
        if self.accept(KEYWORD, "else"):
            orelse = self.parse_statement()
        return C.If(cond=cond, then=then, orelse=orelse, line=tok.line)

    def _parse_for(self) -> C.For:
        tok = self.expect(KEYWORD, "for")
        self.expect(PUNCT, "(")
        init: C.Stmt | None = None
        if not self.at(PUNCT, ";"):
            if self._at_type():
                decls = self._parse_declaration()  # consumes ';'
                init = decls[0] if len(decls) == 1 else C.Compound(body=list(decls))
            else:
                e = self.parse_expression()
                self.expect(PUNCT, ";")
                init = C.ExprStmt(expr=e, line=tok.line)
        else:
            self.expect(PUNCT, ";")
        cond = None if self.at(PUNCT, ";") else self.parse_expression()
        self.expect(PUNCT, ";")
        step = None if self.at(PUNCT, ")") else self.parse_expression()
        self.expect(PUNCT, ")")
        body = self.parse_statement()
        return C.For(init=init, cond=cond, step=step, body=body, line=tok.line)

    def _parse_while(self) -> C.While:
        tok = self.expect(KEYWORD, "while")
        self.expect(PUNCT, "(")
        cond = self.parse_expression()
        self.expect(PUNCT, ")")
        body = self.parse_statement()
        return C.While(cond=cond, body=body, line=tok.line)

    # -- expressions ------------------------------------------------------------------

    def parse_expression(self) -> C.Expr:
        """Full expression including comma? Subset: no comma operator."""
        return self.parse_assignment()

    def parse_assignment(self) -> C.Expr:
        left = self.parse_ternary()
        if self.cur.kind == PUNCT and self.cur.value in _ASSIGN_OPS:
            op_tok = self.advance()
            value = self.parse_assignment()
            return C.Assign(target=left, value=value,
                            op=_ASSIGN_OPS[op_tok.value], line=op_tok.line)
        return left

    def parse_ternary(self) -> C.Expr:
        cond = self.parse_binary(1)
        if self.accept(PUNCT, "?"):
            then = self.parse_assignment()
            self.expect(PUNCT, ":")
            other = self.parse_ternary()
            return C.Ternary(cond=cond, then=then, other=other)
        return cond

    def parse_binary(self, min_prec: int) -> C.Expr:
        left = self.parse_unary()
        while True:
            t = self.cur
            prec = _BINARY_PREC.get(t.value) if t.kind == PUNCT else None
            if prec is None or prec < min_prec:
                return left
            self.advance()
            right = self.parse_binary(prec + 1)
            left = C.BinOp(op=t.value, left=left, right=right, line=t.line)

    def parse_unary(self) -> C.Expr:
        t = self.cur
        if t.kind == PUNCT and t.value in ("-", "+", "!", "~", "*", "&"):
            self.advance()
            return C.UnOp(op=t.value, operand=self.parse_unary(), line=t.line)
        if t.kind == PUNCT and t.value in ("++", "--"):
            # Pre-inc/dec desugars to compound assignment.
            self.advance()
            operand = self.parse_unary()
            return C.Assign(target=operand, value=C.IntLit(1, t.line),
                            op=t.value[0], line=t.line)
        if t.kind == KEYWORD and t.value == "sizeof":
            self.advance()
            self.expect(PUNCT, "(")
            if self._at_type():
                ctype = self._parse_type_specifiers()
                while self.accept(PUNCT, "*"):
                    ctype = C.CType(ctype.base, ctype.pointers + 1)
                self.expect(PUNCT, ")")
                size = 8 if ctype.pointers else ctype.itemsize()
                return C.IntLit(size, t.line)
            e = self.parse_expression()
            self.expect(PUNCT, ")")
            return C.Call(func="sizeof", args=[e], line=t.line)
        # Cast: '(' type ')' unary
        if t.kind == PUNCT and t.value == "(" and self.peek().kind == KEYWORD \
                and self.peek().value in _TYPE_KEYWORDS:
            self.advance()
            ctype = self._parse_type_specifiers()
            pointers = 0
            while self.accept(PUNCT, "*"):
                pointers += 1
            ctype = C.CType(ctype.base, pointers)
            self.expect(PUNCT, ")")
            return C.CastExpr(to=ctype, operand=self.parse_unary(), line=t.line)
        return self.parse_postfix()

    def parse_postfix(self) -> C.Expr:
        expr = self.parse_primary()
        while True:
            t = self.cur
            if self.at(PUNCT, "["):
                indices: list[C.Expr] = []
                while self.accept(PUNCT, "["):
                    indices.append(self.parse_expression())
                    self.expect(PUNCT, "]")
                expr = C.Index(array=expr, indices=indices, line=t.line)
            elif self.at(PUNCT, "(") and isinstance(expr, C.Ident):
                self.advance()
                args: list[C.Expr] = []
                if not self.at(PUNCT, ")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept(PUNCT, ","):
                            break
                self.expect(PUNCT, ")")
                expr = C.Call(func=expr.name, args=args, line=t.line)
            elif t.kind == PUNCT and t.value in ("++", "--"):
                self.advance()
                # Post-inc in expression statements behaves like pre-inc in
                # the subset (value unused); desugar identically.
                expr = C.Assign(target=expr, value=C.IntLit(1, t.line),
                                op=t.value[0], line=t.line)
            else:
                return expr

    def parse_primary(self) -> C.Expr:
        t = self.cur
        if t.kind == INT_LIT:
            self.advance()
            text = t.value.rstrip("uUlL")
            value = int(text, 16) if text.lower().startswith("0x") else int(text)
            return C.IntLit(value, t.line)
        if t.kind == FLOAT_LIT:
            self.advance()
            return C.FloatLit(float(t.value.rstrip("fFlL")), t.line)
        if t.kind == ID:
            self.advance()
            return C.Ident(t.value, t.line)
        if t.kind in (STRING_LIT, CHAR_LIT):
            self.advance()
            if t.kind == CHAR_LIT:
                body = t.value[1:-1]
                ch = {"\\n": "\n", "\\t": "\t", "\\0": "\0",
                      "\\\\": "\\"}.get(body, body)
                return C.IntLit(ord(ch), t.line)
            # Strings only appear as printf-style arguments; keep the text.
            return C.Ident(t.value, t.line)
        if self.accept(PUNCT, "("):
            e = self.parse_expression()
            self.expect(PUNCT, ")")
            return e
        raise ParseError("expected expression", t)


def parse(source: str) -> C.Program:
    """Parse a full translation unit."""
    return Parser(tokenize(source)).parse_program()


def parse_expr(text: str) -> C.Expr:
    """Parse a standalone expression (used by directive clause parsing)."""
    p = Parser(tokenize(text))
    e = p.parse_expression()
    if not p.at(EOF):
        raise ParseError("trailing input after expression", p.cur)
    return e
