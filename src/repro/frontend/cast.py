"""AST node definitions for the C subset.

Nodes are plain dataclasses; passes walk them with ``isinstance``
dispatch (see :func:`walk`).  Every node records the source line of its
first token so diagnostics from later passes (analysis, translation)
can point at the user's OpenACC program.

Directives parsed from ``#pragma acc`` lines are attached to the
statement they precede via ``Stmt.directives`` (a list of
:class:`repro.frontend.directives.Directive` subclasses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CType:
    """A (possibly pointer / array) C type.

    ``base`` is the canonical scalar name: ``int``, ``unsigned int``,
    ``long``, ``float``, ``double``, ``char``, ``void``.
    ``pointers`` counts ``*`` levels; ``array_dims`` holds one entry per
    ``[]`` dimension -- either an :class:`Expr` (the declared extent) or
    ``None`` for unsized dimensions in parameters.
    """

    base: str
    pointers: int = 0
    array_dims: tuple[Optional["Expr"], ...] = ()
    const: bool = False
    restrict: bool = False

    @property
    def is_pointer(self) -> bool:
        return self.pointers > 0

    @property
    def is_array(self) -> bool:
        return bool(self.array_dims)

    @property
    def is_arraylike(self) -> bool:
        """Pointer or array: something a subscript can apply to."""
        return self.is_pointer or self.is_array

    @property
    def is_float(self) -> bool:
        return self.base in ("float", "double")

    @property
    def rank(self) -> int:
        """Number of subscriptable dimensions."""
        return self.pointers + len(self.array_dims)

    def element(self) -> "CType":
        """Type after one subscript."""
        if self.array_dims:
            return CType(self.base, self.pointers, self.array_dims[1:], self.const)
        if self.pointers:
            return CType(self.base, self.pointers - 1, (), self.const)
        raise TypeError(f"cannot subscript scalar type {self.base}")

    def itemsize(self) -> int:
        """Bytes per scalar element."""
        return {"char": 1, "int": 4, "unsigned int": 4, "float": 4,
                "long": 8, "unsigned long": 8, "double": 8, "void": 1}[self.base]

    def __str__(self) -> str:
        s = self.base + "*" * self.pointers
        for d in self.array_dims:
            s += "[]" if d is None else "[...]"
        return s


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    pass


@dataclass
class IntLit(Expr):
    value: int
    line: int = 0


@dataclass
class FloatLit(Expr):
    value: float
    line: int = 0


@dataclass
class Ident(Expr):
    name: str
    line: int = 0


@dataclass
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr
    line: int = 0


@dataclass
class UnOp(Expr):
    op: str  # '-', '+', '!', '~', '*', '&'
    operand: Expr
    line: int = 0


@dataclass
class Ternary(Expr):
    cond: Expr
    then: Expr
    other: Expr
    line: int = 0


@dataclass
class Call(Expr):
    func: str
    args: list[Expr] = field(default_factory=list)
    line: int = 0


@dataclass
class Index(Expr):
    """Array subscript ``array[index]...`` with all dims collected."""

    array: Expr
    indices: list[Expr] = field(default_factory=list)
    line: int = 0

    def base_name(self) -> str:
        """Name of the subscripted identifier (subset: always an Ident)."""
        if isinstance(self.array, Ident):
            return self.array.name
        raise TypeError("subscript of a non-identifier expression")


@dataclass
class CastExpr(Expr):
    to: CType
    operand: Expr
    line: int = 0


@dataclass
class Assign(Expr):
    """Assignment, including compound forms (``op`` is '' or '+', ...)."""

    target: Expr
    value: Expr
    op: str = ""  # '' -> '=', '+' -> '+=', etc.
    line: int = 0


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    directives: list = field(default_factory=list)
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class Decl(Stmt):
    """Variable declaration (one declarator per Decl node)."""

    name: str = ""
    ctype: CType = CType("int")
    init: Expr | None = None


@dataclass
class Compound(Stmt):
    body: list[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Stmt = None  # type: ignore[assignment]
    orelse: Stmt | None = None


@dataclass
class For(Stmt):
    init: Stmt | None = None
    cond: Expr | None = None
    step: Expr | None = None
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class Param:
    name: str
    ctype: CType
    line: int = 0


@dataclass
class FunctionDef:
    name: str
    return_type: CType
    params: list[Param]
    body: Compound
    line: int = 0


@dataclass
class Program:
    """A translation unit: global declarations and function definitions."""

    functions: list[FunctionDef] = field(default_factory=list)
    globals: list[Decl] = field(default_factory=list)

    def function(self, name: str) -> FunctionDef:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(f"no function named {name!r}")


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def child_exprs(e: Expr) -> Iterator[Expr]:
    """Direct sub-expressions of ``e``."""
    if isinstance(e, BinOp):
        yield e.left
        yield e.right
    elif isinstance(e, UnOp):
        yield e.operand
    elif isinstance(e, Ternary):
        yield e.cond
        yield e.then
        yield e.other
    elif isinstance(e, Call):
        yield from e.args
    elif isinstance(e, Index):
        yield e.array
        yield from e.indices
    elif isinstance(e, CastExpr):
        yield e.operand
    elif isinstance(e, Assign):
        yield e.target
        yield e.value


def walk_expr(e: Expr) -> Iterator[Expr]:
    """Pre-order traversal of an expression tree."""
    yield e
    for c in child_exprs(e):
        yield from walk_expr(c)


def child_stmts(s: Stmt) -> Iterator[Stmt]:
    if isinstance(s, Compound):
        yield from s.body
    elif isinstance(s, If):
        yield s.then
        if s.orelse is not None:
            yield s.orelse
    elif isinstance(s, For):
        if s.init is not None:
            yield s.init
        yield s.body
    elif isinstance(s, While):
        yield s.body


def stmt_exprs(s: Stmt) -> Iterator[Expr]:
    """Expressions directly owned by statement ``s`` (not nested stmts)."""
    if isinstance(s, ExprStmt) and s.expr is not None:
        yield s.expr
    elif isinstance(s, Decl) and s.init is not None:
        yield s.init
    elif isinstance(s, If):
        yield s.cond
    elif isinstance(s, For):
        if s.cond is not None:
            yield s.cond
        if s.step is not None:
            yield s.step
    elif isinstance(s, While):
        yield s.cond
    elif isinstance(s, Return) and s.value is not None:
        yield s.value


def walk(s: Stmt) -> Iterator[Stmt]:
    """Pre-order traversal of a statement tree."""
    yield s
    for c in child_stmts(s):
        yield from walk(c)


def all_exprs(s: Stmt) -> Iterator[Expr]:
    """Every expression anywhere under statement ``s``."""
    for st in walk(s):
        for e in stmt_exprs(st):
            yield from walk_expr(e)


def render_expr(e: Expr) -> str:
    """C source text of an expression, for diagnostics and reports.

    Aimed at human readers (``repro.explain`` window formulas, error
    messages), not round-tripping: sub-expressions are parenthesized
    whenever precedence could be ambiguous, and constant folds already
    applied by earlier passes are rendered as folded.
    """
    if isinstance(e, IntLit):
        return str(e.value)
    if isinstance(e, FloatLit):
        return repr(e.value)
    if isinstance(e, Ident):
        return e.name
    if isinstance(e, BinOp):
        lhs, rhs = render_expr(e.left), render_expr(e.right)
        if isinstance(e.left, (BinOp, Ternary, Assign, CastExpr)):
            lhs = f"({lhs})"
        if isinstance(e.right, (BinOp, Ternary, Assign, CastExpr, UnOp)):
            rhs = f"({rhs})"
        return f"{lhs} {e.op} {rhs}"
    if isinstance(e, UnOp):
        inner = render_expr(e.operand)
        if not isinstance(e.operand, (IntLit, FloatLit, Ident, Index, Call)):
            inner = f"({inner})"
        return f"{e.op}{inner}"
    if isinstance(e, Ternary):
        return (f"{render_expr(e.cond)} ? {render_expr(e.then)}"
                f" : {render_expr(e.other)}")
    if isinstance(e, Call):
        return f"{e.func}({', '.join(render_expr(a) for a in e.args)})"
    if isinstance(e, Index):
        subs = "".join(f"[{render_expr(i)}]" for i in e.indices)
        return f"{render_expr(e.array)}{subs}"
    if isinstance(e, CastExpr):
        return f"({e.to}){render_expr(e.operand)}"
    if isinstance(e, Assign):
        return (f"{render_expr(e.target)} {e.op or ''}="
                f" {render_expr(e.value)}")
    raise TypeError(f"cannot render expression node {type(e).__name__}")
