"""Access-pattern analysis over parallel-loop bodies.

This pass produces, per parallel loop, exactly the facts the paper's
translator summarizes into "array configuration information"
(section IV-B5):

* which arrays each loop reads / writes (and read-only / write-only
  classification),
* whether each subscript is *affine* in the parallel loop variable
  (``a*i + b`` with ``a``/``b`` free of the loop var and of any
  kernel-local data-dependent values) -- affine, stride-1 accesses are
  coalesced and eligible for static bounds reasoning; non-affine ones
  are the "irregular" accesses that need dirty bits / write-miss
  checks,
* the loop's normal form (``for (i = lo; i < hi; i++)``),
* inner loops and their classification (constant-trip vs CSR pattern),
  which drives the vectorizer's strategy choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from . import cast as C
from .directives import AccLoop, AccReductionToArray


class AnalysisError(ValueError):
    def __init__(self, message: str, line: int = 0) -> None:
        where = f" (line {line})" if line else ""
        super().__init__(f"analysis error{where}: {message}")
        self.line = line


# ---------------------------------------------------------------------------
# Affine forms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AffineForm:
    """``coeff * var + offset`` where neither part mentions ``var``.

    ``coeff`` is an integer (symbolic coefficients are treated as
    non-affine: the translator then falls back to conservative
    handling, as the paper's compiler does when it "cannot safely
    analyze the memory access pattern").  ``offset`` is an arbitrary
    expression free of ``var``.
    """

    coeff: int
    offset: C.Expr

    @property
    def is_constant(self) -> bool:
        return self.coeff == 0


def expr_mentions(e: C.Expr, names: set[str]) -> bool:
    """True if expression ``e`` references any identifier in ``names``."""
    return any(isinstance(x, C.Ident) and x.name in names for x in C.walk_expr(e))


def const_value(e: C.Expr) -> int | None:
    """Fold an integer-constant expression, or None."""
    if isinstance(e, C.IntLit):
        return e.value
    if isinstance(e, C.UnOp) and e.op == "-":
        v = const_value(e.operand)
        return None if v is None else -v
    if isinstance(e, C.BinOp):
        a = const_value(e.left)
        b = const_value(e.right)
        if a is None or b is None:
            return None
        try:
            if e.op == "+":
                return a + b
            if e.op == "-":
                return a - b
            if e.op == "*":
                return a * b
            if e.op == "/":
                return a // b if b != 0 else None
            if e.op == "%":
                return a % b if b != 0 else None
        except (ZeroDivisionError, OverflowError):  # pragma: no cover
            return None
    return None


def _add(a: C.Expr, b: C.Expr) -> C.Expr:
    av, bv = const_value(a), const_value(b)
    if av == 0:
        return b
    if bv == 0:
        return a
    if av is not None and bv is not None:
        return C.IntLit(av + bv)
    return C.BinOp("+", a, b)


def _sub(a: C.Expr, b: C.Expr) -> C.Expr:
    av, bv = const_value(a), const_value(b)
    if bv == 0:
        return a
    if av is not None and bv is not None:
        return C.IntLit(av - bv)
    return C.BinOp("-", a, b)


def _mul(a: C.Expr, k: int) -> C.Expr:
    av = const_value(a)
    if av is not None:
        return C.IntLit(av * k)
    if k == 1:
        return a
    if k == 0:
        return C.IntLit(0)
    return C.BinOp("*", a, C.IntLit(k))


def affine_in(e: C.Expr, var: str, opaque: set[str] | None = None) -> AffineForm | None:
    """Decompose ``e`` as ``coeff*var + offset`` or return None.

    Identifiers in ``opaque`` (data-dependent kernel locals) poison the
    decomposition: any subexpression mentioning them is only acceptable
    inside the offset when it does not also mention ``var`` -- but as a
    *whole-expression* offset the caller usually wants to know, so such
    expressions yield ``coeff=0`` with the expression as offset, which
    is still "non-affine in var" only when var occurs.
    """
    opaque = opaque or set()

    def rec(x: C.Expr) -> AffineForm | None:
        if isinstance(x, C.IntLit):
            return AffineForm(0, x)
        if isinstance(x, C.Ident):
            if x.name == var:
                return AffineForm(1, C.IntLit(0))
            return AffineForm(0, x)
        if isinstance(x, C.UnOp) and x.op in ("-", "+"):
            f = rec(x.operand)
            if f is None:
                return None
            if x.op == "+":
                return f
            return AffineForm(-f.coeff, _sub(C.IntLit(0), f.offset))
        if isinstance(x, C.BinOp):
            if x.op in ("+", "-"):
                lf, rf = rec(x.left), rec(x.right)
                if lf is None or rf is None:
                    return None
                if x.op == "+":
                    return AffineForm(lf.coeff + rf.coeff, _add(lf.offset, rf.offset))
                return AffineForm(lf.coeff - rf.coeff, _sub(lf.offset, rf.offset))
            if x.op == "*":
                lf, rf = rec(x.left), rec(x.right)
                if lf is None or rf is None:
                    return None
                # One side must be a constant for affinity in var.
                lc, rc = const_value(x.left), const_value(x.right)
                if rc is not None:
                    return AffineForm(lf.coeff * rc, _mul(lf.offset, rc))
                if lc is not None:
                    return AffineForm(rf.coeff * lc, _mul(rf.offset, lc))
                # var-free product is a fine offset.
                if lf.coeff == 0 and rf.coeff == 0:
                    return AffineForm(0, x)
                return None
            if x.op in ("/", "%", "<<", ">>", "&", "|", "^"):
                lf, rf = rec(x.left), rec(x.right)
                if lf is not None and rf is not None and lf.coeff == 0 and rf.coeff == 0:
                    return AffineForm(0, x)
                return None
            return None
        # Calls / subscripts / casts: var-free -> constant offset.
        if not expr_mentions(x, {var}):
            return AffineForm(0, x)
        return None

    return rec(e)


# ---------------------------------------------------------------------------
# Access records
# ---------------------------------------------------------------------------


@dataclass
class ArrayAccess:
    """One subscripted access to an array inside a loop body."""

    array: str
    indices: list[C.Expr]
    is_read: bool
    is_write: bool
    line: int = 0
    #: Affine decomposition of the *linearized* index in the parallel
    #: loop variable; None when data-dependent ("irregular").
    affine: AffineForm | None = None
    #: True when the subscript mentions values loaded from memory
    #: (e.g. ``levels[edges[e]]``): the paper's irregular writes.
    data_dependent: bool = False


@dataclass
class ArrayUsage:
    """Aggregate of all accesses to one array in one parallel loop."""

    name: str
    accesses: list[ArrayAccess] = field(default_factory=list)

    @property
    def is_read(self) -> bool:
        return any(a.is_read for a in self.accesses)

    @property
    def is_written(self) -> bool:
        return any(a.is_write for a in self.accesses)

    @property
    def read_only(self) -> bool:
        return self.is_read and not self.is_written

    @property
    def write_only(self) -> bool:
        return self.is_written and not self.is_read

    @property
    def all_affine(self) -> bool:
        return all(a.affine is not None for a in self.accesses)

    @property
    def writes_affine(self) -> bool:
        return all(a.affine is not None for a in self.accesses if a.is_write)

    def write_accesses(self) -> Iterator[ArrayAccess]:
        return (a for a in self.accesses if a.is_write)


@dataclass
class InnerLoop:
    """An inner sequential loop inside a parallel-loop body."""

    stmt: C.For
    var: str
    #: 'constant' -- trip bounds free of memory values (vectorize by
    #: sequential outer iteration over the inner index);
    #: 'csr' -- bounds of the form start[i] .. end-expr (flattened with
    #: the repeat/cumsum transform); 'opaque' -- anything else
    #: (interpreter fallback).
    kind: str
    lower: C.Expr | None = None
    upper: C.Expr | None = None


@dataclass
class LoopNest:
    """Normal form of a parallel loop: ``for (var = lo; var < hi; var++)``."""

    stmt: C.For
    var: str
    lower: C.Expr
    upper: C.Expr
    body: C.Stmt
    directive: AccLoop | None = None


@dataclass
class LoopAnalysis:
    """Everything later passes need to know about one parallel loop."""

    nest: LoopNest
    arrays: dict[str, ArrayUsage] = field(default_factory=dict)
    #: Host scalars referenced by the body (become kernel arguments).
    host_scalars: list[str] = field(default_factory=list)
    #: Names declared inside the body (kernel-private).
    locals_: list[str] = field(default_factory=list)
    inner_loops: list[InnerLoop] = field(default_factory=list)
    #: Scalar reduction clauses from the loop directive.
    scalar_reductions: list[tuple[str, str]] = field(default_factory=list)
    #: ``reductiontoarray`` statements found in the body.
    array_reductions: list[AccReductionToArray] = field(default_factory=list)

    def usage(self, name: str) -> ArrayUsage:
        return self.arrays[name]


# ---------------------------------------------------------------------------
# Loop normalization
# ---------------------------------------------------------------------------


def normalize_loop(stmt: C.For, directive: AccLoop | None = None) -> LoopNest:
    """Check the canonical parallel-loop shape and extract bounds.

    Accepted: ``for (i = lo; i < hi; i++)`` / ``i += 1`` / ``++i`` with
    ``i`` declared in the init or earlier.  OpenACC already requires
    countable loops for ``loop`` constructs; we additionally pin step 1
    (the paper's equal-block task split assumes it).
    """
    line = stmt.line
    # init
    if isinstance(stmt.init, C.Decl):
        var = stmt.init.name
        if stmt.init.init is None:
            raise AnalysisError("loop variable must be initialized", line)
        lower = stmt.init.init
    elif isinstance(stmt.init, C.ExprStmt) and isinstance(stmt.init.expr, C.Assign) \
            and isinstance(stmt.init.expr.target, C.Ident) and stmt.init.expr.op == "":
        var = stmt.init.expr.target.name
        lower = stmt.init.expr.value
    else:
        raise AnalysisError("parallel loop init must be 'i = lo'", line)
    # cond
    if not (isinstance(stmt.cond, C.BinOp) and stmt.cond.op in ("<", "<=")
            and isinstance(stmt.cond.left, C.Ident) and stmt.cond.left.name == var):
        raise AnalysisError("parallel loop condition must be 'i < hi'", line)
    upper = stmt.cond.right
    if stmt.cond.op == "<=":
        upper = C.BinOp("+", upper, C.IntLit(1))
    # step
    step_ok = False
    if isinstance(stmt.step, C.Assign) and isinstance(stmt.step.target, C.Ident) \
            and stmt.step.target.name == var:
        if stmt.step.op == "+" and const_value(stmt.step.value) == 1:
            step_ok = True
        if stmt.step.op == "" and isinstance(stmt.step.value, C.BinOp) \
                and stmt.step.value.op == "+" \
                and isinstance(stmt.step.value.left, C.Ident) \
                and stmt.step.value.left.name == var \
                and const_value(stmt.step.value.right) == 1:
            step_ok = True
    if not step_ok:
        raise AnalysisError("parallel loop step must be 'i++' (unit stride)", line)
    return LoopNest(stmt=stmt, var=var, lower=lower, upper=upper,
                    body=stmt.body, directive=directive)


# ---------------------------------------------------------------------------
# Body analysis
# ---------------------------------------------------------------------------


def _classify_inner_loop(f: C.For, parallel_var: str,
                         array_names: set[str]) -> InnerLoop:
    nest = normalize_inner(f)
    lower, upper, var = nest
    # CSR pattern: bounds are loads from arrays indexed by the parallel var.
    def is_memory(e: C.Expr) -> bool:
        return any(isinstance(x, C.Index) for x in C.walk_expr(e))

    if is_memory(lower) or is_memory(upper):
        if _is_csr_bound(lower, array_names) and _is_csr_bound(upper, array_names):
            return InnerLoop(stmt=f, var=var, kind="csr", lower=lower, upper=upper)
        return InnerLoop(stmt=f, var=var, kind="opaque", lower=lower, upper=upper)
    return InnerLoop(stmt=f, var=var, kind="constant", lower=lower, upper=upper)


def _is_csr_bound(e: C.Expr, array_names: set[str]) -> bool:
    """Bound is a single load ``arr[idx]`` (plus constant arithmetic)."""
    loads = [x for x in C.walk_expr(e) if isinstance(x, C.Index)]
    if len(loads) != 1:
        return False
    ld = loads[0]
    return isinstance(ld.array, C.Ident) and ld.array.name in array_names


def normalize_inner(f: C.For) -> tuple[C.Expr, C.Expr, str]:
    """Extract (lower, upper, var) of an inner loop in canonical form."""
    line = f.line
    if isinstance(f.init, C.Decl):
        var = f.init.name
        lower = f.init.init
    elif isinstance(f.init, C.ExprStmt) and isinstance(f.init.expr, C.Assign) \
            and isinstance(f.init.expr.target, C.Ident):
        var = f.init.expr.target.name
        lower = f.init.expr.value
    else:
        raise AnalysisError("inner loop init must assign the loop variable", line)
    if lower is None:
        raise AnalysisError("inner loop variable must be initialized", line)
    if not (isinstance(f.cond, C.BinOp) and f.cond.op in ("<", "<=")
            and isinstance(f.cond.left, C.Ident) and f.cond.left.name == var):
        raise AnalysisError("inner loop condition must be 'j < hi'", line)
    upper = f.cond.right
    if f.cond.op == "<=":
        upper = C.BinOp("+", upper, C.IntLit(1))
    return lower, upper, var


def analyze_loop(nest: LoopNest, array_names: set[str],
                 host_scalar_names: set[str]) -> LoopAnalysis:
    """Run the full body analysis for one parallel loop."""
    la = LoopAnalysis(nest=nest)
    private_names: list[str] = []
    if nest.directive is not None:
        for rc in nest.directive.reductions:
            for v in rc.variables:
                la.scalar_reductions.append((rc.op, v))
        private_names = list(nest.directive.private)

    # Locals declared in the body (includes inner loop vars), plus any
    # names the loop directive lists as private: those live outside the
    # loop syntactically but are per-iteration scratch semantically.
    la.locals_.extend(private_names)
    for st in C.walk(nest.body):
        if isinstance(st, C.Decl):
            la.locals_.append(st.name)
    local_set = set(la.locals_)

    # Inner loops.
    for st in C.walk(nest.body):
        if isinstance(st, C.For):
            la.inner_loops.append(_classify_inner_loop(st, nest.var, array_names))
        elif isinstance(st, C.While):
            raise AnalysisError("while loops are not allowed in parallel bodies",
                                st.line)
        # Collect reductiontoarray directives attached to statements.
        for d in st.directives:
            if isinstance(d, AccReductionToArray):
                la.array_reductions.append(d)

    # Data-dependence: a name is "opaque" if derived from memory loads.
    opaque = _opaque_locals(nest.body, array_names, local_set)

    # Accesses.
    reduction_arrays = {d.array for d in la.array_reductions}
    for st in C.walk(nest.body):
        writes: list[C.Expr] = []
        for e in C.stmt_exprs(st):
            for x in C.walk_expr(e):
                if isinstance(x, C.Assign) and isinstance(x.target, C.Index):
                    writes.append(x.target)
        for e in C.stmt_exprs(st):
            _collect_accesses(e, nest.var, array_names, opaque, la, writes, st.line)

    # Host scalars: identifiers used in the body that are neither locals,
    # the loop var, nor arrays.
    seen: set[str] = set()
    for x in C.all_exprs(nest.body):
        if isinstance(x, C.Ident) and x.name not in array_names \
                and x.name not in local_set and x.name != nest.var \
                and x.name not in seen and not _is_builtin(x.name):
            seen.add(x.name)
            la.host_scalars.append(x.name)
    # Bounds may also reference host scalars.
    for bound in (nest.lower, nest.upper):
        for x in C.walk_expr(bound):
            if isinstance(x, C.Ident) and x.name not in seen \
                    and x.name not in array_names and x.name != nest.var \
                    and not _is_builtin(x.name):
                seen.add(x.name)
                la.host_scalars.append(x.name)
    return la


_BUILTINS = {"sqrt", "sqrtf", "fabs", "fabsf", "abs", "exp", "expf", "log",
             "logf", "pow", "powf", "min", "max", "fmin", "fmax", "fminf",
             "fmaxf", "floor", "floorf", "ceil", "ceilf", "sin", "cos",
             "sizeof", "rsqrt", "rsqrtf"}


def _is_builtin(name: str) -> bool:
    return name in _BUILTINS


def _opaque_locals(body: C.Stmt, array_names: set[str],
                   local_set: set[str]) -> set[str]:
    """Locals whose value depends on memory loads (fixed point)."""
    opaque: set[str] = set()
    changed = True
    while changed:
        changed = False
        for st in C.walk(body):
            target_name = None
            value = None
            if isinstance(st, C.Decl) and st.init is not None:
                target_name, value = st.name, st.init
            elif isinstance(st, C.ExprStmt) and isinstance(st.expr, C.Assign) \
                    and isinstance(st.expr.target, C.Ident):
                target_name, value = st.expr.target.name, st.expr.value
            if target_name is None or target_name not in local_set \
                    or target_name in opaque or value is None:
                continue
            loads = any(isinstance(x, C.Index) for x in C.walk_expr(value))
            uses_opaque = expr_mentions(value, opaque)
            if loads or uses_opaque:
                opaque.add(target_name)
                changed = True
    return opaque


def _collect_accesses(e: C.Expr, var: str, array_names: set[str],
                      opaque: set[str], la: LoopAnalysis,
                      write_targets: list[C.Expr], line: int) -> None:
    for x in C.walk_expr(e):
        if not isinstance(x, C.Index):
            continue
        if not isinstance(x.array, C.Ident) or x.array.name not in array_names:
            continue
        name = x.array.name
        is_write = any(x is w for w in write_targets)
        is_read = not is_write
        # Compound assignment reads the target too.
        if is_write:
            for parent in C.walk_expr(e):
                if isinstance(parent, C.Assign) and parent.target is x and parent.op:
                    is_read = True
        lin = linearize_index(x, var)
        aff = affine_in(lin, var, opaque) if lin is not None else None
        if aff is not None and expr_mentions(lin, opaque):
            aff = None
        acc = ArrayAccess(
            array=name,
            indices=list(x.indices),
            is_read=is_read,
            is_write=is_write,
            line=x.line or line,
            affine=aff,
            data_dependent=lin is not None and expr_mentions(lin, opaque)
            or any(isinstance(y, C.Index) for idx in x.indices
                   for y in C.walk_expr(idx)),
        )
        la.arrays.setdefault(name, ArrayUsage(name=name)).accesses.append(acc)


def linearize_index(ix: C.Index, var: str) -> C.Expr | None:
    """Linearized index of a (possibly multi-dim) subscript.

    Multi-dimensional subscripts are only linearizable when the array's
    extents are known to the caller; at this level we simply return the
    single index for 1-D accesses and the raw first index otherwise
    (2-D arrays are handled by the layout pass before vectorization).
    """
    if len(ix.indices) == 1:
        return ix.indices[0]
    return None
