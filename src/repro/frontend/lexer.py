"""Tokenizer for the C subset accepted by the translator.

The lexer is line-aware only where C requires it: ``#pragma`` lines are
captured whole as :data:`PRAGMA` tokens (with the text after the word
``pragma``), since OpenACC directives are line-oriented.  Blank
pragmas, ``//`` and ``/* */`` comments, and all standard numeric and
operator forms of the subset are handled.

Tokens carry ``line``/``col`` for error messages; every parse error in
the compiler points back at the source location.
"""

from __future__ import annotations

from dataclasses import dataclass

# Token kinds.
ID = "id"
KEYWORD = "keyword"
INT_LIT = "int"
FLOAT_LIT = "float"
STRING_LIT = "string"
CHAR_LIT = "char"
PUNCT = "punct"
PRAGMA = "pragma"
EOF = "eof"

KEYWORDS = frozenset(
    {
        "auto", "break", "case", "char", "const", "continue", "default", "do",
        "double", "else", "enum", "extern", "float", "for", "goto", "if",
        "inline", "int", "long", "register", "restrict", "return", "short",
        "signed", "sizeof", "static", "struct", "switch", "typedef", "union",
        "unsigned", "void", "volatile", "while",
    }
)

# Longest-match-first operator table.
_PUNCTUATORS = sorted(
    [
        "...", "<<=", ">>=",
        "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
        "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
        "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
        "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
    ],
    key=len,
    reverse=True,
)


class LexError(SyntaxError):
    """Raised on malformed input, with line/column context."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"lex error at {line}:{col}: {message}")
        self.line = line
        self.col = col


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int
    col: int

    def __repr__(self) -> str:  # compact for test failure output
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.col})"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; returns tokens ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(msg: str) -> LexError:
        return LexError(msg, line, col)

    while i < n:
        c = source[i]

        # Newlines / whitespace.
        if c == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if c in " \t\r":
            i += 1
            col += 1
            continue

        # Comments.
        if source.startswith("//", i):
            j = source.find("\n", i)
            i = n if j < 0 else j
            continue
        if source.startswith("/*", i):
            j = source.find("*/", i + 2)
            if j < 0:
                raise error("unterminated block comment")
            skipped = source[i : j + 2]
            nl = skipped.count("\n")
            if nl:
                line += nl
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = j + 2
            continue

        # Preprocessor lines: only #pragma is meaningful; #include/#define
        # of the subset's headers are ignored.
        if c == "#":
            j = source.find("\n", i)
            if j < 0:
                j = n
            text = source[i:j]
            # Line continuations in pragmas.
            while text.rstrip().endswith("\\") and j < n:
                k = source.find("\n", j + 1)
                if k < 0:
                    k = n
                text = text.rstrip().rstrip("\\") + " " + source[j + 1 : k]
                line += 1
                j = k
            stripped = text[1:].strip()
            if stripped.startswith("pragma"):
                body = stripped[len("pragma") :].strip()
                tokens.append(Token(PRAGMA, body, line, col))
            # #include / #define etc. are silently dropped (host headers).
            i = j
            continue

        # Identifiers / keywords.
        if c.isalpha() or c == "_":
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = KEYWORD if word in KEYWORDS else ID
            tokens.append(Token(kind, word, line, col))
            col += j - i
            i = j
            continue

        # Numbers.
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            if source.startswith(("0x", "0X"), i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
            else:
                while j < n and source[j].isdigit():
                    j += 1
                if j < n and source[j] == ".":
                    is_float = True
                    j += 1
                    while j < n and source[j].isdigit():
                        j += 1
                if j < n and source[j] in "eE":
                    k = j + 1
                    if k < n and source[k] in "+-":
                        k += 1
                    if k < n and source[k].isdigit():
                        is_float = True
                        j = k
                        while j < n and source[j].isdigit():
                            j += 1
            # Suffixes.
            while j < n and source[j] in "uUlLfF":
                if source[j] in "fF":
                    is_float = True
                j += 1
            text = source[i:j]
            tokens.append(Token(FLOAT_LIT if is_float else INT_LIT, text, line, col))
            col += j - i
            i = j
            continue

        # String / char literals.
        if c in "\"'":
            quote = c
            j = i + 1
            while j < n and source[j] != quote:
                if source[j] == "\\":
                    j += 1
                j += 1
            if j >= n:
                raise error("unterminated literal")
            text = source[i : j + 1]
            kind = STRING_LIT if quote == '"' else CHAR_LIT
            tokens.append(Token(kind, text, line, col))
            col += j + 1 - i
            i = j + 1
            continue

        # Punctuators.
        for p in _PUNCTUATORS:
            if source.startswith(p, i):
                tokens.append(Token(PUNCT, p, line, col))
                col += len(p)
                i += len(p)
                break
        else:
            raise error(f"unexpected character {c!r}")

    tokens.append(Token(EOF, "", line, col))
    return tokens
