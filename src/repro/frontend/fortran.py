"""Fortran frontend: a second source language over the same pipeline.

OpenACC is specified for C *and* Fortran; the paper's translator
consumes both.  This module parses a free-form Fortran subset --
``subroutine``/``function``, declarations with ``::``, assignments,
``do``/``end do``, ``do while``, ``if/then/else/end if``, ``exit``/
``cycle``, calls, and ``!$acc`` directive comments -- and lowers it to
the same C AST (:mod:`repro.frontend.cast`) the rest of the compiler
operates on, so every later stage (analysis, vectorizer, runtime) is
shared verbatim.

Lowering rules:

* Fortran arrays are 1-based: every subscript ``a(e)`` lowers to
  ``a[e - 1]`` (constant-folded where possible).
* ``do i = L, U`` lowers to the canonical ``for (i = L; i <= U; i++)``;
  the existing loop normalization turns the inclusive bound into the
  half-open form.
* ``localaccess`` window expressions are written against Fortran's
  1-based indices; they are lowered by the same ``e - 1`` subscript
  rule plus a whole-window shift of -1 (a window ``[lb, ub]`` over
  1-based element numbers is ``[lb-1, ub-1]`` over 0-based ones).
* Operators: ``**`` becomes a ``pow`` call; ``.and. .or. .not.`` and
  ``.eq. .ne. .lt. .le. .gt. .ge.`` map to their C forms; logical
  literals map to 1/0.
* Types: ``real`` -> float, ``double precision``/``real(8)`` -> double,
  ``integer`` -> int, ``logical`` -> int.

The result plugs into :func:`repro.translator.compiler.compile_source`
via ``repro.compile_fortran``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from . import cast as C
from .directives import Directive, parse_pragma
from .lexer import EOF, FLOAT_LIT, ID, INT_LIT, PUNCT, Token


class FortranError(SyntaxError):
    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"fortran error at line {line}: {message}")
        self.line = line


# ---------------------------------------------------------------------------
# Line-level scanning
# ---------------------------------------------------------------------------


@dataclass
class _Line:
    text: str
    number: int


def _scan_lines(source: str) -> list[_Line]:
    """Strip comments, join continuations, keep !$acc directives."""
    out: list[_Line] = []
    pending = ""
    pending_no = 0
    for no, raw in enumerate(source.splitlines(), start=1):
        line = raw.rstrip()
        stripped = line.strip()
        if not stripped:
            continue
        low = stripped.lower()
        if low.startswith("!$acc"):
            if pending:
                raise FortranError("directive inside a continued statement",
                                   no)
            out.append(_Line("!$acc " + stripped[5:].strip(), no))
            continue
        if stripped.startswith("!"):
            continue
        # Trailing comment (naive: ! not inside a string; the subset has
        # no meaningful string literals).
        bang = stripped.find("!")
        if bang >= 0:
            stripped = stripped[:bang].rstrip()
            if not stripped:
                continue
        if pending:
            stripped = pending + " " + stripped.lstrip("&").lstrip()
        if stripped.endswith("&"):
            pending = stripped[:-1].rstrip()
            pending_no = pending_no or no
            continue
        out.append(_Line(stripped, pending_no or no))
        pending = ""
        pending_no = 0
    if pending:
        raise FortranError("dangling continuation", pending_no)
    return out


# ---------------------------------------------------------------------------
# Expression parsing (Fortran surface -> C AST)
# ---------------------------------------------------------------------------

_DOT_OPS = {
    ".and.": "&&", ".or.": "||",
    ".eq.": "==", ".ne.": "!=", ".lt.": "<", ".le.": "<=",
    ".gt.": ">", ".ge.": ">=",
}

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<dotop>\.(?:and|or|not|eq|ne|lt|le|gt|ge|true|false)\.)"
    r"|(?P<float>(?:\d+\.\d*|\.\d+|\d+)(?:[edED][+-]?\d+)(?:_\w+)?"
    r"|\d+\.\d*(?:_\w+)?|\.\d+(?:_\w+)?)"
    r"|(?P<int>\d+(?:_\w+)?)"
    r"|(?P<id>[A-Za-z_]\w*)"
    r"|(?P<op>\*\*|==|/=|<=|>=|<|>|[-+*/(),=:])"
    r")", re.IGNORECASE)


def _tokenize_expr(text: str, line: int) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None or m.end() == pos:
            if text[pos:].strip() == "":
                break
            raise FortranError(f"cannot tokenize {text[pos:]!r}", line)
        pos = m.end()
        if m.group("dotop"):
            word = m.group("dotop").lower()
            if word == ".true.":
                tokens.append(Token(INT_LIT, "1", line, m.start() + 1))
            elif word == ".false.":
                tokens.append(Token(INT_LIT, "0", line, m.start() + 1))
            elif word == ".not.":
                tokens.append(Token(PUNCT, "!", line, m.start() + 1))
            else:
                tokens.append(Token(PUNCT, _DOT_OPS[word], line,
                                    m.start() + 1))
        elif m.group("float"):
            text_f = m.group("float").split("_")[0]
            text_f = text_f.replace("d", "e").replace("D", "e")
            tokens.append(Token(FLOAT_LIT, text_f, line, m.start() + 1))
        elif m.group("int"):
            tokens.append(Token(INT_LIT, m.group("int").split("_")[0],
                                line, m.start() + 1))
        elif m.group("id"):
            tokens.append(Token(ID, m.group("id"), line, m.start() + 1))
        else:
            op = m.group("op")
            if op == "/=":
                op = "!="
            tokens.append(Token(PUNCT, op, line, m.start() + 1))
    tokens.append(Token(EOF, "", line, len(text) + 1))
    return tokens


_INTRINSICS = {"sqrt", "abs", "exp", "log", "sin", "cos", "min", "max",
               "mod", "real", "int", "floor", "ceiling", "dble"}


class _ExprParser:
    """Pratt parser over the Fortran expression tokens, emitting C AST.

    ``array_names`` distinguishes ``a(i)`` subscripts (1-based, lowered
    to ``a[i-1]``) from function/intrinsic calls.
    """

    _PREC = {"||": 1, "&&": 2,
             "==": 3, "!=": 3, "<": 4, ">": 4, "<=": 4, ">=": 4,
             "+": 5, "-": 5, "*": 6, "/": 6, "**": 8}

    def __init__(self, tokens: list[Token], array_names: set[str],
                 line: int) -> None:
        self.toks = tokens
        self.pos = 0
        self.arrays = array_names
        self.line = line

    @property
    def cur(self) -> Token:
        return self.toks[self.pos]

    def advance(self) -> Token:
        t = self.cur
        if t.kind != EOF:
            self.pos += 1
        return t

    def accept(self, value: str) -> bool:
        if self.cur.kind == PUNCT and self.cur.value == value:
            self.advance()
            return True
        return False

    def expect(self, value: str) -> None:
        if not self.accept(value):
            raise FortranError(f"expected {value!r} near {self.cur.value!r}",
                               self.line)

    def parse(self) -> C.Expr:
        e = self.parse_binary(1)
        if self.cur.kind != EOF:
            raise FortranError(
                f"trailing input {self.cur.value!r} in expression", self.line)
        return e

    def parse_binary(self, min_prec: int) -> C.Expr:
        left = self.parse_unary()
        while True:
            t = self.cur
            prec = self._PREC.get(t.value) if t.kind == PUNCT else None
            if prec is None or prec < min_prec:
                return left
            self.advance()
            # '**' is right-associative.
            right = self.parse_binary(prec if t.value == "**" else prec + 1)
            if t.value == "**":
                left = C.Call("pow", [left, right], line=self.line)
            else:
                left = C.BinOp(t.value, left, right, line=self.line)

    def parse_unary(self) -> C.Expr:
        t = self.cur
        if t.kind == PUNCT and t.value in ("-", "+", "!"):
            self.advance()
            return C.UnOp(t.value, self.parse_unary(), line=self.line)
        return self.parse_primary()

    def parse_primary(self) -> C.Expr:
        t = self.advance()
        if t.kind == INT_LIT:
            return C.IntLit(int(t.value), self.line)
        if t.kind == FLOAT_LIT:
            return C.FloatLit(float(t.value), self.line)
        if t.kind == PUNCT and t.value == "(":
            e = self.parse_binary(1)
            self.expect(")")
            return e
        if t.kind == ID:
            name = t.value
            if self.cur.kind == PUNCT and self.cur.value == "(":
                self.advance()
                args = []
                if not (self.cur.kind == PUNCT and self.cur.value == ")"):
                    args.append(self.parse_binary(1))
                    while self.accept(","):
                        args.append(self.parse_binary(1))
                self.expect(")")
                return self._call_or_subscript(name, args)
            return C.Ident(name, self.line)
        raise FortranError(f"unexpected token {t.value!r}", self.line)

    def _call_or_subscript(self, name: str, args: list[C.Expr]) -> C.Expr:
        low = name.lower()
        if name in self.arrays:
            if len(args) != 1:
                raise FortranError(
                    f"array {name!r} must have exactly one subscript "
                    "(linearize multi-dimensional data)", self.line)
            return C.Index(C.Ident(name, self.line),
                           [_minus_one(args[0])], line=self.line)
        if low in _INTRINSICS:
            mapped = {"abs": "fabs", "mod": "%", "real": "(float)",
                      "dble": "(double)", "int": "(int)",
                      "ceiling": "ceil"}.get(low, low)
            if mapped == "%":
                if len(args) != 2:
                    raise FortranError("mod() takes two arguments", self.line)
                return C.BinOp("%", args[0], args[1], line=self.line)
            if mapped in ("(float)", "(int)", "(double)"):
                base = mapped.strip("()")
                return C.CastExpr(C.CType(base), args[0], line=self.line)
            return C.Call(mapped, args, line=self.line)
        # Unknown callable: keep as a call (program-defined function).
        return C.Call(name, args, line=self.line)


def _minus_one(e: C.Expr) -> C.Expr:
    """Lower a 1-based subscript to 0-based, folding constants."""
    if isinstance(e, C.IntLit):
        return C.IntLit(e.value - 1, e.line)
    if isinstance(e, C.BinOp) and e.op == "+" and isinstance(e.right, C.IntLit):
        if e.right.value == 1:
            return e.left
        return C.BinOp("+", e.left, C.IntLit(e.right.value - 1), e.line)
    if isinstance(e, C.BinOp) and e.op == "-" and isinstance(e.right, C.IntLit):
        return C.BinOp("-", e.left, C.IntLit(e.right.value + 1), e.line)
    return C.BinOp("-", e, C.IntLit(1))


# ---------------------------------------------------------------------------
# Statement / unit parsing
# ---------------------------------------------------------------------------

_TYPE_MAP = {"real": "float", "integer": "int", "logical": "int",
             "double precision": "double"}

_DECL_RE = re.compile(
    r"^(?P<type>real(?:\s*\(\s*(?:kind\s*=\s*)?8\s*\))?"
    r"|double\s+precision|integer|logical)\s*"
    r"(?P<attrs>(?:,\s*[a-z_]+(?:\([^)]*\))?)*)\s*::\s*(?P<rest>.+)$",
    re.IGNORECASE)
_UNIT_RE = re.compile(
    r"^subroutine\s+(?P<name>\w+)\s*\((?P<args>[^)]*)\)\s*$", re.IGNORECASE)
_DO_RE = re.compile(
    r"^do\s+(?P<var>\w+)\s*=\s*(?P<lo>.+?)\s*,\s*(?P<hi>[^,]+?)"
    r"(?:\s*,\s*(?P<step>.+))?$", re.IGNORECASE)
_DO_WHILE_RE = re.compile(r"^do\s+while\s*\((?P<cond>.+)\)$", re.IGNORECASE)
_IF_THEN_RE = re.compile(r"^if\s*\((?P<cond>.+)\)\s*then$", re.IGNORECASE)
_IF_ONE_RE = re.compile(r"^if\s*\((?P<cond>.+)\)\s*(?P<stmt>[^t].*|t[^h].*)$",
                        re.IGNORECASE)
_ELSE_IF_RE = re.compile(r"^else\s*if\s*\((?P<cond>.+)\)\s*then$",
                         re.IGNORECASE)
_CALL_RE = re.compile(r"^call\s+(?P<name>\w+)\s*\((?P<args>.*)\)\s*$",
                      re.IGNORECASE)


class FortranParser:
    """Parses one or more subroutines into a C :class:`~cast.Program`."""

    def __init__(self, source: str) -> None:
        self.lines = _scan_lines(source)
        self.pos = 0

    # -- helpers ---------------------------------------------------------------

    def peek(self) -> _Line | None:
        return self.lines[self.pos] if self.pos < len(self.lines) else None

    def next_line(self) -> _Line:
        line = self.peek()
        if line is None:
            raise FortranError("unexpected end of source",
                               self.lines[-1].number if self.lines else 0)
        self.pos += 1
        return line

    def expr(self, text: str, line: int) -> C.Expr:
        return _ExprParser(_tokenize_expr(text, line), self.arrays,
                           line).parse()

    # -- program ------------------------------------------------------------------

    def parse_program(self) -> C.Program:
        prog = C.Program()
        while self.peek() is not None:
            prog.functions.append(self._parse_subroutine())
        return prog

    def _parse_subroutine(self) -> C.FunctionDef:
        head = self.next_line()
        m = _UNIT_RE.match(head.text)
        if m is None:
            raise FortranError("expected 'subroutine name(args)'",
                               head.number)
        name = m.group("name")
        params = [a.strip() for a in m.group("args").split(",") if a.strip()]
        self.arrays: set[str] = set()
        param_types: dict[str, C.CType] = {}
        body: list[C.Stmt] = []
        # Declarations first (they may mention dummy args).
        while True:
            line = self.peek()
            if line is None:
                raise FortranError(f"missing 'end subroutine' for {name}",
                                   head.number)
            dm = _DECL_RE.match(line.text)
            if dm is None:
                break
            self.next_line()
            body.extend(self._lower_declaration(dm, line.number,
                                                params, param_types))
        # Executable part.
        body.extend(self._parse_block(("end",), name))
        for p in params:
            if p not in param_types:
                raise FortranError(
                    f"dummy argument {p!r} of {name} was never declared",
                    head.number)
        return C.FunctionDef(
            name=name,
            return_type=C.CType("void"),
            params=[C.Param(p, param_types[p], head.number) for p in params],
            body=C.Compound(body=body, line=head.number),
            line=head.number,
        )

    def _lower_declaration(self, m, line_no: int, params: list[str],
                           param_types: dict[str, C.CType]) -> list[C.Stmt]:
        base = _TYPE_MAP[re.sub(r"\s+", " ", m.group("type").lower())
                         .split("(")[0].strip()]
        if "8" in m.group("type") and base == "float":
            base = "double"
        rest = m.group("rest")
        decls: list[C.Stmt] = []
        for item in _split_top_level(rest):
            dm = re.match(r"^(?P<name>\w+)\s*(?:\((?P<dim>.+)\))?\s*"
                          r"(?:=\s*(?P<init>.+))?$", item.strip())
            if dm is None:
                raise FortranError(f"cannot parse declarator {item!r}",
                                   line_no)
            dname = dm.group("name")
            is_array = dm.group("dim") is not None
            if is_array:
                self.arrays.add(dname)
            if dname in params:
                if is_array:
                    # Dummy array argument: becomes a pointer parameter
                    # (extent checked at run time by the loader).
                    param_types[dname] = C.CType(base, pointers=1)
                else:
                    param_types[dname] = C.CType(base)
                if dm.group("init"):
                    raise FortranError(
                        f"dummy argument {dname!r} cannot be initialized",
                        line_no)
                continue
            if is_array:
                dim = dm.group("dim")
                extent = self.expr(dim, line_no)
                decls.append(C.Decl(
                    name=dname,
                    ctype=C.CType(base, array_dims=(extent,)),
                    line=line_no))
            else:
                init = (self.expr(dm.group("init"), line_no)
                        if dm.group("init") else None)
                decls.append(C.Decl(name=dname, ctype=C.CType(base),
                                    init=init, line=line_no))
        return decls

    # -- blocks -------------------------------------------------------------------

    def _parse_block(self, terminators: tuple[str, ...],
                     unit_name: str, acc_end: str | None = None) -> list[C.Stmt]:
        """Parse statements until a terminator line; consumes it.

        ``acc_end`` names an OpenACC construct whose Fortran-style
        ``!$acc end <construct>`` sentinel also terminates this block.
        """
        from .directives import AccData, AccParallel

        stmts: list[C.Stmt] = []
        pending_directives: list[Directive] = []
        while True:
            line = self.peek()
            if line is None:
                raise FortranError("unexpected end of block", 0)
            low = line.text.lower()
            if acc_end is not None and                     re.fullmatch(rf"!\$acc\s+end\s+{acc_end}", low):
                if pending_directives:
                    raise FortranError(
                        "dangling !$acc directive before end of block",
                        line.number)
                self.next_line()
                return stmts
            if any(low == t or low.startswith(t + " ")
                   for t in terminators):
                if pending_directives:
                    raise FortranError(
                        "dangling !$acc directive before end of block",
                        line.number)
                self.next_line()
                return stmts
            stmt = self._parse_statement(unit_name)
            if stmt is None:
                continue
            if isinstance(stmt, list):  # directives
                for d in stmt:
                    is_block = isinstance(d, AccData) or (
                        isinstance(d, AccParallel) and d.fused_loop is None)
                    if is_block:
                        # Fortran block construct: parse the region body
                        # until the matching '!$acc end <construct>'.
                        kind = "data" if isinstance(d, AccData)                             else d.construct
                        body = self._parse_block((), unit_name,
                                                 acc_end=kind)
                        region = C.Compound(body=body, line=d.line)
                        region.directives = pending_directives + [d]
                        pending_directives = []
                        stmts.append(region)
                    else:
                        pending_directives.append(d)
                continue
            if pending_directives:
                stmt.directives = pending_directives + stmt.directives
                pending_directives = []
            stmts.append(stmt)

    def _parse_statement(self, unit_name: str):
        line = self.next_line()
        text = line.text
        low = text.lower()
        no = line.number

        if low.startswith("!$acc"):
            body = text[5:].strip()
            if body.lower().startswith("end"):
                # Stray 'end' sentinel of a combined construct
                # ('!$acc end parallel loop'): structural no-op.
                return None
            d = parse_pragma("acc " + body, no)
            return [d] if d is not None else None

        m = _DO_WHILE_RE.match(text)
        if m is not None:
            body = self._parse_block(("end do", "enddo"), unit_name)
            return C.While(cond=self.expr(m.group("cond"), no),
                           body=C.Compound(body=body, line=no), line=no)

        m = _DO_RE.match(text)
        if m is not None:
            var = m.group("var")
            if m.group("step") is not None and \
                    m.group("step").strip() != "1":
                raise FortranError("only unit do-steps are supported", no)
            lo = self.expr(m.group("lo"), no)
            hi = self.expr(m.group("hi"), no)
            body = self._parse_block(("end do", "enddo"), unit_name)
            init = C.ExprStmt(expr=C.Assign(C.Ident(var, no), lo, "", no),
                              line=no)
            return C.For(
                init=init,
                cond=C.BinOp("<=", C.Ident(var, no), hi, no),
                step=C.Assign(C.Ident(var, no), C.IntLit(1), "+", no),
                body=C.Compound(body=body, line=no),
                line=no,
            )

        m = _IF_THEN_RE.match(text)
        if m is not None:
            return self._parse_if_chain(m.group("cond"), no, unit_name)

        if low.startswith("if"):
            m = re.match(r"^if\s*\((?P<cond>.+?)\)\s*(?P<rest>\w.*)$", text,
                         re.IGNORECASE)
            if m is not None and m.group("rest").lower() != "then":
                inner = self._lower_simple(m.group("rest"), no, unit_name)
                return C.If(cond=self.expr(m.group("cond"), no),
                            then=inner, line=no)

        if low == "exit":
            return C.Break(line=no)
        if low == "cycle":
            return C.Continue(line=no)
        if low == "return":
            return C.Return(line=no)
        if low.startswith("end subroutine") or low == "end":
            raise FortranError(
                f"unbalanced end in {unit_name}", no)

        return self._lower_simple(text, no, unit_name)

    def _parse_if_chain(self, cond_text: str, no: int,
                        unit_name: str) -> C.If:
        then_body: list[C.Stmt] = []
        node = C.If(cond=self.expr(cond_text, no),
                    then=C.Compound(body=then_body, line=no), line=no)
        current = then_body
        while True:
            line = self.peek()
            if line is None:
                raise FortranError("unterminated if", no)
            low = line.text.lower()
            m = _ELSE_IF_RE.match(line.text)
            if m is not None:
                self.next_line()
                sub = self._parse_if_chain_tail(m.group("cond"), line.number,
                                                unit_name)
                node_ref = node
                while node_ref.orelse is not None:
                    node_ref = node_ref.orelse  # type: ignore[assignment]
                node_ref.orelse = sub
                return node
            if low == "else":
                self.next_line()
                else_body = self._parse_block(("end if", "endif"), unit_name)
                node.orelse = C.Compound(body=else_body, line=line.number)
                return node
            if low in ("end if", "endif"):
                self.next_line()
                return node
            stmt = self._parse_statement(unit_name)
            if stmt is None:
                continue
            if isinstance(stmt, list):
                raise FortranError("directives inside if blocks must precede "
                                   "a statement", line.number)
            current.append(stmt)

    def _parse_if_chain_tail(self, cond_text: str, no: int,
                             unit_name: str) -> C.If:
        return self._parse_if_chain(cond_text, no, unit_name)

    def _lower_simple(self, text: str, no: int, unit_name: str) -> C.Stmt:
        m = _CALL_RE.match(text)
        if m is not None:
            args = [self.expr(a, no)
                    for a in _split_top_level(m.group("args")) if a.strip()]
            return C.ExprStmt(expr=C.Call(m.group("name"), args, no), line=no)
        # Assignment: target = expr (target may be a(expr)).
        eq = _find_top_level_equals(text)
        if eq < 0:
            raise FortranError(f"cannot parse statement {text!r}", no)
        target = self.expr(text[:eq].strip(), no)
        value = self.expr(text[eq + 1:].strip(), no)
        if not isinstance(target, (C.Ident, C.Index)):
            raise FortranError("assignment target must be a variable or "
                               "array element", no)
        # Fortran has no compound assignment: desugar the idiomatic
        # 'dest = dest OP v' back into 'dest OP= v' so the translator's
        # reduction machinery (reductiontoarray, atomic-style stores)
        # sees the same form the C frontend produces.
        if isinstance(target, C.Index) and isinstance(value, C.BinOp) \
                and value.op in ("+", "*"):
            if _expr_equal(value.left, target):
                return C.ExprStmt(expr=C.Assign(target, value.right,
                                                value.op, no), line=no)
            if value.op == "+" and _expr_equal(value.right, target):
                return C.ExprStmt(expr=C.Assign(target, value.left,
                                                value.op, no), line=no)
        return C.ExprStmt(expr=C.Assign(target, value, "", no), line=no)


def _expr_equal(a: C.Expr, b: C.Expr) -> bool:
    """Structural equality of two lowered expressions."""
    if type(a) is not type(b):
        return False
    if isinstance(a, C.IntLit):
        return a.value == b.value
    if isinstance(a, C.FloatLit):
        return a.value == b.value
    if isinstance(a, C.Ident):
        return a.name == b.name
    if isinstance(a, C.BinOp):
        return a.op == b.op and _expr_equal(a.left, b.left) \
            and _expr_equal(a.right, b.right)
    if isinstance(a, C.UnOp):
        return a.op == b.op and _expr_equal(a.operand, b.operand)
    if isinstance(a, C.Index):
        return _expr_equal(a.array, b.array) \
            and len(a.indices) == len(b.indices) \
            and all(_expr_equal(x, y)
                    for x, y in zip(a.indices, b.indices))
    if isinstance(a, C.Call):
        return a.func == b.func and len(a.args) == len(b.args) \
            and all(_expr_equal(x, y) for x, y in zip(a.args, b.args))
    return False


def _split_top_level(text: str) -> list[str]:
    """Split on commas not nested in parentheses."""
    parts = []
    depth = 0
    cur = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if cur:
        parts.append("".join(cur))
    return parts


def _find_top_level_equals(text: str) -> int:
    depth = 0
    for i, ch in enumerate(text):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch == "=" and depth == 0:
            prev = text[i - 1] if i else ""
            nxt = text[i + 1] if i + 1 < len(text) else ""
            if prev in "<>=!/" or nxt == "=":
                continue
            return i
    return -1


# ---------------------------------------------------------------------------
# localaccess window re-basing (1-based -> 0-based)
# ---------------------------------------------------------------------------


def _rebase_directives(prog: C.Program) -> None:
    """Shift localaccess windows from Fortran's 1-based element numbers.

    Window *bounds* are element numbers, so ``range``/``bounds`` forms
    shift by -1.  The ``stride`` form is expressed in the loop variable
    (which still runs over its original 1-based range), so it is
    rewritten to the equivalent ``bounds`` pair evaluated at ``i``:
    ``[s*(i-1)+1-l, s*i+r]`` 1-based == ``[s*(i-1)-l, s*i-1+r]``
    0-based.
    """
    from .directives import AccLocalAccess, LocalAccessSpec

    for func in prog.functions:
        for stmt in C.walk(func.body):
            for d in stmt.directives:
                if not isinstance(d, AccLocalAccess):
                    continue
                for name, spec in list(d.entries.items()):
                    d.entries[name] = _rebase_spec(spec)


def _rebase_spec(spec):
    from .directives import LocalAccessSpec

    if spec.kind == "all":
        return spec
    if spec.kind in ("range", "bounds"):
        return LocalAccessSpec(kind=spec.kind,
                               lo=_minus_one(spec.lo),
                               hi=_minus_one(spec.hi))
    # stride(s, l, r) with a 1-based loop variable i: rewrite as bounds.
    assert spec.kind == "stride"
    s, l, r = spec.stride, spec.left, spec.right
    i = C.Ident("__loopvar__")
    lo = C.BinOp("-", C.BinOp("*", s, C.BinOp("-", i, C.IntLit(1))), l)
    hi = C.BinOp("+", C.BinOp("-", C.BinOp("*", s, i), C.IntLit(1)), r)
    return LocalAccessSpec(kind="bounds", lo=lo, hi=hi)


def _bind_loopvar_placeholders(prog: C.Program) -> None:
    """Replace the ``__loopvar__`` placeholder with each loop's variable."""
    from .directives import AccLocalAccess

    for func in prog.functions:
        for stmt in C.walk(func.body):
            las = [d for d in stmt.directives
                   if isinstance(d, AccLocalAccess)]
            if not las or not isinstance(stmt, C.For):
                continue
            init = stmt.init
            var = init.name if isinstance(init, C.Decl) else \
                init.expr.target.name  # type: ignore[union-attr]
            for d in las:
                for spec in d.entries.values():
                    for bound in (spec.lo, spec.hi, spec.stride, spec.left,
                                  spec.right):
                        if bound is None:
                            continue
                        for e in C.walk_expr(bound):
                            if isinstance(e, C.Ident) and \
                                    e.name == "__loopvar__":
                                e.name = var


def parse_fortran(source: str) -> C.Program:
    """Parse free-form Fortran into the shared C AST."""
    prog = FortranParser(source).parse_program()
    _rebase_directives(prog)
    _bind_loopvar_placeholders(prog)
    return prog
