"""Scoped symbol tables for the C subset.

The translator needs to answer, for any identifier inside a parallel
region: is it a host scalar (becomes a kernel argument), an array
(becomes a device buffer), or a kernel-local declared inside the loop
body (becomes private per iteration)?  The symbol table built here by a
single pass over a function provides the types; the classification
itself lives in :mod:`repro.frontend.analysis`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from . import cast as C


class SymbolError(NameError):
    pass


@dataclass
class Symbol:
    name: str
    ctype: C.CType
    #: 'param' | 'local' | 'global'
    storage: str
    line: int = 0

    @property
    def is_array(self) -> bool:
        return self.ctype.is_arraylike


@dataclass
class Scope:
    parent: "Scope | None" = None
    symbols: dict[str, Symbol] = field(default_factory=dict)

    def declare(self, sym: Symbol) -> Symbol:
        existing = self.symbols.get(sym.name)
        if existing is not None:
            # Sibling-block re-declarations (e.g. ``int i`` in two separate
            # for loops) are legal C; the flattened scope accepts them as
            # long as the types agree.  Conflicting types would change the
            # meaning of flattened name lookups, so they are rejected.
            if (existing.ctype.base, existing.ctype.pointers,
                    len(existing.ctype.array_dims)) != \
                    (sym.ctype.base, sym.ctype.pointers,
                     len(sym.ctype.array_dims)):
                raise SymbolError(
                    f"redeclaration of {sym.name!r} with a different type at "
                    f"line {sym.line}")
            return existing
        self.symbols[sym.name] = sym
        return sym

    def lookup(self, name: str) -> Symbol | None:
        scope: Scope | None = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None

    def child(self) -> "Scope":
        return Scope(parent=self)

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self.symbols.values())


def build_function_scope(func: C.FunctionDef,
                         global_scope: Scope | None = None) -> Scope:
    """Scope holding the function's params and *all* block-level locals.

    The subset forbids shadowing (checked here), so flattening every
    block's declarations into one scope is sound and makes later name
    lookups trivial for the translator.
    """
    scope = Scope(parent=global_scope)
    for p in func.params:
        scope.declare(Symbol(p.name, p.ctype, "param", p.line))
    for stmt in C.walk(func.body):
        if isinstance(stmt, C.Decl):
            scope.declare(Symbol(stmt.name, stmt.ctype, "local", stmt.line))
    return scope


def build_global_scope(program: C.Program) -> Scope:
    scope = Scope()
    for d in program.globals:
        scope.declare(Symbol(d.name, d.ctype, "global", d.line))
    return scope
