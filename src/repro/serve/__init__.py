"""Compile-and-serve: a concurrent program service over a shared fleet.

The paper models one OpenACC program owning the whole multi-GPU
machine.  This package supplies the "many users" story on top of the
existing pieces: a persistent compiled-program registry (content-
addressed on-disk store over the in-memory compile cache), an
admission/placement scheduler that packs independent programs onto
disjoint GPU-slot subsets of one large modeled fleet (memory-aware
bin-packing over the byte-accounted allocators), and queue/fairness
observability exported through the structured trace subsystem.

Entry points:

* :class:`ProgramService` -- submit :class:`RunRequest` objects from
  any number of threads, collect :class:`RequestRecord` tickets;
* :class:`ProgramRegistry` -- the persistent store, also usable on its
  own via ``repro.compile(source, registry=...)``;
* ``python -m repro.serve workload.json`` -- replay a request workload
  file and print the queueing summary (see ``docs/SERVING.md``).
"""

from .registry import ProgramRegistry, RegistryError, registry_key
from .scheduler import (
    AdmissionError,
    FairSharePolicy,
    FifoPolicy,
    FleetState,
    estimate_request_bytes,
    plan_placement,
)
from .service import ProgramService, RequestRecord, RunRequest, ServiceReport
from .workload import (
    WorkloadError,
    fleet_from_spec,
    load_workload,
    run_workload,
)

__all__ = [
    "AdmissionError",
    "FairSharePolicy",
    "FifoPolicy",
    "FleetState",
    "ProgramRegistry",
    "ProgramService",
    "RegistryError",
    "RequestRecord",
    "RunRequest",
    "ServiceReport",
    "WorkloadError",
    "estimate_request_bytes",
    "fleet_from_spec",
    "load_workload",
    "plan_placement",
    "registry_key",
    "run_workload",
]
